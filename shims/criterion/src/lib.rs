//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so the bench harness is
//! vendored: same macros and builder surface (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`), but measurement is a
//! plain monotonic-clock loop without warm-up analysis, outlier rejection,
//! or HTML reports. Numbers printed are median-of-samples wall times —
//! adequate for relative comparisons, not for publication.

use std::fmt::Display;
use std::time::Instant;

/// Declared throughput of a benchmark, echoed in the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes per iteration, decimal multiple display.
    BytesDecimal(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples of a small batch each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then timed batches.
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    fn median_s(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.sort_by(f64::total_cmp);
        self.samples[self.samples.len() / 2]
    }
}

/// The top-level bench context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(&id.to_string(), None, self.sample_size, f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.throughput, self.parent.sample_size, f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.throughput, self.parent.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let t = b.median_s();
    match throughput {
        Some(Throughput::Elements(n)) if t > 0.0 => {
            println!("{name}: {:.3e} s/iter, {:.3e} elem/s", t, n as f64 / t);
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if t > 0.0 => {
            println!("{name}: {:.3e} s/iter, {:.3e} B/s", t, n as f64 / t);
        }
        _ => println!("{name}: {t:.3e} s/iter"),
    }
}

/// Re-export for closures that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a bench entry point function running the listed targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| {
            b.iter(|| (0..4u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("enc", 5).to_string(), "enc/5");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
