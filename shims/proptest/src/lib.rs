//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! miniature property-testing framework with the same surface syntax:
//!
//! - `proptest! { #[test] fn name(x in strategy, ...) { body } }`
//! - strategies: integer ranges (`2usize..7`), `any::<T>()` for primitives
//!   and small tuples, tuples of strategies (`(1usize..9, 0f64..1.0)`), and
//!   `prop::collection::vec(strategy, len_range)` (arbitrarily nested);
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike real proptest there is no shrinking and no persistence file: each
//! test runs a fixed number of cases drawn from a generator seeded
//! deterministically from the test's module path and name, so failures are
//! reproducible across runs and machines by construction. On failure the
//! panic message includes the case index.

pub mod test_runner {
    //! Deterministic case generator.

    /// Per-case RNG. Seeded from the test name and case index only, so every
    //  run of the suite sees identical inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for `(test_name, case)`.
        #[must_use]
        pub fn deterministic(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, then a SplitMix64 mix with the case.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut z = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Self {
                state: (z ^ (z >> 31)).max(1),
            }
        }

        /// Next 64 random bits (xorshift64*).
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform integer in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0) is empty");
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait: how test inputs are drawn.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    let off = rng.below(span as u64) as i128;
                    ((self.start as i128) + off) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    let off = rng.below(span as u64) as i128;
                    ((*self.start() as i128) + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.end > self.start, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    //! `any::<T>()` — the type-directed default strategy.

    use core::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a default generation recipe.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// The default strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    impl Arbitrary for f32 {
        #[allow(clippy::cast_possible_truncation)]
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.next_f64() as f32
        }
    }

    macro_rules! tuple_arbitrary {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }

    tuple_arbitrary!(A, B);
    tuple_arbitrary!(A, B, C);
    tuple_arbitrary!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies.

    use core::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with `len` drawn uniformly from `len_range`.
    pub fn vec<S: Strategy>(elem: S, len_range: Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len_range,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` block needs in scope.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Namespace mirror (`prop::collection::vec`).
        pub use crate::collection;
    }
}

/// Number of cases each property runs. Fixed (not configurable via env) so
/// timing and coverage are identical on every machine.
pub const CASES: u64 = 64;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..$crate::CASES {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(__test_name, __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let __run = || -> () { $body };
                    __run();
                }
            }
        )+
    };
}

/// Asserts a condition inside a property (panics with the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn nested_vec_works(vv in prop::collection::vec(
            prop::collection::vec(any::<u32>(), 1..4), 1..5)) {
            prop_assert!(!vv.is_empty());
            for v in &vv {
                prop_assert!(!v.is_empty() && v.len() < 4);
            }
        }

        #[test]
        fn tuples_generate(t in any::<(bool, bool)>(), s in any::<u64>()) {
            let _ = (t.0, t.1, s);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y", 3);
        let mut b = crate::test_runner::TestRng::deterministic("x::y", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
