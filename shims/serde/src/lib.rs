//! Offline stand-in for `serde`'s derive macros.
//!
//! The workspace uses `#[derive(serde::Serialize, serde::Deserialize)]`
//! purely as decoration today — nothing serializes through serde at runtime
//! (reports are rendered by hand). The build environment has no crates.io
//! access, so this proc-macro crate accepts the derive attributes and emits
//! nothing, keeping every annotated type compiling unchanged. If real
//! serialization is ever needed, swap the workspace dependency back to the
//! published crate; the call sites need no edits.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
