//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen` for
//! primitive types. The build environment has no crates.io access, so the
//! workspace vendors this deterministic implementation (SplitMix64-based)
//! instead. Only the call sites in `marsit-tensor::rng` depend on it.

/// Types constructible from a stream of random 64-bit words.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Core random-word source.
pub trait RngCore {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator standing in for `rand::rngs::StdRng`.
    ///
    /// SplitMix64: full 2^64 period, passes the statistical tests that
    /// matter for Monte-Carlo use. Not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
