//! # Marsit: one-bit multi-hop all-reduce for distributed training
//!
//! A full reproduction of **“Sign Bit is Enough: A Learning Synchronization
//! Framework for Multi-hop All-reduce with Ultimate Compression”** (Wu, He,
//! Guo, Qu, Wang, Zhuang, Zhang — DAC 2022), built from scratch in Rust:
//! the Marsit algorithm itself plus every substrate its evaluation depends
//! on (tensor math, synthetic datasets, exact-backprop models, gradient
//! compressors, ring/torus/PS collectives, and an α–β network simulator).
//!
//! This facade re-exports each subsystem under a short module name; see
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured results of every table and figure.
//!
//! ## Quick start
//!
//! Train the MNIST proxy over an 8-worker ring with one-bit Marsit
//! synchronization, and compare the traffic against full-precision PSGD:
//!
//! ```
//! use marsit::prelude::*;
//!
//! let mut cfg = TrainConfig::new(
//!     Workload::AlexNetMnist,
//!     Topology::ring(4),
//!     StrategyKind::Marsit { k: Some(50) },
//! );
//! cfg.rounds = 30;
//! cfg.train_examples = 1024;
//! cfg.test_examples = 256;
//! let marsit_report = train(&cfg);
//!
//! cfg.strategy = StrategyKind::Psgd;
//! let psgd_report = train(&cfg);
//!
//! assert!(marsit_report.total_bytes * 10 < psgd_report.total_bytes);
//! ```
//!
//! ## Layout
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `marsit-core` | the `⊙` operator, compensation, Algorithm 1, Theorems 1–3 |
//! | [`trainsim`] | `marsit-trainsim` | training loop, six strategies, timing model |
//! | [`collectives`] | `marsit-collectives` | ring / torus / PS schedules with tracing |
//! | [`compress`] | `marsit-compress` | signSGD, EF-signSGD, SSDM, cascading, Elias codes |
//! | [`models`] | `marsit-models` | MLP proxies with exact backprop, optimizers |
//! | [`datagen`] | `marsit-datagen` | synthetic MNIST/CIFAR/ImageNet/IMDb stand-ins |
//! | [`simnet`] | `marsit-simnet` | topologies, α–β link model, phase accounting |
//! | [`tensor`] | `marsit-tensor` | dense tensors, bit-packed sign vectors, RNG |
//! | [`telemetry`] | `marsit-telemetry` | deterministic event tracing, metrics, run reports |
//! | [`serve`] | `marsit-serve` | sharded multi-job scheduler with bit-exact migration |

pub use marsit_collectives as collectives;
pub use marsit_compress as compress;
pub use marsit_core as core;
pub use marsit_datagen as datagen;
pub use marsit_models as models;
pub use marsit_serve as serve;
pub use marsit_simnet as simnet;
pub use marsit_telemetry as telemetry;
pub use marsit_tensor as tensor;
pub use marsit_trainsim as trainsim;

/// The items needed by a typical experiment, importable in one line.
pub mod prelude {
    pub use marsit_collectives::{DegradedMode, SyncError, TopologyReconfigurer};
    pub use marsit_core::{Marsit, MarsitConfig, MarsitSnapshot, SyncSchedule};
    pub use marsit_datagen::synthetic::{cifar10_like, imagenet_like, imdb_like, mnist_like};
    pub use marsit_models::{Evaluation, Mlp, MlpSpec, Model, OptimizerKind, Workload};
    pub use marsit_simnet::{
        Backend, FaultPlan, FaultStats, LinkModel, MembershipEvent, MembershipSchedule,
        PhaseBreakdown, RateProfile, Topology,
    };
    pub use marsit_telemetry::Telemetry;
    pub use marsit_tensor::{rng::FastRng, SignVec, Tensor};
    pub use marsit_trainsim::{
        train, StrategyKind, TrainConfig, TrainReport, TrainSnapshot, TrainerState,
    };
}
