//! Marsit-as-a-service front end.
//!
//! Reads a submission queue of job-spec lines (one `key=value` line per
//! job — see `JobSpec::parse_line`) from a file or stdin, serves them
//! through the sharded scheduler, and prints one summary row per finished
//! job plus server-level throughput, pool, and migration counters.
//!
//! ```text
//! cargo run --release --bin marsit_serve -- jobs.txt \
//!     [--shards N] [--tick ROUNDS] [--migrate none|balance|seeded:SEED:PERMILLE] \
//!     [--journal PATH] [--snapshot-every TICKS] \
//!     [--quota TENANT:JOBS:BUDGET:PER_SEC]... [--max-in-flight N] \
//!     [--supervise] [--verify] [--out PATH]
//! ```
//!
//! `--journal PATH` makes serving crash-safe: every accepted submission,
//! periodic job snapshot, migration, and outcome is appended to a durable
//! `marsit-journal/1` log (fsynced at shard-tick boundaries). If PATH
//! already holds a journal — say, because the previous server was
//! `kill -9`ed mid-storm — the server replays it first, reports finished
//! jobs without re-running them, resumes in-flight jobs from their last
//! snapshots, and restarts never-snapshotted jobs from scratch.
//!
//! `--supervise` runs each shard as a subprocess (restarted with backoff
//! if it dies) instead of a thread.
//!
//! `--verify` re-runs every job solo after serving and hard-fails unless
//! the served report and telemetry log are byte-identical — the bit-
//! exactness guarantee, checked end to end, including across crashes.
//!
//! Exit codes: 0 success; 2 malformed queue (one diagnostic per bad line
//! on stderr); 3 jobs permanently rejected by admission control; 4 bit-
//! exactness violation under `--verify`; 1 anything else.

use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use marsit::serve::{
    parse_queue, plan_from_replay, quantile_ns, replay_file, shard_worker_main, verify_outcome,
    verify_recovered, AdmissionController, AdmissionError, JobServer, JobSpec, JournalWriter,
    MigrationPolicy, RecoveredOutcome, ServeConfig, SupervisorConfig, SupervisorHandle,
    TenantQuota,
};

const EXIT_OK: i32 = 0;
const EXIT_FAIL: i32 = 1;
const EXIT_BAD_QUEUE: i32 = 2;
const EXIT_REJECTED: i32 = 3;
const EXIT_VIOLATION: i32 = 4;

/// Everything that can end the run early, with its exit code.
struct CliError {
    message: String,
    code: i32,
}

impl CliError {
    fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: EXIT_FAIL,
        }
    }
}

fn parse_migration(value: &str) -> Result<MigrationPolicy, String> {
    if value == "none" {
        return Ok(MigrationPolicy::None);
    }
    if value == "balance" {
        return Ok(MigrationPolicy::LoadBalance { skew: 2 });
    }
    if let Some(rest) = value.strip_prefix("seeded:") {
        let (seed, per_mille) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad --migrate (expected seeded:SEED:PERMILLE): {value}"))?;
        let seed = seed.parse().map_err(|_| format!("bad seed: {seed}"))?;
        let per_mille = per_mille
            .parse()
            .map_err(|_| format!("bad per-mille: {per_mille}"))?;
        return Ok(MigrationPolicy::Seeded { seed, per_mille });
    }
    Err(format!(
        "unknown --migrate policy (none|balance|seeded:SEED:PERMILLE): {value}"
    ))
}

/// `TENANT:JOBS:BUDGET:PER_SEC` — e.g. `team-a:4:200:10` caps tenant
/// `team-a` at 4 concurrent jobs, a 200-round token bucket refilled at
/// 10 rounds/s.
fn parse_quota(value: &str) -> Result<(String, TenantQuota), String> {
    let parts: Vec<&str> = value.split(':').collect();
    let [tenant, jobs, budget, per_sec] = parts[..] else {
        return Err(format!(
            "bad --quota (expected TENANT:JOBS:BUDGET:PER_SEC): {value}"
        ));
    };
    if tenant.is_empty() {
        return Err(format!("bad --quota (empty tenant): {value}"));
    }
    let max_in_flight = jobs
        .parse()
        .map_err(|_| format!("bad --quota job cap: {jobs}"))?;
    let round_budget = budget
        .parse()
        .map_err(|_| format!("bad --quota round budget: {budget}"))?;
    let rounds_per_sec = per_sec
        .parse()
        .map_err(|_| format!("bad --quota refill rate: {per_sec}"))?;
    Ok((
        tenant.to_string(),
        TenantQuota {
            max_in_flight,
            round_budget,
            rounds_per_sec,
        },
    ))
}

struct Options {
    input: Option<String>,
    shards: usize,
    tick: usize,
    migration: MigrationPolicy,
    verify: bool,
    out_path: Option<String>,
    journal_path: Option<PathBuf>,
    snapshot_every: usize,
    quotas: Vec<(String, TenantQuota)>,
    max_in_flight: Option<usize>,
    supervise: bool,
}

/// The hidden `--shard-worker` mode: this process is a shard subprocess
/// spawned by a supervisor. Never reached by user-driven invocations.
fn run_shard_worker(args: &[String]) -> i32 {
    let mut addr = None;
    let mut shard = 0usize;
    let mut tick = 4usize;
    let mut snapshot_every = 2usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned();
            }
            "--shard" => {
                i += 1;
                shard = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(0);
            }
            "--tick" => {
                i += 1;
                tick = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(4);
            }
            "--snapshot-every" => {
                i += 1;
                snapshot_every = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(2);
            }
            _ => {}
        }
        i += 1;
    }
    let Some(addr) = addr else {
        eprintln!("marsit_serve: --shard-worker requires --addr");
        return EXIT_FAIL;
    };
    shard_worker_main(&addr, shard, tick, snapshot_every)
}

#[allow(clippy::too_many_lines)]
fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options {
        input: None,
        shards: 4,
        tick: 4,
        migration: MigrationPolicy::None,
        verify: false,
        out_path: None,
        journal_path: None,
        snapshot_every: 4,
        quotas: Vec::new(),
        max_in_flight: None,
        supervise: false,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError::fail(format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                let v = value(args, &mut i, "--shards")?;
                opts.shards = v
                    .parse()
                    .map_err(|_| CliError::fail(format!("bad --shards: {v}")))?;
            }
            "--tick" => {
                let v = value(args, &mut i, "--tick")?;
                opts.tick = v
                    .parse()
                    .map_err(|_| CliError::fail(format!("bad --tick: {v}")))?;
            }
            "--migrate" => {
                let v = value(args, &mut i, "--migrate")?;
                opts.migration = parse_migration(&v).map_err(CliError::fail)?;
            }
            "--journal" => {
                let v = value(args, &mut i, "--journal")?;
                opts.journal_path = Some(PathBuf::from(v));
            }
            "--snapshot-every" => {
                let v = value(args, &mut i, "--snapshot-every")?;
                opts.snapshot_every = v
                    .parse()
                    .map_err(|_| CliError::fail(format!("bad --snapshot-every: {v}")))?;
            }
            "--quota" => {
                let v = value(args, &mut i, "--quota")?;
                opts.quotas.push(parse_quota(&v).map_err(CliError::fail)?);
            }
            "--max-in-flight" => {
                let v = value(args, &mut i, "--max-in-flight")?;
                opts.max_in_flight = Some(
                    v.parse()
                        .map_err(|_| CliError::fail(format!("bad --max-in-flight: {v}")))?,
                );
            }
            "--supervise" => opts.supervise = true,
            "--verify" => opts.verify = true,
            "--out" => opts.out_path = Some(value(args, &mut i, "--out")?),
            flag if flag.starts_with("--") => {
                return Err(CliError::fail(format!("unknown flag: {flag}")));
            }
            path => opts.input = Some(path.to_string()),
        }
        i += 1;
    }
    Ok(opts)
}

fn read_queue(input: Option<&str>) -> Result<String, CliError> {
    match input {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| CliError::fail(format!("cannot read job queue {path}: {e}"))),
        None => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| CliError::fail(format!("cannot read job queue from stdin: {e}")))?;
            Ok(text)
        }
    }
}

fn admission_from(opts: &Options) -> Option<AdmissionController> {
    if opts.quotas.is_empty() && opts.max_in_flight.is_none() {
        return None;
    }
    let mut admission = AdmissionController::new();
    if let Some(cap) = opts.max_in_flight {
        admission.set_queue_cap(cap);
    }
    for (tenant, quota) in &opts.quotas {
        admission.set_quota(tenant.clone(), *quota);
    }
    Some(admission)
}

/// Milliseconds since this process's own epoch — monotonic, which is all
/// the token buckets need.
fn now_ms(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
}

struct Recovery {
    writer: JournalWriter,
    completed: Vec<RecoveredOutcome>,
    resumes: Vec<marsit::serve::ResumeJob>,
    fresh: Vec<JobSpec>,
}

/// Opens the journal: replaying an existing file into a resume plan, or
/// creating a fresh one.
fn open_journal(path: &Path) -> Result<Recovery, CliError> {
    let exists = std::fs::metadata(path)
        .map(|m| m.len() > 0)
        .unwrap_or(false);
    if !exists {
        let writer = JournalWriter::create(path).map_err(|e| {
            CliError::fail(format!("cannot create journal {}: {e}", path.display()))
        })?;
        return Ok(Recovery {
            writer,
            completed: Vec::new(),
            resumes: Vec::new(),
            fresh: Vec::new(),
        });
    }
    let replay = replay_file(path)
        .map_err(|e| CliError::fail(format!("cannot read journal {}: {e}", path.display())))?;
    if let Some(reason) = &replay.torn {
        eprintln!(
            "marsit_serve: journal tail torn ({reason}); resuming from {} valid records",
            replay.records.len()
        );
    }
    let plan = plan_from_replay(&replay);
    for name in &plan.orphaned {
        eprintln!("marsit_serve: journal records for {name} have no submit record; dropped");
    }
    eprintln!(
        "marsit_serve: recovered: {} completed, {} resumable, {} fresh",
        plan.completed.len(),
        plan.resumes.len(),
        plan.fresh.len()
    );
    let writer = JournalWriter::resume(path, &replay)
        .map_err(|e| CliError::fail(format!("cannot resume journal {}: {e}", path.display())))?;
    Ok(Recovery {
        writer,
        completed: plan.completed,
        resumes: plan.resumes,
        fresh: plan.fresh,
    })
}

/// A finished job as the summary table wants it, whichever engine ran it.
struct Row {
    name: String,
    rounds: usize,
    shard_path: Vec<usize>,
    migrations: u32,
    detail: String,
}

fn render_rows(rows: &[Row], tail: &str) -> String {
    let mut lines = String::new();
    lines.push_str("name          rounds  shards(path)      migr  detail\n");
    for row in rows {
        let path: Vec<String> = row.shard_path.iter().map(usize::to_string).collect();
        lines.push_str(&format!(
            "{:<13} {:>6}  {:<17} {:>4}  {}\n",
            row.name,
            row.rounds,
            path.join("->"),
            row.migrations,
            row.detail
        ));
    }
    lines.push_str(tail);
    lines
}

/// Runs one admission-gated submission attempt per loop iteration,
/// honouring `RetryAfter` backpressure hints for a bounded window before
/// declaring the job rejected. The closure performs the actual submit and
/// returns the typed admission verdict.
fn submit_with_retry(
    name: &str,
    epoch: Instant,
    rejected: &mut Vec<String>,
    mut attempt: impl FnMut(u64) -> Result<(), AdmissionError>,
) {
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    loop {
        match attempt(now_ms(epoch)) {
            Ok(()) => return,
            Err(e) => {
                let hint = e.retry_after_ms();
                if hint == u64::MAX || Instant::now() >= deadline {
                    eprintln!("marsit_serve: job {name} rejected: {e}");
                    rejected.push(name.to_string());
                    return;
                }
                eprintln!("marsit_serve: job {name} deferred: {e}");
                std::thread::sleep(std::time::Duration::from_millis(hint.clamp(1, 1000)));
            }
        }
    }
}

#[allow(clippy::too_many_lines)]
fn real_main() -> Result<i32, CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--shard-worker") {
        return Ok(run_shard_worker(&args[1..]));
    }
    let opts = parse_options(&args)?;

    let queue = read_queue(opts.input.as_deref())?;
    let (mut specs, diagnostics) = parse_queue(&queue);
    if !diagnostics.is_empty() {
        for diag in &diagnostics {
            eprintln!("marsit_serve: {diag}");
        }
        return Err(CliError {
            message: format!(
                "{} malformed line(s) in the job queue; nothing submitted",
                diagnostics.len()
            ),
            code: EXIT_BAD_QUEUE,
        });
    }

    // Crash recovery: jobs the journal already knows about take their
    // journaled role; queue lines only introduce genuinely new jobs.
    let mut recovery = match &opts.journal_path {
        Some(path) => Some(open_journal(path)?),
        None => None,
    };
    if let Some(rec) = &recovery {
        let known: std::collections::HashSet<&str> = rec
            .completed
            .iter()
            .map(|o| o.spec.name.as_str())
            .chain(rec.resumes.iter().map(|r| r.spec.name.as_str()))
            .chain(rec.fresh.iter().map(|s| s.name.as_str()))
            .collect();
        specs.retain(|s| !known.contains(s.name.as_str()));
    }
    let recovered_done = recovery.as_ref().map_or(0, |r| r.completed.len());
    let total_jobs = specs.len()
        + recovery
            .as_ref()
            .map_or(0, |r| r.completed.len() + r.resumes.len() + r.fresh.len());
    if total_jobs == 0 {
        return Err(CliError {
            message: "job queue is empty".to_string(),
            code: EXIT_BAD_QUEUE,
        });
    }

    eprintln!(
        "marsit_serve: {} jobs over {} shards (tick {} rounds, migration {:?}{}{})",
        total_jobs,
        opts.shards,
        opts.tick.max(1),
        opts.migration,
        if opts.journal_path.is_some() {
            ", journaled"
        } else {
            ""
        },
        if opts.supervise {
            ", process-per-shard"
        } else {
            ""
        },
    );

    let epoch = Instant::now();
    let journal = recovery.take().map(|rec| {
        (
            Arc::new(Mutex::new(rec.writer)),
            rec.completed,
            rec.resumes,
            rec.fresh,
        )
    });
    let (journal_handle, completed_before, resumes, fresh) = match journal {
        Some((handle, completed, resumes, fresh)) => (Some(handle), completed, resumes, fresh),
        None => (None, Vec::new(), Vec::new(), Vec::new()),
    };

    let mut rejected: Vec<String> = Vec::new();
    let wall = Instant::now();
    let (mut rows, tail, verify_failures) = if opts.supervise {
        let mut cfg = SupervisorConfig::new(opts.shards);
        cfg.tick_rounds = opts.tick.max(1);
        cfg.snapshot_every_ticks = opts.snapshot_every;
        cfg.migration = opts.migration;
        let mut handle = SupervisorHandle::start(cfg, journal_handle.clone())
            .map_err(|e| CliError::fail(format!("cannot start supervisor: {e}")))?;
        let mut admission = admission_from(&opts);
        for resume in resumes {
            handle.submit_resume(resume);
        }
        for spec in fresh.into_iter().chain(specs) {
            let name = spec.name.clone();
            submit_with_retry(&name, epoch, &mut rejected, |now| {
                if let Some(adm) = admission.as_mut() {
                    adm.admit(&spec, now)?;
                }
                handle.submit(spec.clone());
                Ok(())
            });
        }
        let report = handle
            .finish()
            .map_err(|e| CliError::fail(format!("supervisor failed: {e}")))?;
        let wall_s = wall.elapsed().as_secs_f64();
        let mut failures = Vec::new();
        let all: Vec<&RecoveredOutcome> = completed_before
            .iter()
            .chain(report.outcomes.iter())
            .collect();
        if opts.verify {
            eprintln!("marsit_serve: verifying bit-exactness against solo runs...");
            for outcome in &all {
                if let Err(e) = verify_recovered(outcome) {
                    failures.push(format!("BIT-EXACTNESS VIOLATION: {e}"));
                }
            }
        }
        let rows: Vec<Row> = all
            .iter()
            .map(|o| Row {
                name: o.spec.name.clone(),
                rounds: o.spec.rounds,
                shard_path: o.shard_path.clone(),
                migrations: o.migrations,
                detail: o.report_debug.chars().take(24).collect(),
            })
            .collect();
        let tail = format!(
            "served {} jobs in {:.2}s ({:.1} jobs/s) | {} recovered | \
             shard deaths {} | restarts {} | migrations {}\n",
            all.len(),
            wall_s,
            report.outcomes.len() as f64 / wall_s.max(1e-9),
            recovered_done,
            report.shard_deaths,
            report.restarts,
            report.migrations,
        );
        (rows, tail, failures)
    } else {
        let mut cfg = ServeConfig::new(opts.shards);
        cfg.tick_rounds = opts.tick.max(1);
        cfg.migration = opts.migration;
        cfg.snapshot_every_ticks = opts.snapshot_every;
        let mut handle = match &journal_handle {
            Some(journal) => JobServer::start_journaled(cfg, Arc::clone(journal)),
            None => JobServer::start(cfg),
        };
        if let Some(admission) = admission_from(&opts) {
            handle.set_admission(admission);
        }
        for resume in resumes {
            handle.submit_resume(resume);
        }
        for spec in fresh.into_iter().chain(specs) {
            let name = spec.name.clone();
            submit_with_retry(&name, epoch, &mut rejected, |now| {
                handle.try_submit(spec.clone(), now)
            });
        }
        let report = handle.finish();
        let wall_s = wall.elapsed().as_secs_f64();
        let mut failures = Vec::new();
        if opts.verify {
            eprintln!("marsit_serve: verifying bit-exactness against solo runs...");
            for outcome in &completed_before {
                if let Err(e) = verify_recovered(outcome) {
                    failures.push(format!("BIT-EXACTNESS VIOLATION: {e}"));
                }
            }
            for outcome in &report.outcomes {
                if let Err(e) = verify_outcome(outcome) {
                    failures.push(format!("BIT-EXACTNESS VIOLATION: {e}"));
                }
            }
        }
        let mut rows: Vec<Row> = completed_before
            .iter()
            .map(|o| Row {
                name: o.spec.name.clone(),
                rounds: o.spec.rounds,
                shard_path: o.shard_path.clone(),
                migrations: o.migrations,
                detail: "(recovered)".to_string(),
            })
            .collect();
        for outcome in &report.outcomes {
            let loss = outcome
                .report
                .records
                .last()
                .map_or(f64::NAN, |r| r.train_loss);
            rows.push(Row {
                name: outcome.spec.name.clone(),
                rounds: outcome.spec.rounds,
                shard_path: outcome.shard_path.clone(),
                migrations: outcome.migrations,
                detail: format!("{loss:.6}"),
            });
        }
        let lat = report.round_latencies_sorted();
        let pool = report.pool_stats();
        let tail = format!(
            "served {} jobs in {:.2}s ({:.1} jobs/s) | {} recovered | peak {} in flight | \
             round p50/p99 {:.1}/{:.1} us | pool hits {}/{} | migrations {}\n",
            report.outcomes.len() + recovered_done,
            wall_s,
            report.outcomes.len() as f64 / wall_s.max(1e-9),
            recovered_done,
            report.peak_in_flight,
            quantile_ns(&lat, 0.5) as f64 / 1e3,
            quantile_ns(&lat, 0.99) as f64 / 1e3,
            pool.hits,
            pool.hits + pool.misses,
            report.migration_samples().len(),
        );
        (rows, tail, failures)
    };

    rows.sort_by(|a, b| a.name.cmp(&b.name));
    let lines = render_rows(&rows, &tail);
    print!("{lines}");
    if let Some(path) = &opts.out_path {
        std::fs::write(path, &lines)
            .map_err(|e| CliError::fail(format!("cannot write {path}: {e}")))?;
    }

    if !verify_failures.is_empty() {
        for failure in &verify_failures {
            eprintln!("marsit_serve: {failure}");
        }
        return Err(CliError {
            message: format!("{} bit-exactness violation(s)", verify_failures.len()),
            code: EXIT_VIOLATION,
        });
    }
    if opts.verify {
        eprintln!(
            "marsit_serve: all {} jobs byte-identical to solo runs",
            rows.len()
        );
    }
    if !rejected.is_empty() {
        return Err(CliError {
            message: format!(
                "{} job(s) rejected by admission control: {}",
                rejected.len(),
                rejected.join(", ")
            ),
            code: EXIT_REJECTED,
        });
    }
    Ok(EXIT_OK)
}

fn main() {
    match real_main() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("marsit_serve: error: {e}", e = e.message);
            std::process::exit(e.code);
        }
    }
}
