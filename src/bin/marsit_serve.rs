//! Marsit-as-a-service front end.
//!
//! Reads a submission queue of job-spec lines (one `key=value` line per
//! job — see `JobSpec::parse_line`) from a file or stdin, serves them
//! through the sharded scheduler, and prints one summary row per finished
//! job plus server-level throughput, pool, and migration counters.
//!
//! ```text
//! cargo run --release --bin marsit_serve -- jobs.txt \
//!     [--shards N] [--tick ROUNDS] [--migrate none|balance|seeded:SEED:PERMILLE] \
//!     [--verify] [--out PATH]
//! ```
//!
//! `--verify` re-runs every job solo after serving and hard-fails unless
//! the served report and telemetry log are byte-identical — the scheduler's
//! bit-exactness guarantee, checked end to end.

use std::io::Read as _;
use std::time::Instant;

use marsit::serve::{
    quantile_ns, verify_outcome, JobServer, JobSpec, MigrationPolicy, ServeConfig,
};

fn parse_migration(value: &str) -> Result<MigrationPolicy, String> {
    if value == "none" {
        return Ok(MigrationPolicy::None);
    }
    if value == "balance" {
        return Ok(MigrationPolicy::LoadBalance { skew: 2 });
    }
    if let Some(rest) = value.strip_prefix("seeded:") {
        let (seed, per_mille) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad --migrate (expected seeded:SEED:PERMILLE): {value}"))?;
        let seed = seed.parse().map_err(|_| format!("bad seed: {seed}"))?;
        let per_mille = per_mille
            .parse()
            .map_err(|_| format!("bad per-mille: {per_mille}"))?;
        return Ok(MigrationPolicy::Seeded { seed, per_mille });
    }
    Err(format!(
        "unknown --migrate policy (none|balance|seeded:SEED:PERMILLE): {value}"
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut shards = 4usize;
    let mut tick = 4usize;
    let mut migration = MigrationPolicy::None;
    let mut verify = false;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                i += 1;
                shards = args[i].parse().expect("--shards N");
            }
            "--tick" => {
                i += 1;
                tick = args[i].parse().expect("--tick ROUNDS");
            }
            "--migrate" => {
                i += 1;
                migration = parse_migration(&args[i]).unwrap_or_else(|e| panic!("{e}"));
            }
            "--verify" => verify = true,
            "--out" => {
                i += 1;
                out_path = Some(args[i].clone());
            }
            flag if flag.starts_with("--") => panic!("unknown flag: {flag}"),
            path => input = Some(path.to_string()),
        }
        i += 1;
    }

    let queue = match input.as_deref() {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read job queue {path}: {e}")),
        None => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .expect("read job queue from stdin");
            text
        }
    };
    let specs: Vec<JobSpec> = queue
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| JobSpec::parse_line(l).unwrap_or_else(|e| panic!("bad job spec: {e}")))
        .collect();
    assert!(!specs.is_empty(), "job queue is empty");

    let mut cfg = ServeConfig::new(shards);
    cfg.tick_rounds = tick.max(1);
    cfg.migration = migration;
    eprintln!(
        "marsit_serve: {} jobs over {} shards (tick {} rounds, migration {:?})",
        specs.len(),
        cfg.shards,
        cfg.tick_rounds,
        cfg.migration
    );

    let wall = Instant::now();
    let mut handle = JobServer::start(cfg);
    for spec in specs {
        handle.submit(spec);
    }
    let report = handle.finish();
    let wall_s = wall.elapsed().as_secs_f64();

    let mut lines = String::new();
    lines.push_str("name          rounds  shards(path)      migr  final_loss\n");
    for outcome in &report.outcomes {
        let path: Vec<String> = outcome.shard_path.iter().map(usize::to_string).collect();
        let loss = outcome
            .report
            .records
            .last()
            .map_or(f64::NAN, |r| r.train_loss);
        lines.push_str(&format!(
            "{:<13} {:>6}  {:<17} {:>4}  {:.6}\n",
            outcome.spec.name,
            outcome.spec.rounds,
            path.join("->"),
            outcome.migrations,
            loss
        ));
    }
    let lat = report.round_latencies_sorted();
    let pool = report.pool_stats();
    lines.push_str(&format!(
        "served {} jobs in {:.2}s ({:.1} jobs/s) | peak {} in flight | \
         round p50/p99 {:.1}/{:.1} us | pool hits {}/{} | migrations {}\n",
        report.outcomes.len(),
        wall_s,
        report.outcomes.len() as f64 / wall_s,
        report.peak_in_flight,
        quantile_ns(&lat, 0.5) as f64 / 1e3,
        quantile_ns(&lat, 0.99) as f64 / 1e3,
        pool.hits,
        pool.hits + pool.misses,
        report.migration_samples().len(),
    ));
    print!("{lines}");
    if let Some(path) = out_path {
        std::fs::write(&path, &lines).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }

    if verify {
        eprintln!("marsit_serve: verifying bit-exactness against solo runs...");
        for outcome in &report.outcomes {
            verify_outcome(outcome).unwrap_or_else(|e| panic!("BIT-EXACTNESS VIOLATION: {e}"));
        }
        eprintln!(
            "marsit_serve: all {} jobs byte-identical to solo runs",
            report.outcomes.len()
        );
    }
}
