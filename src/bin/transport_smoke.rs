//! CI smoke for the multi-process transport backend.
//!
//! Launches a short ring(4) one-bit all-reduce with one OS process per rank
//! (re-execs of this binary speaking `marsit-wire/1` over localhost TCP),
//! asserts the consensus words and `⊙`/RNG-draw counters match the
//! deterministic simulator bit-for-bit, and writes the run's telemetry
//! JSONL — hop events tagged `backend:"process"` — for schema validation by
//! `telemetry_report --validate`.
//!
//! Then exercises the distributed-tracing stack end to end:
//!
//! - a collector-enabled run whose per-rank trace batches merge into one
//!   causally-ordered log (schema-validated here and written to
//!   `--trace-out` for `telemetry_report --validate` / `marsit_top` in CI),
//!   with zero health events on the clean schedule;
//! - a run with rank 2 slowed 2.5× that must raise `StragglerSuspected`
//!   for exactly that rank;
//! - a collector-disabled run that must put exactly zero side-channel
//!   bytes on the wire (hard failure otherwise).
//!
//! ```text
//! cargo run --release --bin transport_smoke [-- --out PATH] [--trace-out PATH]
//! ```

use marsit::core::transport::{Scenario, TraceRunConfig};
use marsit::core::{CombineKind, TopoKind};
use marsit::telemetry::health::HealthEvent;
use marsit::telemetry::report::validate;
use marsit::telemetry::{scoped, Telemetry};

fn main() {
    // A copy of this binary doubles as one rank of the process backend; the
    // worker environment routes it there.
    if marsit::core::transport::maybe_run_worker_from_env() {
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("transport_smoke.jsonl", String::as_str);
    let trace_out_path = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .map_or("transport_smoke.trace.jsonl", String::as_str);

    let exe = std::env::current_exe().expect("current exe");
    let sc = Scenario {
        topo: TopoKind::Ring,
        world: 4,
        d: 2048,
        seed: 0x0051_10BE,
        round: 1,
        drop_p: Some(0.1),
        combine: CombineKind::Weighted,
    };
    let reference = sc.run_simulator().expect("simulator reference");

    let tel = Telemetry::recording();
    tel.set_time(0.0);
    tel.emit(
        "run_meta",
        vec![
            ("schema", "marsit-telemetry/1".into()),
            ("seed", sc.seed.into()),
            ("strategy", "transport_smoke".into()),
            ("topology", sc.topo.encode().into()),
            ("workers", sc.world.into()),
            ("d", sc.d.into()),
            ("rounds", 1usize.into()),
        ],
    );
    let process = scoped(&tel, || {
        sc.run_process(exe.to_str().expect("utf-8 exe path"))
            .expect("process round")
    });

    assert_eq!(
        reference.consensus_words(),
        process.consensus_words(),
        "process consensus diverged from the simulator"
    );
    assert_eq!(reference.combines, process.combines, "combine count");
    assert_eq!(reference.rng_draws, process.rng_draws, "rng draws");
    let jsonl = tel.events_jsonl();
    assert!(
        jsonl.contains("\"backend\":\"process\""),
        "hop events must carry the process transport tag"
    );

    std::fs::write(out_path, jsonl).expect("write telemetry");
    println!(
        "process ring({}) matched the simulator bit-for-bit ({} consensus words, {} combines); \
         {} events -> {out_path}",
        sc.world,
        process.consensus_words().len(),
        process.combines,
        tel.event_count(),
    );

    // --- Distributed tracing: collector-enabled clean run. ---
    //
    // The traced scenario drops nothing: a clean schedule keeps every rank's
    // per-round seq windows identical, which the merge and the detector's
    // first-step attribution both rely on.
    let traced_sc = Scenario { drop_p: None, ..sc };
    let exe_str = exe.to_str().expect("utf-8 exe path");
    let clean = traced_sc
        .run_process_traced(
            exe_str,
            TraceRunConfig {
                rounds: 3,
                compute_ns: 5_000_000,
                straggler: None,
                collect: true,
            },
        )
        .expect("traced clean run");
    assert!(
        clean.side_channel_bytes > 0,
        "collector enabled but saw no side-channel traffic"
    );
    assert_eq!(
        validate(&clean.merged),
        Vec::<String>::new(),
        "merged trace violates the telemetry schema"
    );
    assert_eq!(
        clean.merged[0].name, "run_meta",
        "merge must lead with run_meta"
    );
    let hop_seqs: Vec<u64> = clean
        .merged
        .iter()
        .filter(|e| e.name == "hop")
        .map(|e| e.u64_field("seq").expect("hop has seq"))
        .collect();
    assert!(
        hop_seqs.windows(2).all(|w| w[0] <= w[1]),
        "merged hops out of causal order"
    );
    assert!(
        clean.health.is_empty(),
        "false health positives on a clean run: {:?}",
        clean.health
    );
    let mut trace_jsonl = String::new();
    for ev in &clean.merged {
        ev.write_jsonl(&mut trace_jsonl);
        trace_jsonl.push('\n');
    }
    std::fs::write(trace_out_path, trace_jsonl).expect("write merged trace");
    println!(
        "traced ring({}) x3 rounds: {} merged events, {} hops causally ordered, \
         {} side-channel bytes, 0 health events -> {trace_out_path}",
        traced_sc.world,
        clean.merged.len(),
        hop_seqs.len(),
        clean.side_channel_bytes,
    );

    // --- Straggler injection: rank 2 computes 2.5x slower. ---
    let slow_rank = 2;
    let straggled = traced_sc
        .run_process_traced(
            exe_str,
            TraceRunConfig {
                rounds: 6,
                compute_ns: 20_000_000,
                straggler: Some((slow_rank, 2.5)),
                collect: true,
            },
        )
        .expect("traced straggler run");
    let mut suspected = 0u64;
    for ev in &straggled.health {
        match ev {
            HealthEvent::StragglerSuspected { rank, .. } => {
                assert_eq!(*rank, slow_rank, "wrong rank suspected: {ev:?}");
                suspected += 1;
            }
            other => panic!("unexpected health event on localhost: {other:?}"),
        }
    }
    assert!(suspected > 0, "injected 2.5x straggler went undetected");
    assert_eq!(straggled.fault_stats.stragglers_suspected, suspected);
    println!(
        "straggler ring({}) x6 rounds: rank {slow_rank} at 2.5x flagged {suspected} time(s), \
         no false positives",
        traced_sc.world,
    );

    // --- Collector disabled: the side channel must be silent. ---
    let disabled = traced_sc
        .run_process_traced(
            exe_str,
            TraceRunConfig {
                rounds: 2,
                compute_ns: 0,
                straggler: None,
                collect: false,
            },
        )
        .expect("collector-disabled run");
    assert_eq!(
        disabled.side_channel_bytes, 0,
        "tracing disabled but {} bytes leaked onto the wire",
        disabled.side_channel_bytes
    );
    assert!(
        disabled.merged.is_empty(),
        "disabled collector produced a trace"
    );
    println!(
        "collector off: 0 side-channel bytes across {} rounds (hard-checked)",
        2
    );
}
