//! CI smoke for the multi-process transport backend.
//!
//! Launches a short ring(4) one-bit all-reduce with one OS process per rank
//! (re-execs of this binary speaking `marsit-wire/1` over localhost TCP),
//! asserts the consensus words and `⊙`/RNG-draw counters match the
//! deterministic simulator bit-for-bit, and writes the run's telemetry
//! JSONL — hop events tagged `backend:"process"` — for schema validation by
//! `telemetry_report --validate`.
//!
//! ```text
//! cargo run --release --bin transport_smoke [-- --out PATH]
//! ```

use marsit::core::transport::Scenario;
use marsit::core::{CombineKind, TopoKind};
use marsit::telemetry::{scoped, Telemetry};

fn main() {
    // A copy of this binary doubles as one rank of the process backend; the
    // worker environment routes it there.
    if marsit::core::transport::maybe_run_worker_from_env() {
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("transport_smoke.jsonl", String::as_str);

    let exe = std::env::current_exe().expect("current exe");
    let sc = Scenario {
        topo: TopoKind::Ring,
        world: 4,
        d: 2048,
        seed: 0x0051_10BE,
        round: 1,
        drop_p: Some(0.1),
        combine: CombineKind::Weighted,
    };
    let reference = sc.run_simulator().expect("simulator reference");

    let tel = Telemetry::recording();
    tel.set_time(0.0);
    tel.emit(
        "run_meta",
        vec![
            ("schema", "marsit-telemetry/1".into()),
            ("seed", sc.seed.into()),
            ("strategy", "transport_smoke".into()),
            ("topology", sc.topo.encode().into()),
            ("workers", sc.world.into()),
            ("d", sc.d.into()),
            ("rounds", 1usize.into()),
        ],
    );
    let process = scoped(&tel, || {
        sc.run_process(exe.to_str().expect("utf-8 exe path"))
            .expect("process round")
    });

    assert_eq!(
        reference.consensus_words(),
        process.consensus_words(),
        "process consensus diverged from the simulator"
    );
    assert_eq!(reference.combines, process.combines, "combine count");
    assert_eq!(reference.rng_draws, process.rng_draws, "rng draws");
    let jsonl = tel.events_jsonl();
    assert!(
        jsonl.contains("\"backend\":\"process\""),
        "hop events must carry the process transport tag"
    );

    std::fs::write(out_path, jsonl).expect("write telemetry");
    println!(
        "process ring({}) matched the simulator bit-for-bit ({} consensus words, {} combines); \
         {} events -> {out_path}",
        sc.world,
        process.consensus_words().len(),
        process.combines,
        tel.event_count(),
    );
}
