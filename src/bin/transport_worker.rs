//! One rank of the multi-process transport backend.
//!
//! The conformance driver ([`marsit::core::transport::Scenario::run_process`])
//! and the chaos-soak process mode spawn this binary once per rank with the
//! `MARSIT_TW_*` environment describing the hub address and the pinned
//! scenario; it serves `round` frames over `marsit-wire/1` until `stop`.
//!
//! Run a hub-less smoke check by launching without the environment: the
//! binary explains itself and exits nonzero.

fn main() {
    if marsit::core::transport::maybe_run_worker_from_env() {
        return;
    }
    eprintln!(
        "transport_worker is launched by the marsit process-backend driver; \
         it needs the MARSIT_TW_* environment (see marsit_core::transport)."
    );
    std::process::exit(2);
}
