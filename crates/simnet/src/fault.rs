//! Deterministic fault injection for the simulated fabric.
//!
//! The paper's cluster results assume a fault-free network; this module adds
//! the failure modes a real multi-hop deployment sees — dropped transfers,
//! detected payload corruption, stragglers, and whole-worker crashes — while
//! keeping every run bit-reproducible under a fixed seed.
//!
//! The model:
//!
//! - **Drops** (`link_drop_prob`): a transfer vanishes; the sender times out
//!   after [`FaultPlan::retry_timeout_s`] and retransmits, up to
//!   [`FaultPlan::max_retries`] retries. A transfer whose retry budget is
//!   exhausted is a *permanent omission*: the receiver simply never folds that
//!   contribution in (the collectives keep explicit aggregation counts so the
//!   `⊙` combine stays unbiased over what actually arrived).
//! - **Corruption** (`link_corrupt_prob`): the payload arrives but fails its
//!   checksum, so the receiver discards it and the sender retransmits exactly
//!   as for a drop. Delivered payloads are therefore always correct — detected
//!   corruption costs time, never accuracy.
//! - **Stragglers** (`stragglers`): listed workers run their local compute
//!   phase at a `≥ 1×` delay multiplier; the synchronous round waits for the
//!   slowest worker, so [`FaultPlan::compute_multiplier`] scales the round's
//!   compute time.
//! - **Membership** (`membership`): a [`MembershipSchedule`] of
//!   `Crash { worker, round }` and `Rejoin { worker, round }` events —
//!   arbitrarily many of each. A worker's liveness at round `t` is decided by
//!   its latest event with `round ≤ t` (later-listed events win ties); workers
//!   with no applicable event are live. The collectives re-form over whatever
//!   live set results (torus degrades to a survivor ring, rings re-expand on
//!   rejoin, a lone survivor runs a degenerate local-only round). The legacy
//!   single-crash field (`crash`) is kept as a deprecated convenience that
//!   desugars into the same event model.
//!
//! Determinism: a [`FaultInjector`] is constructed per round from
//! `(plan.seed, round)` and consumes randomness in transfer-issue order,
//! which the collective schedules fix. Same plan + same seed ⇒ byte-identical
//! traces, stats, and training reports. [`FaultPlan::none`] short-circuits
//! every draw, so a fault-free plan leaves the clean code paths untouched.

use serde::{Deserialize, Serialize};

/// One membership-change event in a [`MembershipSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipEvent {
    /// `worker` is dead from the start of `round` (0-based) onward, until a
    /// later `Rejoin` revives it.
    Crash {
        /// Worker index.
        worker: usize,
        /// First round the worker is absent.
        round: u64,
    },
    /// `worker` is live again from the start of `round` onward. The sync
    /// layer treats this as a restore from the last full-precision barrier
    /// plus a reliable catch-up transfer (priced by the trainer).
    Rejoin {
        /// Worker index.
        worker: usize,
        /// First round the worker is back.
        round: u64,
    },
}

impl MembershipEvent {
    /// The worker this event concerns.
    #[must_use]
    pub fn worker(&self) -> usize {
        match *self {
            Self::Crash { worker, .. } | Self::Rejoin { worker, .. } => worker,
        }
    }

    /// The round this event takes effect (at the start of).
    #[must_use]
    pub fn round(&self) -> u64 {
        match *self {
            Self::Crash { round, .. } | Self::Rejoin { round, .. } => round,
        }
    }

    /// Whether the affected worker is live after this event.
    #[must_use]
    pub fn live(&self) -> bool {
        matches!(self, Self::Rejoin { .. })
    }
}

/// An ordered list of crash/rejoin events describing elastic membership.
///
/// Liveness of worker `w` at round `t` is decided by `w`'s latest applicable
/// event (`round ≤ t`); among events with the same round, the one listed
/// later wins. Workers with no applicable event are live — an empty schedule
/// means full membership forever.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MembershipSchedule {
    /// The events, in declaration order.
    pub events: Vec<MembershipEvent>,
}

impl MembershipSchedule {
    /// The empty schedule: every worker live in every round.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the schedule contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends a crash event.
    #[must_use]
    pub fn crash(mut self, worker: usize, round: u64) -> Self {
        self.events.push(MembershipEvent::Crash { worker, round });
        self
    }

    /// Appends a rejoin event.
    #[must_use]
    pub fn rejoin(mut self, worker: usize, round: u64) -> Self {
        self.events.push(MembershipEvent::Rejoin { worker, round });
        self
    }

    /// Whether `worker` is live during `round` under this schedule alone.
    #[must_use]
    pub fn is_live(&self, worker: usize, round: u64) -> bool {
        let mut live = true;
        let mut best: Option<u64> = None;
        for ev in &self.events {
            if ev.worker() == worker && ev.round() <= round && best.is_none_or(|b| ev.round() >= b)
            {
                best = Some(ev.round());
                live = ev.live();
            }
        }
        live
    }

    /// Generates a seeded random storm of `crashes + rejoins` events over
    /// `[1, rounds)`, guaranteed to keep at least two workers live at every
    /// round (so no storm ever empties the cluster, and consensus remains
    /// meaningful). Deterministic in `(seed, m, rounds, crashes, rejoins)`.
    ///
    /// # Panics
    ///
    /// Panics if `m < 3` (a storm needs room to crash somebody while keeping
    /// two live) or `rounds < 2`.
    #[must_use]
    pub fn storm(seed: u64, m: usize, rounds: u64, crashes: usize, rejoins: usize) -> Self {
        assert!(m >= 3, "storm needs at least 3 workers");
        assert!(rounds >= 2, "storm needs at least 2 rounds");
        // Self-contained SplitMix64 → xorshift64* chain, mirroring the
        // injector's derivation so the schedule is reproducible everywhere.
        let mut z = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut state = (z ^ (z >> 31)) | 1;
        let mut next = move |n: u64| -> u64 {
            let mut x = state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            state = x;
            ((u128::from(x.wrapping_mul(0x2545_F491_4F6C_DD1D)) * u128::from(n)) >> 64) as u64
        };
        let mut live: Vec<bool> = vec![true; m];
        let mut schedule = Self::none();
        let (mut crashes_left, mut rejoins_left) = (crashes, rejoins);
        let total = (crashes + rejoins) as u64;
        // Monotone event rounds spread across the window, so the liveness
        // simulation below walks the storm in causal order.
        let stride = ((rounds - 1) / (total + 1)).max(1);
        let mut round = 0u64;
        while crashes_left + rejoins_left > 0 {
            round = (round + 1 + next(stride)).min(rounds - 1);
            let live_count = live.iter().filter(|&&l| l).count();
            let dead: Vec<usize> = (0..m).filter(|&w| !live[w]).collect();
            let want_rejoin = rejoins_left > 0 && !dead.is_empty() && next(2) == 0;
            let must_rejoin = crashes_left == 0 || live_count <= 2;
            if (want_rejoin || must_rejoin) && !dead.is_empty() && rejoins_left > 0 {
                let w = dead[next(dead.len() as u64) as usize];
                live[w] = true;
                schedule = schedule.rejoin(w, round);
                rejoins_left -= 1;
            } else if crashes_left > 0 && live_count > 2 {
                let alive: Vec<usize> = (0..m).filter(|&w| live[w]).collect();
                let w = alive[next(alive.len() as u64) as usize];
                live[w] = false;
                schedule = schedule.crash(w, round);
                crashes_left -= 1;
            } else {
                // Nothing legal to schedule (e.g. rejoins requested with no
                // dead workers and no crashes left): drop the remainder.
                break;
            }
        }
        schedule
    }
}

/// Declarative description of the faults to inject into a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault RNG (independent of the training seed).
    pub seed: u64,
    /// Per-transfer probability that the payload is dropped in flight.
    pub link_drop_prob: f64,
    /// Per-transfer probability that the payload arrives corrupted (and is
    /// detected by checksum, triggering a retransmit).
    pub link_corrupt_prob: f64,
    /// `(worker, multiplier)` pairs: each worker's compute phase runs
    /// `multiplier ≥ 1` times slower.
    pub stragglers: Vec<(usize, f64)>,
    /// `(worker, round)`: the worker crashes permanently at the start of
    /// `round` (0-based) and is excluded from every later round.
    ///
    /// Deprecated single-crash convenience, kept so pre-elastic configs and
    /// tests keep compiling; it participates in [`FaultPlan::live_at`]
    /// exactly as a leading `MembershipEvent::Crash` would. New code should
    /// use [`FaultPlan::with_membership`] (or the crash/rejoin builders).
    pub crash: Option<(usize, u64)>,
    /// Elastic-membership schedule: any number of crash and rejoin events.
    pub membership: MembershipSchedule,
    /// Retransmissions attempted after the first failed try before the
    /// transfer is abandoned as a permanent omission.
    pub max_retries: u32,
    /// Simulated seconds the sender waits before each retransmission
    /// (the loss-detection timeout).
    pub retry_timeout_s: f64,
}

impl FaultPlan {
    /// The fault-free plan: no drops, no corruption, no stragglers, no crash.
    ///
    /// Runs configured with this plan are byte-identical to runs that predate
    /// the fault layer.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            link_drop_prob: 0.0,
            link_corrupt_prob: 0.0,
            stragglers: Vec::new(),
            crash: None,
            membership: MembershipSchedule::none(),
            max_retries: 3,
            retry_timeout_s: 2e-4,
        }
    }

    /// Whether this plan injects any fault at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.link_drop_prob == 0.0
            && self.link_corrupt_prob == 0.0
            && self.stragglers.is_empty()
            && self.crash.is_none()
            && self.membership.is_empty()
    }

    /// Fault-free plan with a specific RNG seed (useful as a builder root).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::none()
        }
    }

    /// Sets the per-transfer drop probability. `p = 1.0` is allowed: every
    /// best-effort transfer is then a permanent omission and every reliable
    /// transfer a forced delivery.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[must_use]
    pub fn with_link_drop(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0, 1]"
        );
        self.link_drop_prob = p;
        self
    }

    /// Sets the per-transfer detected-corruption probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[must_use]
    pub fn with_link_corruption(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "corruption probability must be in [0, 1]"
        );
        self.link_corrupt_prob = p;
        self
    }

    /// Adds a straggler running its compute phase `multiplier` times slower.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier < 1`.
    #[must_use]
    pub fn with_straggler(mut self, worker: usize, multiplier: f64) -> Self {
        assert!(multiplier >= 1.0, "straggler multiplier must be >= 1");
        self.stragglers.push((worker, multiplier));
        self
    }

    /// Schedules `worker` to crash permanently at the start of `round`.
    ///
    /// Deprecated convenience: this is the pre-elastic single-crash API,
    /// retained so existing plans stay byte-identical. It desugars into the
    /// event model — `with_crash(w, r)` and
    /// `with_membership(MembershipSchedule::none().crash(w, r))` describe
    /// the same liveness trajectory.
    #[must_use]
    pub fn with_crash(mut self, worker: usize, round: u64) -> Self {
        self.crash = Some((worker, round));
        self
    }

    /// Replaces the elastic-membership schedule.
    #[must_use]
    pub fn with_membership(mut self, schedule: MembershipSchedule) -> Self {
        self.membership = schedule;
        self
    }

    /// Appends a crash event to the membership schedule.
    #[must_use]
    pub fn with_crash_event(mut self, worker: usize, round: u64) -> Self {
        self.membership = self.membership.crash(worker, round);
        self
    }

    /// Appends a rejoin event to the membership schedule.
    #[must_use]
    pub fn with_rejoin(mut self, worker: usize, round: u64) -> Self {
        self.membership = self.membership.rejoin(worker, round);
        self
    }

    /// Sets the retry budget and loss-detection timeout.
    ///
    /// # Panics
    ///
    /// Panics if `timeout_s` is negative.
    #[must_use]
    pub fn with_retry_policy(mut self, max_retries: u32, timeout_s: f64) -> Self {
        assert!(timeout_s >= 0.0, "retry timeout must be non-negative");
        self.max_retries = max_retries;
        self.retry_timeout_s = timeout_s;
        self
    }

    /// The worker the *legacy* single-crash field kills during `round`, if
    /// any. Deprecated alongside [`FaultPlan::crash`]; elastic callers should
    /// use [`FaultPlan::live_at`] / [`FaultPlan::live_set`], which also see
    /// the membership schedule.
    #[must_use]
    pub fn crashed_at(&self, round: u64) -> Option<usize> {
        match self.crash {
            Some((w, r)) if round >= r => Some(w),
            _ => None,
        }
    }

    /// Whether `worker` is live during `round`, merging the legacy crash
    /// field (treated as a leading `Crash` event) with the membership
    /// schedule: the latest applicable event wins, later entries break ties,
    /// no applicable event means live.
    #[must_use]
    pub fn live_at(&self, worker: usize, round: u64) -> bool {
        let mut live = true;
        let mut best: Option<u64> = None;
        let legacy = self.crash.map(|(w, r)| MembershipEvent::Crash {
            worker: w,
            round: r,
        });
        for ev in legacy.iter().chain(&self.membership.events) {
            if ev.worker() == worker && ev.round() <= round && best.is_none_or(|b| ev.round() >= b)
            {
                best = Some(ev.round());
                live = ev.live();
            }
        }
        live
    }

    /// The sorted live set among workers `0..m` during `round`.
    #[must_use]
    pub fn live_set(&self, m: usize, round: u64) -> Vec<usize> {
        (0..m).filter(|&w| self.live_at(w, round)).collect()
    }

    /// Workers that are live at `round` but were dead at `round − 1` (empty
    /// at round 0 — nobody can rejoin a run that has not started).
    #[must_use]
    pub fn rejoined_at(&self, m: usize, round: u64) -> Vec<usize> {
        if round == 0 {
            return Vec::new();
        }
        (0..m)
            .filter(|&w| self.live_at(w, round) && !self.live_at(w, round - 1))
            .collect()
    }

    /// Whether the live set at `round` differs from the previous round's
    /// (round 0 compares against full membership), i.e. whether the topology
    /// must be re-formed at the start of `round`.
    #[must_use]
    pub fn membership_changed_at(&self, m: usize, round: u64) -> bool {
        let now = self.live_set(m, round);
        if round == 0 {
            now.len() < m
        } else {
            now != self.live_set(m, round - 1)
        }
    }

    /// Compute-time multiplier for `round`: the slowest live straggler (the
    /// synchronous round waits for it). Always `≥ 1`.
    #[must_use]
    pub fn compute_multiplier(&self, round: u64) -> f64 {
        self.stragglers
            .iter()
            .filter(|&&(w, _)| self.live_at(w, round))
            .map(|&(_, mult)| mult)
            .fold(1.0, f64::max)
    }

    /// Builds the deterministic per-round injector.
    #[must_use]
    pub fn injector(&self, round: u64) -> FaultInjector {
        FaultInjector::for_round(self, round)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Counters describing what the fault layer did during a round (or a whole
/// run — counters add with [`FaultStats::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Retransmissions performed (each adds wire traffic and timeout wait).
    pub retransmits: u64,
    /// Transfers abandoned after exhausting the retry budget (permanent
    /// omissions — the receiver never folded that contribution in).
    pub dropped_transfers: u64,
    /// Transfers that arrived corrupted and were detected by checksum.
    pub corrupted_transfers: u64,
    /// Topology repair events (e.g. torus → survivor ring after a crash).
    pub repairs: u64,
    /// Workers permanently crashed so far.
    pub crashed_workers: u64,
    /// Reliable transfers escalated past the retry budget and forced through
    /// (the fabric's last-resort delivery on gather/broadcast phases).
    pub forced_deliveries: u64,
    /// Workers that rejoined the live set (each one is a restore from the
    /// last full-precision barrier plus a catch-up transfer).
    pub rejoins: u64,
    /// Extra simulated seconds spent on retransmissions (timeout waits plus,
    /// when priced by the trainer, the repeated α–β transfer cost).
    pub retry_extra_s: f64,
    /// Extra simulated seconds spent on rejoin catch-up transfers (full
    /// model state over the α–β link, priced by the trainer).
    pub catchup_extra_s: f64,
    /// `StragglerSuspected` health events raised by the online detector.
    /// Observational only: kept out of `marsit-checkpoint/1` snapshots
    /// (restores start them at 0) so the pinned snapshot format is
    /// unchanged.
    pub stragglers_suspected: u64,
    /// `LinkDegraded` health events raised by the online detector
    /// (observational; not serialized in snapshots).
    pub links_degraded: u64,
    /// `RankSilent` health events raised by the online detector
    /// (observational; not serialized in snapshots).
    pub ranks_silent: u64,
}

impl FaultStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.retransmits += other.retransmits;
        self.dropped_transfers += other.dropped_transfers;
        self.corrupted_transfers += other.corrupted_transfers;
        self.repairs += other.repairs;
        self.crashed_workers = self.crashed_workers.max(other.crashed_workers);
        self.forced_deliveries += other.forced_deliveries;
        self.rejoins += other.rejoins;
        self.retry_extra_s += other.retry_extra_s;
        self.catchup_extra_s += other.catchup_extra_s;
        self.stragglers_suspected += other.stragglers_suspected;
        self.links_degraded += other.links_degraded;
        self.ranks_silent += other.ranks_silent;
    }

    /// Whether nothing fault-related happened.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Outcome of one logical transfer under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferFate {
    /// Total wire attempts made (1 when fault-free).
    pub attempts: u32,
    /// Whether the payload ultimately arrived intact.
    pub delivered: bool,
}

impl TransferFate {
    /// The fault-free outcome: one attempt, delivered.
    #[must_use]
    pub fn clean() -> Self {
        Self {
            attempts: 1,
            delivered: true,
        }
    }
}

/// Per-round fault source. Construct with [`FaultPlan::injector`]; call
/// [`FaultInjector::transfer`] (or [`FaultInjector::transfer_reliable`]) once
/// per logical transfer, in schedule order.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
    drop_p: f64,
    corrupt_p: f64,
    max_attempts: u32,
    retry_timeout_s: f64,
    active: bool,
    stats: FaultStats,
}

impl FaultInjector {
    /// Injector for `round`, seeded from `(plan.seed, round)`.
    #[must_use]
    pub fn for_round(plan: &FaultPlan, round: u64) -> Self {
        // SplitMix64 finalizer over (seed, round) — independent streams per
        // round, so inserting a round never perturbs another round's faults.
        let mut z = plan
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(round.wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(0x2545_F491_4F6C_DD1D);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self {
            state: (z ^ (z >> 31)) | 1,
            drop_p: plan.link_drop_prob,
            corrupt_p: plan.link_corrupt_prob,
            max_attempts: 1 + plan.max_retries,
            retry_timeout_s: plan.retry_timeout_s,
            active: plan.link_drop_prob > 0.0 || plan.link_corrupt_prob > 0.0,
            stats: FaultStats::default(),
        }
    }

    /// Injector that never faults (used for clean comparison paths).
    #[must_use]
    pub fn inert() -> Self {
        Self::for_round(&FaultPlan::none(), 0)
    }

    #[inline]
    fn next_f64(&mut self) -> f64 {
        // xorshift64* — cheap, deterministic, and self-contained.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One best-effort transfer: retried on drop/corruption up to the retry
    /// budget, then abandoned (`delivered == false`, a permanent omission).
    pub fn transfer(&mut self) -> TransferFate {
        if !self.active {
            return TransferFate::clean();
        }
        let mut attempts = 1u32;
        loop {
            let dropped = self.next_f64() < self.drop_p;
            let corrupted = !dropped && self.next_f64() < self.corrupt_p;
            if !dropped && !corrupted {
                return TransferFate {
                    attempts,
                    delivered: true,
                };
            }
            if corrupted {
                self.stats.corrupted_transfers += 1;
            }
            if attempts >= self.max_attempts {
                self.stats.dropped_transfers += 1;
                return TransferFate {
                    attempts,
                    delivered: false,
                };
            }
            attempts += 1;
            self.stats.retransmits += 1;
            self.stats.retry_extra_s += self.retry_timeout_s;
        }
    }

    /// One reliable (ACKed) transfer: retried like [`FaultInjector::transfer`]
    /// but never abandoned — after the retry budget the fabric escalates and
    /// the final attempt is forced through. Used for gather/broadcast phases,
    /// where an omission would leave replicas inconsistent.
    pub fn transfer_reliable(&mut self) -> TransferFate {
        if !self.active {
            return TransferFate::clean();
        }
        let mut attempts = 1u32;
        loop {
            if attempts >= self.max_attempts {
                // Retry budget exhausted: the fabric escalates and forces
                // this attempt through without consulting the link RNG (the
                // draw sequence matches the pre-escalation implementation).
                self.stats.forced_deliveries += 1;
                return TransferFate {
                    attempts,
                    delivered: true,
                };
            }
            let dropped = self.next_f64() < self.drop_p;
            let corrupted = !dropped && self.next_f64() < self.corrupt_p;
            if !dropped && !corrupted {
                return TransferFate {
                    attempts,
                    delivered: true,
                };
            }
            if corrupted {
                self.stats.corrupted_transfers += 1;
            }
            attempts += 1;
            self.stats.retransmits += 1;
            self.stats.retry_extra_s += self.retry_timeout_s;
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Takes the accumulated counters, resetting them to zero.
    pub fn take_stats(&mut self) -> FaultStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none_and_clean() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert_eq!(plan.compute_multiplier(0), 1.0);
        assert_eq!(plan.crashed_at(123), None);
        let mut inj = plan.injector(7);
        for _ in 0..100 {
            assert_eq!(inj.transfer(), TransferFate::clean());
            assert_eq!(inj.transfer_reliable(), TransferFate::clean());
        }
        assert!(inj.stats().is_clean());
    }

    #[test]
    fn injector_is_deterministic_per_round() {
        let plan = FaultPlan::seeded(42)
            .with_link_drop(0.3)
            .with_link_corruption(0.1);
        let run = |round| {
            let mut inj = plan.injector(round);
            let fates: Vec<_> = (0..200).map(|_| inj.transfer()).collect();
            (fates, inj.stats())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0, "rounds draw independent streams");
    }

    #[test]
    fn drop_rate_matches_probability() {
        let plan = FaultPlan::seeded(7)
            .with_link_drop(0.2)
            .with_retry_policy(0, 1e-4);
        let mut inj = plan.injector(0);
        let n = 50_000;
        let failures = (0..n).filter(|_| !inj.transfer().delivered).count();
        let rate = failures as f64 / f64::from(n);
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
        assert_eq!(inj.stats().dropped_transfers, u64::from(failures as u32));
        assert_eq!(inj.stats().retransmits, 0, "zero retries configured");
    }

    #[test]
    fn retries_mostly_recover_and_are_counted() {
        let plan = FaultPlan::seeded(9)
            .with_link_drop(0.3)
            .with_retry_policy(8, 1e-4);
        let mut inj = plan.injector(0);
        let n = 10_000;
        let delivered = (0..n).filter(|_| inj.transfer().delivered).count();
        // P(9 consecutive drops) = 0.3^9 ≈ 2e-5.
        assert!(delivered >= n - 5, "delivered {delivered}/{n}");
        let stats = inj.stats();
        assert!(stats.retransmits > 2_000, "expected ~30% retransmit rate");
        let expected_wait = stats.retransmits as f64 * 1e-4;
        assert!((stats.retry_extra_s - expected_wait).abs() < 1e-9);
    }

    #[test]
    fn reliable_transfer_always_delivers() {
        let plan = FaultPlan::seeded(11)
            .with_link_drop(0.5)
            .with_retry_policy(1, 1e-4);
        let mut inj = plan.injector(3);
        for _ in 0..2_000 {
            let fate = inj.transfer_reliable();
            assert!(fate.delivered);
            assert!(fate.attempts <= 2);
        }
        assert_eq!(inj.stats().dropped_transfers, 0);
    }

    #[test]
    fn corruption_is_detected_and_retried() {
        let plan = FaultPlan::seeded(13)
            .with_link_corruption(0.25)
            .with_retry_policy(6, 1e-4);
        let mut inj = plan.injector(0);
        let n = 5_000;
        let delivered = (0..n).filter(|_| inj.transfer().delivered).count();
        assert!(
            delivered >= n - 3,
            "corruption should almost always be repaired"
        );
        assert!(inj.stats().corrupted_transfers > 800);
    }

    #[test]
    fn crash_and_straggler_schedules() {
        let plan = FaultPlan::seeded(1)
            .with_straggler(2, 4.0)
            .with_straggler(5, 2.0)
            .with_crash(5, 10);
        assert_eq!(plan.crashed_at(9), None);
        assert_eq!(plan.crashed_at(10), Some(5));
        assert_eq!(plan.crashed_at(11), Some(5));
        assert_eq!(plan.compute_multiplier(0), 4.0);
        // Worker 5's slowdown stops mattering once it is dead.
        assert_eq!(plan.compute_multiplier(10), 4.0);
        let plan2 = FaultPlan::seeded(1).with_straggler(2, 4.0).with_crash(2, 3);
        assert_eq!(plan2.compute_multiplier(2), 4.0);
        assert_eq!(plan2.compute_multiplier(3), 1.0);
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = FaultStats {
            retransmits: 2,
            dropped_transfers: 1,
            corrupted_transfers: 0,
            repairs: 1,
            crashed_workers: 1,
            forced_deliveries: 2,
            rejoins: 1,
            retry_extra_s: 0.5,
            catchup_extra_s: 0.125,
            stragglers_suspected: 1,
            links_degraded: 0,
            ranks_silent: 0,
        };
        let b = FaultStats {
            retransmits: 3,
            dropped_transfers: 0,
            corrupted_transfers: 4,
            repairs: 0,
            crashed_workers: 1,
            forced_deliveries: 1,
            rejoins: 2,
            retry_extra_s: 0.25,
            catchup_extra_s: 0.25,
            stragglers_suspected: 2,
            links_degraded: 1,
            ranks_silent: 1,
        };
        a.merge(&b);
        assert_eq!(a.retransmits, 5);
        assert_eq!(a.dropped_transfers, 1);
        assert_eq!(a.corrupted_transfers, 4);
        assert_eq!(a.repairs, 1);
        assert_eq!(a.crashed_workers, 1, "crashed workers are a max, not a sum");
        assert_eq!(a.forced_deliveries, 3);
        assert_eq!(a.rejoins, 3);
        assert!((a.retry_extra_s - 0.75).abs() < 1e-12);
        assert!((a.catchup_extra_s - 0.375).abs() < 1e-12);
        assert_eq!(a.stragglers_suspected, 3);
        assert_eq!(a.links_degraded, 1);
        assert_eq!(a.ranks_silent, 1);
    }

    #[test]
    fn membership_latest_event_wins() {
        let sched = MembershipSchedule::none()
            .crash(2, 3)
            .rejoin(2, 7)
            .crash(4, 5);
        assert!(sched.is_live(2, 0));
        assert!(!sched.is_live(2, 3));
        assert!(!sched.is_live(2, 6));
        assert!(sched.is_live(2, 7), "rejoin revives the worker");
        assert!(sched.is_live(2, 100));
        assert!(!sched.is_live(4, 5));
        assert!(sched.is_live(0, 50), "untouched workers stay live");
        // Same-round conflict: the later-listed event wins.
        let tie = MembershipSchedule::none().crash(1, 4).rejoin(1, 4);
        assert!(tie.is_live(1, 4));
        let tie2 = MembershipSchedule::none().rejoin(1, 4).crash(1, 4);
        assert!(!tie2.is_live(1, 4));
    }

    #[test]
    fn plan_live_set_merges_legacy_crash_with_membership() {
        let plan = FaultPlan::seeded(3)
            .with_crash(2, 3)
            .with_rejoin(2, 6)
            .with_crash_event(5, 4);
        assert_eq!(plan.live_set(8, 0), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(plan.live_set(8, 3), vec![0, 1, 3, 4, 5, 6, 7]);
        assert_eq!(plan.live_set(8, 4), vec![0, 1, 3, 4, 6, 7]);
        assert_eq!(plan.live_set(8, 6), vec![0, 1, 2, 3, 4, 6, 7]);
        assert_eq!(plan.rejoined_at(8, 6), vec![2]);
        assert!(plan.rejoined_at(8, 5).is_empty());
        assert!(plan.membership_changed_at(8, 3));
        assert!(plan.membership_changed_at(8, 4));
        assert!(!plan.membership_changed_at(8, 5));
        assert!(plan.membership_changed_at(8, 6));
        assert!(!plan.is_none());
    }

    #[test]
    fn legacy_crash_matches_equivalent_membership_event() {
        let legacy = FaultPlan::seeded(1).with_crash(3, 5);
        let elastic = FaultPlan::seeded(1).with_crash_event(3, 5);
        for t in 0..12 {
            for w in 0..6 {
                assert_eq!(legacy.live_at(w, t), elastic.live_at(w, t), "w={w} t={t}");
            }
            assert_eq!(legacy.live_set(6, t), elastic.live_set(6, t));
        }
    }

    #[test]
    fn storm_is_deterministic_and_keeps_two_live() {
        let m = 8;
        let rounds = 200;
        let a = MembershipSchedule::storm(0xC405, m, rounds, 3, 2);
        let b = MembershipSchedule::storm(0xC405, m, rounds, 3, 2);
        assert_eq!(a, b, "storms must replay under the same seed");
        let crashes = a
            .events
            .iter()
            .filter(|e| matches!(e, MembershipEvent::Crash { .. }))
            .count();
        let rejoins = a.events.len() - crashes;
        assert!(crashes >= 2, "storm scheduled {crashes} crashes");
        assert!(rejoins >= 1, "storm scheduled {rejoins} rejoins");
        for t in 0..rounds {
            let live = (0..m).filter(|&w| a.is_live(w, t)).count();
            assert!(live >= 2, "round {t}: only {live} live workers");
        }
        // Event rounds are causally ordered.
        for pair in a.events.windows(2) {
            assert!(pair[0].round() <= pair[1].round());
        }
    }

    #[test]
    fn reliable_transfer_under_certain_drop_is_forced() {
        let plan = FaultPlan::seeded(21)
            .with_link_drop(1.0)
            .with_retry_policy(2, 1e-4);
        let mut inj = plan.injector(0);
        for _ in 0..50 {
            let fate = inj.transfer_reliable();
            assert!(fate.delivered, "reliable transfers always deliver");
            assert_eq!(fate.attempts, 3, "budget exhausted before escalation");
        }
        let stats = inj.stats();
        assert_eq!(stats.forced_deliveries, 50);
        assert_eq!(stats.retransmits, 100);
        assert_eq!(stats.dropped_transfers, 0);
        // Best-effort transfers under the same plan are permanent omissions.
        let mut inj2 = plan.injector(0);
        let fate = inj2.transfer();
        assert!(!fate.delivered);
        assert_eq!(inj2.stats().dropped_transfers, 1);
        assert_eq!(inj2.stats().forced_deliveries, 0);
    }

    #[test]
    fn reliable_draw_sequence_unchanged_by_escalation_counter() {
        // The forced-delivery restructure must not move any RNG draw: a
        // mixed best-effort/reliable interleave replays exactly.
        let plan = FaultPlan::seeded(31)
            .with_link_drop(0.4)
            .with_link_corruption(0.1)
            .with_retry_policy(2, 1e-4);
        let run = || {
            let mut inj = plan.injector(9);
            let fates: Vec<TransferFate> = (0..400)
                .map(|i| {
                    if i % 3 == 0 {
                        inj.transfer_reliable()
                    } else {
                        inj.transfer()
                    }
                })
                .collect();
            (fates, inj.stats())
        };
        assert_eq!(run(), run());
    }
}
