//! The pluggable [`Transport`] abstraction the collectives engine runs on.
//!
//! A transport endpoint belongs to one worker (*rank*) and moves packed
//! sign words to peers. Three backends implement it:
//!
//! - **Simulator** — [`ChannelFabric`] endpoints driven in deterministic
//!   single-threaded lockstep on a simulated α–β clock (the refactored form
//!   of the repo's original in-process execution);
//! - **Threaded** — the same endpoints, one OS thread per rank, real
//!   concurrency and a real clock (see
//!   `marsit_collectives::engine::run_threaded`);
//! - **Process** — one OS process per rank speaking `marsit-wire/1` over
//!   localhost TCP ([`crate::process`]).
//!
//! Determinism across all three rests on the frozen per-hop RNG stream
//! contract (`DESIGN.md` §9): combine randomness derives from the
//! [`CombineCtx`](../../marsit_collectives/struct.CombineCtx.html)-addressed
//! stream, never from arrival order, so any schedule-respecting transport
//! produces bit-identical consensus.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::link::LinkModel;
use crate::wire::{TraceCtx, WireError};

/// Which backend an endpoint belongs to (also the tag telemetry records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Deterministic single-threaded lockstep on the simulated clock.
    Simulator,
    /// One OS thread per rank, in-process channels, real clock.
    Threaded,
    /// One OS process per rank, `marsit-wire/1` over localhost TCP.
    Process,
}

impl Backend {
    /// Stable lowercase name (used in telemetry and CLI flags).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Simulator => "simulator",
            Self::Threaded => "threaded",
            Self::Process => "process",
        }
    }

    /// Whether [`Transport::clock_s`] reads a real or simulated clock.
    #[must_use]
    pub fn clock_kind(self) -> &'static str {
        match self {
            Self::Simulator => "simulated",
            Self::Threaded | Self::Process => "real",
        }
    }
}

/// Typed transport failures.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The peer's endpoint is gone (thread ended, process died, socket EOF).
    PeerDisconnected {
        /// Rank of the vanished peer.
        peer: usize,
    },
    /// A frame failed to decode.
    Wire(WireError),
    /// An OS-level I/O failure.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PeerDisconnected { peer } => write!(f, "peer {peer} disconnected"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Io(msg) => write!(f, "transport i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// One worker's endpoint into a fabric of `world` ranks.
///
/// Sends are non-blocking (buffered); receives block until the named peer's
/// next message arrives, in per-pair FIFO order. The α–β [`LinkModel`] is
/// exposed so callers can price the bytes they move with the same arithmetic
/// as [`crate::cost`] (the simulator advances its clock with it).
pub trait Transport {
    /// This endpoint's rank.
    fn rank(&self) -> usize;
    /// Number of ranks in the fabric.
    fn world(&self) -> usize;
    /// Which backend this endpoint belongs to.
    fn backend(&self) -> Backend;
    /// The α–β pricing model for this fabric's links.
    fn link(&self) -> LinkModel;
    /// Seconds on this backend's clock: simulated α–β time for the
    /// simulator, wall-clock seconds since fabric creation otherwise.
    fn clock_s(&self) -> f64;
    /// Queue `words` for `to`. Does not block.
    ///
    /// # Errors
    ///
    /// Fails with [`TransportError::PeerDisconnected`] if `to` is gone, or
    /// an I/O error on the process backend.
    fn send_words(&mut self, to: usize, words: &[u64]) -> Result<(), TransportError>;
    /// Next message from `from` (FIFO per sender). Blocks until it arrives.
    ///
    /// # Errors
    ///
    /// Fails with [`TransportError::PeerDisconnected`] if `from` died before
    /// sending, or a wire/I/O error on the process backend.
    fn recv_words(&mut self, from: usize) -> Result<Vec<u64>, TransportError>;
    /// Like [`Transport::send_words`], additionally stamping the frame with
    /// the hop's absolute expanded-step `seq` for cross-rank tracing.
    /// Backends without tracing (the default) ignore `seq` and put nothing
    /// extra on the wire.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Transport::send_words`].
    fn send_words_traced(
        &mut self,
        to: usize,
        words: &[u64],
        seq: u64,
    ) -> Result<(), TransportError> {
        let _ = seq;
        self.send_words(to, words)
    }
    /// Like [`Transport::recv_words`], additionally returning the sender's
    /// [`TraceCtx`] when the frame carried one (`None` on untraced backends
    /// — the default — and untraced frames).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Transport::recv_words`].
    fn recv_words_traced(
        &mut self,
        from: usize,
    ) -> Result<(Vec<u64>, Option<TraceCtx>), TransportError> {
        Ok((self.recv_words(from)?, None))
    }
}

/// One directed mailbox: a FIFO of word payloads plus a liveness flag.
#[derive(Debug, Default)]
struct Mailbox {
    queue: VecDeque<Vec<u64>>,
    sender_gone: bool,
}

#[derive(Debug)]
struct FabricShared {
    /// `boxes[to][from]`: messages awaiting `to` from `from`.
    boxes: Vec<Vec<Mutex<Mailbox>>>,
    signals: Vec<Condvar>,
    link: LinkModel,
    /// Simulated seconds, advanced by the lockstep driver.
    sim_clock: Mutex<f64>,
}

/// In-memory fabric of [`ChannelTransport`] endpoints.
///
/// The same endpoints serve two backends: the **simulator** drives all
/// ranks in single-threaded lockstep (deterministic, simulated clock), and
/// the **threaded** backend gives each endpoint to its own OS thread (sends
/// never block, so schedule-respecting engines cannot deadlock).
#[derive(Debug, Clone)]
pub struct ChannelFabric {
    shared: Arc<FabricShared>,
    world: usize,
    started: Instant,
}

impl ChannelFabric {
    /// A fabric of `world` connected endpoints priced by `link`.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    #[must_use]
    pub fn new(world: usize, link: LinkModel) -> Self {
        assert!(world > 0, "fabric needs at least one rank");
        let boxes = (0..world)
            .map(|_| (0..world).map(|_| Mutex::new(Mailbox::default())).collect())
            .collect();
        Self {
            shared: Arc::new(FabricShared {
                boxes,
                signals: (0..world).map(|_| Condvar::new()).collect(),
                link,
                sim_clock: Mutex::new(0.0),
            }),
            world,
            started: Instant::now(),
        }
    }

    /// The endpoint for `rank` under the given backend tag.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world`.
    #[must_use]
    pub fn endpoint(&self, rank: usize, backend: Backend) -> ChannelTransport {
        assert!(rank < self.world, "rank {rank} out of range");
        ChannelTransport {
            shared: Arc::clone(&self.shared),
            world: self.world,
            rank,
            backend,
            started: self.started,
        }
    }

    /// Advances the simulated clock by one lockstep step moving
    /// `max_bytes` on the busiest link: `α + max_bytes/β`.
    pub fn advance_sim_clock(&self, max_bytes: usize) {
        let mut t = self.shared.sim_clock.lock().expect("clock lock");
        *t += self.shared.link.transfer_time(max_bytes);
    }

    /// Marks `rank` as gone: every pending or future receive from it fails
    /// with [`TransportError::PeerDisconnected`].
    pub fn disconnect(&self, rank: usize) {
        for (to, row) in self.shared.boxes.iter().enumerate() {
            row[rank].lock().expect("mailbox lock").sender_gone = true;
            self.shared.signals[to].notify_all();
        }
    }
}

/// One rank's endpoint in a [`ChannelFabric`].
#[derive(Debug)]
pub struct ChannelTransport {
    shared: Arc<FabricShared>,
    world: usize,
    rank: usize,
    backend: Backend,
    started: Instant,
}

impl Transport for ChannelTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.world
    }

    fn backend(&self) -> Backend {
        self.backend
    }

    fn link(&self) -> LinkModel {
        self.shared.link
    }

    fn clock_s(&self) -> f64 {
        match self.backend {
            Backend::Simulator => *self.shared.sim_clock.lock().expect("clock lock"),
            _ => self.started.elapsed().as_secs_f64(),
        }
    }

    fn send_words(&mut self, to: usize, words: &[u64]) -> Result<(), TransportError> {
        if to >= self.world {
            return Err(TransportError::PeerDisconnected { peer: to });
        }
        let mut mbox = self.shared.boxes[to][self.rank]
            .lock()
            .expect("mailbox lock");
        mbox.queue.push_back(words.to_vec());
        drop(mbox);
        self.shared.signals[to].notify_all();
        Ok(())
    }

    fn recv_words(&mut self, from: usize) -> Result<Vec<u64>, TransportError> {
        if from >= self.world {
            return Err(TransportError::PeerDisconnected { peer: from });
        }
        let mut mbox = self.shared.boxes[self.rank][from]
            .lock()
            .expect("mailbox lock");
        loop {
            if let Some(words) = mbox.queue.pop_front() {
                return Ok(words);
            }
            if mbox.sender_gone {
                return Err(TransportError::PeerDisconnected { peer: from });
            }
            mbox = self.shared.signals[self.rank]
                .wait(mbox)
                .expect("mailbox wait");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(world: usize) -> ChannelFabric {
        ChannelFabric::new(world, LinkModel::new(1e-3, 1e6))
    }

    #[test]
    fn fifo_per_directed_pair() {
        let f = fabric(2);
        let mut a = f.endpoint(0, Backend::Simulator);
        let mut b = f.endpoint(1, Backend::Simulator);
        a.send_words(1, &[1]).unwrap();
        a.send_words(1, &[2, 3]).unwrap();
        assert_eq!(b.recv_words(0).unwrap(), vec![1]);
        assert_eq!(b.recv_words(0).unwrap(), vec![2, 3]);
    }

    #[test]
    fn pairs_are_independent() {
        let f = fabric(3);
        let mut a = f.endpoint(0, Backend::Simulator);
        let mut b = f.endpoint(1, Backend::Simulator);
        let mut c = f.endpoint(2, Backend::Simulator);
        b.send_words(2, &[10]).unwrap();
        a.send_words(2, &[20]).unwrap();
        // Receiver addresses each sender's FIFO, not a global queue.
        assert_eq!(c.recv_words(0).unwrap(), vec![20]);
        assert_eq!(c.recv_words(1).unwrap(), vec![10]);
    }

    #[test]
    fn threaded_roundtrip_blocks_until_delivery() {
        let f = fabric(2);
        let mut a = f.endpoint(0, Backend::Threaded);
        let mut b = f.endpoint(1, Backend::Threaded);
        let handle = std::thread::spawn(move || b.recv_words(0).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        a.send_words(1, &[42]).unwrap();
        assert_eq!(handle.join().unwrap(), vec![42]);
    }

    #[test]
    fn disconnect_surfaces_typed_error() {
        let f = fabric(2);
        let mut b = f.endpoint(1, Backend::Threaded);
        f.disconnect(0);
        assert_eq!(
            b.recv_words(0),
            Err(TransportError::PeerDisconnected { peer: 0 })
        );
    }

    #[test]
    fn simulated_clock_prices_steps() {
        let f = fabric(2);
        let a = f.endpoint(0, Backend::Simulator);
        f.advance_sim_clock(1000);
        f.advance_sim_clock(0);
        // Two steps: (1e-3 + 1e-3) + 1e-3.
        assert!((a.clock_s() - 3e-3).abs() < 1e-12);
        let t = f.endpoint(1, Backend::Threaded);
        assert!(t.clock_s() >= 0.0);
        assert_eq!(t.backend().clock_kind(), "real");
    }
}
