//! Per-round time accounting split into the three phases the paper plots.
//!
//! Figure 5 decomposes each approach's round time into *computation*,
//! *compression*, and *communication*; Figure 1a compares total iteration
//! times. [`PhaseBreakdown`] is the accumulator those experiments read out.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Time spent in each phase of a training round, in seconds.
///
/// # Examples
///
/// ```
/// use marsit_simnet::PhaseBreakdown;
///
/// let round = PhaseBreakdown::new(0.010, 0.002, 0.030);
/// assert!((round.total() - 0.042).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct PhaseBreakdown {
    /// Forward/backward compute time.
    pub compute_s: f64,
    /// Compression / decompression / codec time that is *not* hidden behind
    /// communication.
    pub compression_s: f64,
    /// Network transfer time.
    pub communication_s: f64,
}

impl PhaseBreakdown {
    /// Creates a breakdown from the three phase durations.
    ///
    /// # Panics
    ///
    /// Panics if any duration is negative.
    #[must_use]
    pub fn new(compute_s: f64, compression_s: f64, communication_s: f64) -> Self {
        assert!(
            compute_s >= 0.0 && compression_s >= 0.0 && communication_s >= 0.0,
            "durations must be non-negative"
        );
        Self {
            compute_s,
            compression_s,
            communication_s,
        }
    }

    /// A zero breakdown.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total round time.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compute_s + self.compression_s + self.communication_s
    }

    /// Scales all phases by `k` (e.g. per-round → per-epoch).
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        assert!(k >= 0.0, "scale must be non-negative");
        Self {
            compute_s: self.compute_s * k,
            compression_s: self.compression_s * k,
            communication_s: self.communication_s * k,
        }
    }

    /// Fraction of the round spent communicating (0 if the total is 0).
    #[must_use]
    pub fn communication_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.communication_s / t
        }
    }
}

impl Add for PhaseBreakdown {
    type Output = PhaseBreakdown;

    fn add(self, rhs: PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            compute_s: self.compute_s + rhs.compute_s,
            compression_s: self.compression_s + rhs.compression_s,
            communication_s: self.communication_s + rhs.communication_s,
        }
    }
}

impl AddAssign for PhaseBreakdown {
    fn add_assign(&mut self, rhs: PhaseBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for PhaseBreakdown {
    fn sum<I: Iterator<Item = PhaseBreakdown>>(iter: I) -> Self {
        iter.fold(Self::zero(), Add::add)
    }
}

impl std::fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "compute {:.3}ms + codec {:.3}ms + comm {:.3}ms = {:.3}ms",
            self.compute_s * 1e3,
            self.compression_s * 1e3,
            self.communication_s * 1e3,
            self.total() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_fraction() {
        let p = PhaseBreakdown::new(1.0, 0.5, 2.5);
        assert_eq!(p.total(), 4.0);
        assert_eq!(p.communication_fraction(), 0.625);
        assert_eq!(PhaseBreakdown::zero().communication_fraction(), 0.0);
    }

    #[test]
    fn add_and_sum() {
        let a = PhaseBreakdown::new(1.0, 2.0, 3.0);
        let b = PhaseBreakdown::new(0.5, 0.5, 0.5);
        let c = a + b;
        assert_eq!(c.compute_s, 1.5);
        let total: PhaseBreakdown = [a, b].into_iter().sum();
        assert_eq!(total, c);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn scaled_multiplies_all() {
        let p = PhaseBreakdown::new(1.0, 2.0, 3.0).scaled(2.0);
        assert_eq!(p, PhaseBreakdown::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", PhaseBreakdown::zero()).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = PhaseBreakdown::new(-1.0, 0.0, 0.0);
    }
}
