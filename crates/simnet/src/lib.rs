//! Network and timing simulator for the Marsit reproduction.
//!
//! The paper's timing results come from a 32-node Huawei-Cloud cluster; this
//! crate substitutes an α–β (latency–bandwidth) simulation of that cluster —
//! see the substitution table in `DESIGN.md`. It provides:
//!
//! - [`Topology`]: ring (RAR), 2D torus (TAR), and star (PS) fabrics;
//! - [`LinkModel`] / [`RateProfile`]: per-link and per-node hardware rates;
//! - [`cost`]: closed-form collective costs (ring/torus all-reduce, PS
//!   exchange, variable-width hop schedules for bit-growing MAR payloads);
//! - [`PhaseBreakdown`]: the compute / compression / communication split
//!   that Figures 1a and 5 plot;
//! - [`fault`]: deterministic fault injection (drops, detected corruption,
//!   stragglers, crashes) with retry/timeout pricing under the α–β model.
//!
//! # Examples
//!
//! ```
//! use marsit_simnet::{cost, LinkModel, Topology};
//!
//! let link = LinkModel::new(25e-6, 1.25e9);
//! let fp32 = cost::allreduce_time(link, 23_000_000 * 4, Topology::ring(8));
//! let onebit = cost::allreduce_time(link, 23_000_000 / 8, Topology::ring(8));
//! assert!(onebit < fp32 / 20.0); // one-bit payload is ~32x smaller
//! ```

pub mod cost;
pub mod fault;
pub mod link;
pub mod phase;
pub mod process;
pub mod topology;
pub mod transport;
pub mod wire;

pub use fault::{
    FaultInjector, FaultPlan, FaultStats, MembershipEvent, MembershipSchedule, TransferFate,
};
pub use link::{LinkModel, RateProfile};
pub use phase::PhaseBreakdown;
pub use process::{HubEvent, ProcessTransport, TraceCollector, WireHub};
pub use topology::Topology;
pub use transport::{Backend, ChannelFabric, ChannelTransport, Transport, TransportError};
pub use wire::{
    Frame, FrameKind, Payload, TraceCtx, WireError, CTX_WIRE_BYTES, DRIVER, WIRE_SCHEMA,
};
