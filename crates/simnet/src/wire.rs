//! The `marsit-wire/1` frame format: versioned, line-delimited, hex-framed.
//!
//! Frames carry packed sign words and small control metadata between worker
//! processes over localhost TCP (see [`crate::process`]). Like
//! `marsit-checkpoint/1`, every bit-sensitive scalar crosses the wire as the
//! fixed-width lowercase hex of its bit pattern — 16 hex chars per
//! `u64`, 8 per `f32` — so `−0.0`, NaN payloads, and subnormals survive
//! byte-for-byte and the encoding is ASCII-diffable in a packet capture.
//!
//! One frame per line:
//!
//! ```text
//! marsit-wire/1 <kind> <from> <to> <payload-tag><hex>\n
//! ```
//!
//! where `<payload-tag>` is `w` (u64 words), `f` (f32 bit patterns), or `-`
//! (empty). Decoding never panics: every malformed input — truncated line,
//! wrong magic, unsupported version, unknown kind, ragged hex — maps to a
//! typed [`WireError`].

use std::fmt;

/// Schema tag at the start of every frame.
pub const WIRE_SCHEMA: &str = "marsit-wire/1";

/// What a frame means to the hub/worker protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Worker → hub: `from` announces its rank.
    Hello,
    /// Worker ↔ worker (routed through the hub): collective payload.
    Data,
    /// Hub → worker: begin a collective round (`to` is the target rank,
    /// payload words parameterize the round).
    Round,
    /// Worker → hub: round finished; payload = result words + counters.
    Result,
    /// Worker → hub: round aborted; payload word 0 = peer that vanished.
    Failed,
    /// Hub → workers: rank `from` disconnected.
    Down,
    /// Hub → worker: shut down cleanly.
    Stop,
}

impl FrameKind {
    fn tag(self) -> &'static str {
        match self {
            Self::Hello => "hello",
            Self::Data => "data",
            Self::Round => "round",
            Self::Result => "result",
            Self::Failed => "failed",
            Self::Down => "down",
            Self::Stop => "stop",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "hello" => Self::Hello,
            "data" => Self::Data,
            "round" => Self::Round,
            "result" => Self::Result,
            "failed" => Self::Failed,
            "down" => Self::Down,
            "stop" => Self::Stop,
            _ => return None,
        })
    }
}

/// Frame payload: bit-exact word or float vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Nothing (control frames).
    Empty,
    /// Packed sign words / counters, 16 hex chars each on the wire.
    Words(Vec<u64>),
    /// `f32` bit patterns, 8 hex chars each on the wire.
    Floats(Vec<f32>),
}

/// One `marsit-wire/1` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame meaning.
    pub kind: FrameKind,
    /// Originating rank (or [`DRIVER`] for the hub).
    pub from: u32,
    /// Destination rank (or [`DRIVER`] for the hub).
    pub to: u32,
    /// Bit-exact payload.
    pub payload: Payload,
}

/// Pseudo-rank the hub/driver uses in `from`/`to` fields.
pub const DRIVER: u32 = u32::MAX;

/// Typed decode failures. Decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line does not start with `marsit-wire/…`.
    BadMagic {
        /// What was found instead of the schema tag.
        found: String,
    },
    /// The schema tag names a version this decoder does not speak.
    UnsupportedVersion {
        /// The full schema tag found.
        found: String,
    },
    /// The line ended before all five fields were present.
    Truncated,
    /// The kind field is not a known frame kind.
    UnknownKind {
        /// The unrecognized kind tag.
        found: String,
    },
    /// A rank field is not a decimal `u32`.
    BadRank {
        /// The malformed field text.
        found: String,
    },
    /// The payload tag or hex body is malformed.
    BadPayload {
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { found } => write!(f, "bad wire magic {found:?}"),
            Self::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found:?} (want {WIRE_SCHEMA:?})"
                )
            }
            Self::Truncated => write!(f, "truncated wire frame"),
            Self::UnknownKind { found } => write!(f, "unknown frame kind {found:?}"),
            Self::BadRank { found } => write!(f, "bad rank field {found:?}"),
            Self::BadPayload { reason } => write!(f, "bad payload: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

fn push_hex(out: &mut String, bits: u64, nibbles: u32) {
    for i in (0..nibbles).rev() {
        out.push(HEX_DIGITS[((bits >> (4 * i)) & 0xF) as usize] as char);
    }
}

fn parse_hex_words(s: &str, nibbles: usize) -> Result<Vec<u64>, WireError> {
    if !s.len().is_multiple_of(nibbles) {
        return Err(WireError::BadPayload {
            reason: format!("hex length {} is not a multiple of {nibbles}", s.len()),
        });
    }
    s.as_bytes()
        .chunks(nibbles)
        .map(|chunk| {
            let word = std::str::from_utf8(chunk).map_err(|e| WireError::BadPayload {
                reason: e.to_string(),
            })?;
            u64::from_str_radix(word, 16).map_err(|_| WireError::BadPayload {
                reason: format!("bad hex word {word:?}"),
            })
        })
        .collect()
}

impl Frame {
    /// Convenience constructor for a words-payload frame.
    #[must_use]
    pub fn words(kind: FrameKind, from: u32, to: u32, words: Vec<u64>) -> Self {
        Self {
            kind,
            from,
            to,
            payload: Payload::Words(words),
        }
    }

    /// Convenience constructor for a control frame without payload.
    #[must_use]
    pub fn control(kind: FrameKind, from: u32, to: u32) -> Self {
        Self {
            kind,
            from,
            to,
            payload: Payload::Empty,
        }
    }

    /// Serializes to one wire line, trailing `\n` included.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(
            WIRE_SCHEMA.len()
                + 32
                + match &self.payload {
                    Payload::Empty => 1,
                    Payload::Words(w) => 1 + w.len() * 16,
                    Payload::Floats(v) => 1 + v.len() * 8,
                },
        );
        out.push_str(WIRE_SCHEMA);
        out.push(' ');
        out.push_str(self.kind.tag());
        out.push(' ');
        out.push_str(&self.from.to_string());
        out.push(' ');
        out.push_str(&self.to.to_string());
        out.push(' ');
        match &self.payload {
            Payload::Empty => out.push('-'),
            Payload::Words(words) => {
                out.push('w');
                for &w in words {
                    push_hex(&mut out, w, 16);
                }
            }
            Payload::Floats(values) => {
                out.push('f');
                for &v in values {
                    push_hex(&mut out, u64::from(v.to_bits()), 8);
                }
            }
        }
        out.push('\n');
        out
    }

    /// Parses one wire line (with or without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns the first [`WireError`] describing why the line is not a
    /// valid `marsit-wire/1` frame. Never panics on any input.
    pub fn decode(line: &str) -> Result<Self, WireError> {
        let line = line.strip_suffix('\n').unwrap_or(line);
        let mut fields = line.splitn(5, ' ');
        let magic = fields.next().unwrap_or("");
        if magic != WIRE_SCHEMA {
            return if magic.starts_with("marsit-wire/") {
                Err(WireError::UnsupportedVersion {
                    found: magic.to_string(),
                })
            } else {
                Err(WireError::BadMagic {
                    found: magic.chars().take(32).collect(),
                })
            };
        }
        let kind_tag = fields.next().ok_or(WireError::Truncated)?;
        let kind = FrameKind::from_tag(kind_tag).ok_or_else(|| WireError::UnknownKind {
            found: kind_tag.to_string(),
        })?;
        let parse_rank = |s: &str| {
            s.parse::<u32>().map_err(|_| WireError::BadRank {
                found: s.to_string(),
            })
        };
        let from = parse_rank(fields.next().ok_or(WireError::Truncated)?)?;
        let to = parse_rank(fields.next().ok_or(WireError::Truncated)?)?;
        let body = fields.next().ok_or(WireError::Truncated)?;
        let payload = match body.split_at_checked(1) {
            Some(("-", "")) => Payload::Empty,
            Some(("w", hex)) => Payload::Words(parse_hex_words(hex, 16)?),
            Some(("f", hex)) => Payload::Floats(
                parse_hex_words(hex, 8)?
                    .into_iter()
                    .map(|bits| f32::from_bits(bits as u32))
                    .collect(),
            ),
            _ => {
                return Err(WireError::BadPayload {
                    reason: format!(
                        "unknown payload tag in {body:?}",
                        body = body.chars().take(8).collect::<String>()
                    ),
                })
            }
        };
        Ok(Self {
            kind,
            from,
            to,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_fixture_words_frame() {
        // Pinned wire bytes: if this moves, marsit-wire/1 is broken.
        let frame = Frame::words(FrameKind::Data, 3, 1, vec![0xDEAD_BEEF_0000_0001, 7]);
        assert_eq!(
            frame.encode(),
            "marsit-wire/1 data 3 1 wdeadbeef000000010000000000000007\n"
        );
        assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn golden_fixture_control_frame() {
        let frame = Frame::control(FrameKind::Stop, DRIVER, 2);
        assert_eq!(frame.encode(), "marsit-wire/1 stop 4294967295 2 -\n");
        assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn float_bit_patterns_roundtrip() {
        let values = vec![-0.0f32, f32::NAN, f32::from_bits(1), f32::NEG_INFINITY];
        let frame = Frame {
            kind: FrameKind::Data,
            from: 0,
            to: 1,
            payload: Payload::Floats(values.clone()),
        };
        let back = Frame::decode(&frame.encode()).unwrap();
        let Payload::Floats(got) = back.payload else {
            panic!("payload kind changed");
        };
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&values), bits(&got));
    }

    #[test]
    fn typed_errors_never_panic() {
        assert!(matches!(
            Frame::decode("garbage"),
            Err(WireError::BadMagic { .. })
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/9 data 0 1 w00"),
            Err(WireError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/1 data 0"),
            Err(WireError::Truncated)
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/1 teleport 0 1 -"),
            Err(WireError::UnknownKind { .. })
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/1 data x 1 -"),
            Err(WireError::BadRank { .. })
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/1 data 0 1 w123"),
            Err(WireError::BadPayload { .. })
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/1 data 0 1 zff"),
            Err(WireError::BadPayload { .. })
        ));
    }
}
