//! The `marsit-wire/1` frame format: versioned, line-delimited, hex-framed.
//!
//! Frames carry packed sign words and small control metadata between worker
//! processes over localhost TCP (see [`crate::process`]). Like
//! `marsit-checkpoint/1`, every bit-sensitive scalar crosses the wire as the
//! fixed-width lowercase hex of its bit pattern — 16 hex chars per
//! `u64`, 8 per `f32` — so `−0.0`, NaN payloads, and subnormals survive
//! byte-for-byte and the encoding is ASCII-diffable in a packet capture.
//!
//! One frame per line:
//!
//! ```text
//! marsit-wire/1 <kind> <from> <to> <payload-tag><hex>\n
//! ```
//!
//! where `<payload-tag>` is `w` (u64 words), `f` (f32 bit patterns), `b`
//! (raw bytes, 2 hex chars each), or `-` (empty). Decoding never panics:
//! every malformed input — truncated line, wrong magic, unsupported
//! version, unknown kind, ragged hex — maps to a typed [`WireError`].
//!
//! # Trace context (optional trailing segment)
//!
//! A traced transport appends one space-separated segment after the
//! payload:
//!
//! ```text
//! marsit-wire/1 data <from> <to> w<hex> c<round:16><seq:16><sender:8><send_ns:16>\n
//! ```
//!
//! carrying the [`TraceCtx`] — (round, absolute expanded-step seq, sender
//! rank, sender wall-clock nanos) — that lets the receiver emit a
//! cross-rank-correlatable hop event. The segment is strictly optional: a
//! frame with `ctx: None` encodes byte-identically to pre-trace
//! `marsit-wire/1`, so untraced runs put nothing new on the wire.

use std::fmt;

/// Schema tag at the start of every frame.
pub const WIRE_SCHEMA: &str = "marsit-wire/1";

/// What a frame means to the hub/worker protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Worker → hub: `from` announces its rank.
    Hello,
    /// Worker ↔ worker (routed through the hub): collective payload.
    Data,
    /// Hub → worker: begin a collective round (`to` is the target rank,
    /// payload words parameterize the round).
    Round,
    /// Worker → hub: round finished; payload = result words + counters.
    Result,
    /// Worker → hub: round aborted; payload word 0 = peer that vanished.
    Failed,
    /// Hub → workers: rank `from` disconnected.
    Down,
    /// Hub → worker: shut down cleanly.
    Stop,
    /// Worker → hub: a batch of telemetry events for the trace collector
    /// (payload = UTF-8 JSONL as [`Payload::Bytes`]).
    Telem,
    /// Supervisor → shard: run a job (payload = UTF-8 submission body as
    /// [`Payload::Bytes`] — a fresh job's canonical spec line, or a
    /// restore body carrying spec + snapshot + telemetry floor).
    Submit,
    /// Shard → supervisor: a job finished (payload = UTF-8 outcome body:
    /// report fingerprint plus log delta).
    Outcome,
    /// Shard ↔ supervisor: a durability snapshot of an in-flight job
    /// (periodic, or the final state of an evicted job), or the
    /// supervisor's eviction request.
    Snapshot,
}

impl FrameKind {
    fn tag(self) -> &'static str {
        match self {
            Self::Hello => "hello",
            Self::Data => "data",
            Self::Round => "round",
            Self::Result => "result",
            Self::Failed => "failed",
            Self::Down => "down",
            Self::Stop => "stop",
            Self::Telem => "telem",
            Self::Submit => "submit",
            Self::Outcome => "outcome",
            Self::Snapshot => "snapshot",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "hello" => Self::Hello,
            "data" => Self::Data,
            "round" => Self::Round,
            "result" => Self::Result,
            "failed" => Self::Failed,
            "down" => Self::Down,
            "stop" => Self::Stop,
            "telem" => Self::Telem,
            "submit" => Self::Submit,
            "outcome" => Self::Outcome,
            "snapshot" => Self::Snapshot,
            _ => return None,
        })
    }
}

/// Frame payload: bit-exact word or float vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Nothing (control frames).
    Empty,
    /// Packed sign words / counters, 16 hex chars each on the wire.
    Words(Vec<u64>),
    /// `f32` bit patterns, 8 hex chars each on the wire.
    Floats(Vec<f32>),
    /// Raw bytes (telemetry batches), 2 hex chars each on the wire.
    Bytes(Vec<u8>),
}

/// Trace context a traced transport stamps onto a data frame: enough for
/// the receiver to emit a hop event keyed to the same absolute
/// expanded-step slot the sender used, with the sender's wall clock for
/// cross-rank latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Training round the hop belongs to.
    pub round: u64,
    /// Absolute expanded-step sequence number of the hop.
    pub seq: u64,
    /// Sending rank.
    pub sender: u32,
    /// Sender wall-clock nanos at send time.
    pub send_ns: u64,
}

/// One `marsit-wire/1` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame meaning.
    pub kind: FrameKind,
    /// Originating rank (or [`DRIVER`] for the hub).
    pub from: u32,
    /// Destination rank (or [`DRIVER`] for the hub).
    pub to: u32,
    /// Bit-exact payload.
    pub payload: Payload,
    /// Optional trace context (`None` encodes byte-identically to the
    /// pre-trace wire format).
    pub ctx: Option<TraceCtx>,
}

/// Pseudo-rank the hub/driver uses in `from`/`to` fields.
pub const DRIVER: u32 = u32::MAX;

/// Typed decode failures. Decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line does not start with `marsit-wire/…`.
    BadMagic {
        /// What was found instead of the schema tag.
        found: String,
    },
    /// The schema tag names a version this decoder does not speak.
    UnsupportedVersion {
        /// The full schema tag found.
        found: String,
    },
    /// The line ended before all five fields were present.
    Truncated,
    /// The kind field is not a known frame kind.
    UnknownKind {
        /// The unrecognized kind tag.
        found: String,
    },
    /// A rank field is not a decimal `u32`.
    BadRank {
        /// The malformed field text.
        found: String,
    },
    /// The payload tag or hex body is malformed.
    BadPayload {
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { found } => write!(f, "bad wire magic {found:?}"),
            Self::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found:?} (want {WIRE_SCHEMA:?})"
                )
            }
            Self::Truncated => write!(f, "truncated wire frame"),
            Self::UnknownKind { found } => write!(f, "unknown frame kind {found:?}"),
            Self::BadRank { found } => write!(f, "bad rank field {found:?}"),
            Self::BadPayload { reason } => write!(f, "bad payload: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

/// Wire overhead of an attached trace context: the separating space, the
/// `c` tag, and 56 hex chars (round 16 + seq 16 + sender 8 + `send_ns` 16).
pub const CTX_WIRE_BYTES: usize = 2 + 16 + 16 + 8 + 16;

fn push_hex(out: &mut String, bits: u64, nibbles: u32) {
    for i in (0..nibbles).rev() {
        out.push(HEX_DIGITS[((bits >> (4 * i)) & 0xF) as usize] as char);
    }
}

fn parse_hex_words(s: &str, nibbles: usize) -> Result<Vec<u64>, WireError> {
    if !s.len().is_multiple_of(nibbles) {
        return Err(WireError::BadPayload {
            reason: format!("hex length {} is not a multiple of {nibbles}", s.len()),
        });
    }
    s.as_bytes()
        .chunks(nibbles)
        .map(|chunk| {
            let word = std::str::from_utf8(chunk).map_err(|e| WireError::BadPayload {
                reason: e.to_string(),
            })?;
            u64::from_str_radix(word, 16).map_err(|_| WireError::BadPayload {
                reason: format!("bad hex word {word:?}"),
            })
        })
        .collect()
}

impl Frame {
    /// Convenience constructor for a words-payload frame.
    #[must_use]
    pub fn words(kind: FrameKind, from: u32, to: u32, words: Vec<u64>) -> Self {
        Self {
            kind,
            from,
            to,
            payload: Payload::Words(words),
            ctx: None,
        }
    }

    /// Convenience constructor for a control frame without payload.
    #[must_use]
    pub fn control(kind: FrameKind, from: u32, to: u32) -> Self {
        Self {
            kind,
            from,
            to,
            payload: Payload::Empty,
            ctx: None,
        }
    }

    /// Convenience constructor for a telemetry-batch frame.
    #[must_use]
    pub fn telem(from: u32, bytes: Vec<u8>) -> Self {
        Self {
            kind: FrameKind::Telem,
            from,
            to: DRIVER,
            payload: Payload::Bytes(bytes),
            ctx: None,
        }
    }

    /// The same frame with a trace context stamped on.
    #[must_use]
    pub fn with_ctx(mut self, ctx: TraceCtx) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Serializes to one wire line, trailing `\n` included.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(
            WIRE_SCHEMA.len()
                + 32
                + match &self.payload {
                    Payload::Empty => 1,
                    Payload::Words(w) => 1 + w.len() * 16,
                    Payload::Floats(v) => 1 + v.len() * 8,
                    Payload::Bytes(b) => 1 + b.len() * 2,
                }
                + if self.ctx.is_some() {
                    CTX_WIRE_BYTES
                } else {
                    0
                },
        );
        out.push_str(WIRE_SCHEMA);
        out.push(' ');
        out.push_str(self.kind.tag());
        out.push(' ');
        out.push_str(&self.from.to_string());
        out.push(' ');
        out.push_str(&self.to.to_string());
        out.push(' ');
        match &self.payload {
            Payload::Empty => out.push('-'),
            Payload::Words(words) => {
                out.push('w');
                for &w in words {
                    push_hex(&mut out, w, 16);
                }
            }
            Payload::Floats(values) => {
                out.push('f');
                for &v in values {
                    push_hex(&mut out, u64::from(v.to_bits()), 8);
                }
            }
            Payload::Bytes(bytes) => {
                out.push('b');
                for &b in bytes {
                    push_hex(&mut out, u64::from(b), 2);
                }
            }
        }
        if let Some(ctx) = &self.ctx {
            out.push(' ');
            out.push('c');
            push_hex(&mut out, ctx.round, 16);
            push_hex(&mut out, ctx.seq, 16);
            push_hex(&mut out, u64::from(ctx.sender), 8);
            push_hex(&mut out, ctx.send_ns, 16);
        }
        out.push('\n');
        out
    }

    /// Parses one wire line (with or without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns the first [`WireError`] describing why the line is not a
    /// valid `marsit-wire/1` frame. Never panics on any input.
    pub fn decode(line: &str) -> Result<Self, WireError> {
        let line = line.strip_suffix('\n').unwrap_or(line);
        let mut fields = line.splitn(5, ' ');
        let magic = fields.next().unwrap_or("");
        if magic != WIRE_SCHEMA {
            return if magic.starts_with("marsit-wire/") {
                Err(WireError::UnsupportedVersion {
                    found: magic.to_string(),
                })
            } else {
                Err(WireError::BadMagic {
                    found: magic.chars().take(32).collect(),
                })
            };
        }
        let kind_tag = fields.next().ok_or(WireError::Truncated)?;
        let kind = FrameKind::from_tag(kind_tag).ok_or_else(|| WireError::UnknownKind {
            found: kind_tag.to_string(),
        })?;
        let parse_rank = |s: &str| {
            s.parse::<u32>().map_err(|_| WireError::BadRank {
                found: s.to_string(),
            })
        };
        let from = parse_rank(fields.next().ok_or(WireError::Truncated)?)?;
        let to = parse_rank(fields.next().ok_or(WireError::Truncated)?)?;
        let body = fields.next().ok_or(WireError::Truncated)?;
        let (body, ctx_part) = match body.split_once(' ') {
            Some((payload, rest)) => (payload, Some(rest)),
            None => (body, None),
        };
        let payload = match body.split_at_checked(1) {
            Some(("-", "")) => Payload::Empty,
            Some(("w", hex)) => Payload::Words(parse_hex_words(hex, 16)?),
            Some(("f", hex)) => Payload::Floats(
                parse_hex_words(hex, 8)?
                    .into_iter()
                    .map(|bits| f32::from_bits(bits as u32))
                    .collect(),
            ),
            Some(("b", hex)) => Payload::Bytes(
                parse_hex_words(hex, 2)?
                    .into_iter()
                    .map(|b| b as u8)
                    .collect(),
            ),
            _ => {
                return Err(WireError::BadPayload {
                    reason: format!(
                        "unknown payload tag in {body:?}",
                        body = body.chars().take(8).collect::<String>()
                    ),
                })
            }
        };
        let ctx = match ctx_part {
            None => None,
            Some(part) => Some(Self::decode_ctx(part)?),
        };
        Ok(Self {
            kind,
            from,
            to,
            payload,
            ctx,
        })
    }

    /// Parses the trailing `c<56 hex>` trace-context segment.
    fn decode_ctx(part: &str) -> Result<TraceCtx, WireError> {
        let hex = part
            .strip_prefix('c')
            .filter(|h| h.len() == 56 && h.is_ascii())
            .ok_or_else(|| WireError::BadPayload {
                reason: format!(
                    "bad trace-context segment {part:?}",
                    part = part.chars().take(8).collect::<String>()
                ),
            })?;
        let word = |range: std::ops::Range<usize>| {
            u64::from_str_radix(&hex[range], 16).map_err(|_| WireError::BadPayload {
                reason: "bad trace-context hex".to_string(),
            })
        };
        Ok(TraceCtx {
            round: word(0..16)?,
            seq: word(16..32)?,
            sender: word(32..40)? as u32,
            send_ns: word(40..56)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_fixture_words_frame() {
        // Pinned wire bytes: if this moves, marsit-wire/1 is broken.
        let frame = Frame::words(FrameKind::Data, 3, 1, vec![0xDEAD_BEEF_0000_0001, 7]);
        assert_eq!(
            frame.encode(),
            "marsit-wire/1 data 3 1 wdeadbeef000000010000000000000007\n"
        );
        assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn golden_fixture_control_frame() {
        let frame = Frame::control(FrameKind::Stop, DRIVER, 2);
        assert_eq!(frame.encode(), "marsit-wire/1 stop 4294967295 2 -\n");
        assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn golden_fixture_serving_frames() {
        // Pinned wire bytes for the process-per-shard serving protocol:
        // a supervisor submitting a spec line to shard 2, the shard's
        // outcome, and a snapshot frame. If these move, marsit-wire/1 is
        // broken for mixed-version supervisor/shard pairs.
        let submit = Frame {
            kind: FrameKind::Submit,
            from: DRIVER,
            to: 2,
            payload: Payload::Bytes(b"name=j0".to_vec()),
            ctx: None,
        };
        assert_eq!(
            submit.encode(),
            "marsit-wire/1 submit 4294967295 2 b6e616d653d6a30\n"
        );
        assert_eq!(Frame::decode(&submit.encode()).unwrap(), submit);

        let outcome = Frame {
            kind: FrameKind::Outcome,
            from: 2,
            to: DRIVER,
            payload: Payload::Bytes(b"ok".to_vec()),
            ctx: None,
        };
        assert_eq!(
            outcome.encode(),
            "marsit-wire/1 outcome 2 4294967295 b6f6b\n"
        );
        assert_eq!(Frame::decode(&outcome.encode()).unwrap(), outcome);

        let snapshot = Frame::control(FrameKind::Snapshot, 1, DRIVER);
        assert_eq!(snapshot.encode(), "marsit-wire/1 snapshot 1 4294967295 -\n");
        assert_eq!(Frame::decode(&snapshot.encode()).unwrap(), snapshot);
    }

    #[test]
    fn float_bit_patterns_roundtrip() {
        let values = vec![-0.0f32, f32::NAN, f32::from_bits(1), f32::NEG_INFINITY];
        let frame = Frame {
            kind: FrameKind::Data,
            from: 0,
            to: 1,
            payload: Payload::Floats(values.clone()),
            ctx: None,
        };
        let back = Frame::decode(&frame.encode()).unwrap();
        let Payload::Floats(got) = back.payload else {
            panic!("payload kind changed");
        };
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&values), bits(&got));
    }

    /// A frame without trace context must keep encoding the exact pre-trace
    /// bytes — observability is free when off.
    #[test]
    fn ctx_free_frames_are_byte_identical_to_pre_trace_wire() {
        let frame = Frame::words(FrameKind::Data, 3, 1, vec![0xDEAD_BEEF_0000_0001, 7]);
        assert_eq!(
            frame.encode(),
            "marsit-wire/1 data 3 1 wdeadbeef000000010000000000000007\n"
        );
        assert!(!frame.encode().contains(" c"));
    }

    #[test]
    fn trace_context_roundtrips() {
        let ctx = TraceCtx {
            round: 42,
            seq: 0x0123_4567_89AB_CDEF,
            sender: 3,
            send_ns: u64::MAX,
        };
        let frame = Frame::words(FrameKind::Data, 3, 1, vec![7]).with_ctx(ctx);
        let line = frame.encode();
        assert_eq!(
            line,
            "marsit-wire/1 data 3 1 w0000000000000007 \
             c000000000000002a0123456789abcdef00000003ffffffffffffffff\n"
        );
        assert_eq!(
            line.len(),
            Frame::words(FrameKind::Data, 3, 1, vec![7]).encode().len() + CTX_WIRE_BYTES
        );
        let back = Frame::decode(&line).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.ctx, Some(ctx));
    }

    #[test]
    fn telem_bytes_roundtrip() {
        let batch = br#"{"t":0.5,"ev":"hop","seq":0}"#.to_vec();
        let frame = Frame::telem(2, batch.clone());
        let back = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(back.kind, FrameKind::Telem);
        assert_eq!(back.to, DRIVER);
        assert_eq!(back.payload, Payload::Bytes(batch));
        // Empty batches are legal (a rank with nothing to flush).
        let empty = Frame::telem(0, Vec::new());
        assert_eq!(Frame::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn malformed_trace_context_is_a_typed_error() {
        for bad in [
            "marsit-wire/1 data 0 1 w0000000000000007 c1234", // short
            "marsit-wire/1 data 0 1 w0000000000000007 x\u{ff}", // wrong tag
            "marsit-wire/1 data 0 1 - c000000000000002a0123456789abcdef00000003ffffffffffffffzz",
        ] {
            assert!(
                matches!(Frame::decode(bad), Err(WireError::BadPayload { .. })),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn typed_errors_never_panic() {
        assert!(matches!(
            Frame::decode("garbage"),
            Err(WireError::BadMagic { .. })
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/9 data 0 1 w00"),
            Err(WireError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/1 data 0"),
            Err(WireError::Truncated)
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/1 teleport 0 1 -"),
            Err(WireError::UnknownKind { .. })
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/1 data x 1 -"),
            Err(WireError::BadRank { .. })
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/1 data 0 1 w123"),
            Err(WireError::BadPayload { .. })
        ));
        assert!(matches!(
            Frame::decode("marsit-wire/1 data 0 1 zff"),
            Err(WireError::BadPayload { .. })
        ));
    }
}
