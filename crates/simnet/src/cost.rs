//! Closed-form communication costs for the collectives the paper compares.
//!
//! All functions use the α–β model of [`LinkModel`]: a hop of `B` bytes costs
//! `α + B/β`. Multi-hop collectives execute *steps* sequentially; within a
//! step every link carries at most one transfer, so the step costs the
//! maximum of its transfers. These are the standard first-order costs used
//! in the all-reduce literature (Baidu RAR, Horovod, 2D-torus of Mikami et
//! al.), which the paper's Section 3.1 bandwidth argument relies on:
//! RAR moves `2·(M−1)·D/M` weights per worker while PS moves `2·M·D` through
//! the server link.

use crate::link::LinkModel;
use crate::topology::Topology;

/// Total time of a sequence of dependent hops (each must finish before the
/// next starts), each hop carrying the given number of bytes.
#[must_use]
pub fn sequential_hops(link: LinkModel, hop_bytes: impl IntoIterator<Item = usize>) -> f64 {
    hop_bytes.into_iter().map(|b| link.transfer_time(b)).sum()
}

/// Time of a step-synchronous schedule: `steps[i]` lists the byte counts of
/// transfers that proceed in parallel on disjoint links during step `i`.
///
/// Each step costs `α + max(bytes)/β`; steps are sequential. Empty steps
/// cost nothing.
#[must_use]
pub fn schedule_time(link: LinkModel, steps: &[Vec<usize>]) -> f64 {
    steps
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| link.transfer_time(s.iter().copied().max().unwrap_or(0)))
        .sum()
}

/// Ring all-reduce of `total_bytes` across `m` workers:
/// `2(m−1)` steps, each moving a `total_bytes/m` segment on every link.
///
/// # Panics
///
/// Panics if `m < 2`.
#[must_use]
pub fn ring_allreduce_time(link: LinkModel, total_bytes: usize, m: usize) -> f64 {
    assert!(m >= 2, "ring all-reduce needs at least 2 workers");
    let seg = total_bytes.div_ceil(m);
    2.0 * (m - 1) as f64 * link.transfer_time(seg)
}

/// Ring all-reduce where the payload width varies per hop.
///
/// `reduce_hop_bytes[r]` is the per-segment message size at reduce step `r`
/// (`r ∈ 0..m−1`), and `gather_hop_bytes[g]` likewise for the gather phase.
/// This models MAR extensions of signSGD where partial sums need
/// `⌈log₂(r+2)⌉` bits per coordinate, so messages grow along the ring.
#[must_use]
pub fn ring_allreduce_time_varying(
    link: LinkModel,
    reduce_hop_bytes: &[usize],
    gather_hop_bytes: &[usize],
) -> f64 {
    sequential_hops(link, reduce_hop_bytes.iter().copied())
        + sequential_hops(link, gather_hop_bytes.iter().copied())
}

/// 2D-torus all-reduce of `total_bytes` on a `rows × cols` torus
/// (Mikami et al.): horizontal reduce-scatter, vertical all-reduce,
/// horizontal all-gather.
///
/// # Panics
///
/// Panics if either dimension is < 2.
#[must_use]
pub fn torus_allreduce_time(link: LinkModel, total_bytes: usize, rows: usize, cols: usize) -> f64 {
    assert!(rows >= 2 && cols >= 2, "torus needs both dimensions >= 2");
    let row_seg = total_bytes.div_ceil(cols);
    // Horizontal reduce-scatter: (cols−1) steps of total/cols.
    let rs = (cols - 1) as f64 * link.transfer_time(row_seg);
    // Vertical ring all-reduce on the local row segment.
    let vert = ring_allreduce_time(link, row_seg, rows);
    // Horizontal all-gather: (cols−1) steps of total/cols.
    let ag = (cols - 1) as f64 * link.transfer_time(row_seg);
    rs + vert + ag
}

/// Parameter-server exchange: `m` workers each upload `up_bytes` and then
/// download `down_bytes`, all through the server's single link (the PS
/// bottleneck the paper's Section 1/3.1 describes).
///
/// Uploads are pipelined back-to-back on the server ingress (one α, then the
/// aggregate payload), and likewise downloads on the egress.
#[must_use]
pub fn ps_exchange_time(link: LinkModel, up_bytes: usize, down_bytes: usize, m: usize) -> f64 {
    assert!(m >= 1, "PS needs at least 1 worker");
    link.transfer_time(up_bytes * m) + link.transfer_time(down_bytes * m)
}

/// Dispatches to the matching collective cost for `topology`, all-reducing
/// `total_bytes` of uniform-width payload.
///
/// For [`Topology::Star`] the exchange is `total_bytes` up and down per
/// worker.
#[must_use]
pub fn allreduce_time(link: LinkModel, total_bytes: usize, topology: Topology) -> f64 {
    match topology {
        Topology::Ring { workers } => ring_allreduce_time(link, total_bytes, workers),
        Topology::Torus { rows, cols } => torus_allreduce_time(link, total_bytes, rows, cols),
        Topology::Star { workers } => ps_exchange_time(link, total_bytes, total_bytes, workers),
    }
}

/// Wall-clock overhead of `retransmits` retransmissions of a
/// `payload_bytes` segment: each one first waits out the loss-detection
/// `timeout_s`, then pays the full α–β transfer cost again.
///
/// This is how the fault layer's retries show up in simulated time — see
/// [`crate::fault`].
#[must_use]
pub fn retry_overhead_time(
    link: LinkModel,
    payload_bytes: usize,
    retransmits: u64,
    timeout_s: f64,
) -> f64 {
    retransmits as f64 * (timeout_s + link.transfer_time(payload_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_link() -> LinkModel {
        // 1 byte/s, zero latency: times equal byte counts.
        LinkModel::new(0.0, 1.0)
    }

    #[test]
    fn ring_allreduce_matches_formula() {
        // 2(M−1) * (B/M): M=4, B=400 -> 6 * 100 = 600.
        let t = ring_allreduce_time(unit_link(), 400, 4);
        assert!((t - 600.0).abs() < 1e-9);
    }

    #[test]
    fn ring_latency_term_counts_steps() {
        let link = LinkModel::new(1.0, 1e12);
        // 2(M−1) steps of ~1s latency each.
        let t = ring_allreduce_time(link, 8, 5);
        assert!((t - 8.0).abs() < 1e-6);
    }

    #[test]
    fn torus_beats_ring_for_large_m() {
        let link = LinkModel::new(25e-6, 1.25e9);
        let bytes = 100 << 20; // 100 MiB
        let ring = ring_allreduce_time(link, bytes, 16);
        let torus = torus_allreduce_time(link, bytes, 4, 4);
        assert!(torus < ring, "torus {torus} should beat ring {ring}");
    }

    #[test]
    fn rar_beats_ps_for_uncompressed_payload() {
        // The paper's Fig 1a observation: non-compressed RAR < non-compressed PS.
        let link = LinkModel::new(25e-6, 1.25e9);
        let bytes = 92 << 20; // 23M params * 4 bytes
        let m = 8;
        let rar = ring_allreduce_time(link, bytes, m);
        let ps = ps_exchange_time(link, bytes, bytes, m);
        assert!(rar < ps, "RAR {rar} should beat PS {ps}");
    }

    #[test]
    fn varying_width_sums_hops() {
        let t = ring_allreduce_time_varying(unit_link(), &[10, 20], &[30, 40]);
        assert!((t - 100.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_time_takes_max_per_step() {
        let steps = vec![vec![10, 30, 20], vec![], vec![5]];
        assert!((schedule_time(unit_link(), &steps) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_time_dispatch() {
        let link = unit_link();
        assert_eq!(
            allreduce_time(link, 400, Topology::ring(4)),
            ring_allreduce_time(link, 400, 4)
        );
        assert_eq!(
            allreduce_time(link, 400, Topology::torus(2, 2)),
            torus_allreduce_time(link, 400, 2, 2)
        );
        assert_eq!(
            allreduce_time(link, 400, Topology::star(4)),
            ps_exchange_time(link, 400, 400, 4)
        );
    }

    #[test]
    fn torus_equals_components() {
        let link = unit_link();
        // rows=2, cols=2, B=80: rs = 1*40, vert = 2*1*20, ag = 1*40 -> 120.
        let t = torus_allreduce_time(link, 80, 2, 2);
        assert!((t - 120.0).abs() < 1e-9);
    }

    #[test]
    fn retry_overhead_prices_timeout_plus_transfer() {
        let link = LinkModel::new(2.0, 1.0); // α = 2 s, β = 1 B/s
                                             // 3 retransmits of 10 bytes with a 5 s timeout: 3 · (5 + 2 + 10).
        assert!((retry_overhead_time(link, 10, 3, 5.0) - 51.0).abs() < 1e-9);
        assert_eq!(retry_overhead_time(link, 10, 0, 5.0), 0.0);
    }
}
