//! Multi-process transport: one OS process per rank, `marsit-wire/1` over
//! localhost TCP.
//!
//! The fabric is hub-and-spoke: a driver process binds a [`WireHub`] on
//! `127.0.0.1`, each worker process opens one [`ProcessTransport`] connection
//! to it and announces itself with a `hello` frame, and the hub routes `data`
//! frames between workers. A star instead of a full mesh keeps connection
//! setup O(world) and gives the driver a single place to observe liveness:
//! when a worker's socket reaches EOF (clean exit or SIGKILL alike) the hub
//! broadcasts `down <rank>` to the survivors, whose next receive from that
//! rank fails with [`TransportError::PeerDisconnected`] and degrades through
//! the reconfiguration path instead of hanging.
//!
//! Round orchestration rides the same connection: the driver sends `round`
//! frames to start a collective, workers answer `result` (consensus words +
//! counters) or `failed` (the vanished peer), and `stop` shuts a worker down.
//! Every frame is one ASCII line (see [`crate::wire`]), so a session is
//! replayable from a packet capture.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::link::LinkModel;
use crate::transport::{Backend, Transport, TransportError};
use crate::wire::{Frame, FrameKind, Payload, TraceCtx, WireError, CTX_WIRE_BYTES, DRIVER};

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io(e.to_string())
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> Result<(), TransportError> {
    stream.write_all(frame.encode().as_bytes()).map_err(io_err)
}

/// Reads one frame off a buffered socket. `Ok(None)` means clean EOF.
fn read_frame(reader: &mut BufReader<TcpStream>) -> Result<Option<Frame>, TransportError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(io_err)?;
    if n == 0 {
        return Ok(None);
    }
    Ok(Some(Frame::decode(&line)?))
}

/// Something the hub observed on its worker connections.
#[derive(Debug, Clone, PartialEq)]
pub enum HubEvent {
    /// A frame addressed to the driver (`hello`, `result`, `failed`).
    Frame(Frame),
    /// A worker's socket closed (exit or crash).
    Disconnected(usize),
}

/// Driver-side sink for the workers' telemetry side channel.
///
/// Workers with tracing enabled flush their event batches as `telem` frames
/// at round boundaries; the hub's reader threads file them here per rank
/// (never into the control inbox, so tracing cannot perturb round
/// orchestration). The collector also meters *every* observability byte
/// that crossed the wire — `telem` frame bytes plus the trace-context
/// overhead on routed `data` frames — so a disabled-collector run can
/// assert its side channel stayed at exactly zero.
#[derive(Debug, Default)]
pub struct TraceCollector {
    /// `batches[rank]`: JSONL batch texts in arrival order.
    batches: Mutex<Vec<Vec<String>>>,
    signal: Condvar,
    side_channel_bytes: AtomicU64,
}

impl TraceCollector {
    fn with_world(world: usize) -> Self {
        Self {
            batches: Mutex::new((0..world).map(|_| Vec::new()).collect()),
            signal: Condvar::new(),
            side_channel_bytes: AtomicU64::new(0),
        }
    }

    fn push(&self, rank: usize, batch: String) {
        let mut batches = self.batches.lock().expect("collector batches");
        if let Some(slot) = batches.get_mut(rank) {
            slot.push(batch);
        }
        drop(batches);
        self.signal.notify_all();
    }

    fn add_wire_bytes(&self, n: usize) {
        self.side_channel_bytes
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Total observability bytes that crossed the wire: encoded `telem`
    /// frames plus trace-context segments on `data` frames. Exactly 0 when
    /// tracing was never enabled.
    #[must_use]
    pub fn side_channel_bytes(&self) -> u64 {
        self.side_channel_bytes.load(Ordering::Relaxed)
    }

    /// Number of batches received from `rank` so far.
    #[must_use]
    pub fn batch_count(&self, rank: usize) -> usize {
        self.batches.lock().expect("collector batches")[rank].len()
    }

    /// Blocks until every rank in `0..world` has sent at least `count`
    /// batches, or `timeout` elapses. Returns whether the target was met.
    #[must_use]
    pub fn wait_batches(&self, world: usize, count: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut batches = self.batches.lock().expect("collector batches");
        loop {
            if batches.iter().take(world).all(|b| b.len() >= count) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .signal
                .wait_timeout(batches, deadline - now)
                .expect("collector wait");
            batches = guard;
        }
    }

    /// The batch each rank sent at flush point `index` (`None` for ranks
    /// that have not reached it).
    #[must_use]
    pub fn batch_at(&self, index: usize) -> Vec<Option<String>> {
        self.batches
            .lock()
            .expect("collector batches")
            .iter()
            .map(|b| b.get(index).cloned())
            .collect()
    }

    /// Moves all collected batches out, per rank in arrival order.
    #[must_use]
    pub fn take_batches(&self) -> Vec<Vec<String>> {
        let mut batches = self.batches.lock().expect("collector batches");
        batches.iter_mut().map(std::mem::take).collect()
    }
}

struct HubShared {
    /// Writer half per rank; `None` while that rank is down.
    conns: Mutex<Vec<Option<TcpStream>>>,
    inbox: Mutex<VecDeque<HubEvent>>,
    signal: Condvar,
    collector: TraceCollector,
}

impl HubShared {
    fn push(&self, event: HubEvent) {
        self.inbox.lock().expect("hub inbox").push_back(event);
        self.signal.notify_all();
    }

    /// Writes `frame` to `rank` if it is up. Returns whether it was up.
    fn route_to(&self, rank: usize, frame: &Frame) -> bool {
        let mut conns = self.conns.lock().expect("hub conns");
        if let Some(Some(stream)) = conns.get_mut(rank) {
            if write_frame(stream, frame).is_ok() {
                return true;
            }
        }
        false
    }

    fn broadcast(&self, frame: &Frame) {
        let mut conns = self.conns.lock().expect("hub conns");
        for stream in conns.iter_mut().flatten() {
            let _ = write_frame(stream, frame);
        }
    }

    fn drop_rank(&self, rank: usize) {
        let mut conns = self.conns.lock().expect("hub conns");
        if let Some(slot) = conns.get_mut(rank) {
            *slot = None;
        }
        drop(conns);
        self.broadcast(&Frame::control(FrameKind::Down, rank as u32, DRIVER));
        self.push(HubEvent::Disconnected(rank));
    }
}

/// Driver-side hub: routes `data` frames between worker processes and
/// surfaces driver-addressed frames and disconnects as [`HubEvent`]s.
pub struct WireHub {
    listener: TcpListener,
    world: usize,
    shared: Arc<HubShared>,
}

impl WireHub {
    /// Binds a hub for `world` ranks on an ephemeral localhost port.
    ///
    /// # Errors
    ///
    /// Fails if the loopback listener cannot be bound.
    pub fn bind(world: usize) -> Result<Self, TransportError> {
        assert!(world > 0, "hub needs at least one rank");
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(io_err)?;
        Ok(Self {
            listener,
            world,
            shared: Arc::new(HubShared {
                conns: Mutex::new((0..world).map(|_| None).collect()),
                inbox: Mutex::new(VecDeque::new()),
                signal: Condvar::new(),
                collector: TraceCollector::with_world(world),
            }),
        })
    }

    /// Number of ranks this hub serves.
    #[must_use]
    pub fn world(&self) -> usize {
        self.world
    }

    /// The `host:port` workers should connect to.
    ///
    /// # Errors
    ///
    /// Fails if the local address cannot be read back from the socket.
    pub fn addr(&self) -> Result<SocketAddr, TransportError> {
        self.listener.local_addr().map_err(io_err)
    }

    /// Accepts one worker connection: waits for its `hello`, registers the
    /// writer (replacing any dead connection for that rank — this is how a
    /// crashed worker rejoins), and spawns its reader thread. Returns the
    /// worker's rank.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a malformed first frame, or a rank outside
    /// `0..world`.
    pub fn accept_worker(&self) -> Result<usize, TransportError> {
        let (stream, _) = self.listener.accept().map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        let hello = read_frame(&mut reader)?
            .ok_or_else(|| TransportError::Io("worker closed before hello".into()))?;
        if hello.kind != FrameKind::Hello {
            return Err(TransportError::Wire(WireError::BadPayload {
                reason: format!("expected hello, got {:?}", hello.kind),
            }));
        }
        let rank = hello.from as usize;
        if rank >= self.world {
            return Err(TransportError::Wire(WireError::BadRank {
                found: hello.from.to_string(),
            }));
        }
        self.shared.conns.lock().expect("hub conns")[rank] = Some(stream);
        self.shared.push(HubEvent::Frame(hello));
        // Announce the (re)joined rank to every worker: a `hello` control
        // frame clears the rank from their dead sets, so a rejoined peer is
        // usable again from the next round on.
        self.shared
            .broadcast(&Frame::control(FrameKind::Hello, rank as u32, DRIVER));
        let shared = Arc::clone(&self.shared);
        std::thread::spawn(move || hub_reader(&shared, rank, reader));
        Ok(rank)
    }

    /// Sends a driver frame (`round`, `stop`, …) to one worker.
    ///
    /// # Errors
    ///
    /// Fails with [`TransportError::PeerDisconnected`] if the rank is down.
    pub fn send_to(&self, rank: usize, frame: &Frame) -> Result<(), TransportError> {
        if self.shared.route_to(rank, frame) {
            Ok(())
        } else {
            Err(TransportError::PeerDisconnected { peer: rank })
        }
    }

    /// Sends a driver frame to every live worker.
    pub fn broadcast(&self, frame: &Frame) {
        self.shared.broadcast(frame);
    }

    /// Next driver-addressed frame or disconnect, blocking.
    #[must_use]
    pub fn next_event(&self) -> HubEvent {
        let mut inbox = self.shared.inbox.lock().expect("hub inbox");
        loop {
            if let Some(event) = inbox.pop_front() {
                return event;
            }
            inbox = self.shared.signal.wait(inbox).expect("hub wait");
        }
    }

    /// Like [`Self::next_event`] but gives up after `timeout`.
    #[must_use]
    pub fn next_event_timeout(&self, timeout: Duration) -> Option<HubEvent> {
        let deadline = Instant::now() + timeout;
        let mut inbox = self.shared.inbox.lock().expect("hub inbox");
        loop {
            if let Some(event) = inbox.pop_front() {
                return Some(event);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .signal
                .wait_timeout(inbox, deadline - now)
                .expect("hub wait");
            inbox = guard;
        }
    }

    /// Whether `rank` currently has a live connection.
    #[must_use]
    pub fn is_up(&self, rank: usize) -> bool {
        self.shared.conns.lock().expect("hub conns")[rank].is_some()
    }

    /// The hub's telemetry side-channel sink.
    #[must_use]
    pub fn collector(&self) -> &TraceCollector {
        &self.shared.collector
    }
}

/// Per-connection reader: routes worker frames until EOF, then reports the
/// rank down.
fn hub_reader(shared: &HubShared, rank: usize, mut reader: BufReader<TcpStream>) {
    loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) => {
                if frame.kind == FrameKind::Telem {
                    // Telemetry batches go to the collector, never the
                    // control inbox: the side channel cannot stall or
                    // reorder round orchestration.
                    shared.collector.add_wire_bytes(frame.encode().len());
                    if let Payload::Bytes(bytes) = frame.payload {
                        shared
                            .collector
                            .push(rank, String::from_utf8_lossy(&bytes).into_owned());
                    }
                    continue;
                }
                if frame.ctx.is_some() {
                    shared.collector.add_wire_bytes(CTX_WIRE_BYTES);
                }
                let to = frame.to;
                if to == DRIVER {
                    shared.push(HubEvent::Frame(frame));
                } else if !shared.route_to(to as usize, &frame) {
                    // Target is down: bounce a `down` back so the sender's
                    // next receive from it fails instead of blocking.
                    shared.route_to(rank, &Frame::control(FrameKind::Down, to, rank as u32));
                }
            }
            Ok(None) | Err(_) => {
                shared.drop_rank(rank);
                return;
            }
        }
    }
}

/// Worker-side endpoint: one TCP connection to the driver's [`WireHub`].
pub struct ProcessTransport {
    rank: usize,
    world: usize,
    link: LinkModel,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// `data` payloads queued per sender (FIFO) with their trace context,
    /// filled while draining the socket for something else.
    inbox: Vec<VecDeque<(Vec<u64>, Option<TraceCtx>)>>,
    /// Driver control frames (`round`, `stop`) queued the same way.
    control: VecDeque<Frame>,
    dead: Vec<bool>,
    started: Instant,
    /// When set, traced sends stamp a [`TraceCtx`] onto their data frames.
    tracing: bool,
    /// Round number stamped into outgoing trace contexts.
    trace_round: u64,
}

impl ProcessTransport {
    /// Connects to the hub at `addr` and announces `rank`.
    ///
    /// # Errors
    ///
    /// Fails if the connection or the `hello` write fails.
    pub fn connect(
        addr: &str,
        rank: usize,
        world: usize,
        link: LinkModel,
    ) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        let mut writer = stream;
        write_frame(
            &mut writer,
            &Frame::control(FrameKind::Hello, rank as u32, DRIVER),
        )?;
        Ok(Self {
            rank,
            world,
            link,
            reader,
            writer,
            inbox: (0..world).map(|_| VecDeque::new()).collect(),
            control: VecDeque::new(),
            dead: vec![false; world],
            started: Instant::now(),
            tracing: false,
            trace_round: 0,
        })
    }

    /// Enables (or disables) trace-context stamping on outgoing data
    /// frames. Off by default: an untraced connection's wire bytes are
    /// identical to the pre-trace protocol.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Sets the round number stamped into outgoing trace contexts (call at
    /// each round start, alongside [`ProcessTransport::reset_round`]).
    pub fn set_trace_round(&mut self, round: u64) {
        self.trace_round = round;
    }

    /// Flushes a telemetry JSONL batch to the hub's [`TraceCollector`] as a
    /// `telem` frame. Callers gate on their own tracing flag; an empty
    /// batch is legal (it still marks the flush point).
    ///
    /// # Errors
    ///
    /// Fails on socket errors.
    pub fn send_telemetry(&mut self, batch: &str) -> Result<(), TransportError> {
        write_frame(
            &mut self.writer,
            &Frame::telem(self.rank as u32, batch.as_bytes().to_vec()),
        )
    }

    /// Reads one frame and files it (data → per-sender inbox, down → dead
    /// set, control → control queue).
    fn pump(&mut self) -> Result<(), TransportError> {
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| TransportError::Io("hub connection closed".into()))?;
        match frame.kind {
            FrameKind::Data => {
                let from = frame.from as usize;
                if from < self.world {
                    if let Payload::Words(words) = frame.payload {
                        self.inbox[from].push_back((words, frame.ctx));
                    }
                }
            }
            FrameKind::Down => {
                let rank = frame.from as usize;
                if rank < self.world {
                    self.dead[rank] = true;
                }
            }
            // The hub announces every (re)joined rank with a `hello`; the
            // rank is reachable again.
            FrameKind::Hello => {
                let rank = frame.from as usize;
                if rank < self.world {
                    self.dead[rank] = false;
                }
            }
            _ => self.control.push_back(frame),
        }
        Ok(())
    }

    /// Next driver control frame (`round`, `stop`, …), blocking. Data
    /// frames that arrive first — a faster peer already running the next
    /// round — are buffered, not lost.
    ///
    /// # Errors
    ///
    /// Fails if the hub connection drops or a frame fails to decode.
    pub fn recv_control(&mut self) -> Result<Frame, TransportError> {
        loop {
            if let Some(frame) = self.control.pop_front() {
                return Ok(frame);
            }
            self.pump()?;
        }
    }

    /// Sends a driver-addressed frame (`result`, `failed`).
    ///
    /// # Errors
    ///
    /// Fails on socket errors.
    pub fn send_frame(&mut self, frame: &Frame) -> Result<(), TransportError> {
        write_frame(&mut self.writer, frame)
    }

    /// Forgets that `rank` was seen down (call when the driver announces a
    /// rejoin before the next round).
    pub fn clear_dead(&mut self, rank: usize) {
        if rank < self.world {
            self.dead[rank] = false;
        }
    }

    /// Discards all buffered data payloads. Call on a `round` frame: the
    /// hub writes `round` to this connection *after* everything the aborted
    /// previous round routed here, so whatever sits in the inbox at that
    /// point is stale. Dead-set state is kept — liveness is tracked by
    /// `down`/`hello` announcements, not by rounds.
    pub fn reset_round(&mut self) {
        for q in &mut self.inbox {
            q.clear();
        }
    }
}

impl Transport for ProcessTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.world
    }

    fn backend(&self) -> Backend {
        Backend::Process
    }

    fn link(&self) -> LinkModel {
        self.link
    }

    fn clock_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn send_words(&mut self, to: usize, words: &[u64]) -> Result<(), TransportError> {
        if to >= self.world || self.dead[to] {
            return Err(TransportError::PeerDisconnected { peer: to });
        }
        write_frame(
            &mut self.writer,
            &Frame::words(FrameKind::Data, self.rank as u32, to as u32, words.to_vec()),
        )
    }

    fn recv_words(&mut self, from: usize) -> Result<Vec<u64>, TransportError> {
        self.recv_words_traced(from).map(|(words, _)| words)
    }

    fn send_words_traced(
        &mut self,
        to: usize,
        words: &[u64],
        seq: u64,
    ) -> Result<(), TransportError> {
        if !self.tracing {
            return self.send_words(to, words);
        }
        if to >= self.world || self.dead[to] {
            return Err(TransportError::PeerDisconnected { peer: to });
        }
        let frame = Frame::words(FrameKind::Data, self.rank as u32, to as u32, words.to_vec())
            .with_ctx(TraceCtx {
                round: self.trace_round,
                seq,
                sender: self.rank as u32,
                send_ns: wall_now_ns(),
            });
        write_frame(&mut self.writer, &frame)
    }

    fn recv_words_traced(
        &mut self,
        from: usize,
    ) -> Result<(Vec<u64>, Option<TraceCtx>), TransportError> {
        if from >= self.world {
            return Err(TransportError::PeerDisconnected { peer: from });
        }
        loop {
            if let Some(entry) = self.inbox[from].pop_front() {
                return Ok(entry);
            }
            // Any death dooms the whole collective (every plan spans all
            // ranks), so abort on the first one we learn of — even when the
            // immediate sender is alive, somebody upstream of it stopped
            // forwarding, and waiting on this socket would hang forever.
            if let Some(peer) = (0..self.world).find(|&r| self.dead[r]) {
                return Err(TransportError::PeerDisconnected { peer });
            }
            self.pump()?;
        }
    }
}

/// Wall-clock nanos since the UNIX epoch (the trace-context send stamp).
fn wall_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkModel {
        LinkModel::new(25e-6, 1.25e9)
    }

    #[test]
    fn two_workers_exchange_words_through_hub() {
        let hub = WireHub::bind(2).unwrap();
        let addr = hub.addr().unwrap().to_string();
        let workers: Vec<_> = (0..2)
            .map(|rank| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut t = ProcessTransport::connect(&addr, rank, 2, link()).unwrap();
                    // Wait for the driver's go signal: peers may not have
                    // registered with the hub yet, and a send to an
                    // unregistered rank bounces as `down`.
                    assert_eq!(t.recv_control().unwrap().kind, FrameKind::Round);
                    let peer = 1 - rank;
                    t.send_words(peer, &[rank as u64 + 100, 0x8000_0000_0000_0000])
                        .unwrap();
                    let got = t.recv_words(peer).unwrap();
                    assert_eq!(got, vec![peer as u64 + 100, 0x8000_0000_0000_0000]);
                    t.send_frame(&Frame::words(FrameKind::Result, rank as u32, DRIVER, got))
                        .unwrap();
                })
            })
            .collect();
        hub.accept_worker().unwrap();
        hub.accept_worker().unwrap();
        hub.broadcast(&Frame::control(FrameKind::Round, DRIVER, DRIVER));
        let mut results = 0;
        while results < 2 {
            match hub.next_event_timeout(Duration::from_secs(30)) {
                Some(HubEvent::Frame(f)) if f.kind == FrameKind::Result => results += 1,
                Some(_) => {}
                None => panic!("timed out waiting for worker results"),
            }
        }
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn collector_receives_batches_and_meters_the_side_channel() {
        let hub = WireHub::bind(2).unwrap();
        let addr = hub.addr().unwrap().to_string();
        let workers: Vec<_> = (0..2usize)
            .map(|rank| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut t = ProcessTransport::connect(&addr, rank, 2, link()).unwrap();
                    assert_eq!(t.recv_control().unwrap().kind, FrameKind::Round);
                    t.set_tracing(true);
                    t.set_trace_round(7);
                    let peer = 1 - rank;
                    t.send_words_traced(peer, &[rank as u64], 42).unwrap();
                    let (words, ctx) = t.recv_words_traced(peer).unwrap();
                    assert_eq!(words, vec![peer as u64]);
                    let ctx = ctx.expect("traced frame carries context");
                    assert_eq!(ctx.round, 7);
                    assert_eq!(ctx.seq, 42);
                    assert_eq!(ctx.sender, peer as u32);
                    assert!(ctx.send_ns > 0);
                    t.send_telemetry(&format!("{{\"t\":0.0,\"ev\":\"x\",\"rank\":{rank}}}\n"))
                        .unwrap();
                })
            })
            .collect();
        hub.accept_worker().unwrap();
        hub.accept_worker().unwrap();
        hub.broadcast(&Frame::control(FrameKind::Round, DRIVER, DRIVER));
        assert!(
            hub.collector().wait_batches(2, 1, Duration::from_secs(30)),
            "collector did not see one batch per rank"
        );
        for w in workers {
            w.join().unwrap();
        }
        let batches = hub.collector().take_batches();
        assert!(batches[0][0].contains("\"rank\":0"));
        assert!(batches[1][0].contains("\"rank\":1"));
        // Two telem frames + two ctx segments crossed the wire.
        let bytes = hub.collector().side_channel_bytes();
        assert!(
            bytes as usize >= 2 * CTX_WIRE_BYTES,
            "side channel undercounted: {bytes}"
        );
    }

    #[test]
    fn untraced_run_puts_zero_bytes_on_the_side_channel() {
        let hub = WireHub::bind(2).unwrap();
        let addr = hub.addr().unwrap().to_string();
        let workers: Vec<_> = (0..2usize)
            .map(|rank| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut t = ProcessTransport::connect(&addr, rank, 2, link()).unwrap();
                    assert_eq!(t.recv_control().unwrap().kind, FrameKind::Round);
                    let peer = 1 - rank;
                    // Traced entry points with tracing off: nothing extra on
                    // the wire, no context on arrival.
                    t.send_words_traced(peer, &[rank as u64], 42).unwrap();
                    let (_, ctx) = t.recv_words_traced(peer).unwrap();
                    assert_eq!(ctx, None);
                    t.send_frame(&Frame::words(
                        FrameKind::Result,
                        rank as u32,
                        DRIVER,
                        vec![],
                    ))
                    .unwrap();
                })
            })
            .collect();
        hub.accept_worker().unwrap();
        hub.accept_worker().unwrap();
        hub.broadcast(&Frame::control(FrameKind::Round, DRIVER, DRIVER));
        let mut results = 0;
        while results < 2 {
            match hub.next_event_timeout(Duration::from_secs(30)) {
                Some(HubEvent::Frame(f)) if f.kind == FrameKind::Result => results += 1,
                Some(_) => {}
                None => panic!("timed out"),
            }
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(hub.collector().side_channel_bytes(), 0);
    }

    #[test]
    fn dead_peer_surfaces_as_peer_disconnected() {
        let hub = WireHub::bind(2).unwrap();
        let addr = hub.addr().unwrap().to_string();
        let survivor = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut t = ProcessTransport::connect(&addr, 0, 2, link()).unwrap();
                t.recv_words(1)
            })
        };
        let doomed = ProcessTransport::connect(&addr, 1, 2, link()).unwrap();
        hub.accept_worker().unwrap();
        hub.accept_worker().unwrap();
        drop(doomed); // socket EOF → hub broadcasts `down 1`
        assert_eq!(
            survivor.join().unwrap(),
            Err(TransportError::PeerDisconnected { peer: 1 })
        );
        // The hub saw the disconnect too.
        let mut saw_down = false;
        while let Some(ev) = hub.next_event_timeout(Duration::from_secs(5)) {
            if ev == HubEvent::Disconnected(1) {
                saw_down = true;
                break;
            }
        }
        assert!(saw_down);
        assert!(!hub.is_up(1));
    }

    #[test]
    fn any_death_unblocks_survivors_waiting_on_live_peers() {
        let hub = WireHub::bind(3).unwrap();
        let addr = hub.addr().unwrap().to_string();
        let waiter = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut t = ProcessTransport::connect(&addr, 2, 3, link()).unwrap();
                // Rank 0 is alive but silent; rank 1's death must still
                // abort this receive (the collective is doomed either way),
                // and the error names the rank that actually died.
                t.recv_words(0)
            })
        };
        let silent = ProcessTransport::connect(&addr, 0, 3, link()).unwrap();
        let doomed = ProcessTransport::connect(&addr, 1, 3, link()).unwrap();
        for _ in 0..3 {
            hub.accept_worker().unwrap();
        }
        drop(doomed);
        assert_eq!(
            waiter.join().unwrap(),
            Err(TransportError::PeerDisconnected { peer: 1 })
        );
        drop(silent);
    }

    #[test]
    fn crashed_rank_can_rejoin() {
        let hub = WireHub::bind(2).unwrap();
        let addr = hub.addr().unwrap().to_string();
        let first = ProcessTransport::connect(&addr, 1, 2, link()).unwrap();
        hub.accept_worker().unwrap();
        drop(first);
        loop {
            match hub.next_event_timeout(Duration::from_secs(30)) {
                Some(HubEvent::Disconnected(1)) => break,
                Some(_) => {}
                None => panic!("timed out waiting for the disconnect"),
            }
        }
        // Same rank, fresh process (modeled by a fresh connection).
        let mut second = ProcessTransport::connect(&addr, 1, 2, link()).unwrap();
        assert_eq!(hub.accept_worker().unwrap(), 1);
        assert!(hub.is_up(1));
        hub.send_to(1, &Frame::control(FrameKind::Stop, DRIVER, 1))
            .unwrap();
        assert_eq!(second.recv_control().unwrap().kind, FrameKind::Stop);
    }
}
