//! The α–β link cost model and hardware rate profiles.
//!
//! A point-to-point transfer of `B` bytes costs `α + B/β` seconds — the
//! standard first-order model for collective-communication analysis. Rate
//! profiles bundle the link with compute and codec throughputs so a whole
//! cluster is described by one value.

/// Cost model for one network link.
///
/// # Examples
///
/// ```
/// use marsit_simnet::LinkModel;
///
/// let link = LinkModel::new(25e-6, 1.25e9); // 25 µs latency, 10 Gb/s
/// let t = link.transfer_time(1_250_000);
/// assert!((t - 0.001025).abs() < 1e-9); // 25 µs + 1 ms
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkModel {
    latency_s: f64,
    bandwidth_bytes_per_s: f64,
}

impl LinkModel {
    /// Creates a link with the given latency (α, seconds) and bandwidth
    /// (β, bytes/second).
    ///
    /// # Panics
    ///
    /// Panics if `latency_s < 0` or `bandwidth_bytes_per_s <= 0`.
    #[must_use]
    pub fn new(latency_s: f64, bandwidth_bytes_per_s: f64) -> Self {
        assert!(latency_s >= 0.0, "latency must be non-negative");
        assert!(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
        Self {
            latency_s,
            bandwidth_bytes_per_s,
        }
    }

    /// Link latency α in seconds.
    #[must_use]
    pub fn latency_s(self) -> f64 {
        self.latency_s
    }

    /// Link bandwidth β in bytes per second.
    #[must_use]
    pub fn bandwidth_bytes_per_s(self) -> f64 {
        self.bandwidth_bytes_per_s
    }

    /// Time to move `bytes` across the link: `α + bytes/β`.
    #[must_use]
    pub fn transfer_time(self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

/// Hardware rates for one worker node: link, accelerator, and codec speeds.
///
/// The defaults in [`RateProfile::public_cloud`] approximate the paper's
/// testbed (Nvidia T4 nodes on a shared-tenancy 10 GbE cloud network); the
/// absolute numbers only set the time axis scale — the paper-level claims
/// all concern *relative* times between strategies.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RateProfile {
    /// Point-to-point link.
    pub link: LinkModel,
    /// Sustained training throughput of the accelerator, FLOP/s.
    pub flops_per_s: f64,
    /// Elements/second for simple streaming codecs (sign extraction,
    /// bit packing, scaling). Memory-bandwidth bound.
    pub codec_elems_per_s: f64,
    /// Elements/second for random-number-driven codecs (stochastic
    /// rounding, Bernoulli transient vectors). Slower than plain streaming.
    pub rng_elems_per_s: f64,
}

impl RateProfile {
    /// Network-intensive public cloud: 10 GbE with 25 µs latency, one T4-class
    /// accelerator (8 TFLOP/s sustained FP32), 2 G elem/s streaming codec,
    /// 0.8 G elem/s stochastic codec.
    #[must_use]
    pub fn public_cloud() -> Self {
        Self {
            link: LinkModel::new(25e-6, 1.25e9),
            flops_per_s: 8.0e12,
            codec_elems_per_s: 2.0e9,
            rng_elems_per_s: 0.8e9,
        }
    }

    /// HPC interconnect: 100 Gb/s, 5 µs latency, same compute.
    ///
    /// Included for sensitivity studies: with this profile communication no
    /// longer dominates and compression gains shrink, which is exactly the
    /// regime the paper scopes itself away from.
    #[must_use]
    pub fn hpc() -> Self {
        Self {
            link: LinkModel::new(5e-6, 12.5e9),
            ..Self::public_cloud()
        }
    }

    /// Time to execute `flops` of training compute.
    #[must_use]
    pub fn compute_time(&self, flops: f64) -> f64 {
        assert!(flops >= 0.0, "flops must be non-negative");
        flops / self.flops_per_s
    }

    /// Time for a streaming codec pass over `elems` elements.
    #[must_use]
    pub fn codec_time(&self, elems: usize) -> f64 {
        elems as f64 / self.codec_elems_per_s
    }

    /// Time for a stochastic (RNG-driven) codec pass over `elems` elements.
    #[must_use]
    pub fn rng_time(&self, elems: usize) -> f64 {
        elems as f64 / self.rng_elems_per_s
    }
}

impl Default for RateProfile {
    fn default() -> Self {
        Self::public_cloud()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_components() {
        let link = LinkModel::new(1e-3, 1e6);
        assert!((link.transfer_time(0) - 1e-3).abs() < 1e-12);
        assert!((link.transfer_time(1_000_000) - 1.001).abs() < 1e-9);
    }

    #[test]
    fn profile_times_scale_linearly() {
        let p = RateProfile::public_cloud();
        assert!((p.codec_time(2_000_000_000) - 1.0).abs() < 1e-9);
        assert!(p.rng_time(1000) > p.codec_time(1000));
        assert!((p.compute_time(8.0e12) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hpc_is_faster_than_cloud() {
        let cloud = RateProfile::public_cloud();
        let hpc = RateProfile::hpc();
        assert!(hpc.link.transfer_time(1 << 20) < cloud.link.transfer_time(1 << 20));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = LinkModel::new(0.0, 0.0);
    }
}
