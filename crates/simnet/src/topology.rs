//! Network topologies for multi-hop all-reduce.
//!
//! The paper evaluates three synchronization fabrics: a ring (RAR), a 2D
//! torus (TAR), and a star (the parameter-server baseline). [`Topology`]
//! captures the shape; neighbour relations are exposed so collectives can
//! route messages and the simulator can charge per-link times.

use std::fmt;

/// A cluster interconnect shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Topology {
    /// A unidirectional ring of `workers` nodes (ring all-reduce, RAR).
    Ring {
        /// Number of workers.
        workers: usize,
    },
    /// A 2D torus of `rows × cols` nodes (2D-torus all-reduce, TAR).
    Torus {
        /// Ring length in the vertical dimension.
        rows: usize,
        /// Ring length in the horizontal dimension.
        cols: usize,
    },
    /// A star: `workers` leaves attached to one central server (PS).
    Star {
        /// Number of worker leaves (the server is extra).
        workers: usize,
    },
}

impl Topology {
    /// Ring topology over `workers` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `workers < 2`.
    #[must_use]
    pub fn ring(workers: usize) -> Self {
        assert!(workers >= 2, "ring needs at least 2 workers");
        Self::Ring { workers }
    }

    /// Torus topology over `rows × cols` nodes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is < 2.
    #[must_use]
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "torus needs both dimensions >= 2");
        Self::Torus { rows, cols }
    }

    /// Square torus over `workers` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is not a perfect square of side >= 2.
    #[must_use]
    pub fn square_torus(workers: usize) -> Self {
        let side = (workers as f64).sqrt().round() as usize;
        assert_eq!(
            side * side,
            workers,
            "worker count {workers} is not a perfect square"
        );
        Self::torus(side, side)
    }

    /// Star topology over `workers` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `workers < 1`.
    #[must_use]
    pub fn star(workers: usize) -> Self {
        assert!(workers >= 1, "star needs at least 1 worker");
        Self::Star { workers }
    }

    /// Number of gradient-computing workers.
    #[must_use]
    pub fn workers(self) -> usize {
        match self {
            Self::Ring { workers } | Self::Star { workers } => workers,
            Self::Torus { rows, cols } => rows * cols,
        }
    }

    /// Successor of `w` on the ring (ring topology and torus row/col rings).
    ///
    /// # Panics
    ///
    /// Panics for [`Topology::Star`] (a star has no ring successor) or if
    /// `w` is out of range.
    #[must_use]
    pub fn ring_next(self, w: usize) -> usize {
        match self {
            Self::Ring { workers } => {
                assert!(w < workers, "worker {w} out of range");
                (w + 1) % workers
            }
            Self::Torus { .. } => panic!("torus routing is per-dimension; use torus_coords"),
            Self::Star { .. } => panic!("star topology has no ring successor"),
        }
    }

    /// `(row, col)` coordinates of worker `w` in a torus (row-major).
    ///
    /// # Panics
    ///
    /// Panics for non-torus topologies or out-of-range `w`.
    #[must_use]
    pub fn torus_coords(self, w: usize) -> (usize, usize) {
        match self {
            Self::Torus { rows, cols } => {
                assert!(w < rows * cols, "worker {w} out of range");
                (w / cols, w % cols)
            }
            _ => panic!("torus_coords on non-torus topology"),
        }
    }

    /// Worker index at `(row, col)` in a torus.
    ///
    /// # Panics
    ///
    /// Panics for non-torus topologies or out-of-range coordinates.
    #[must_use]
    pub fn torus_index(self, row: usize, col: usize) -> usize {
        match self {
            Self::Torus { rows, cols } => {
                assert!(row < rows && col < cols, "({row},{col}) out of range");
                row * cols + col
            }
            _ => panic!("torus_index on non-torus topology"),
        }
    }

    /// Short name used in reports ("RAR", "TAR", "PS").
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Self::Ring { .. } => "RAR",
            Self::Torus { .. } => "TAR",
            Self::Star { .. } => "PS",
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Ring { workers } => write!(f, "ring({workers})"),
            Self::Torus { rows, cols } => write!(f, "torus({rows}x{cols})"),
            Self::Star { workers } => write!(f, "star({workers})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_next_wraps() {
        let t = Topology::ring(4);
        assert_eq!(t.ring_next(0), 1);
        assert_eq!(t.ring_next(3), 0);
    }

    #[test]
    fn torus_coords_round_trip() {
        let t = Topology::torus(3, 4);
        for w in 0..12 {
            let (r, c) = t.torus_coords(w);
            assert_eq!(t.torus_index(r, c), w);
        }
    }

    #[test]
    fn square_torus_sides() {
        assert_eq!(Topology::square_torus(16), Topology::torus(4, 4));
        assert_eq!(Topology::square_torus(16).workers(), 16);
    }

    #[test]
    fn worker_counts() {
        assert_eq!(Topology::ring(5).workers(), 5);
        assert_eq!(Topology::torus(2, 3).workers(), 6);
        assert_eq!(Topology::star(7).workers(), 7);
    }

    #[test]
    fn short_names() {
        assert_eq!(Topology::ring(3).short_name(), "RAR");
        assert_eq!(Topology::torus(2, 2).short_name(), "TAR");
        assert_eq!(Topology::star(3).short_name(), "PS");
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_torus_panics() {
        let _ = Topology::square_torus(12);
    }

    #[test]
    #[should_panic(expected = "no ring successor")]
    fn star_ring_next_panics() {
        let _ = Topology::star(3).ring_next(0);
    }
}
