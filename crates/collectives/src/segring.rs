//! Segmented-ring all-reduce: the second extension paradigm the paper names
//! (Jia et al., "Highly scalable deep learning training system with
//! mixed-precision", arXiv:1807.11205).
//!
//! The payload is cut into `S` *macro-segments* that are each all-reduced by
//! an independent ring pass, pipelined one step apart: while macro-segment 0
//! runs its step `k`, macro-segment 1 runs its step `k−1`, and so on. All
//! pipelines share the same physical ring, so within one wall-clock step a
//! link carries one transfer per active pipeline — the trace records them in
//! the same step (they are serialized on the link by the α–β pricing via
//! transfer size, while the per-step α is paid once, which is exactly the
//! latency-hiding the scheme exists for).
//!
//! With `S = 1` this degenerates to plain ring all-reduce.

use marsit_simnet::FaultInjector;
use marsit_tensor::SignVec;

use crate::reconfigure::SyncError;
use crate::ring::{
    ring_allreduce_onebit, ring_allreduce_onebit_faulty, ring_allreduce_sum, segment_ranges,
    CombineCtx,
};
use crate::trace::Trace;

/// In-place segmented-ring all-reduce summing `f32` payloads.
///
/// `macro_segments` is the pipeline depth `S`. Returns the pipelined trace:
/// `2(M−1) + S − 1` wall-clock steps.
///
/// # Panics
///
/// Panics if fewer than 2 workers, `macro_segments == 0`, or payload
/// lengths differ.
pub fn segring_allreduce_sum(data: &mut [Vec<f32>], macro_segments: usize) -> Trace {
    let m = data.len();
    assert!(m >= 2, "segmented ring needs at least 2 workers");
    assert!(macro_segments > 0, "need at least one macro-segment");
    let d = data[0].len();
    assert!(data.iter().all(|v| v.len() == d), "payload lengths differ");
    let ranges = segment_ranges(d, macro_segments);
    let mut steps: Vec<Vec<usize>> = Vec::new();
    for (s, range) in ranges.iter().enumerate() {
        if range.is_empty() {
            continue;
        }
        let mut chunk: Vec<Vec<f32>> = data.iter().map(|w| w[range.clone()].to_vec()).collect();
        let sub = ring_allreduce_sum(&mut chunk);
        for (w, c) in chunk.into_iter().enumerate() {
            data[w][range.clone()].copy_from_slice(&c);
        }
        merge_offset(&mut steps, s, &sub);
    }
    let mut trace = Trace::new();
    for s in steps {
        trace.push_step(s);
    }
    trace
}

/// Segmented-ring all-reduce of one-bit payloads with a caller-supplied
/// combine (Marsit over a segmented ring).
///
/// The combine context's `segment` field carries the macro-segment index so
/// deterministic RNG streams stay distinct across pipelines.
///
/// # Panics
///
/// Panics if fewer than 2 workers, `macro_segments == 0`, or sign lengths
/// differ.
pub fn segring_allreduce_onebit<F>(
    signs: &[SignVec],
    macro_segments: usize,
    mut combine: F,
) -> (SignVec, Trace)
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    let m = signs.len();
    assert!(m >= 2, "segmented ring needs at least 2 workers");
    assert!(macro_segments > 0, "need at least one macro-segment");
    let d = signs[0].len();
    assert!(signs.iter().all(|v| v.len() == d), "sign lengths differ");
    let ranges = segment_ranges(d, macro_segments);
    let mut result = SignVec::zeros(d);
    let mut steps: Vec<Vec<usize>> = Vec::new();
    for (s, range) in ranges.iter().enumerate() {
        if range.is_empty() {
            continue;
        }
        let chunk: Vec<SignVec> = signs
            .iter()
            .map(|v| v.slice(range.start, range.len()))
            .collect();
        let (reduced, sub) = ring_allreduce_onebit(&chunk, |recv, local: &mut SignVec, ctx| {
            let shifted = CombineCtx {
                segment: s * m + ctx.segment,
                ..ctx
            };
            combine(recv, local, shifted)
        });
        result.splice(range.start, &reduced);
        merge_offset(&mut steps, s, &sub);
    }
    let mut trace = Trace::new();
    for s in steps {
        trace.push_step(s);
    }
    (result, trace)
}

/// [`segring_allreduce_onebit`] under fault injection.
///
/// Each macro-segment's ring pass runs [`ring_allreduce_onebit_faulty`] with
/// the shared injector (pipelines consume the fault stream in macro-segment
/// order, keeping runs deterministic). Retransmissions appear as extra steps
/// inside each pipeline's trace before the pipelining shift is applied.
///
/// With an inert injector this reproduces [`segring_allreduce_onebit`].
///
/// # Errors
///
/// Returns a [`SyncError`] if fewer than 2 workers, zero macro-segments, or
/// sign lengths differ.
pub fn segring_allreduce_onebit_faulty<F>(
    signs: &[SignVec],
    macro_segments: usize,
    inj: &mut FaultInjector,
    mut combine: F,
) -> Result<(SignVec, Trace), SyncError>
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    let m = signs.len();
    if m < 2 {
        return Err(SyncError::TooFewWorkers { needed: 2, got: m });
    }
    if macro_segments == 0 {
        return Err(SyncError::ZeroSegments);
    }
    let d = signs[0].len();
    if let Some(bad) = signs.iter().find(|v| v.len() != d) {
        return Err(SyncError::LengthMismatch {
            expected: d,
            got: bad.len(),
        });
    }
    let ranges = segment_ranges(d, macro_segments);
    let mut result = SignVec::zeros(d);
    let mut steps: Vec<Vec<usize>> = Vec::new();
    for (s, range) in ranges.iter().enumerate() {
        if range.is_empty() {
            continue;
        }
        let chunk: Vec<SignVec> = signs
            .iter()
            .map(|v| v.slice(range.start, range.len()))
            .collect();
        let (reduced, sub) =
            ring_allreduce_onebit_faulty(&chunk, inj, |recv, local: &mut SignVec, ctx| {
                let shifted = CombineCtx {
                    segment: s * m + ctx.segment,
                    ..ctx
                };
                combine(recv, local, shifted)
            })?;
        result.splice(range.start, &reduced);
        merge_offset(&mut steps, s, &sub);
    }
    let mut trace = Trace::new();
    for s in steps {
        trace.push_step(s);
    }
    Ok((result, trace))
}

/// Merges `sub`'s steps into `main` starting at wall-clock step `offset`
/// (the pipelining shift).
fn merge_offset(main: &mut Vec<Vec<usize>>, offset: usize, sub: &Trace) {
    for (i, step) in sub.steps().iter().enumerate() {
        while main.len() <= offset + i {
            main.push(Vec::new());
        }
        main[offset + i].extend(step.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_simnet::LinkModel;
    use marsit_tensor::rng::FastRng;

    fn payloads(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = FastRng::new(seed, 0);
        (0..m)
            .map(|_| (0..d).map(|_| rng.next_f64() as f32 - 0.5).collect())
            .collect()
    }

    #[test]
    fn segring_sum_matches_plain_ring() {
        for s in [1usize, 2, 4, 7] {
            let m = 4;
            let d = 52;
            let mut seg_data = payloads(m, d, 3);
            let mut ring_data = seg_data.clone();
            let _ = segring_allreduce_sum(&mut seg_data, s);
            let _ = crate::ring::ring_allreduce_sum(&mut ring_data);
            for (a, b) in seg_data[0].iter().zip(&ring_data[0]) {
                assert!((a - b).abs() < 1e-4, "S={s}");
            }
        }
    }

    #[test]
    fn segring_pipelines_steps() {
        let m = 4;
        let d = 400;
        let s = 4;
        let mut data = payloads(m, d, 1);
        let trace = segring_allreduce_sum(&mut data, s);
        // 2(M−1) + S − 1 wall-clock steps.
        assert_eq!(trace.num_steps(), 2 * (m - 1) + s - 1);
        // Same total bytes as an unsegmented ring.
        let mut plain = payloads(m, d, 1);
        let plain_trace = crate::ring::ring_allreduce_sum(&mut plain);
        assert_eq!(trace.total_bytes(), plain_trace.total_bytes());
    }

    #[test]
    fn segring_reduces_latency_bound_time() {
        // On a latency-dominated link, pipelining hides per-hop α…
        // it does NOT: each wall-clock step still pays α once, and there are
        // MORE steps; the win is that each step's transfers are S× smaller,
        // letting bandwidth-bound pipelines overlap. Verify the bandwidth
        // shape: per-step critical bytes shrink by ~S in steady state.
        let m = 4;
        let d = 4000;
        let mut seg_data = payloads(m, d, 2);
        let seg_trace = segring_allreduce_sum(&mut seg_data, 4);
        let mut plain = payloads(m, d, 2);
        let plain_trace = crate::ring::ring_allreduce_sum(&mut plain);
        let link = LinkModel::new(0.0, 1.0); // pure bandwidth
                                             // Critical-path bytes differ by at most the pipeline fill/drain.
        let seg_time = seg_trace.time(link);
        let plain_time = plain_trace.time(link);
        assert!(
            seg_time <= plain_time * 1.4,
            "seg {seg_time} vs plain {plain_time}"
        );
    }

    #[test]
    fn segring_onebit_matches_unsegmented_consensus_shape() {
        let m = 3;
        let d = 48;
        let mut rng = FastRng::new(4, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect();
        // "Keep local" combine: deterministic, so we can check ownership.
        let (out, trace) = segring_allreduce_onebit(&signs, 2, |_r, _l, _ctx| {});
        assert_eq!(out.len(), d);
        // Every hop is one bit per coordinate of its macro-chunk.
        for step in trace.steps() {
            for &b in step {
                assert!(b <= d.div_ceil(2).div_ceil(8).max(1));
            }
        }
    }

    #[test]
    fn segring_onebit_segment_indices_are_distinct() {
        let m = 3;
        let d = 30;
        let mut rng = FastRng::new(5, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect();
        let mut seen = std::collections::HashSet::new();
        let _ = segring_allreduce_onebit(&signs, 2, |r, l, ctx| {
            seen.insert((ctx.segment, ctx.step, ctx.receiver));
            l.copy_from(r);
        });
        // 2 macro-segments × (m−1) steps × m combines, all distinct.
        assert_eq!(seen.len(), 2 * (m - 1) * m);
    }

    #[test]
    fn s1_equals_plain_ring_trace() {
        let m = 5;
        let d = 100;
        let mut a = payloads(m, d, 6);
        let ta = segring_allreduce_sum(&mut a, 1);
        let mut b = payloads(m, d, 6);
        let tb = crate::ring::ring_allreduce_sum(&mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "at least one macro-segment")]
    fn zero_segments_panics() {
        let mut data = payloads(2, 8, 0);
        let _ = segring_allreduce_sum(&mut data, 0);
    }

    #[test]
    fn faulty_segring_with_inert_injector_matches_clean() {
        let m = 4;
        let d = 56;
        let mut rng = FastRng::new(47, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect();
        let combine = |r: &SignVec, l: &mut SignVec, _ctx: CombineCtx| l.or_assign(r);
        let (clean, clean_trace) = segring_allreduce_onebit(&signs, 3, combine);
        let mut inj = FaultInjector::inert();
        let (faulty, faulty_trace) =
            segring_allreduce_onebit_faulty(&signs, 3, &mut inj, combine).expect("valid inputs");
        assert_eq!(clean, faulty);
        assert_eq!(clean_trace, faulty_trace);
    }

    #[test]
    fn faulty_segring_is_deterministic_under_drops() {
        use marsit_simnet::FaultPlan;
        let m = 3;
        let d = 60;
        let mut rng = FastRng::new(53, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect();
        let plan = FaultPlan::seeded(4).with_link_drop(0.25);
        let run = || {
            let mut inj = plan.injector(2);
            let (out, trace) =
                segring_allreduce_onebit_faulty(&signs, 2, &mut inj, |r, l, _| l.copy_from(r))
                    .expect("valid inputs");
            (out, trace, inj.stats())
        };
        assert_eq!(run(), run());
        assert!(run().2.retransmits > 0);
    }
}
