//! Ring all-reduce (RAR) schedules.
//!
//! The classic bandwidth-optimal collective (Baidu RAR, Horovod): each
//! worker splits its payload into `M` segments; `M−1` *reduce* steps
//! pipeline partial aggregates around the ring so that worker `w` ends up
//! owning the fully reduced segment `(w+1) mod M`, then `M−1` *gather* steps
//! circulate the reduced segments to everyone. This module implements the
//! schedule for the three payload types the paper needs:
//!
//! - [`ring_allreduce_sum`] — `f32` sums (PSGD and Marsit's periodic
//!   full-precision synchronization);
//! - [`ring_allreduce_majority`] / [`ring_allreduce_signsum`] — integer
//!   sign-sum payloads with per-hop bit growth (the MAR extensions of
//!   signSGD / SSDM / EF-signSGD);
//! - [`ring_allreduce_onebit`] — a one-bit payload with a caller-supplied
//!   combine operator (Marsit's `⊙` plugs in here), where every hop is
//!   exactly one bit per coordinate.
//!
//! Every function returns a [`Trace`] of the bytes actually transferred.

use std::ops::Range;

use marsit_compress::SignSumVec;
use marsit_simnet::FaultInjector;
use marsit_telemetry::{Hop, HopRecorder};
use marsit_tensor::SignVec;

use crate::reconfigure::SyncError;
use crate::trace::{FaultyStep, Trace};

/// Emits one telemetry `hop` event per wire attempt of a (possibly retried)
/// transfer. `proto.expanded_step` is the slot of the *first* attempt;
/// attempt `a` rides `a − 1` slots later, mirroring how
/// [`FaultyStep::record`] lays retries out behind the main step. Only the
/// final attempt of a delivered transfer is marked delivered.
pub(crate) fn emit_attempts(rec: &mut HopRecorder, proto: &Hop, attempts: u32, delivered: bool) {
    if !rec.is_active() {
        return;
    }
    for a in 1..=attempts {
        let mut hop = proto.clone();
        hop.expanded_step = proto.expanded_step + (a as usize - 1);
        hop.attempt = a;
        hop.delivered = delivered && a == attempts;
        rec.hop(&hop);
    }
}

/// Splits `d` coordinates into `m` contiguous segments whose sizes differ by
/// at most one (the first `d mod m` segments get the extra element).
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn segment_ranges(d: usize, m: usize) -> Vec<Range<usize>> {
    assert!(m > 0, "segment count must be positive");
    let base = d / m;
    let extra = d % m;
    let mut out = Vec::with_capacity(m);
    let mut start = 0;
    for i in 0..m {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Context handed to a one-bit combine operator at each hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombineCtx {
    /// Reduce step index (0-based).
    pub step: usize,
    /// Worker performing the combine (the receiver).
    pub receiver: usize,
    /// Which segment is being combined.
    pub segment: usize,
    /// Number of workers aggregated in the *received* vector.
    pub received_count: usize,
    /// Number of workers aggregated in the *local* vector.
    pub local_count: usize,
}

/// One upcoming combine of a reduce step, announced to a step-begin hook
/// before any of the step's combines run (see
/// [`ring_allreduce_onebit_weighted_hooked`]).
///
/// The hook sees exactly the [`CombineCtx`] values the combine closure will
/// receive, in call order, plus each segment's bit length — enough to
/// pre-draw per-hop randomness for the whole step (the hops of one step
/// touch disjoint state and carry independent RNG streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedHop {
    /// The context the combine closure will be called with.
    pub ctx: CombineCtx,
    /// Length of the combined segment in bits (coordinates).
    pub elems: usize,
}

/// Wire encoding for integer sign-sum payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SumWire {
    /// Elias-γ coded sums (the paper's compaction choice).
    #[default]
    Elias,
    /// Fixed `⌈log₂(2·count+1)⌉` bits per coordinate.
    FixedWidth,
}

impl SumWire {
    /// Wire bytes of a sign-sum payload under this encoding.
    #[must_use]
    pub fn wire_bytes(self, sums: &SignSumVec) -> usize {
        let bits = match self {
            Self::Elias => sums.elias_bits(),
            Self::FixedWidth => sums.fixed_width_bits(),
        };
        bits.div_ceil(8)
    }
}

/// In-place ring all-reduce summing `f32` payloads.
///
/// On return every `data[w]` holds the elementwise *sum* over workers
/// (divide by `M` for the mean). Returns the transfer trace:
/// `2(M−1)` steps of `M` parallel segment transfers.
///
/// # Panics
///
/// Panics if fewer than 2 workers or payload lengths differ.
pub fn ring_allreduce_sum(data: &mut [Vec<f32>]) -> Trace {
    let m = data.len();
    assert!(m >= 2, "ring all-reduce needs at least 2 workers");
    let d = data[0].len();
    assert!(data.iter().all(|v| v.len() == d), "payload lengths differ");
    let segs = segment_ranges(d, m);
    let mut trace = Trace::new();
    let mut rec = HopRecorder::begin();

    // Reduce phase: after step r, segment (n−1−r) at worker n aggregates
    // r+2 workers.
    for r in 0..m - 1 {
        let mut step_bytes = Vec::with_capacity(m);
        for w in 0..m {
            let n = (w + 1) % m;
            let s = (w + m - (r % m)) % m;
            let range = segs[s].clone();
            step_bytes.push(range.len() * 4);
            rec.hop(&Hop {
                expanded_step: r,
                step: r,
                phase: "reduce",
                sender: w,
                receiver: n,
                segment: s,
                elems: range.len(),
                bytes: range.len() * 4,
                attempt: 1,
                delivered: true,
            });
            // Sender w's segment s is never the one w updates this step
            // ((w−r) ≠ (w−1−r) mod m), so in-place accumulation is safe.
            let (src, dst) = two_workers(data, w, n);
            for (x, &y) in dst[range.clone()].iter_mut().zip(&src[range]) {
                *x += y;
            }
        }
        trace.push_step(step_bytes);
    }

    // Gather phase: worker w owns fully reduced segment (w+1) mod m.
    for g in 0..m - 1 {
        let mut step_bytes = Vec::with_capacity(m);
        for w in 0..m {
            let n = (w + 1) % m;
            let s = (w + 1 + m - (g % m)) % m;
            let range = segs[s].clone();
            step_bytes.push(range.len() * 4);
            rec.hop(&Hop {
                expanded_step: (m - 1) + g,
                step: g,
                phase: "gather",
                sender: w,
                receiver: n,
                segment: s,
                elems: range.len(),
                bytes: range.len() * 4,
                attempt: 1,
                delivered: true,
            });
            let (src, dst) = two_workers(data, w, n);
            dst[range.clone()].copy_from_slice(&src[range]);
        }
        trace.push_step(step_bytes);
    }
    trace
}

/// Ring all-reduce of sign vectors into a global **majority vote**.
///
/// Reduce hops carry growing integer sign sums (`wire` selects the
/// encoding); gather hops carry the voted one-bit segments. Returns the
/// majority-vote sign vector (identical at all workers) and the trace —
/// this is the MAR extension of signSGD with majority vote.
///
/// # Panics
///
/// Panics if fewer than 2 workers or sign lengths differ.
pub fn ring_allreduce_majority(signs: &[SignVec], wire: SumWire) -> (SignVec, Trace) {
    let parts: Vec<SignSumVec> = signs.iter().map(SignSumVec::from_signs).collect();
    let (sums, mut trace) = ring_reduce_scatter_sums(&parts, wire);
    // Vote per owned segment, then gather the 1-bit votes.
    let m = signs.len();
    let d = signs[0].len();
    let segs = segment_ranges(d, m);
    let mut result = SignVec::zeros(d);
    for (owner_seg, sum) in sums.iter().enumerate() {
        let vote = sum.majority_sign();
        let range = segs[owner_seg].clone();
        let mut full_seg = SignVec::zeros(range.len());
        for i in 0..range.len() {
            full_seg.set(i, vote.get(i));
        }
        result.splice(range.start, &full_seg);
    }
    for _ in 0..m - 1 {
        let step: Vec<usize> = (0..m).map(|w| segs[w].len().div_ceil(8).max(1)).collect();
        trace.push_step(step);
    }
    (result, trace)
}

/// Ring all-reduce of sign vectors into the global **sign sums**.
///
/// Both reduce and gather hops carry the integer payload, so the result
/// supports mean-of-signs reconstruction (the MAR extension of SSDM and
/// EF-signSGD). Returns the total [`SignSumVec`] and the trace.
///
/// # Panics
///
/// Panics if fewer than 2 workers or sign lengths differ.
pub fn ring_allreduce_signsum(signs: &[SignVec], wire: SumWire) -> (SignSumVec, Trace) {
    let parts: Vec<SignSumVec> = signs.iter().map(SignSumVec::from_signs).collect();
    ring_allreduce_signsum_parts(&parts, wire)
}

/// [`ring_allreduce_signsum`] over *partial* sums (inputs may already
/// aggregate several workers each, as in the vertical phase of a 2D torus).
///
/// # Panics
///
/// Panics if fewer than 2 workers or payload lengths differ.
pub fn ring_allreduce_signsum_parts(parts: &[SignSumVec], wire: SumWire) -> (SignSumVec, Trace) {
    let (sums, mut trace) = ring_reduce_scatter_sums(parts, wire);
    let m = parts.len();
    let d = parts[0].len();
    let segs = segment_ranges(d, m);
    // Assemble the full sum vector from the per-segment owners.
    let mut flat = vec![0i32; d];
    for (owner_seg, sum) in sums.iter().enumerate() {
        let range = segs[owner_seg].clone();
        flat[range.clone()].copy_from_slice(sum.sums());
    }
    let total_count: u32 = parts.iter().map(SignSumVec::count).sum();
    let total = SignSumVec::from_parts(flat, total_count);
    // Gather: each hop re-transmits the final per-segment sums.
    for _ in 0..m - 1 {
        let step: Vec<usize> = sums.iter().map(|s| wire.wire_bytes(s)).collect();
        trace.push_step(step);
    }
    (total, trace)
}

/// Reduce-scatter of sign sums: returns, per segment index, the full sum of
/// that segment across workers (held by its owner), plus the reduce trace.
fn ring_reduce_scatter_sums(parts: &[SignSumVec], wire: SumWire) -> (Vec<SignSumVec>, Trace) {
    let m = parts.len();
    assert!(m >= 2, "ring all-reduce needs at least 2 workers");
    let d = parts[0].len();
    assert!(parts.iter().all(|v| v.len() == d), "payload lengths differ");
    let segs = segment_ranges(d, m);
    // state[w][s]: worker w's partial sum of segment s.
    let mut state: Vec<Vec<SignSumVec>> = parts
        .iter()
        .map(|v| {
            segs.iter()
                .map(|r| SignSumVec::from_parts(v.sums()[r.clone()].to_vec(), v.count()))
                .collect()
        })
        .collect();
    let mut trace = Trace::new();
    for r in 0..m - 1 {
        let mut step_bytes = Vec::with_capacity(m);
        for w in 0..m {
            let n = (w + 1) % m;
            let s = (w + m - (r % m)) % m;
            step_bytes.push(wire.wire_bytes(&state[w][s]));
            let sent = state[w][s].clone();
            state[n][s].merge(&sent);
        }
        trace.push_step(step_bytes);
    }
    // Owner of segment s is worker (s + m − 1) mod m (so that worker w owns
    // segment (w+1) mod m).
    let owned: Vec<SignSumVec> = (0..m)
        .map(|s| {
            let owner = (s + m - 1) % m;
            state[owner][s].clone()
        })
        .collect();
    (owned, trace)
}

/// Ring all-reduce of one-bit payloads with a caller-supplied combine.
///
/// This is Marsit's communication schedule: every reduce hop transmits
/// exactly one bit per coordinate; `combine(received, local, ctx)` merges the
/// incoming aggregate (over `ctx.received_count` workers) *into* the local
/// vector in place — the hot loop performs no clone of the received segment
/// and no allocation per hop. The gather phase circulates the final one-bit
/// segments. Returns the consensus sign vector and the trace.
///
/// # Panics
///
/// Panics if fewer than 2 workers, sign lengths differ, or the combine
/// changes the local vector's length.
pub fn ring_allreduce_onebit<F>(signs: &[SignVec], combine: F) -> (SignVec, Trace)
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    ring_allreduce_onebit_weighted(signs, 1, combine)
}

/// [`ring_allreduce_onebit`] where each input vector already represents an
/// aggregate over `unit` workers (the vertical phase of a 2D torus feeds
/// row aggregates here). Combine contexts report
/// `received_count = (step+1)·unit` and `local_count = unit`.
///
/// # Panics
///
/// Panics if fewer than 2 workers, `unit == 0`, sign lengths differ, or the
/// combine changes the local vector's length.
pub fn ring_allreduce_onebit_weighted<F>(
    signs: &[SignVec],
    unit: usize,
    combine: F,
) -> (SignVec, Trace)
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    ring_allreduce_onebit_weighted_hooked(signs, unit, |_| {}, combine)
}

/// [`ring_allreduce_onebit_weighted`] with a *step-begin hook*: before each
/// reduce step's combines run, `step_begin` receives the step's full hop
/// plan ([`PlannedHop`] per combine, in call order).
///
/// The `m` combines of one reduce step write disjoint segments and consume
/// independent per-hop RNG streams, so a caller that derives its randomness
/// from the [`CombineCtx`] can pre-sample all of a step's transient masks in
/// one interleaved batch (several xorshift chains in flight instead of one)
/// and have the combines apply them — bit-identical outputs, much less
/// latency-bound sampling. The plain entry points pass a no-op hook.
///
/// # Panics
///
/// Panics if fewer than 2 workers, `unit == 0`, sign lengths differ, or the
/// combine changes the local vector's length.
pub fn ring_allreduce_onebit_weighted_hooked<G, F>(
    signs: &[SignVec],
    unit: usize,
    mut step_begin: G,
    mut combine: F,
) -> (SignVec, Trace)
where
    G: FnMut(&[PlannedHop]),
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    assert!(unit > 0, "unit must be positive");
    let m = signs.len();
    assert!(m >= 2, "ring all-reduce needs at least 2 workers");
    let d = signs[0].len();
    assert!(signs.iter().all(|v| v.len() == d), "sign lengths differ");
    let segs = segment_ranges(d, m);
    let mut state: Vec<Vec<SignVec>> = signs
        .iter()
        .map(|v| segs.iter().map(|r| v.slice(r.start, r.len())).collect())
        .collect();
    let mut trace = Trace::new();
    let mut rec = HopRecorder::begin();
    let mut plan: Vec<PlannedHop> = Vec::with_capacity(m);
    for r in 0..m - 1 {
        plan.clear();
        plan.extend((0..m).map(|w| {
            let s = (w + m - (r % m)) % m;
            PlannedHop {
                ctx: CombineCtx {
                    step: r,
                    receiver: (w + 1) % m,
                    segment: s,
                    received_count: (r + 1) * unit,
                    local_count: unit,
                },
                elems: segs[s].len(),
            }
        }));
        step_begin(&plan);
        let mut step_bytes = Vec::with_capacity(m);
        for w in 0..m {
            let n = (w + 1) % m;
            let s = (w + m - (r % m)) % m;
            let bytes = segs[s].len().div_ceil(8).max(1);
            step_bytes.push(bytes);
            rec.hop(&Hop {
                expanded_step: r,
                step: r,
                phase: "reduce",
                sender: w,
                receiver: n,
                segment: s,
                elems: segs[s].len(),
                bytes,
                attempt: 1,
                delivered: true,
            });
            let ctx = CombineCtx {
                step: r,
                receiver: n,
                segment: s,
                received_count: (r + 1) * unit,
                local_count: unit,
            };
            // Split borrow: sender w's segment is read in place while
            // receiver n's is combined into — no clone per hop.
            let (src, dst) = split_pair(&mut state, w, n);
            combine(&src[s], &mut dst[s], ctx);
            assert_eq!(
                dst[s].len(),
                segs[s].len(),
                "combine changed segment length"
            );
        }
        trace.push_step(step_bytes);
    }
    // Assemble the result from each segment's owner and trace the gather.
    let mut result = SignVec::zeros(d);
    for s in 0..m {
        let owner = (s + m - 1) % m;
        result.splice(segs[s].start, &state[owner][s]);
    }
    // Gather step g circulates segment s from sender (s+g+m−1) mod m — the
    // inverse of the sum-gather's s = (w+1−g) mod m — so the traced byte list
    // (indexed by segment) and the emitted endpoints agree.
    for g in 0..m - 1 {
        let mut step = Vec::with_capacity(m);
        for (s, seg) in segs.iter().enumerate() {
            let bytes = seg.len().div_ceil(8).max(1);
            step.push(bytes);
            let w = (s + g + m - 1) % m;
            rec.hop(&Hop {
                expanded_step: (m - 1) + g,
                step: g,
                phase: "gather",
                sender: w,
                receiver: (w + 1) % m,
                segment: s,
                elems: seg.len(),
                bytes,
                attempt: 1,
                delivered: true,
            });
        }
        trace.push_step(step);
    }
    (result, trace)
}

/// A step-planned one-bit combine operator for
/// [`ring_allreduce_onebit_planned`].
///
/// Splitting the closure-based hook/combine pair into a trait lets the
/// collective apply one step's combines *concurrently*: `step_begin`
/// (exclusive) plans and pre-draws a step, then `combine` (shared) applies
/// individual hops, possibly from several threads at once with distinct
/// `idx` values.
///
/// # Contract
///
/// `combine` must touch only the two segment vectors it is handed — the
/// collective guarantees those are disjoint across the hops of one step, and
/// concurrent callers rely on `combine` not reaching into shared mutable
/// state (interior mutability must be thread-safe, e.g. atomics).
pub trait StepCombine: Sync {
    /// Called once per reduce step with the step's full hop plan, before any
    /// of its combines run.
    fn step_begin(&mut self, plan: &[PlannedHop]);

    /// Applies hop `idx` of the current step's plan (same `ctx` as
    /// `plan[idx].ctx`). Called exactly once per hop; calls for different
    /// `idx` may run concurrently.
    fn combine(&self, idx: usize, received: &SignVec, local: &mut SignVec, ctx: CombineCtx);
}

/// Reusable buffers for [`ring_allreduce_onebit_planned`]: the per-worker
/// segment grid, the step plan, and the hop work list. Holding one of these
/// across rounds makes the clean one-bit ring collective allocation-free in
/// steady state — only the returned [`Trace`]'s step vectors are freshly
/// allocated (they escape to the caller).
#[derive(Debug, Clone, Default)]
pub struct RingOnebitScratch {
    /// `state[w][s]`: worker `w`'s working copy of segment `s`.
    state: Vec<Vec<SignVec>>,
    /// Segment bit ranges for the current `(d, m)`.
    segs: Vec<Range<usize>>,
    /// Plan handed to [`StepCombine::step_begin`] each step.
    plan: Vec<PlannedHop>,
    /// Per-step combine work list (raw segment cell pairs).
    cells: Vec<HopCell>,
}

impl RingOnebitScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// One hop's source/destination segment cells, captured as raw pointers so
/// a step's (provably disjoint) combines can be dispatched across threads.
#[derive(Debug, Clone, Copy)]
struct HopCell {
    src: *const SignVec,
    dst: *mut SignVec,
    ctx: CombineCtx,
}

/// SAFETY: a `HopCell` is only dereferenced inside the step dispatch below,
/// where the cells of one step are pairwise-disjoint `SignVec` objects (see
/// the disjointness argument at the dispatch site) and each cell is handed
/// to exactly one thread.
unsafe impl Send for HopCell {}
unsafe impl Sync for HopCell {}

/// [`ring_allreduce_onebit_weighted_hooked`] in allocation-free, optionally
/// multi-threaded form: state buffers come from `scratch`, the consensus is
/// written into `out` (reusing its buffer), and each reduce step's combines
/// are spread over up to `intra_threads` OS threads (`<= 1` runs them on the
/// caller thread in hop order).
///
/// Parallelism never changes a bit: within one reduce step, hop `w` reads
/// cell `(w, s_w)` and writes cell `(w+1 mod m, s_w)` with all `s_w`
/// distinct, so every source and destination is a distinct `SignVec` and
/// combines commute. Operators whose randomness is a pure function of the
/// hop (the frozen per-hop stream contract) therefore produce the same
/// consensus regardless of thread count — pinned by the differential tests.
/// Hop telemetry and the trace are recorded on the caller thread before the
/// step's combines run, so their byte streams are identical to the serial
/// path's.
///
/// The trace is written into `trace` (reset first, slot allocations
/// recycled — see [`Trace::reset`]), which keeps the steady state of this
/// collective allocation-free end to end.
///
/// # Panics
///
/// Panics if fewer than 2 workers, `unit == 0`, or sign lengths differ.
pub fn ring_allreduce_onebit_planned<O: StepCombine>(
    signs: &[SignVec],
    unit: usize,
    scratch: &mut RingOnebitScratch,
    out: &mut SignVec,
    trace: &mut Trace,
    intra_threads: usize,
    op: &mut O,
) {
    assert!(unit > 0, "unit must be positive");
    let m = signs.len();
    assert!(m >= 2, "ring all-reduce needs at least 2 workers");
    let d = signs[0].len();
    assert!(signs.iter().all(|v| v.len() == d), "sign lengths differ");
    if scratch.segs.len() != m
        || scratch.segs.last().is_none_or(|r| r.end != d)
        || scratch.state.len() != m
    {
        scratch.segs.clear();
        scratch.segs.extend(segment_ranges(d, m));
        scratch.state.resize_with(m, Vec::new);
        for row in &mut scratch.state {
            row.resize_with(m, || SignVec::zeros(0));
        }
    }
    let segs = &scratch.segs;
    for (row, v) in scratch.state.iter_mut().zip(signs) {
        for (cell, r) in row.iter_mut().zip(segs.iter()) {
            cell.assign_slice_of(v, r.start, r.len());
        }
    }
    trace.reset();
    let mut rec = HopRecorder::begin();
    for r in 0..m - 1 {
        scratch.plan.clear();
        scratch.plan.extend((0..m).map(|w| {
            let s = (w + m - (r % m)) % m;
            PlannedHop {
                ctx: CombineCtx {
                    step: r,
                    receiver: (w + 1) % m,
                    segment: s,
                    received_count: (r + 1) * unit,
                    local_count: unit,
                },
                elems: segs[s].len(),
            }
        }));
        op.step_begin(&scratch.plan);
        // Record the step's wire activity (trace + hop telemetry) on the
        // caller thread, in hop order, before any combine runs — the byte
        // streams cannot depend on how the combines are scheduled.
        let step_bytes = trace.begin_step();
        for hop in &scratch.plan {
            let s = hop.ctx.segment;
            let bytes = segs[s].len().div_ceil(8).max(1);
            step_bytes.push(bytes);
            rec.hop(&Hop {
                expanded_step: r,
                step: r,
                phase: "reduce",
                sender: (hop.ctx.receiver + m - 1) % m,
                receiver: hop.ctx.receiver,
                segment: s,
                elems: segs[s].len(),
                bytes,
                attempt: 1,
                delivered: true,
            });
        }
        scratch.cells.clear();
        for (w, hop) in scratch.plan.iter().enumerate() {
            let s = hop.ctx.segment;
            let n = hop.ctx.receiver;
            // Cells captured raw; disjointness argument below.
            let src: *const SignVec = &raw const scratch.state[w][s];
            let dst: *mut SignVec = &raw mut scratch.state[n][s];
            scratch.cells.push(HopCell {
                src,
                dst,
                ctx: hop.ctx,
            });
        }
        // Disjointness: destinations `(w+1, s_w)` are pairwise distinct
        // (receivers distinct, one segment each); sources `(w, s_w)`
        // likewise; and a source equals a destination only if
        // `w = w'+1 ∧ s_w = s_{w'}`, impossible since consecutive hops use
        // consecutive (distinct) segments. Every cell is therefore a
        // distinct `SignVec`, and each is dereferenced by exactly one hop.
        let threads = intra_threads.clamp(1, m);
        if threads <= 1 {
            for (i, cell) in scratch.cells.iter().enumerate() {
                // SAFETY: disjointness above; serial loop, unique access.
                unsafe { op.combine(i, &*cell.src, &mut *cell.dst, cell.ctx) };
            }
        } else {
            let cells = &scratch.cells;
            let chunk = m.div_ceil(threads);
            let shared: &O = op;
            std::thread::scope(|scope| {
                for (t, part) in cells.chunks(chunk).enumerate().skip(1) {
                    let base = t * chunk;
                    scope.spawn(move || {
                        for (i, cell) in part.iter().enumerate() {
                            // SAFETY: disjoint cells; this thread owns them.
                            unsafe {
                                shared.combine(base + i, &*cell.src, &mut *cell.dst, cell.ctx);
                            }
                        }
                    });
                }
                for (i, cell) in cells.iter().take(chunk).enumerate() {
                    // SAFETY: disjoint cells; the caller thread owns chunk 0.
                    unsafe { shared.combine(i, &*cell.src, &mut *cell.dst, cell.ctx) };
                }
            });
        }
        for hop in &scratch.plan {
            let s = hop.ctx.segment;
            assert_eq!(
                scratch.state[hop.ctx.receiver][s].len(),
                segs[s].len(),
                "combine changed segment length"
            );
        }
    }
    // Assemble the consensus into `out` (every bit of [0, d) is overwritten
    // by some segment, so stale contents never leak).
    if out.len() != d {
        *out = SignVec::zeros(d);
    }
    for (s, seg) in segs.iter().enumerate() {
        let owner = (s + m - 1) % m;
        out.splice(seg.start, &scratch.state[owner][s]);
    }
    for g in 0..m - 1 {
        let step = trace.begin_step();
        for (s, seg) in segs.iter().enumerate() {
            let bytes = seg.len().div_ceil(8).max(1);
            step.push(bytes);
            let w = (s + g + m - 1) % m;
            rec.hop(&Hop {
                expanded_step: (m - 1) + g,
                step: g,
                phase: "gather",
                sender: w,
                receiver: (w + 1) % m,
                segment: s,
                elems: seg.len(),
                bytes,
                attempt: 1,
                delivered: true,
            });
        }
    }
}

/// [`ring_allreduce_sum`] under fault injection.
///
/// Reduce-phase transfers are best-effort: a transfer whose retry budget is
/// exhausted is omitted (its partial aggregate is simply not folded in, so
/// the result degrades toward a partial sum). Gather-phase transfers are
/// reliable — every worker still ends with identical payloads. Retransmitted
/// attempts appear as extra sub-steps in the trace.
///
/// With an inert injector this produces exactly the [`ring_allreduce_sum`]
/// result and trace.
///
/// # Errors
///
/// Returns [`SyncError::TooFewWorkers`] for fewer than 2 workers and
/// [`SyncError::LengthMismatch`] if payload lengths differ.
pub fn ring_allreduce_sum_faulty(
    data: &mut [Vec<f32>],
    inj: &mut FaultInjector,
) -> Result<Trace, SyncError> {
    let m = data.len();
    if m < 2 {
        return Err(SyncError::TooFewWorkers { needed: 2, got: m });
    }
    let d = data[0].len();
    if let Some(bad) = data.iter().find(|v| v.len() != d) {
        return Err(SyncError::LengthMismatch {
            expected: d,
            got: bad.len(),
        });
    }
    let segs = segment_ranges(d, m);
    let mut trace = Trace::new();
    let mut rec = HopRecorder::begin();

    for r in 0..m - 1 {
        let step_base = trace.num_steps();
        let mut fs = FaultyStep::new();
        for w in 0..m {
            let n = (w + 1) % m;
            let s = (w + m - (r % m)) % m;
            let range = segs[s].clone();
            let fate = inj.transfer();
            fs.record(range.len() * 4, fate.attempts);
            emit_attempts(
                &mut rec,
                &Hop {
                    expanded_step: step_base,
                    step: r,
                    phase: "reduce",
                    sender: w,
                    receiver: n,
                    segment: s,
                    elems: range.len(),
                    bytes: range.len() * 4,
                    attempt: 1,
                    delivered: true,
                },
                fate.attempts,
                fate.delivered,
            );
            if fate.delivered {
                let (src, dst) = two_workers(data, w, n);
                for (x, &y) in dst[range.clone()].iter_mut().zip(&src[range]) {
                    *x += y;
                }
            }
        }
        for step in fs.into_steps() {
            trace.push_step(step);
        }
    }

    for g in 0..m - 1 {
        let step_base = trace.num_steps();
        let mut fs = FaultyStep::new();
        for w in 0..m {
            let n = (w + 1) % m;
            let s = (w + 1 + m - (g % m)) % m;
            let range = segs[s].clone();
            let fate = inj.transfer_reliable();
            fs.record(range.len() * 4, fate.attempts);
            emit_attempts(
                &mut rec,
                &Hop {
                    expanded_step: step_base,
                    step: g,
                    phase: "gather",
                    sender: w,
                    receiver: n,
                    segment: s,
                    elems: range.len(),
                    bytes: range.len() * 4,
                    attempt: 1,
                    delivered: true,
                },
                fate.attempts,
                fate.delivered,
            );
            let (src, dst) = two_workers(data, w, n);
            dst[range.clone()].copy_from_slice(&src[range]);
        }
        for step in fs.into_steps() {
            trace.push_step(step);
        }
    }
    Ok(trace)
}

/// [`ring_allreduce_onebit`] under fault injection.
///
/// See [`ring_allreduce_onebit_counted_faulty`]; every input counts as one
/// worker.
///
/// # Errors
///
/// Fails under the same conditions as
/// [`ring_allreduce_onebit_counted_faulty`].
pub fn ring_allreduce_onebit_faulty<F>(
    signs: &[SignVec],
    inj: &mut FaultInjector,
    combine: F,
) -> Result<(SignVec, Trace), SyncError>
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    let counts = vec![1; signs.len()];
    ring_allreduce_onebit_counted_faulty(signs, &counts, inj, combine)
}

/// One-bit ring all-reduce under fault injection, with explicit per-input
/// aggregation counts (`init_counts[w]` = how many workers `signs[w]`
/// already aggregates; the vertical phase of a faulty torus feeds row
/// aggregates here).
///
/// Unlike the clean schedule, aggregation counts are tracked per
/// `(worker, segment)` cell rather than derived from the step index: when a
/// reduce transfer exhausts its retry budget the contribution is *omitted* —
/// the receiver keeps its current aggregate and its count is unchanged — so
/// every [`CombineCtx`] still reports the exact number of workers on each
/// side and the `⊙` combine stays unbiased over what actually arrived.
/// Gather transfers are reliable, so all workers agree on the result.
///
/// With an inert injector this reproduces [`ring_allreduce_onebit_weighted`]
/// (contexts and all) for uniform `init_counts`.
///
/// # Errors
///
/// Returns a [`SyncError`] if fewer than 2 workers, a count is zero, the
/// count slice is the wrong length, or input lengths differ.
///
/// # Panics
///
/// Panics if the combine changes the local vector's length (a programmer
/// error in the closure, not a runtime condition).
pub fn ring_allreduce_onebit_counted_faulty<F>(
    signs: &[SignVec],
    init_counts: &[usize],
    inj: &mut FaultInjector,
    mut combine: F,
) -> Result<(SignVec, Trace), SyncError>
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    let m = signs.len();
    if m < 2 {
        return Err(SyncError::TooFewWorkers { needed: 2, got: m });
    }
    if init_counts.len() != m {
        return Err(SyncError::CountMismatch {
            expected: m,
            got: init_counts.len(),
        });
    }
    if let Some(worker) = init_counts.iter().position(|&c| c == 0) {
        return Err(SyncError::ZeroCount { worker });
    }
    let d = signs[0].len();
    if let Some(bad) = signs.iter().find(|v| v.len() != d) {
        return Err(SyncError::LengthMismatch {
            expected: d,
            got: bad.len(),
        });
    }
    let segs = segment_ranges(d, m);
    let mut state: Vec<Vec<SignVec>> = signs
        .iter()
        .map(|v| segs.iter().map(|r| v.slice(r.start, r.len())).collect())
        .collect();
    // counts[w][s]: workers aggregated in worker w's copy of segment s.
    let mut counts: Vec<Vec<usize>> = init_counts.iter().map(|&c| vec![c; m]).collect();
    let mut trace = Trace::new();
    let mut rec = HopRecorder::begin();
    for r in 0..m - 1 {
        let step_base = trace.num_steps();
        let mut fs = FaultyStep::new();
        for w in 0..m {
            let n = (w + 1) % m;
            let s = (w + m - (r % m)) % m;
            let fate = inj.transfer();
            fs.record(segs[s].len().div_ceil(8).max(1), fate.attempts);
            emit_attempts(
                &mut rec,
                &Hop {
                    expanded_step: step_base,
                    step: r,
                    phase: "reduce",
                    sender: w,
                    receiver: n,
                    segment: s,
                    elems: segs[s].len(),
                    bytes: segs[s].len().div_ceil(8).max(1),
                    attempt: 1,
                    delivered: true,
                },
                fate.attempts,
                fate.delivered,
            );
            if fate.delivered {
                let ctx = CombineCtx {
                    step: r,
                    receiver: n,
                    segment: s,
                    received_count: counts[w][s],
                    local_count: counts[n][s],
                };
                let (src, dst) = split_pair(&mut state, w, n);
                combine(&src[s], &mut dst[s], ctx);
                assert_eq!(
                    dst[s].len(),
                    segs[s].len(),
                    "combine changed segment length"
                );
                counts[n][s] += counts[w][s];
            }
        }
        for step in fs.into_steps() {
            trace.push_step(step);
        }
    }
    // Assemble from each segment's owner, then trace the (reliable) gather.
    let mut result = SignVec::zeros(d);
    for s in 0..m {
        let owner = (s + m - 1) % m;
        result.splice(segs[s].start, &state[owner][s]);
    }
    for g in 0..m - 1 {
        let step_base = trace.num_steps();
        let mut fs = FaultyStep::new();
        for (s, seg) in segs.iter().enumerate() {
            let fate = inj.transfer_reliable();
            fs.record(seg.len().div_ceil(8).max(1), fate.attempts);
            let w = (s + g + m - 1) % m;
            emit_attempts(
                &mut rec,
                &Hop {
                    expanded_step: step_base,
                    step: g,
                    phase: "gather",
                    sender: w,
                    receiver: (w + 1) % m,
                    segment: s,
                    elems: seg.len(),
                    bytes: seg.len().div_ceil(8).max(1),
                    attempt: 1,
                    delivered: true,
                },
                fate.attempts,
                fate.delivered,
            );
        }
        for step in fs.into_steps() {
            trace.push_step(step);
        }
    }
    Ok((result, trace))
}

/// Borrows `items[src]` immutably and `items[dst]` mutably — the split
/// borrow that lets a hop combine a received payload into the receiver's
/// state in place, with no clone of the sent data.
pub(crate) fn split_pair<T>(items: &mut [T], src: usize, dst: usize) -> (&T, &mut T) {
    assert_ne!(src, dst, "src and dst must differ");
    if src < dst {
        let (a, b) = items.split_at_mut(dst);
        (&a[src], &mut b[0])
    } else {
        let (a, b) = items.split_at_mut(src);
        (&b[0], &mut a[dst])
    }
}

/// Borrows worker `src` immutably and worker `dst` mutably from `data`.
fn two_workers(data: &mut [Vec<f32>], src: usize, dst: usize) -> (&[f32], &mut [f32]) {
    let (src, dst) = split_pair(data, src, dst);
    (src.as_slice(), dst.as_mut_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_tensor::rng::FastRng;

    fn random_payloads(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        (0..m)
            .map(|w| {
                let mut rng = FastRng::new(seed, w as u64);
                (0..d).map(|_| rng.next_f64() as f32 * 2.0 - 1.0).collect()
            })
            .collect()
    }

    #[test]
    fn segment_ranges_cover_exactly() {
        for (d, m) in [(10, 3), (64, 8), (7, 7), (5, 8), (0, 2)] {
            let segs = segment_ranges(d, m);
            assert_eq!(segs.len(), m);
            let mut pos = 0;
            for s in &segs {
                assert_eq!(s.start, pos);
                pos = s.end;
            }
            assert_eq!(pos, d);
            let max = segs.iter().map(Range::len).max().unwrap();
            let min = segs.iter().map(Range::len).min().unwrap();
            assert!(max - min <= 1, "d={d} m={m}");
        }
    }

    #[test]
    fn sum_allreduce_matches_reference() {
        for (m, d) in [(2, 8), (3, 10), (4, 64), (5, 7), (8, 100)] {
            let mut data = random_payloads(m, d, 42);
            let mut expected = vec![0.0f32; d];
            for w in &data {
                for (e, &x) in expected.iter_mut().zip(w) {
                    *e += x;
                }
            }
            let trace = ring_allreduce_sum(&mut data);
            for (w, payload) in data.iter().enumerate() {
                for (j, (&got, &want)) in payload.iter().zip(&expected).enumerate() {
                    assert!(
                        (got - want).abs() < 1e-4,
                        "m={m} d={d} worker {w} coord {j}: {got} vs {want}"
                    );
                }
            }
            assert_eq!(trace.num_steps(), 2 * (m - 1));
        }
    }

    #[test]
    fn sum_allreduce_trace_bytes_match_formula() {
        let m = 4;
        let d = 64;
        let mut data = random_payloads(m, d, 1);
        let trace = ring_allreduce_sum(&mut data);
        // 2(M−1) steps × M transfers × (D/M)·4 bytes.
        assert_eq!(trace.total_bytes(), 2 * (m - 1) * m * (d / m) * 4);
    }

    #[test]
    fn majority_vote_matches_scalar_recount() {
        let m = 5;
        let d = 33;
        let mut rng = FastRng::new(7, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect();
        let (vote, trace) = ring_allreduce_majority(&signs, SumWire::Elias);
        for j in 0..d {
            let sum: i32 = signs.iter().map(|v| if v.get(j) { 1 } else { -1 }).sum();
            assert_eq!(vote.get(j), sum >= 0, "coord {j}");
        }
        assert_eq!(trace.num_steps(), 2 * (m - 1));
    }

    #[test]
    fn signsum_allreduce_totals() {
        let m = 4;
        let d = 50;
        let mut rng = FastRng::new(9, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.3, &mut rng))
            .collect();
        let (total, _) = ring_allreduce_signsum(&signs, SumWire::Elias);
        assert_eq!(total.count(), m as u32);
        for j in 0..d {
            let sum: i32 = signs.iter().map(|v| if v.get(j) { 1 } else { -1 }).sum();
            assert_eq!(total.sums()[j], sum, "coord {j}");
        }
    }

    #[test]
    fn signsum_reduce_hops_grow() {
        // With fixed-width encoding, later reduce hops carry more bits.
        let m = 8;
        let d = 800;
        let mut rng = FastRng::new(3, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect();
        let (_, trace) = ring_allreduce_signsum(&signs, SumWire::FixedWidth);
        let steps = trace.steps();
        let first_hop = steps[0][0];
        let last_reduce_hop = steps[m - 2][0];
        assert!(
            last_reduce_hop > 2 * first_hop,
            "bit growth missing: first {first_hop}, last {last_reduce_hop}"
        );
    }

    #[test]
    fn onebit_hops_are_one_bit_per_coordinate() {
        let m = 4;
        let d = 64;
        let mut rng = FastRng::new(5, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect();
        // "Keep received" combine: result is well-defined; we check the trace.
        let (_, trace) = ring_allreduce_onebit(&signs, |recv, local, _ctx| local.copy_from(recv));
        // Every transfer must be exactly seg_len/8 bytes.
        for step in trace.steps() {
            for &bytes in step {
                assert_eq!(bytes, (d / m) / 8);
            }
        }
        assert_eq!(trace.num_steps(), 2 * (m - 1));
    }

    #[test]
    fn onebit_keep_local_last_writer_wins() {
        // Combine that always keeps the local vector: the owner's own signs
        // survive, so the result equals, per segment s, worker (s+m−1)'s
        // original bits.
        let m = 3;
        let d = 30;
        let mut rng = FastRng::new(8, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect();
        let (result, _) = ring_allreduce_onebit(&signs, |_recv, _local, _ctx| {});
        let segs = segment_ranges(d, m);
        for (s, seg) in segs.iter().enumerate() {
            let owner = (s + m - 1) % m;
            for j in seg.clone() {
                assert_eq!(result.get(j), signs[owner].get(j), "segment {s} coord {j}");
            }
        }
    }

    /// A [`StepCombine`] whose randomness is a pure function of the hop,
    /// mirroring the frozen per-hop stream contract of the core crate.
    struct StreamedWeighted {
        seed: u64,
    }

    impl StepCombine for StreamedWeighted {
        fn step_begin(&mut self, _plan: &[PlannedHop]) {}
        fn combine(&self, _idx: usize, recv: &SignVec, local: &mut SignVec, ctx: CombineCtx) {
            let stream =
                ((ctx.receiver as u64) << 40) | ((ctx.segment as u64) << 20) | ctx.step as u64;
            let mut rng = FastRng::new(self.seed, stream);
            let p = ctx.received_count as f64 / (ctx.received_count + ctx.local_count) as f64;
            SignVec::transient_combine_assign(recv, local, p, &mut rng);
        }
    }

    /// The planned collective — serial, threaded, and with a reused
    /// scratch — is bit-identical (consensus and trace) to the closure
    /// path when both derive their masks from the per-hop stream id.
    #[test]
    fn planned_matches_hooked_across_threads_and_reuse() {
        for (m, d) in [(8usize, 1024usize), (7, 300), (3, 130)] {
            let mut rng = FastRng::new(2024, m as u64);
            let signs: Vec<SignVec> = (0..m)
                .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
                .collect();
            let (expected, expected_trace) = ring_allreduce_onebit_weighted_hooked(
                &signs,
                1,
                |_| {},
                |recv, local, ctx| {
                    let stream = ((ctx.receiver as u64) << 40)
                        | ((ctx.segment as u64) << 20)
                        | ctx.step as u64;
                    let mut hop_rng = FastRng::new(99, stream);
                    let p =
                        ctx.received_count as f64 / (ctx.received_count + ctx.local_count) as f64;
                    SignVec::transient_combine_assign(recv, local, p, &mut hop_rng);
                },
            );
            let mut scratch = RingOnebitScratch::new();
            let mut op = StreamedWeighted { seed: 99 };
            let mut trace = Trace::new();
            for threads in [1usize, 2, 4, 16] {
                let mut out = SignVec::zeros(1);
                ring_allreduce_onebit_planned(
                    &signs,
                    1,
                    &mut scratch,
                    &mut out,
                    &mut trace,
                    threads,
                    &mut op,
                );
                assert_eq!(out, expected, "m={m} d={d} threads={threads}: consensus");
                assert_eq!(
                    trace, expected_trace,
                    "m={m} d={d} threads={threads}: trace"
                );
            }
        }
    }

    #[test]
    fn onebit_ctx_counts_are_consistent() {
        let m = 5;
        let d = 25;
        let signs: Vec<SignVec> = (0..m).map(|_| SignVec::ones(d)).collect();
        let mut seen = Vec::new();
        let _ = ring_allreduce_onebit(&signs, |recv, local, ctx| {
            seen.push((ctx.step, ctx.received_count, ctx.local_count));
            local.copy_from(recv);
        });
        // m−1 steps × m combines; at step r received_count = r+1.
        assert_eq!(seen.len(), (m - 1) * m);
        for &(step, rc, lc) in &seen {
            assert_eq!(rc, step + 1);
            assert_eq!(lc, 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 workers")]
    fn single_worker_panics() {
        let mut data = vec![vec![1.0f32]];
        let _ = ring_allreduce_sum(&mut data);
    }

    #[test]
    fn faulty_sum_with_inert_injector_matches_clean() {
        let m = 5;
        let d = 47;
        let mut clean = random_payloads(m, d, 17);
        let mut faulty = clean.clone();
        let clean_trace = ring_allreduce_sum(&mut clean);
        let mut inj = FaultInjector::inert();
        let faulty_trace = ring_allreduce_sum_faulty(&mut faulty, &mut inj).expect("valid inputs");
        assert_eq!(clean, faulty);
        assert_eq!(clean_trace, faulty_trace);
        assert!(inj.stats().is_clean());
    }

    #[test]
    fn faulty_onebit_with_inert_injector_matches_clean() {
        let m = 4;
        let d = 36;
        let mut rng = FastRng::new(19, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect();
        // Deterministic combine so both runs take identical decisions.
        let combine =
            |recv: &SignVec, local: &mut SignVec, _ctx: CombineCtx| local.and_assign(recv);
        let (clean, clean_trace) = ring_allreduce_onebit(&signs, combine);
        let mut inj = FaultInjector::inert();
        let (faulty, faulty_trace) =
            ring_allreduce_onebit_faulty(&signs, &mut inj, combine).expect("valid inputs");
        assert_eq!(clean, faulty);
        assert_eq!(clean_trace, faulty_trace);
    }

    #[test]
    fn faulty_onebit_counts_match_clean_contexts_when_inert() {
        let m = 5;
        let d = 25;
        let signs: Vec<SignVec> = (0..m).map(|_| SignVec::ones(d)).collect();
        let mut seen = Vec::new();
        let mut inj = FaultInjector::inert();
        let _ = ring_allreduce_onebit_faulty(&signs, &mut inj, |recv, local, ctx| {
            seen.push((ctx.step, ctx.received_count, ctx.local_count));
            local.copy_from(recv);
        });
        assert_eq!(seen.len(), (m - 1) * m);
        for &(step, rc, lc) in &seen {
            assert_eq!(rc, step + 1);
            assert_eq!(lc, 1);
        }
    }

    #[test]
    fn faulty_onebit_counts_stay_exact_under_drops() {
        use marsit_simnet::FaultPlan;
        // Heavy loss with no retries: many omissions. Every combine context
        // must still report the true aggregation counts (each side ≥ 1, sum
        // ≤ m), and the schedule must stay deterministic per seed.
        let m = 6;
        let d = 48;
        let mut rng = FastRng::new(23, 0);
        let signs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect();
        let plan = FaultPlan::seeded(3)
            .with_link_drop(0.4)
            .with_retry_policy(0, 1e-4);
        let run = |plan: &FaultPlan| {
            let mut inj = plan.injector(0);
            let mut ctxs = Vec::new();
            let (out, trace) =
                ring_allreduce_onebit_faulty(&signs, &mut inj, |recv, local, ctx| {
                    ctxs.push(ctx);
                    local.copy_from(recv);
                })
                .expect("valid inputs");
            (out, trace, ctxs, inj.stats())
        };
        let (out, trace, ctxs, stats) = run(&plan);
        assert!(stats.dropped_transfers > 0, "0.4 loss over 30 transfers");
        for ctx in &ctxs {
            assert!(ctx.received_count >= 1 && ctx.local_count >= 1);
            assert!(ctx.received_count + ctx.local_count <= m);
        }
        // Fewer combines than the fault-free schedule's (m−1)·m.
        assert!(ctxs.len() < (m - 1) * m);
        let again = run(&plan);
        assert_eq!(out, again.0, "deterministic under fixed seed");
        assert_eq!(trace, again.1);
        assert_eq!(ctxs, again.2);
    }

    #[test]
    fn faulty_retries_appear_as_extra_trace_steps() {
        use marsit_simnet::FaultPlan;
        let m = 4;
        let d = 64;
        let mut data = random_payloads(m, d, 29);
        let baseline_steps = 2 * (m - 1);
        let plan = FaultPlan::seeded(7)
            .with_link_drop(0.3)
            .with_retry_policy(4, 1e-4);
        let mut inj = plan.injector(0);
        let trace = ring_allreduce_sum_faulty(&mut data, &mut inj).expect("valid inputs");
        let stats = inj.stats();
        assert!(stats.retransmits > 0);
        assert!(trace.num_steps() > baseline_steps, "retries add sub-steps");
        // Wire bytes grow by exactly the retransmitted segments.
        let clean_bytes = 2 * (m - 1) * m * (d / m) * 4;
        assert_eq!(
            trace.total_bytes(),
            clean_bytes + stats.retransmits as usize * (d / m) * 4
        );
    }
}
