//! 2D-torus all-reduce (TAR) schedules.
//!
//! The hierarchical collective of Mikami et al. that the paper evaluates
//! alongside RAR: (1) reduce-scatter along each *row* ring, (2) all-reduce
//! along each *column* ring on the chunk each worker now owns, (3)
//! all-gather along the rows. With `M = rows × cols` workers the critical
//! path shrinks from `2(M−1)` hops to `2(cols−1) + 2(rows−1)`, which is why
//! every method communicates faster under TAR in Figure 5.
//!
//! Workers are indexed row-major: `w = row·cols + col`.

use marsit_compress::SignSumVec;
use marsit_simnet::FaultInjector;
use marsit_telemetry::{Hop, HopRecorder};
use marsit_tensor::SignVec;

use crate::reconfigure::SyncError;
use crate::ring::{
    emit_attempts, ring_allreduce_onebit_counted_faulty, ring_allreduce_onebit_weighted_hooked,
    ring_allreduce_signsum_parts, segment_ranges, split_pair, CombineCtx, PlannedHop, SumWire,
};
use crate::trace::{FaultyStep, Trace};

/// Worker ids of column `c` in row-major order — the relabeling map handed
/// to [`HopRecorder::column_frame`] so a vertical sub-ring's local worker
/// `row` reports as global worker `row·cols + c`.
fn column_workers(rows: usize, cols: usize, c: usize) -> Vec<usize> {
    (0..rows).map(|row| row * cols + c).collect()
}

/// Validates torus shape against the payload count.
fn check_shape<T>(items: &[T], rows: usize, cols: usize) {
    assert!(rows >= 2 && cols >= 2, "torus needs both dimensions >= 2");
    assert_eq!(
        items.len(),
        rows * cols,
        "worker count must equal rows*cols"
    );
}

/// Merges the per-step transfers of `sub` (running on disjoint links in
/// parallel with traces from other rings) into `main`, aligning step indices
/// starting at `offset`.
fn merge_parallel(main: &mut Vec<Vec<usize>>, offset: usize, sub: &Trace) {
    for (i, step) in sub.steps().iter().enumerate() {
        while main.len() <= offset + i {
            main.push(Vec::new());
        }
        main[offset + i].extend(step.iter().copied());
    }
}

/// In-place 2D-torus all-reduce summing `f32` payloads.
///
/// On return every `data[w]` holds the elementwise sum over all workers.
///
/// # Panics
///
/// Panics if the shape is invalid or payload lengths differ.
pub fn torus_allreduce_sum(data: &mut [Vec<f32>], rows: usize, cols: usize) -> Trace {
    check_shape(data, rows, cols);
    let d = data[0].len();
    assert!(data.iter().all(|v| v.len() == d), "payload lengths differ");
    let chunks = segment_ranges(d, cols);
    let mut steps: Vec<Vec<usize>> = Vec::new();
    let mut rec = HopRecorder::begin();

    // Phase 1: horizontal reduce-scatter within each row.
    for rr in 0..cols - 1 {
        let expanded = steps.len();
        let mut step = Vec::with_capacity(rows * cols);
        for row in 0..rows {
            for c in 0..cols {
                let w = row * cols + c;
                let n = row * cols + (c + 1) % cols;
                let s = (c + cols - (rr % cols)) % cols;
                let range = chunks[s].clone();
                step.push(range.len() * 4);
                rec.hop(&Hop {
                    expanded_step: expanded,
                    step: rr,
                    phase: "reduce",
                    sender: w,
                    receiver: n,
                    segment: s,
                    elems: range.len(),
                    bytes: range.len() * 4,
                    attempt: 1,
                    delivered: true,
                });
                let sent: Vec<f32> = data[w][range.clone()].to_vec();
                for (x, y) in data[n][range].iter_mut().zip(sent) {
                    *x += y;
                }
            }
        }
        steps.push(step);
    }

    // Phase 2: vertical ring all-reduce per column on the owned chunk.
    let offset = steps.len();
    for c in 0..cols {
        let own = (c + 1) % cols;
        let range = chunks[own].clone();
        let mut column: Vec<Vec<f32>> = (0..rows)
            .map(|row| data[row * cols + c][range.clone()].to_vec())
            .collect();
        let sub = {
            let _frame = rec.column_frame(offset, column_workers(rows, cols, c));
            crate::ring::ring_allreduce_sum(&mut column)
        };
        for (row, chunk) in column.into_iter().enumerate() {
            data[row * cols + c][range.clone()].copy_from_slice(&chunk);
        }
        merge_parallel(&mut steps, offset, &sub);
    }

    // Phase 3: horizontal all-gather.
    for g in 0..cols - 1 {
        let expanded = steps.len();
        let mut step = Vec::with_capacity(rows * cols);
        for row in 0..rows {
            for c in 0..cols {
                let n_col = (c + 1) % cols;
                let w = row * cols + c;
                let n = row * cols + n_col;
                let s = (c + 1 + cols - (g % cols)) % cols;
                let range = chunks[s].clone();
                step.push(range.len() * 4);
                rec.hop(&Hop {
                    expanded_step: expanded,
                    step: g,
                    phase: "gather",
                    sender: w,
                    receiver: n,
                    segment: s,
                    elems: range.len(),
                    bytes: range.len() * 4,
                    attempt: 1,
                    delivered: true,
                });
                let sent: Vec<f32> = data[w][range.clone()].to_vec();
                data[n][range].copy_from_slice(&sent);
            }
        }
        steps.push(step);
    }

    let mut trace = Trace::new();
    for s in steps {
        trace.push_step(s);
    }
    trace
}

/// 2D-torus all-reduce of one-bit payloads with a caller-supplied combine
/// (Marsit under TAR).
///
/// Combine contexts carry the correct aggregate counts: horizontal hops fold
/// single workers, vertical hops fold whole row-aggregates of `cols` workers.
/// Every hop is one bit per coordinate; `combine(received, local, ctx)`
/// merges the incoming aggregate *into* the local chunk in place, so the hot
/// loop performs no clone of the received data. Returns the consensus sign
/// vector and the trace.
///
/// # Panics
///
/// Panics if the shape is invalid, sign lengths differ, or the combine
/// changes the local chunk's length.
pub fn torus_allreduce_onebit<F>(
    signs: &[SignVec],
    rows: usize,
    cols: usize,
    combine: F,
) -> (SignVec, Trace)
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    torus_allreduce_onebit_hooked(signs, rows, cols, |_| {}, combine)
}

/// [`torus_allreduce_onebit`] with a *step-begin hook* (see
/// [`ring_allreduce_onebit_weighted_hooked`]): before each horizontal
/// reduce step and each vertical sub-ring step, `step_begin` receives that
/// step's hop plan so per-hop randomness can be pre-sampled in one
/// interleaved batch. Contexts in the plan are exactly those the combine
/// will see (vertical hops report sub-ring-local receivers, as the combine
/// does today).
///
/// # Panics
///
/// Panics if the shape is invalid, sign lengths differ, or the combine
/// changes the local chunk's length.
pub fn torus_allreduce_onebit_hooked<G, F>(
    signs: &[SignVec],
    rows: usize,
    cols: usize,
    mut step_begin: G,
    mut combine: F,
) -> (SignVec, Trace)
where
    G: FnMut(&[PlannedHop]),
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    check_shape(signs, rows, cols);
    let d = signs[0].len();
    assert!(signs.iter().all(|v| v.len() == d), "sign lengths differ");
    let chunks = segment_ranges(d, cols);
    let mut steps: Vec<Vec<usize>> = Vec::new();
    // state[w][s]: worker w's aggregate of chunk s.
    let mut state: Vec<Vec<SignVec>> = signs
        .iter()
        .map(|v| chunks.iter().map(|r| v.slice(r.start, r.len())).collect())
        .collect();

    // Phase 1: horizontal reduce-scatter, single-worker units.
    let mut rec = HopRecorder::begin();
    let mut plan: Vec<PlannedHop> = Vec::with_capacity(rows * cols);
    for rr in 0..cols - 1 {
        plan.clear();
        for row in 0..rows {
            for c in 0..cols {
                let s = (c + cols - (rr % cols)) % cols;
                plan.push(PlannedHop {
                    ctx: CombineCtx {
                        step: rr,
                        receiver: row * cols + (c + 1) % cols,
                        segment: s,
                        received_count: rr + 1,
                        local_count: 1,
                    },
                    elems: chunks[s].len(),
                });
            }
        }
        step_begin(&plan);
        let expanded = steps.len();
        let mut step = Vec::with_capacity(rows * cols);
        for row in 0..rows {
            for c in 0..cols {
                let w = row * cols + c;
                let n = row * cols + (c + 1) % cols;
                let s = (c + cols - (rr % cols)) % cols;
                step.push(chunks[s].len().div_ceil(8).max(1));
                rec.hop(&Hop {
                    expanded_step: expanded,
                    step: rr,
                    phase: "reduce",
                    sender: w,
                    receiver: n,
                    segment: s,
                    elems: chunks[s].len(),
                    bytes: chunks[s].len().div_ceil(8).max(1),
                    attempt: 1,
                    delivered: true,
                });
                let ctx = CombineCtx {
                    step: rr,
                    receiver: n,
                    segment: s,
                    received_count: rr + 1,
                    local_count: 1,
                };
                let (src, dst) = split_pair(&mut state, w, n);
                combine(&src[s], &mut dst[s], ctx);
                assert_eq!(dst[s].len(), chunks[s].len(), "combine changed length");
            }
        }
        steps.push(step);
    }

    // Phase 2: vertical one-bit all-reduce per column, units of `cols`.
    let offset = steps.len();
    for c in 0..cols {
        let own = (c + 1) % cols;
        let column: Vec<SignVec> = (0..rows)
            .map(|row| state[row * cols + c][own].clone())
            .collect();
        let (reduced, sub) = {
            let _frame = rec.column_frame(offset, column_workers(rows, cols, c));
            ring_allreduce_onebit_weighted_hooked(&column, cols, &mut step_begin, &mut combine)
        };
        for row in 0..rows {
            state[row * cols + c][own].copy_from(&reduced);
        }
        merge_parallel(&mut steps, offset, &sub);
    }

    // Phase 3: horizontal all-gather of the final one-bit chunks.
    for g in 0..cols - 1 {
        let expanded = steps.len();
        let mut step = Vec::with_capacity(rows * cols);
        for row in 0..rows {
            for c in 0..cols {
                let w = row * cols + c;
                let n = row * cols + (c + 1) % cols;
                let s = (c + 1 + cols - (g % cols)) % cols;
                step.push(chunks[s].len().div_ceil(8).max(1));
                rec.hop(&Hop {
                    expanded_step: expanded,
                    step: g,
                    phase: "gather",
                    sender: w,
                    receiver: n,
                    segment: s,
                    elems: chunks[s].len(),
                    bytes: chunks[s].len().div_ceil(8).max(1),
                    attempt: 1,
                    delivered: true,
                });
                let (src, dst) = split_pair(&mut state, w, n);
                dst[s].copy_from(&src[s]);
            }
        }
        steps.push(step);
    }

    // All workers now agree; assemble from worker 0.
    let mut result = SignVec::zeros(d);
    for (s, range) in chunks.iter().enumerate() {
        result.splice(range.start, &state[0][s]);
    }
    let mut trace = Trace::new();
    for s in steps {
        trace.push_step(s);
    }
    (result, trace)
}

/// [`torus_allreduce_onebit`] under fault injection.
///
/// Aggregation counts are tracked per `(worker, chunk)` cell: a reduce
/// transfer that exhausts its retry budget is omitted (the receiver's
/// aggregate and count are unchanged), so every [`CombineCtx`] reports the
/// exact worker counts on both sides and `⊙` stays unbiased over what
/// arrived. The vertical phase runs
/// [`ring_allreduce_onebit_counted_faulty`] per column with the actual
/// row-aggregate counts. All-gather transfers are reliable, so every worker
/// still agrees on the result. Retransmissions appear as extra trace steps.
///
/// With an inert injector this reproduces [`torus_allreduce_onebit`].
///
/// # Errors
///
/// Returns [`SyncError::BadShape`] for an invalid torus shape and
/// [`SyncError::LengthMismatch`] if sign lengths differ.
///
/// # Panics
///
/// Panics if the combine changes a chunk's length (a programmer error in
/// the closure, not a runtime condition).
pub fn torus_allreduce_onebit_faulty<F>(
    signs: &[SignVec],
    rows: usize,
    cols: usize,
    inj: &mut FaultInjector,
    mut combine: F,
) -> Result<(SignVec, Trace), SyncError>
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    if rows < 2 || cols < 2 || signs.len() != rows * cols {
        return Err(SyncError::BadShape {
            rows,
            cols,
            workers: signs.len(),
        });
    }
    let d = signs[0].len();
    if let Some(bad) = signs.iter().find(|v| v.len() != d) {
        return Err(SyncError::LengthMismatch {
            expected: d,
            got: bad.len(),
        });
    }
    let chunks = segment_ranges(d, cols);
    let mut steps: Vec<Vec<usize>> = Vec::new();
    let mut state: Vec<Vec<SignVec>> = signs
        .iter()
        .map(|v| chunks.iter().map(|r| v.slice(r.start, r.len())).collect())
        .collect();
    // counts[w][s]: workers aggregated in worker w's copy of chunk s.
    let mut counts: Vec<Vec<usize>> = vec![vec![1; cols]; rows * cols];

    // Phase 1: horizontal reduce-scatter with per-cell counts.
    let mut rec = HopRecorder::begin();
    for rr in 0..cols - 1 {
        let step_base = steps.len();
        let mut fs = FaultyStep::new();
        for row in 0..rows {
            for c in 0..cols {
                let w = row * cols + c;
                let n = row * cols + (c + 1) % cols;
                let s = (c + cols - (rr % cols)) % cols;
                let fate = inj.transfer();
                fs.record(chunks[s].len().div_ceil(8).max(1), fate.attempts);
                emit_attempts(
                    &mut rec,
                    &Hop {
                        expanded_step: step_base,
                        step: rr,
                        phase: "reduce",
                        sender: w,
                        receiver: n,
                        segment: s,
                        elems: chunks[s].len(),
                        bytes: chunks[s].len().div_ceil(8).max(1),
                        attempt: 1,
                        delivered: true,
                    },
                    fate.attempts,
                    fate.delivered,
                );
                if fate.delivered {
                    let ctx = CombineCtx {
                        step: rr,
                        receiver: n,
                        segment: s,
                        received_count: counts[w][s],
                        local_count: counts[n][s],
                    };
                    let (src, dst) = split_pair(&mut state, w, n);
                    combine(&src[s], &mut dst[s], ctx);
                    assert_eq!(dst[s].len(), chunks[s].len(), "combine changed length");
                    counts[n][s] += counts[w][s];
                }
            }
        }
        steps.extend(fs.into_steps());
    }

    // Phase 2: vertical counted one-bit all-reduce per column.
    let offset = steps.len();
    for c in 0..cols {
        let own = (c + 1) % cols;
        let column: Vec<SignVec> = (0..rows)
            .map(|row| state[row * cols + c][own].clone())
            .collect();
        let column_counts: Vec<usize> = (0..rows).map(|row| counts[row * cols + c][own]).collect();
        let (reduced, sub) = {
            let _frame = rec.column_frame(offset, column_workers(rows, cols, c));
            ring_allreduce_onebit_counted_faulty(&column, &column_counts, inj, &mut combine)?
        };
        for row in 0..rows {
            state[row * cols + c][own].copy_from(&reduced);
        }
        merge_parallel(&mut steps, offset, &sub);
    }

    // Phase 3: horizontal all-gather, reliable.
    for g in 0..cols - 1 {
        let step_base = steps.len();
        let mut fs = FaultyStep::new();
        for row in 0..rows {
            for c in 0..cols {
                let w = row * cols + c;
                let n = row * cols + (c + 1) % cols;
                let s = (c + 1 + cols - (g % cols)) % cols;
                let fate = inj.transfer_reliable();
                fs.record(chunks[s].len().div_ceil(8).max(1), fate.attempts);
                emit_attempts(
                    &mut rec,
                    &Hop {
                        expanded_step: step_base,
                        step: g,
                        phase: "gather",
                        sender: w,
                        receiver: n,
                        segment: s,
                        elems: chunks[s].len(),
                        bytes: chunks[s].len().div_ceil(8).max(1),
                        attempt: 1,
                        delivered: true,
                    },
                    fate.attempts,
                    fate.delivered,
                );
                let (src, dst) = split_pair(&mut state, w, n);
                dst[s].copy_from(&src[s]);
            }
        }
        steps.extend(fs.into_steps());
    }

    let mut result = SignVec::zeros(d);
    for (s, range) in chunks.iter().enumerate() {
        result.splice(range.start, &state[0][s]);
    }
    let mut trace = Trace::new();
    for s in steps {
        trace.push_step(s);
    }
    Ok((result, trace))
}

/// 2D-torus all-reduce of sign vectors into a global majority vote
/// (signSGD-MV under TAR): integer sums on the reduce paths, one-bit votes
/// on the gather paths.
///
/// # Panics
///
/// Panics if the shape is invalid or sign lengths differ.
pub fn torus_allreduce_majority(
    signs: &[SignVec],
    rows: usize,
    cols: usize,
    wire: SumWire,
) -> (SignVec, Trace) {
    let (total, mut trace) = torus_reduce_sums(signs, rows, cols, wire);
    let d = signs[0].len();
    let vote = total.majority_sign();
    // Gather: vertical then horizontal, all one-bit chunks.
    let chunks = segment_ranges(d, cols);
    let sub_bits = |len: usize| len.div_ceil(8).max(1);
    for _ in 0..rows - 1 {
        let step: Vec<usize> = (0..rows * cols)
            .map(|w| sub_bits(chunks[(w % cols + 1) % cols].len().div_ceil(rows)))
            .collect();
        trace.push_step(step);
    }
    for _ in 0..cols - 1 {
        let step: Vec<usize> = (0..rows * cols)
            .map(|w| sub_bits(chunks[w % cols].len()))
            .collect();
        trace.push_step(step);
    }
    (vote, trace)
}

/// 2D-torus all-reduce of sign vectors into global sign sums (SSDM /
/// EF-signSGD under TAR).
///
/// # Panics
///
/// Panics if the shape is invalid or sign lengths differ.
pub fn torus_allreduce_signsum(
    signs: &[SignVec],
    rows: usize,
    cols: usize,
    wire: SumWire,
) -> (SignSumVec, Trace) {
    let (total, mut trace) = torus_reduce_sums(signs, rows, cols, wire);
    // Gather phases re-transmit final sums (vertical then horizontal).
    let per_worker = wire.wire_bytes(&total);
    for _ in 0..rows - 1 {
        trace.push_step(vec![per_worker.div_ceil(cols * rows); rows * cols]);
    }
    for _ in 0..cols - 1 {
        trace.push_step(vec![per_worker.div_ceil(cols); rows * cols]);
    }
    (total, trace)
}

/// Shared reduce path: horizontal reduce-scatter of sums, vertical
/// sum all-reduce. Returns the full-dimension total and the reduce trace.
fn torus_reduce_sums(
    signs: &[SignVec],
    rows: usize,
    cols: usize,
    wire: SumWire,
) -> (SignSumVec, Trace) {
    check_shape(signs, rows, cols);
    let d = signs[0].len();
    assert!(signs.iter().all(|v| v.len() == d), "sign lengths differ");
    let chunks = segment_ranges(d, cols);
    let mut steps: Vec<Vec<usize>> = Vec::new();
    let mut state: Vec<Vec<SignSumVec>> = signs
        .iter()
        .map(|v| {
            chunks
                .iter()
                .map(|r| SignSumVec::from_signs(&v.slice(r.start, r.len())))
                .collect()
        })
        .collect();

    // Phase 1: horizontal reduce-scatter of growing sums.
    for rr in 0..cols - 1 {
        let mut step = Vec::with_capacity(rows * cols);
        for row in 0..rows {
            for c in 0..cols {
                let w = row * cols + c;
                let n = row * cols + (c + 1) % cols;
                let s = (c + cols - (rr % cols)) % cols;
                step.push(wire.wire_bytes(&state[w][s]));
                let sent = state[w][s].clone();
                state[n][s].merge(&sent);
            }
        }
        steps.push(step);
    }

    // Phase 2: vertical sign-sum all-reduce per column on the owned chunk.
    let offset = steps.len();
    // Assemble the full-dimension total (identical across workers).
    let mut flat = vec![0i32; d];
    for c in 0..cols {
        let own = (c + 1) % cols;
        let column: Vec<SignSumVec> = (0..rows)
            .map(|row| state[row * cols + c][own].clone())
            .collect();
        let (reduced, sub) = ring_allreduce_signsum_parts(&column, wire);
        merge_parallel(&mut steps, offset, &sub);
        flat[chunks[own].clone()].copy_from_slice(reduced.sums());
    }
    let total = SignSumVec::from_parts(flat, (rows * cols) as u32);
    let mut trace = Trace::new();
    for s in steps {
        trace.push_step(s);
    }
    (total, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_tensor::rng::FastRng;

    fn random_payloads(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        (0..m)
            .map(|w| {
                let mut rng = FastRng::new(seed, w as u64);
                (0..d).map(|_| rng.next_f64() as f32 * 2.0 - 1.0).collect()
            })
            .collect()
    }

    fn random_signs(m: usize, d: usize, seed: u64) -> Vec<SignVec> {
        let mut rng = FastRng::new(seed, 0);
        (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect()
    }

    #[test]
    fn torus_sum_matches_reference() {
        for (rows, cols, d) in [(2, 2, 16), (2, 3, 40), (3, 3, 27), (4, 4, 128), (2, 4, 33)] {
            let m = rows * cols;
            let mut data = random_payloads(m, d, 11);
            let mut expected = vec![0.0f32; d];
            for w in &data {
                for (e, &x) in expected.iter_mut().zip(w) {
                    *e += x;
                }
            }
            let _ = torus_allreduce_sum(&mut data, rows, cols);
            for (w, payload) in data.iter().enumerate() {
                for (j, (&got, &want)) in payload.iter().zip(&expected).enumerate() {
                    assert!(
                        (got - want).abs() < 1e-3,
                        "{rows}x{cols} d={d} worker {w} coord {j}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_sum_fewer_critical_steps_than_ring() {
        let m = 16;
        let d = 1600;
        let mut ring_data = random_payloads(m, d, 3);
        let ring_trace = crate::ring::ring_allreduce_sum(&mut ring_data);
        let mut torus_data = random_payloads(m, d, 3);
        let torus_trace = torus_allreduce_sum(&mut torus_data, 4, 4);
        // Both schedules are bandwidth-optimal (~2·D·(M−1)/M bytes on the
        // critical path); the torus advantage is latency: far fewer steps.
        assert!(torus_trace.num_steps() < ring_trace.num_steps());
        assert!(torus_trace.critical_path_bytes() <= ring_trace.critical_path_bytes());
        use marsit_simnet::LinkModel;
        let latency_bound = LinkModel::new(1e-3, 1e12);
        assert!(torus_trace.time(latency_bound) < ring_trace.time(latency_bound));
    }

    #[test]
    fn torus_majority_matches_scalar_recount() {
        let (rows, cols, d) = (2, 3, 60);
        let signs = random_signs(rows * cols, d, 21);
        let (vote, _) = torus_allreduce_majority(&signs, rows, cols, SumWire::Elias);
        for j in 0..d {
            let sum: i32 = signs.iter().map(|v| if v.get(j) { 1 } else { -1 }).sum();
            assert_eq!(vote.get(j), sum >= 0, "coord {j}");
        }
    }

    #[test]
    fn torus_signsum_totals() {
        let (rows, cols, d) = (3, 2, 31);
        let signs = random_signs(rows * cols, d, 5);
        let (total, _) = torus_allreduce_signsum(&signs, rows, cols, SumWire::Elias);
        assert_eq!(total.count(), (rows * cols) as u32);
        for j in 0..d {
            let sum: i32 = signs.iter().map(|v| if v.get(j) { 1 } else { -1 }).sum();
            assert_eq!(total.sums()[j], sum, "coord {j}");
        }
    }

    #[test]
    fn torus_onebit_counts_cover_all_workers() {
        // With a "keep received" or any combine, the ctx counts must sum the
        // full worker set by the last vertical step.
        let (rows, cols, d) = (3, 3, 90);
        let signs = random_signs(rows * cols, d, 7);
        let mut max_total = 0;
        let _ = torus_allreduce_onebit(&signs, rows, cols, |recv, local, ctx| {
            max_total = max_total.max(ctx.received_count + ctx.local_count);
            local.copy_from(recv);
        });
        assert_eq!(max_total, rows * cols);
    }

    #[test]
    fn torus_onebit_hops_are_one_bit() {
        let (rows, cols, d) = (2, 2, 64);
        let signs = random_signs(rows * cols, d, 9);
        let (_, trace) = torus_allreduce_onebit(&signs, rows, cols, |r, l, _| l.copy_from(r));
        // Horizontal chunks: d/cols = 32 coords = 4 bytes; vertical
        // subchunks: 16 coords = 2 bytes.
        for step in trace.steps() {
            for &bytes in step {
                assert!(bytes == 4 || bytes == 2, "unexpected transfer size {bytes}");
            }
        }
    }

    #[test]
    fn torus_onebit_consensus_is_deterministic_given_combine() {
        let (rows, cols, d) = (2, 2, 16);
        let signs = random_signs(4, d, 13);
        let (a, _) = torus_allreduce_onebit(&signs, rows, cols, |r, l, _| l.copy_from(r));
        let (b, _) = torus_allreduce_onebit(&signs, rows, cols, |r, l, _| l.copy_from(r));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn wrong_worker_count_panics() {
        let mut data = random_payloads(5, 8, 0);
        let _ = torus_allreduce_sum(&mut data, 2, 3);
    }

    #[test]
    fn faulty_torus_with_inert_injector_matches_clean() {
        let (rows, cols, d) = (2, 4, 64);
        let signs = random_signs(rows * cols, d, 31);
        let combine = |recv: &SignVec, local: &mut SignVec, _ctx: CombineCtx| local.or_assign(recv);
        let (clean, clean_trace) = torus_allreduce_onebit(&signs, rows, cols, combine);
        let mut inj = FaultInjector::inert();
        let (faulty, faulty_trace) =
            torus_allreduce_onebit_faulty(&signs, rows, cols, &mut inj, combine)
                .expect("valid inputs");
        assert_eq!(clean, faulty);
        assert_eq!(clean_trace, faulty_trace);
    }

    #[test]
    fn faulty_torus_counts_stay_exact_under_drops() {
        use marsit_simnet::FaultPlan;
        let (rows, cols, d) = (3, 3, 90);
        let m = rows * cols;
        let signs = random_signs(m, d, 37);
        let plan = FaultPlan::seeded(5)
            .with_link_drop(0.3)
            .with_retry_policy(0, 1e-4);
        let mut inj = plan.injector(0);
        let mut max_total = 0;
        let (out, _) = torus_allreduce_onebit_faulty(&signs, rows, cols, &mut inj, |r, l, ctx| {
            assert!(ctx.received_count >= 1 && ctx.local_count >= 1);
            assert!(ctx.received_count + ctx.local_count <= m);
            max_total = max_total.max(ctx.received_count + ctx.local_count);
            l.copy_from(r);
        })
        .expect("valid inputs");
        assert_eq!(out.len(), d);
        assert!(inj.stats().dropped_transfers > 0);
        assert!(max_total <= m);
        // Determinism under the same seed.
        let mut inj2 = plan.injector(0);
        let (out2, _) =
            torus_allreduce_onebit_faulty(&signs, rows, cols, &mut inj2, |r, l, _| l.copy_from(r))
                .expect("valid inputs");
        assert_eq!(out, out2);
    }
}
