//! Topology reconfiguration over elastic live sets, and the typed errors
//! the faulty collectives surface instead of panicking.
//!
//! When membership changes mid-run (crashes, rejoins — see
//! `marsit_simnet::fault::MembershipSchedule`), the synchronization layer
//! must re-form its collective over whatever workers remain. The rules,
//! chosen to keep every legacy single-crash trace byte-identical:
//!
//! - **Full membership** keeps the configured paradigm (a torus stays a
//!   torus, a ring stays a ring).
//! - **Any partial live set** re-forms as a ring over the live workers in
//!   ascending index order — a torus *degrades* to a survivor ring (losing
//!   its √M step advantage but never correctness), and a previously-degraded
//!   ring *re-expands* automatically when workers rejoin.
//! - **One live worker** runs a degenerate local-only round: no wire
//!   traffic, the round's consensus is the survivor's own update.
//! - **Zero live workers** is a defined no-op round, not a panic.
//!
//! The outcome of this decision is reported through [`DegradedMode`], which
//! rides on `SyncOutcome` so callers can observe exactly how degraded each
//! round was. Runtime shape/size violations in the faulty collectives are
//! reported as [`SyncError`] values rather than worker-thread panics.

use marsit_simnet::Topology;

/// Typed failure of a faulty collective: the schedule could not run over the
/// inputs it was given. Surfaced through `SyncOutcome` (as
/// [`DegradedMode::Error`]) instead of panicking a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncError {
    /// The collective needs at least `needed` participants, got `got`.
    TooFewWorkers {
        /// Minimum participants the schedule supports.
        needed: usize,
        /// Participants actually supplied.
        got: usize,
    },
    /// A payload's length disagrees with the first worker's.
    LengthMismatch {
        /// Length of worker 0's payload.
        expected: usize,
        /// The offending length.
        got: usize,
    },
    /// The aggregation-count slice does not have one entry per input.
    CountMismatch {
        /// Number of inputs.
        expected: usize,
        /// Number of counts supplied.
        got: usize,
    },
    /// An input claimed to aggregate zero workers.
    ZeroCount {
        /// Index of the offending input.
        worker: usize,
    },
    /// A torus was requested with an impossible shape.
    BadShape {
        /// Requested row count.
        rows: usize,
        /// Requested column count.
        cols: usize,
        /// Workers actually supplied.
        workers: usize,
    },
    /// A segmented ring was requested with zero macro-segments.
    ZeroSegments,
    /// A hop's peer vanished mid-collective (dead thread, crashed process,
    /// closed socket). The round degrades through the reconfiguration path —
    /// the next round re-forms over the survivors — instead of aborting.
    PeerDisconnected {
        /// Rank of the vanished peer.
        peer: usize,
    },
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::TooFewWorkers { needed, got } => {
                write!(f, "collective needs >= {needed} workers, got {got}")
            }
            Self::LengthMismatch { expected, got } => {
                write!(f, "payload length mismatch: expected {expected}, got {got}")
            }
            Self::CountMismatch { expected, got } => {
                write!(f, "need {expected} aggregation counts, got {got}")
            }
            Self::ZeroCount { worker } => {
                write!(f, "input {worker} has a zero aggregation count")
            }
            Self::BadShape {
                rows,
                cols,
                workers,
            } => write!(f, "torus {rows}x{cols} cannot host {workers} workers"),
            Self::ZeroSegments => write!(f, "segmented ring needs >= 1 macro-segment"),
            Self::PeerDisconnected { peer } => {
                write!(f, "peer {peer} disconnected mid-collective")
            }
        }
    }
}

impl std::error::Error for SyncError {}

/// How (and whether) a synchronization round deviated from the configured
/// topology. `None` is the fault-free/full-membership case; everything else
/// describes a graceful degradation, never a panic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradedMode {
    /// The configured paradigm ran over full membership.
    #[default]
    None,
    /// A torus re-formed as a ring over `live` survivors.
    TorusToRing {
        /// Live workers in the survivor ring.
        live: usize,
    },
    /// A ring re-formed over a partial live set of `live` workers.
    PartialRing {
        /// Live workers in the shrunken ring.
        live: usize,
    },
    /// Only `worker` is live: a degenerate local-only round (no wire
    /// traffic; the consensus is the survivor's own update).
    LoneSurvivor {
        /// Index of the sole live worker.
        worker: usize,
    },
    /// No workers are live: the round is a defined no-op.
    AllCrashed,
    /// A collective reported a typed error; the round fell back to a
    /// degenerate local-only round.
    Error(SyncError),
}

impl DegradedMode {
    /// Whether the round ran the configured paradigm over full membership.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, Self::None)
    }
}

/// The collective actually formed over a live set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectiveTopology {
    /// Full-membership torus (rows × cols over all workers).
    Torus {
        /// Vertical ring length.
        rows: usize,
        /// Horizontal ring length.
        cols: usize,
    },
    /// Ring over the listed number of live workers (ascending index order).
    Ring {
        /// Live workers in the ring.
        workers: usize,
    },
    /// Degenerate single-worker "collective": a local-only round.
    Lone {
        /// The sole live worker.
        worker: usize,
    },
    /// No live workers at all.
    Empty,
}

/// Re-forms a base topology over elastic live sets.
///
/// # Examples
///
/// ```
/// use marsit_collectives::reconfigure::{DegradedMode, EffectiveTopology, TopologyReconfigurer};
/// use marsit_simnet::Topology;
///
/// let rec = TopologyReconfigurer::new(Topology::torus(2, 4), 8);
/// let (eff, mode) = rec.effective(&[0, 1, 2, 3, 4, 5, 6, 7]);
/// assert_eq!(eff, EffectiveTopology::Torus { rows: 2, cols: 4 });
/// assert!(mode.is_none());
///
/// let (eff, mode) = rec.effective(&[0, 1, 3, 4, 6, 7]);
/// assert_eq!(eff, EffectiveTopology::Ring { workers: 6 });
/// assert_eq!(mode, DegradedMode::TorusToRing { live: 6 });
///
/// let (eff, mode) = rec.effective(&[5]);
/// assert_eq!(eff, EffectiveTopology::Lone { worker: 5 });
/// assert_eq!(mode, DegradedMode::LoneSurvivor { worker: 5 });
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TopologyReconfigurer {
    base: Topology,
    workers: usize,
}

impl TopologyReconfigurer {
    /// A reconfigurer for `base` over `workers` total workers.
    #[must_use]
    pub fn new(base: Topology, workers: usize) -> Self {
        Self { base, workers }
    }

    /// The collective to form over `live` (sorted ascending worker indices)
    /// and the degradation this represents.
    #[must_use]
    pub fn effective(&self, live: &[usize]) -> (EffectiveTopology, DegradedMode) {
        match live.len() {
            0 => (EffectiveTopology::Empty, DegradedMode::AllCrashed),
            1 => (
                EffectiveTopology::Lone { worker: live[0] },
                DegradedMode::LoneSurvivor { worker: live[0] },
            ),
            n if n == self.workers => match self.base {
                Topology::Torus { rows, cols }
                    if rows >= 2 && cols >= 2 && rows * cols == self.workers =>
                {
                    (EffectiveTopology::Torus { rows, cols }, DegradedMode::None)
                }
                _ => (EffectiveTopology::Ring { workers: n }, DegradedMode::None),
            },
            n => {
                let mode = match self.base {
                    Topology::Torus { .. } => DegradedMode::TorusToRing { live: n },
                    _ => DegradedMode::PartialRing { live: n },
                };
                (EffectiveTopology::Ring { workers: n }, mode)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_membership_is_not_degraded() {
        let rec = TopologyReconfigurer::new(Topology::ring(4), 4);
        let (eff, mode) = rec.effective(&[0, 1, 2, 3]);
        assert_eq!(eff, EffectiveTopology::Ring { workers: 4 });
        assert!(mode.is_none());
    }

    #[test]
    fn torus_degrades_and_reexpands() {
        let rec = TopologyReconfigurer::new(Topology::torus(2, 3), 6);
        let (eff, mode) = rec.effective(&[0, 2, 3, 4, 5]);
        assert_eq!(eff, EffectiveTopology::Ring { workers: 5 });
        assert_eq!(mode, DegradedMode::TorusToRing { live: 5 });
        // Rejoin restores full membership: the torus re-forms.
        let (eff, mode) = rec.effective(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(eff, EffectiveTopology::Torus { rows: 2, cols: 3 });
        assert!(mode.is_none());
    }

    #[test]
    fn terminal_live_sets_are_defined() {
        let rec = TopologyReconfigurer::new(Topology::torus(2, 2), 4);
        assert_eq!(
            rec.effective(&[3]),
            (
                EffectiveTopology::Lone { worker: 3 },
                DegradedMode::LoneSurvivor { worker: 3 }
            )
        );
        assert_eq!(
            rec.effective(&[]),
            (EffectiveTopology::Empty, DegradedMode::AllCrashed)
        );
    }

    #[test]
    fn two_member_torus_becomes_ring() {
        // M=2 "torus" live sets must not panic: they form a 2-ring.
        let rec = TopologyReconfigurer::new(Topology::torus(2, 4), 8);
        let (eff, mode) = rec.effective(&[1, 6]);
        assert_eq!(eff, EffectiveTopology::Ring { workers: 2 });
        assert_eq!(mode, DegradedMode::TorusToRing { live: 2 });
    }

    #[test]
    fn sync_error_displays() {
        let e = SyncError::TooFewWorkers { needed: 2, got: 1 };
        assert!(e.to_string().contains(">= 2"));
        let e = SyncError::BadShape {
            rows: 1,
            cols: 3,
            workers: 3,
        };
        assert!(e.to_string().contains("1x3"));
    }
}
