//! Tree all-reduce: the extension paradigm the paper names alongside TAR
//! ("Marsit can be easily extended to other all-reduce paradigms including
//! segmented-ring all-reduce \[25\] and tree all-reduce \[24\]", Section 5).
//!
//! A binary reduction tree: `⌈log₂ M⌉` *reduce* levels fold pairs of
//! aggregates upward to worker 0, then the same number of *broadcast*
//! levels fan the result back out. Latency is logarithmic (vs linear for a
//! ring) at the cost of moving the full payload on every level — the
//! classic latency/bandwidth trade.
//!
//! The one-bit variant demonstrates exactly why Marsit's *weighted* `⊙`
//! matters: a tree merge combines two aggregates of arbitrary sizes, which
//! Eq. (2)'s `b = 1` special case cannot express but
//! `combine_weighted(recv, a, local, b)` can.

use marsit_compress::SignSumVec;
use marsit_simnet::FaultInjector;
use marsit_tensor::SignVec;

use crate::reconfigure::SyncError;
use crate::ring::{split_pair, CombineCtx};
use crate::trace::{FaultyStep, Trace};

/// Number of reduce levels of a binary tree over `m` workers.
#[must_use]
pub fn tree_levels(m: usize) -> usize {
    assert!(m >= 1, "tree needs at least 1 worker");
    (usize::BITS - (m - 1).leading_zeros()) as usize
}

/// In-place binary-tree all-reduce summing `f32` payloads.
///
/// On return every `data[w]` holds the elementwise sum. The trace has one
/// step per tree level (reduce levels then broadcast levels); transfers
/// within a level ride disjoint links.
///
/// # Panics
///
/// Panics if fewer than 2 workers or payload lengths differ.
pub fn tree_allreduce_sum(data: &mut [Vec<f32>]) -> Trace {
    let m = data.len();
    assert!(m >= 2, "tree all-reduce needs at least 2 workers");
    let d = data[0].len();
    assert!(data.iter().all(|v| v.len() == d), "payload lengths differ");
    let bytes = d * 4;
    let mut trace = Trace::new();

    // Reduce: at level l (stride s = 2^l), worker w+s sends to w for every
    // w divisible by 2s.
    let mut stride = 1;
    while stride < m {
        let mut step = Vec::new();
        let mut w = 0;
        while w + stride < m {
            step.push(bytes);
            let (src, dst) = split_pair(data, w + stride, w);
            for (x, &y) in dst.iter_mut().zip(src.iter()) {
                *x += y;
            }
            w += 2 * stride;
        }
        trace.push_step(step);
        stride *= 2;
    }

    // Broadcast: mirror the reduce levels top-down.
    stride /= 2;
    while stride >= 1 {
        let mut step = Vec::new();
        let mut w = 0;
        while w + stride < m {
            step.push(bytes);
            let (src, dst) = split_pair(data, w, w + stride);
            dst.copy_from_slice(src);
            w += 2 * stride;
        }
        trace.push_step(step);
        if stride == 1 {
            break;
        }
        stride /= 2;
    }
    trace
}

/// Binary-tree all-reduce of sign vectors into global sign sums (integer
/// payload widths grow toward the root, as under any linear MAR scheme).
///
/// # Panics
///
/// Panics if fewer than 2 workers or sign lengths differ.
#[must_use]
pub fn tree_allreduce_signsum(signs: &[SignVec]) -> (SignSumVec, Trace) {
    let m = signs.len();
    assert!(m >= 2, "tree all-reduce needs at least 2 workers");
    let d = signs[0].len();
    assert!(signs.iter().all(|v| v.len() == d), "sign lengths differ");
    let mut state: Vec<Option<SignSumVec>> = signs
        .iter()
        .map(|v| Some(SignSumVec::from_signs(v)))
        .collect();
    let mut trace = Trace::new();
    let mut stride = 1;
    while stride < m {
        let mut step = Vec::new();
        let mut w = 0;
        while w + stride < m {
            let sent = state[w + stride]
                .take()
                .expect("child still holds its aggregate");
            step.push(sent.elias_bits().div_ceil(8));
            state[w]
                .as_mut()
                .expect("parent still holds its aggregate")
                .merge(&sent);
            w += 2 * stride;
        }
        trace.push_step(step);
        stride *= 2;
    }
    let total = state[0].take().expect("root aggregate");
    // Broadcast the final sums back down.
    let down_bytes = total.elias_bits().div_ceil(8);
    let mut levels = tree_levels(m);
    while levels > 0 {
        let transfers = broadcast_transfers(m, levels - 1);
        trace.push_step(vec![down_bytes; transfers]);
        levels -= 1;
    }
    (total, trace)
}

/// Binary-tree all-reduce of one-bit payloads with a caller-supplied
/// combine (Marsit over a reduction tree).
///
/// Every transfer is one bit per coordinate. Combine contexts carry the
/// subtree sizes: at stride `s`, the received aggregate covers up to `s`
/// workers and the local aggregate up to `s` workers (exact counts are
/// tracked per node, handling non-power-of-two `m`).
/// `combine(received, local, ctx)` merges the child's aggregate *into* the
/// parent's in place — no clone per merge.
///
/// # Panics
///
/// Panics if fewer than 2 workers, sign lengths differ, or the combine
/// changes the local vector's length.
pub fn tree_allreduce_onebit<F>(signs: &[SignVec], mut combine: F) -> (SignVec, Trace)
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    let m = signs.len();
    assert!(m >= 2, "tree all-reduce needs at least 2 workers");
    let d = signs[0].len();
    assert!(signs.iter().all(|v| v.len() == d), "sign lengths differ");
    let bytes = d.div_ceil(8).max(1);
    let mut state: Vec<SignVec> = signs.to_vec();
    let mut counts: Vec<usize> = vec![1; m];
    let mut trace = Trace::new();
    let mut stride = 1;
    let mut level = 0;
    while stride < m {
        let mut step = Vec::new();
        let mut w = 0;
        while w + stride < m {
            step.push(bytes);
            let ctx = CombineCtx {
                step: level,
                receiver: w,
                segment: 0,
                received_count: counts[w + stride],
                local_count: counts[w],
            };
            let (src, dst) = split_pair(&mut state, w + stride, w);
            combine(src, dst, ctx);
            assert_eq!(dst.len(), d, "combine changed length");
            counts[w] += counts[w + stride];
            w += 2 * stride;
        }
        trace.push_step(step);
        stride *= 2;
        level += 1;
    }
    assert_eq!(counts[0], m, "root must aggregate all workers");
    // Broadcast the consensus bits down the tree.
    let mut levels = tree_levels(m);
    while levels > 0 {
        let transfers = broadcast_transfers(m, levels - 1);
        trace.push_step(vec![bytes; transfers]);
        levels -= 1;
    }
    (state.swap_remove(0), trace)
}

/// [`tree_allreduce_onebit`] under fault injection.
///
/// An upward (reduce) transfer that exhausts its retry budget is omitted:
/// the parent keeps its aggregate, the child's whole subtree is excluded
/// from the consensus, and per-node counts stay exact, so every
/// [`CombineCtx`] still reports true subtree sizes. Downward (broadcast)
/// transfers are reliable — all workers end with the root's consensus.
///
/// With an inert injector this reproduces [`tree_allreduce_onebit`].
///
/// # Errors
///
/// Returns a [`SyncError`] if fewer than 2 workers or sign lengths differ.
///
/// # Panics
///
/// Panics if the combine changes the local vector's length (a programmer
/// error in the closure, not a runtime condition).
pub fn tree_allreduce_onebit_faulty<F>(
    signs: &[SignVec],
    inj: &mut FaultInjector,
    mut combine: F,
) -> Result<(SignVec, Trace), SyncError>
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    let m = signs.len();
    if m < 2 {
        return Err(SyncError::TooFewWorkers { needed: 2, got: m });
    }
    let d = signs[0].len();
    if let Some(bad) = signs.iter().find(|v| v.len() != d) {
        return Err(SyncError::LengthMismatch {
            expected: d,
            got: bad.len(),
        });
    }
    let bytes = d.div_ceil(8).max(1);
    let mut state: Vec<SignVec> = signs.to_vec();
    let mut counts: Vec<usize> = vec![1; m];
    let mut trace = Trace::new();
    let mut stride = 1;
    let mut level = 0;
    while stride < m {
        let mut fs = FaultyStep::new();
        let mut w = 0;
        while w + stride < m {
            let fate = inj.transfer();
            fs.record(bytes, fate.attempts);
            if fate.delivered {
                let ctx = CombineCtx {
                    step: level,
                    receiver: w,
                    segment: 0,
                    received_count: counts[w + stride],
                    local_count: counts[w],
                };
                let (src, dst) = split_pair(&mut state, w + stride, w);
                combine(src, dst, ctx);
                assert_eq!(dst.len(), d, "combine changed length");
                counts[w] += counts[w + stride];
            }
            w += 2 * stride;
        }
        for step in fs.into_steps() {
            trace.push_step(step);
        }
        stride *= 2;
        level += 1;
    }
    debug_assert!(
        counts[0] <= m,
        "root cannot aggregate more than all workers"
    );
    // Broadcast the root consensus down the tree, reliably.
    let mut levels = tree_levels(m);
    while levels > 0 {
        let transfers = broadcast_transfers(m, levels - 1);
        let mut fs = FaultyStep::new();
        for _ in 0..transfers {
            let fate = inj.transfer_reliable();
            fs.record(bytes, fate.attempts);
        }
        for step in fs.into_steps() {
            trace.push_step(step);
        }
        levels -= 1;
    }
    Ok((state.swap_remove(0), trace))
}

/// Number of transfers at broadcast level `level` (stride `2^level`).
fn broadcast_transfers(m: usize, level: usize) -> usize {
    let stride = 1usize << level;
    let mut transfers = 0;
    let mut w = 0;
    while w + stride < m {
        transfers += 1;
        w += 2 * stride;
    }
    transfers
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_tensor::rng::FastRng;

    fn payloads(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = FastRng::new(seed, 0);
        (0..m)
            .map(|_| (0..d).map(|_| rng.next_f64() as f32 - 0.5).collect())
            .collect()
    }

    fn signs(m: usize, d: usize, seed: u64) -> Vec<SignVec> {
        let mut rng = FastRng::new(seed, 1);
        (0..m)
            .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
            .collect()
    }

    #[test]
    fn tree_levels_values() {
        assert_eq!(tree_levels(2), 1);
        assert_eq!(tree_levels(3), 2);
        assert_eq!(tree_levels(4), 2);
        assert_eq!(tree_levels(5), 3);
        assert_eq!(tree_levels(8), 3);
    }

    #[test]
    fn tree_sum_matches_reference_all_sizes() {
        for m in 2..=9 {
            let d = 33;
            let mut data = payloads(m, d, 7);
            let mut expected = vec![0.0f32; d];
            for w in &data {
                for (e, &x) in expected.iter_mut().zip(w) {
                    *e += x;
                }
            }
            let trace = tree_allreduce_sum(&mut data);
            for (w, payload) in data.iter().enumerate() {
                for (j, (&got, &want)) in payload.iter().zip(&expected).enumerate() {
                    assert!((got - want).abs() < 1e-4, "m={m} worker {w} coord {j}");
                }
            }
            assert_eq!(trace.num_steps(), 2 * tree_levels(m));
        }
    }

    #[test]
    fn tree_has_fewer_steps_than_ring_for_large_m() {
        let m = 16;
        let d = 64;
        let mut tree_data = payloads(m, d, 1);
        let tree_trace = tree_allreduce_sum(&mut tree_data);
        let mut ring_data = payloads(m, d, 1);
        let ring_trace = crate::ring::ring_allreduce_sum(&mut ring_data);
        assert!(tree_trace.num_steps() < ring_trace.num_steps()); // 8 vs 30
                                                                  // But the tree moves the full payload every level: worse bandwidth.
        assert!(tree_trace.critical_path_bytes() > ring_trace.critical_path_bytes());
    }

    #[test]
    fn tree_signsum_totals() {
        for m in [2usize, 3, 5, 8] {
            let d = 40;
            let sv = signs(m, d, 3);
            let (total, trace) = tree_allreduce_signsum(&sv);
            assert_eq!(total.count(), m as u32);
            for j in 0..d {
                let sum: i32 = sv.iter().map(|v| if v.get(j) { 1 } else { -1 }).sum();
                assert_eq!(total.sums()[j], sum, "m={m} coord {j}");
            }
            assert_eq!(trace.num_steps(), 2 * tree_levels(m));
        }
    }

    #[test]
    fn tree_onebit_counts_cover_all_workers() {
        for m in [2usize, 3, 6, 8, 11] {
            let sv = signs(m, 24, 9);
            let mut max_total = 0;
            let (_, trace) = tree_allreduce_onebit(&sv, |r, l, ctx| {
                max_total = max_total.max(ctx.received_count + ctx.local_count);
                l.copy_from(r);
            });
            assert_eq!(max_total, m, "m={m}");
            // Every transfer is 1 bit/coordinate.
            for step in trace.steps() {
                for &b in step {
                    assert_eq!(b, 3); // 24 bits -> 3 bytes
                }
            }
        }
    }

    #[test]
    fn tree_onebit_is_unbiased_with_weighted_combine() {
        // The weighted ⊙ keeps unbiasedness on tree merges of unequal
        // subtree sizes (m = 5 has a 4-subtree merged with a 1-subtree).
        let m = 5;
        let d = 30;
        let sv = signs(m, d, 11);
        let trials = 30_000;
        let mut ones = vec![0u32; d];
        for trial in 0..trials {
            let mut rng = FastRng::new(trial, 5);
            let (out, _) = tree_allreduce_onebit(&sv, |r, l, ctx| {
                // combine_weighted lives in marsit-core; emulate it here to
                // keep the dependency direction (core depends on this crate).
                let p = ctx.received_count as f64 / (ctx.received_count + ctx.local_count) as f64;
                let keep = SignVec::bernoulli_uniform(r.len(), p, &mut rng);
                let merged = keep.and(r).or(&keep.not().and(l));
                l.copy_from(&merged);
            });
            for (j, o) in ones.iter_mut().enumerate() {
                *o += u32::from(out.get(j));
            }
        }
        for (j, &o) in ones.iter().enumerate() {
            let measured = f64::from(o) / f64::from(trials as u32);
            let expected = sv.iter().filter(|v| v.get(j)).count() as f64 / m as f64;
            assert!(
                (measured - expected).abs() < 0.02,
                "coord {j}: {measured} vs {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 workers")]
    fn single_worker_panics() {
        let mut data = vec![vec![1.0f32; 4]];
        let _ = tree_allreduce_sum(&mut data);
    }

    #[test]
    fn faulty_tree_with_inert_injector_matches_clean() {
        for m in [2usize, 5, 8] {
            let sv = signs(m, 40, 41);
            let combine = |r: &SignVec, l: &mut SignVec, _ctx: CombineCtx| l.and_assign(r);
            let (clean, clean_trace) = tree_allreduce_onebit(&sv, combine);
            let mut inj = FaultInjector::inert();
            let (faulty, faulty_trace) =
                tree_allreduce_onebit_faulty(&sv, &mut inj, combine).expect("valid inputs");
            assert_eq!(clean, faulty, "m={m}");
            assert_eq!(clean_trace, faulty_trace, "m={m}");
        }
    }

    #[test]
    fn faulty_tree_drops_exclude_whole_subtrees() {
        use marsit_simnet::FaultPlan;
        let m = 8;
        let sv = signs(m, 32, 43);
        let plan = FaultPlan::seeded(2)
            .with_link_drop(0.5)
            .with_retry_policy(0, 1e-4);
        let mut inj = plan.injector(0);
        let mut root_total = 0;
        let (_, _) = tree_allreduce_onebit_faulty(&sv, &mut inj, |r, l, ctx| {
            root_total = root_total.max(ctx.received_count + ctx.local_count);
            l.copy_from(r);
        })
        .expect("valid inputs");
        assert!(root_total <= m);
        assert!(inj.stats().dropped_transfers > 0);
    }
}
