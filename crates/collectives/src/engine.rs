//! Transport-driven collective engine.
//!
//! The legacy collectives in [`crate::ring`] / [`crate::torus`] /
//! [`crate::tree`] / [`crate::segring`] execute their schedules directly on
//! a slice of worker states — one process, one thread, no wire. This module
//! splits that into two halves so the *same* schedule runs on any
//! [`Transport`] backend:
//!
//! 1. **Compile**: [`compile_plan`] replays a topology's exact legacy
//!    schedule — hop order, segment geometry, [`CombineCtx`] values, and
//!    (for faulty runs) per-`(worker, segment)` aggregation counts — into a
//!    flat list of [`PlannedTransfer`]s. Fault fates are drawn here, by
//!    consuming the [`FaultInjector`] in the legacy collective's canonical
//!    transfer order, so the injector's RNG stream and statistics advance
//!    exactly as they would have in-process.
//! 2. **Execute**: [`run_rank`] walks one rank's slice of the plan against
//!    a [`Transport`] endpoint — sends first, then combines what arrives.
//!    [`run_lockstep`] drives every rank from one thread over a simulated
//!    fabric (the refactored simulator backend); [`run_threaded`] gives
//!    each rank an OS thread. Worker *processes* run [`run_rank`] directly
//!    over a `ProcessTransport`.
//!
//! Determinism across backends is the frozen RNG stream contract
//! (`DESIGN.md` §9): every combine's randomness is addressed by its
//! [`CombineCtx`], which is fixed at compile time, so arrival timing cannot
//! perturb the consensus. Simulated-clock telemetry and traces are *not*
//! produced here — they depend only on the schedule and fault fates, so
//! callers obtain them byte-identically by replaying the legacy collective
//! on dummy payloads (see `marsit_core::transport`). The one exception is
//! *wall-clock tracing*: when an ambient telemetry scope is active,
//! [`run_rank`] records each payload it receives as a `hop` event carrying
//! the propagated trace context (round, absolute seq, sender send-time) plus
//! its own arrival time, so real-transport runs can be merged into one
//! causally-ordered cross-rank trace.

use std::ops::Range;

use marsit_simnet::transport::{Backend, ChannelFabric, Transport, TransportError};
use marsit_simnet::{FaultInjector, LinkModel};
use marsit_telemetry::{wall_now_ns, Hop, HopRecorder, HopTiming};
use marsit_tensor::SignVec;

use crate::reconfigure::SyncError;
use crate::ring::{segment_ranges, CombineCtx};

/// Which legacy schedule to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanTopology {
    /// Ring all-reduce over all ranks ([`crate::ring`]).
    Ring,
    /// 2D-torus all-reduce ([`crate::torus`]).
    Torus {
        /// Torus rows.
        rows: usize,
        /// Torus columns.
        cols: usize,
    },
    /// Binary-tree all-reduce ([`crate::tree`]).
    Tree,
    /// Segmented-ring all-reduce ([`crate::segring`]).
    SegRing {
        /// Number of macro-segments.
        macro_segments: usize,
    },
}

/// One scheduled point-to-point transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedTransfer {
    /// Engine step: all of a rank's step-`k` sends precede its step-`k`
    /// receives, and steps run in order at every rank.
    pub step: usize,
    /// Sending rank (global).
    pub sender: usize,
    /// Receiving rank (global).
    pub receiver: usize,
    /// First coordinate of the payload within the full `d`-length vector.
    pub start: usize,
    /// Payload length in coordinates.
    pub len: usize,
    /// `Some(ctx)` → the receiver combines the payload into its local
    /// range with exactly this context; `None` → the receiver overwrites
    /// the range (gather / broadcast copy).
    pub combine: Option<CombineCtx>,
    /// Fault fate drawn at compile time. An undelivered transfer is skipped
    /// by both endpoints — the payload never existed on the wire.
    pub delivered: bool,
}

/// A compiled schedule: every transfer of one collective, in canonical
/// (injector-consumption) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnginePlan {
    /// Number of ranks.
    pub world: usize,
    /// Full payload length in coordinates.
    pub d: usize,
    /// Exclusive upper bound on [`PlannedTransfer::step`].
    pub num_steps: usize,
    /// All transfers, canonical order.
    pub transfers: Vec<PlannedTransfer>,
}

impl EnginePlan {
    /// Largest single-transfer payload in bytes at any step — what one
    /// lockstep tick moves on the busiest link (the α–β step price).
    #[must_use]
    pub fn max_step_bytes(&self, step: usize) -> usize {
        self.transfers
            .iter()
            .filter(|t| t.step == step && t.delivered)
            .map(|t| t.len.div_ceil(8).max(1))
            .max()
            .unwrap_or(0)
    }
}

/// Draws a best-effort fate: `None` injector (clean run) always delivers.
fn fate(inj: &mut Option<&mut FaultInjector>) -> bool {
    match inj {
        Some(inj) => inj.transfer().delivered,
        None => true,
    }
}

/// Draws a reliable fate (always delivered, but the injector must still be
/// consumed so its RNG stream and retry statistics stay in legacy step).
fn fate_reliable(inj: &mut Option<&mut FaultInjector>) {
    if let Some(inj) = inj {
        let f = inj.transfer_reliable();
        debug_assert!(f.delivered, "reliable transfers always deliver");
    }
}

/// Compiles one counted ring pass (reduce + reliable gather) into `plan`.
///
/// `ranks[i]` is the global rank at ring position `i`; `ranges[s]` the
/// global coordinate range of ring segment `s`; `counts[i]` how many workers
/// position `i`'s input already aggregates. `seg_shift` offsets
/// `ctx.segment` (the segmented ring namespaces its pipelines this way).
/// Contexts use ring-*positions* as receiver ids, exactly as the legacy
/// nested collectives do.
fn compile_ring_into(
    plan: &mut Vec<PlannedTransfer>,
    next_step: &mut usize,
    ranks: &[usize],
    ranges: &[Range<usize>],
    init_counts: &[usize],
    seg_shift: usize,
    inj: &mut Option<&mut FaultInjector>,
) {
    let m = ranks.len();
    debug_assert!(m >= 2 && ranges.len() == m && init_counts.len() == m);
    // counts[i][s]: workers aggregated in position i's copy of segment s.
    let mut counts: Vec<Vec<usize>> = init_counts.iter().map(|&c| vec![c; m]).collect();
    for r in 0..m - 1 {
        let step = *next_step;
        for w in 0..m {
            let n = (w + 1) % m;
            let s = (w + m - (r % m)) % m;
            let delivered = fate(inj);
            plan.push(PlannedTransfer {
                step,
                sender: ranks[w],
                receiver: ranks[n],
                start: ranges[s].start,
                len: ranges[s].len(),
                combine: Some(CombineCtx {
                    step: r,
                    receiver: n,
                    segment: seg_shift + s,
                    received_count: counts[w][s],
                    local_count: counts[n][s],
                }),
                delivered,
            });
            if delivered {
                counts[n][s] += counts[w][s];
            }
        }
        *next_step += 1;
    }
    for g in 0..m - 1 {
        let step = *next_step;
        for (s, range) in ranges.iter().enumerate() {
            fate_reliable(inj);
            let w = (s + g + m - 1) % m;
            plan.push(PlannedTransfer {
                step,
                sender: ranks[w],
                receiver: ranks[(w + 1) % m],
                start: range.start,
                len: range.len(),
                combine: None,
                delivered: true,
            });
        }
        *next_step += 1;
    }
}

/// Compiles a topology's full schedule over `world` ranks and a `d`-length
/// payload. Passing an injector draws faulty fates (consuming it in the
/// legacy collective's canonical order); `None` compiles the clean
/// schedule.
///
/// # Errors
///
/// Returns the same [`SyncError`]s the legacy faulty collectives return for
/// impossible shapes.
pub fn compile_plan(
    topology: PlanTopology,
    world: usize,
    d: usize,
    mut inj: Option<&mut FaultInjector>,
) -> Result<EnginePlan, SyncError> {
    let mut transfers = Vec::new();
    let mut next_step = 0usize;
    match topology {
        PlanTopology::Ring => {
            if world < 2 {
                return Err(SyncError::TooFewWorkers {
                    needed: 2,
                    got: world,
                });
            }
            let ranks: Vec<usize> = (0..world).collect();
            compile_ring_into(
                &mut transfers,
                &mut next_step,
                &ranks,
                &segment_ranges(d, world),
                &vec![1; world],
                0,
                &mut inj,
            );
        }
        PlanTopology::Torus { rows, cols } => {
            if rows < 2 || cols < 2 || world != rows * cols {
                return Err(SyncError::BadShape {
                    rows,
                    cols,
                    workers: world,
                });
            }
            let chunks = segment_ranges(d, cols);
            // counts[w][s]: workers aggregated in w's copy of chunk s.
            let mut counts: Vec<Vec<usize>> = vec![vec![1; cols]; world];
            // Phase 1: horizontal reduce-scatter, global receiver ids in ctx.
            for rr in 0..cols - 1 {
                let step = next_step;
                for row in 0..rows {
                    for c in 0..cols {
                        let w = row * cols + c;
                        let n = row * cols + (c + 1) % cols;
                        let s = (c + cols - (rr % cols)) % cols;
                        let delivered = fate(&mut inj);
                        transfers.push(PlannedTransfer {
                            step,
                            sender: w,
                            receiver: n,
                            start: chunks[s].start,
                            len: chunks[s].len(),
                            combine: Some(CombineCtx {
                                step: rr,
                                receiver: n,
                                segment: s,
                                received_count: counts[w][s],
                                local_count: counts[n][s],
                            }),
                            delivered,
                        });
                        if delivered {
                            counts[n][s] += counts[w][s];
                        }
                    }
                }
                next_step += 1;
            }
            // Phase 2: vertical ring per column over its own chunk, with
            // column-local receiver ids in ctx — columns sequential in
            // injector order, exactly as the legacy torus runs them.
            for c in 0..cols {
                let own = (c + 1) % cols;
                let ranks: Vec<usize> = (0..rows).map(|row| row * cols + c).collect();
                let column_counts: Vec<usize> =
                    (0..rows).map(|row| counts[row * cols + c][own]).collect();
                let sub: Vec<Range<usize>> = segment_ranges(chunks[own].len(), rows)
                    .into_iter()
                    .map(|r| chunks[own].start + r.start..chunks[own].start + r.end)
                    .collect();
                compile_ring_into(
                    &mut transfers,
                    &mut next_step,
                    &ranks,
                    &sub,
                    &column_counts,
                    0,
                    &mut inj,
                );
            }
            // Phase 3: horizontal all-gather, reliable copies.
            for g in 0..cols - 1 {
                let step = next_step;
                for row in 0..rows {
                    for c in 0..cols {
                        let s = (c + 1 + cols - (g % cols)) % cols;
                        fate_reliable(&mut inj);
                        transfers.push(PlannedTransfer {
                            step,
                            sender: row * cols + c,
                            receiver: row * cols + (c + 1) % cols,
                            start: chunks[s].start,
                            len: chunks[s].len(),
                            combine: None,
                            delivered: true,
                        });
                    }
                }
                next_step += 1;
            }
        }
        PlanTopology::Tree => {
            if world < 2 {
                return Err(SyncError::TooFewWorkers {
                    needed: 2,
                    got: world,
                });
            }
            let mut counts = vec![1usize; world];
            let mut stride = 1;
            let mut level = 0;
            let mut levels = 0;
            while stride < world {
                let step = next_step;
                let mut w = 0;
                while w + stride < world {
                    let delivered = fate(&mut inj);
                    transfers.push(PlannedTransfer {
                        step,
                        sender: w + stride,
                        receiver: w,
                        start: 0,
                        len: d,
                        combine: Some(CombineCtx {
                            step: level,
                            receiver: w,
                            segment: 0,
                            received_count: counts[w + stride],
                            local_count: counts[w],
                        }),
                        delivered,
                    });
                    if delivered {
                        counts[w] += counts[w + stride];
                    }
                    w += 2 * stride;
                }
                next_step += 1;
                stride *= 2;
                level += 1;
                levels += 1;
            }
            // Broadcast the consensus back down, top level first. The
            // legacy collectives only *trace* this phase; the engine
            // executes the copies so every rank ends with the consensus.
            for lv in (0..levels).rev() {
                let stride = 1usize << lv;
                let step = next_step;
                let mut w = 0;
                while w + stride < world {
                    fate_reliable(&mut inj);
                    transfers.push(PlannedTransfer {
                        step,
                        sender: w,
                        receiver: w + stride,
                        start: 0,
                        len: d,
                        combine: None,
                        delivered: true,
                    });
                    w += 2 * stride;
                }
                next_step += 1;
            }
        }
        PlanTopology::SegRing { macro_segments } => {
            if world < 2 {
                return Err(SyncError::TooFewWorkers {
                    needed: 2,
                    got: world,
                });
            }
            if macro_segments == 0 {
                return Err(SyncError::ZeroSegments);
            }
            let ranks: Vec<usize> = (0..world).collect();
            for (s, range) in segment_ranges(d, macro_segments).iter().enumerate() {
                if range.is_empty() {
                    continue;
                }
                let sub: Vec<Range<usize>> = segment_ranges(range.len(), world)
                    .into_iter()
                    .map(|r| range.start + r.start..range.start + r.end)
                    .collect();
                compile_ring_into(
                    &mut transfers,
                    &mut next_step,
                    &ranks,
                    &sub,
                    &vec![1; world],
                    s * world,
                    &mut inj,
                );
            }
        }
    }
    Ok(EnginePlan {
        world,
        d,
        num_steps: next_step,
        transfers,
    })
}

fn disconnected(e: TransportError) -> SyncError {
    match e {
        TransportError::PeerDisconnected { peer } => SyncError::PeerDisconnected { peer },
        // Wire corruption / socket errors mean the hub connection itself is
        // unusable; degrade the same way a vanished peer would.
        TransportError::Wire(_) | TransportError::Io(_) => {
            SyncError::PeerDisconnected { peer: usize::MAX }
        }
    }
}

/// Executes one rank's slice of `plan` over its transport endpoint.
///
/// Per step: this rank's sends go out first (current state of each payload
/// range), then each arriving payload is combined (or copied) into the
/// local vector with the compile-time [`CombineCtx`]. Returns the rank's
/// final full-length vector — at every rank this equals the legacy
/// collective's consensus once the gather/broadcast copies have run.
///
/// # Errors
///
/// Returns [`SyncError::PeerDisconnected`] when a hop's peer is gone —
/// never panics on a dead peer.
///
/// # Panics
///
/// Panics if `init.len() != plan.d` or the transport's rank/world disagree
/// with the plan (programmer errors, not runtime conditions).
pub fn run_rank<T, F>(
    plan: &EnginePlan,
    init: &SignVec,
    transport: &mut T,
    mut combine: F,
) -> Result<SignVec, SyncError>
where
    T: Transport,
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    let rank = transport.rank();
    assert_eq!(init.len(), plan.d, "payload length disagrees with plan");
    assert_eq!(transport.world(), plan.world, "world disagrees with plan");
    let mut rec = HopRecorder::begin();
    let mut state = init.clone();
    let mut received = SignVec::zeros(0);
    let mut mine: Vec<Vec<&PlannedTransfer>> = vec![Vec::new(); plan.num_steps];
    for t in &plan.transfers {
        if t.delivered && (t.sender == rank || t.receiver == rank) {
            mine[t.step].push(t);
        }
    }
    for step in &mine {
        for t in step.iter().filter(|t| t.sender == rank) {
            let payload = state.slice(t.start, t.len);
            let seq = rec.seq_of(t.step).unwrap_or(t.step as u64);
            transport
                .send_words_traced(t.receiver, payload.as_words(), seq)
                .map_err(disconnected)?;
        }
        for t in step.iter().filter(|t| t.receiver == rank) {
            let (words, ctx) = transport
                .recv_words_traced(t.sender)
                .map_err(disconnected)?;
            if words.len() != t.len.div_ceil(64) {
                return Err(SyncError::LengthMismatch {
                    expected: t.len,
                    got: words.len() * 64,
                });
            }
            received.assign_from_words(t.len, &words);
            match t.combine {
                Some(cctx) => {
                    let mut local = state.slice(t.start, t.len);
                    combine(&received, &mut local, cctx);
                    assert_eq!(local.len(), t.len, "combine changed segment length");
                    state.splice(t.start, &local);
                }
                None => state.splice(t.start, &received),
            }
            if rec.is_active() {
                // One hop event per delivered transfer, recorded at the
                // receiving end where both clocks (sender's send_ns from the
                // propagated context, our own arrival time) are known.
                rec.hop_timed(
                    &Hop {
                        expanded_step: t.step,
                        step: t.step,
                        phase: if t.combine.is_some() {
                            "reduce"
                        } else {
                            "gather"
                        },
                        sender: t.sender,
                        receiver: rank,
                        segment: t.combine.map_or(0, |c| c.segment),
                        elems: t.len,
                        bytes: t.len.div_ceil(8).max(1),
                        attempt: 1,
                        delivered: true,
                    },
                    HopTiming {
                        round: ctx.map(|c| c.round),
                        send_ns: ctx.map(|c| c.send_ns),
                        recv_ns: ctx.map(|_| wall_now_ns()),
                    },
                );
            }
        }
    }
    // Ranks receive on different step subsets; claim the full plan width so
    // every rank's next collective starts at the same absolute seq.
    rec.reserve_steps(plan.num_steps);
    Ok(state)
}

/// Drives every rank of `plan` from one thread in deterministic lockstep
/// over a simulated [`ChannelFabric`] — the legacy simulator, refactored
/// behind the [`Transport`] trait. The fabric's simulated clock advances by
/// the α–β price of each step's largest payload.
///
/// Returns each rank's final vector (index = rank).
///
/// # Errors
///
/// Propagates [`SyncError::PeerDisconnected`] from any rank.
///
/// # Panics
///
/// Panics if `inputs.len() != plan.world` or a payload length disagrees
/// with the plan.
pub fn run_lockstep<F>(
    plan: &EnginePlan,
    inputs: &[SignVec],
    link: LinkModel,
    mut combine: F,
) -> Result<Vec<SignVec>, SyncError>
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    assert_eq!(inputs.len(), plan.world, "one input per rank");
    let fabric = ChannelFabric::new(plan.world, link);
    let mut endpoints: Vec<_> = (0..plan.world)
        .map(|r| fabric.endpoint(r, Backend::Simulator))
        .collect();
    let mut states: Vec<SignVec> = inputs.to_vec();
    let mut received = SignVec::zeros(0);
    for step in 0..plan.num_steps {
        let in_step: Vec<&PlannedTransfer> = plan
            .transfers
            .iter()
            .filter(|t| t.step == step && t.delivered)
            .collect();
        // All sends land in the fabric before any rank receives — the
        // lockstep barrier a single-threaded simulator gets for free.
        for t in &in_step {
            let payload = states[t.sender].slice(t.start, t.len);
            endpoints[t.sender]
                .send_words(t.receiver, payload.as_words())
                .map_err(disconnected)?;
        }
        for t in &in_step {
            let words = endpoints[t.receiver]
                .recv_words(t.sender)
                .map_err(disconnected)?;
            received.assign_from_words(t.len, &words);
            match t.combine {
                Some(ctx) => {
                    let mut local = states[t.receiver].slice(t.start, t.len);
                    combine(&received, &mut local, ctx);
                    assert_eq!(local.len(), t.len, "combine changed segment length");
                    states[t.receiver].splice(t.start, &local);
                }
                None => states[t.receiver].splice(t.start, &received),
            }
        }
        fabric.advance_sim_clock(plan.max_step_bytes(step));
    }
    Ok(states)
}

/// Drives every rank of `plan` on its own OS thread over a shared
/// [`ChannelFabric`] — real concurrency, deterministic results via the
/// ctx-addressed RNG contract. `make_combine(rank)` builds each thread's
/// combine closure.
///
/// Returns each rank's final vector (index = rank).
///
/// # Errors
///
/// Propagates the first rank's [`SyncError`] (by rank order).
///
/// # Panics
///
/// Panics if `inputs.len() != plan.world`, a payload length disagrees with
/// the plan, or a worker thread itself panics.
pub fn run_threaded<C, F>(
    plan: &EnginePlan,
    inputs: &[SignVec],
    link: LinkModel,
    make_combine: C,
) -> Result<Vec<SignVec>, SyncError>
where
    C: Fn(usize) -> F + Sync,
    F: FnMut(&SignVec, &mut SignVec, CombineCtx) + Send,
{
    assert_eq!(inputs.len(), plan.world, "one input per rank");
    let fabric = ChannelFabric::new(plan.world, link);
    let results: Vec<Result<SignVec, SyncError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.world)
            .map(|rank| {
                let mut transport = fabric.endpoint(rank, Backend::Threaded);
                let init = &inputs[rank];
                let combine = make_combine(rank);
                scope.spawn(move || run_rank(plan, init, &mut transport, combine))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_simnet::FaultPlan;
    use marsit_tensor::rng::FastRng;

    use crate::ring::{ring_allreduce_onebit, ring_allreduce_onebit_faulty};
    use crate::segring::segring_allreduce_onebit;
    use crate::torus::torus_allreduce_onebit;
    use crate::tree::tree_allreduce_onebit;

    fn link() -> LinkModel {
        LinkModel::new(25e-6, 1.25e9)
    }

    fn signs(m: usize, d: usize, seed: u64) -> Vec<SignVec> {
        (0..m)
            .map(|w| {
                let mut rng = FastRng::new(seed, w as u64);
                SignVec::bernoulli_uniform(d, 0.5, &mut rng)
            })
            .collect()
    }

    /// The ctx-addressed majority-with-random-tiebreak combine used across
    /// the differential tests: deterministic given (seed, ctx), payload- and
    /// order-independent, like the production combine operators.
    fn ctx_combine(seed: u64) -> impl FnMut(&SignVec, &mut SignVec, CombineCtx) {
        move |recv: &SignVec, local: &mut SignVec, ctx: CombineCtx| {
            let key =
                ((ctx.receiver as u64) << 40) | ((ctx.segment as u64) << 20) | ctx.step as u64;
            let mut rng = FastRng::new(seed, key);
            let mask = SignVec::bernoulli_uniform(local.len(), 0.5, &mut rng);
            for i in 0..local.len() {
                let pick = if mask.get(i) {
                    recv.get(i)
                } else {
                    local.get(i)
                };
                local.set(i, pick);
            }
        }
    }

    #[test]
    fn ring_lockstep_matches_legacy() {
        let (m, d, seed) = (8, 257, 11);
        let inputs = signs(m, d, seed);
        let (legacy, _) = ring_allreduce_onebit(&inputs, ctx_combine(seed));
        let plan = compile_plan(PlanTopology::Ring, m, d, None).unwrap();
        let out = run_lockstep(&plan, &inputs, link(), ctx_combine(seed)).unwrap();
        for state in &out {
            assert_eq!(state.as_words(), legacy.as_words());
        }
    }

    #[test]
    fn torus_lockstep_matches_legacy() {
        let (rows, cols, d, seed) = (2, 4, 301, 23);
        let inputs = signs(rows * cols, d, seed);
        let (legacy, _) = torus_allreduce_onebit(&inputs, rows, cols, ctx_combine(seed));
        let plan = compile_plan(PlanTopology::Torus { rows, cols }, rows * cols, d, None).unwrap();
        let out = run_lockstep(&plan, &inputs, link(), ctx_combine(seed)).unwrap();
        assert_eq!(out[0].as_words(), legacy.as_words());
        for state in &out {
            assert_eq!(state.as_words(), legacy.as_words());
        }
    }

    #[test]
    fn tree_lockstep_matches_legacy() {
        let (m, d, seed) = (6, 130, 5);
        let inputs = signs(m, d, seed);
        let (legacy, _) = tree_allreduce_onebit(&inputs, ctx_combine(seed));
        let plan = compile_plan(PlanTopology::Tree, m, d, None).unwrap();
        let out = run_lockstep(&plan, &inputs, link(), ctx_combine(seed)).unwrap();
        for state in &out {
            assert_eq!(state.as_words(), legacy.as_words());
        }
    }

    #[test]
    fn segring_lockstep_matches_legacy() {
        let (m, s, d, seed) = (4, 3, 200, 17);
        let inputs = signs(m, d, seed);
        let (legacy, _) = segring_allreduce_onebit(&inputs, s, ctx_combine(seed));
        let plan = compile_plan(PlanTopology::SegRing { macro_segments: s }, m, d, None).unwrap();
        let out = run_lockstep(&plan, &inputs, link(), ctx_combine(seed)).unwrap();
        for state in &out {
            assert_eq!(state.as_words(), legacy.as_words());
        }
    }

    #[test]
    fn faulty_ring_matches_legacy_and_consumes_injector_identically() {
        let (m, d, seed) = (8, 193, 42);
        let inputs = signs(m, d, seed);
        let fault_plan = FaultPlan::seeded(seed).with_link_drop(0.2);
        let mut legacy_inj = fault_plan.injector(3);
        let (legacy, _) =
            ring_allreduce_onebit_faulty(&inputs, &mut legacy_inj, ctx_combine(seed)).unwrap();
        let mut engine_inj = fault_plan.injector(3);
        let plan = compile_plan(PlanTopology::Ring, m, d, Some(&mut engine_inj)).unwrap();
        let out = run_lockstep(&plan, &inputs, link(), ctx_combine(seed)).unwrap();
        for state in &out {
            assert_eq!(state.as_words(), legacy.as_words());
        }
        assert_eq!(legacy_inj.take_stats(), engine_inj.take_stats());
    }

    #[test]
    fn threaded_matches_lockstep_bit_for_bit() {
        let (m, d, seed) = (8, 511, 77);
        let inputs = signs(m, d, seed);
        let plan = compile_plan(PlanTopology::Ring, m, d, None).unwrap();
        let lock = run_lockstep(&plan, &inputs, link(), ctx_combine(seed)).unwrap();
        for _ in 0..5 {
            let thr = run_threaded(&plan, &inputs, link(), |_| ctx_combine(seed)).unwrap();
            for (a, b) in lock.iter().zip(&thr) {
                assert_eq!(a.as_words(), b.as_words());
            }
        }
    }
}
