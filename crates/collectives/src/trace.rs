//! Transfer traces: what a collective actually put on the wire.
//!
//! Every collective in this crate records, per synchronous step, the byte
//! count of each in-flight transfer. The simulator prices a trace with the
//! α–β model (`marsit_simnet::cost::schedule_time`), and the experiment
//! harness reads total bytes for the communication-budget plots (Fig 4b).

use marsit_simnet::{cost, LinkModel};

/// Per-step record of transfer sizes produced by one collective operation.
///
/// Steps are sequential; transfers within a step ride disjoint links in
/// parallel.
///
/// Internally the step list is a *live prefix* over a recyclable slot
/// vector: [`Trace::reset`] rewinds the trace to empty while keeping every
/// allocation (outer list and per-step transfer vectors), and
/// [`Trace::begin_step`] hands back the next recycled slot. The hot
/// collectives reuse one `Trace` across rounds and reach a zero-allocation
/// steady state; every public accessor sees only the live prefix, so the
/// recycling is invisible to readers.
#[derive(Default)]
pub struct Trace {
    /// Slot storage; only `steps[..live]` is meaningful.
    steps: Vec<Vec<usize>>,
    /// Number of live steps.
    live: usize,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewinds to an empty trace, retaining step-slot allocations for reuse.
    pub fn reset(&mut self) {
        self.live = 0;
    }

    /// Opens the next step and returns its (cleared, recycled) transfer
    /// vector for the caller to fill. Allocation-free once the trace has
    /// reached its steady-state shape.
    pub fn begin_step(&mut self) -> &mut Vec<usize> {
        if self.live == self.steps.len() {
            self.steps.push(Vec::new());
        }
        let slot = &mut self.steps[self.live];
        slot.clear();
        self.live += 1;
        slot
    }

    /// Appends a step whose transfers carry the given byte counts.
    pub fn push_step(&mut self, transfer_bytes: Vec<usize>) {
        if self.live == self.steps.len() {
            self.steps.push(transfer_bytes);
        } else {
            self.steps[self.live] = transfer_bytes;
        }
        self.live += 1;
    }

    /// Appends a step of `links` parallel transfers of `bytes` each.
    pub fn push_uniform_step(&mut self, links: usize, bytes: usize) {
        let slot = self.begin_step();
        slot.resize(links, bytes);
    }

    /// Appends all steps of another trace (sequential composition).
    pub fn extend(&mut self, mut other: Trace) {
        for step in other.steps.drain(..other.live) {
            self.push_step(step);
        }
    }

    /// Number of sequential steps.
    #[must_use]
    pub fn num_steps(&self) -> usize {
        self.live
    }

    /// The per-step transfer sizes.
    #[must_use]
    pub fn steps(&self) -> &[Vec<usize>] {
        &self.steps[..self.live]
    }

    /// Total bytes moved across all links and steps.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.steps().iter().flatten().sum()
    }

    /// Bytes moved along the critical path (max transfer per step).
    #[must_use]
    pub fn critical_path_bytes(&self) -> usize {
        self.steps()
            .iter()
            .map(|s| s.iter().copied().max().unwrap_or(0))
            .sum()
    }

    /// Wall-clock time of the trace under `link` (sequential steps, parallel
    /// transfers within a step).
    #[must_use]
    pub fn time(&self, link: LinkModel) -> f64 {
        cost::schedule_time(link, self.steps())
    }
}

impl Clone for Trace {
    fn clone(&self) -> Self {
        Self {
            steps: self.steps().to_vec(),
            live: self.live,
        }
    }

    /// Recycling clone: reuses `self`'s slot allocations, so cloning into a
    /// warm trace of the same shape performs no allocation.
    fn clone_from(&mut self, source: &Self) {
        self.live = 0;
        for step in source.steps() {
            let slot = self.begin_step();
            slot.extend_from_slice(step);
        }
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.steps() == other.steps()
    }
}

impl Eq for Trace {}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("steps", &self.steps())
            .finish()
    }
}

/// Builds one logical collective step plus the retry sub-steps the fault
/// layer appends behind it: attempt 1 of every transfer rides the main step,
/// attempt `k ≥ 2` rides the `(k−1)`-th retry sub-step, so retransmissions
/// show up as extra wire traffic and extra wall-clock steps in the trace.
#[derive(Debug, Default)]
pub(crate) struct FaultyStep {
    first: Vec<usize>,
    retries: Vec<Vec<usize>>,
}

impl FaultyStep {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records a transfer of `bytes` that took `attempts` wire attempts.
    pub(crate) fn record(&mut self, bytes: usize, attempts: u32) {
        self.first.push(bytes);
        for k in 1..attempts as usize {
            while self.retries.len() < k {
                self.retries.push(Vec::new());
            }
            self.retries[k - 1].push(bytes);
        }
    }

    /// The main step followed by its (non-empty) retry sub-steps.
    pub(crate) fn into_steps(self) -> Vec<Vec<usize>> {
        let mut out = vec![self.first];
        out.extend(self.retries.into_iter().filter(|s| !s.is_empty()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_step_groups_retries() {
        let mut fs = FaultyStep::new();
        fs.record(4, 1);
        fs.record(4, 3);
        fs.record(4, 2);
        let steps = fs.into_steps();
        assert_eq!(steps, vec![vec![4, 4, 4], vec![4, 4], vec![4]]);
    }

    #[test]
    fn faulty_step_without_retries_is_one_step() {
        let mut fs = FaultyStep::new();
        fs.record(8, 1);
        fs.record(8, 1);
        assert_eq!(fs.into_steps(), vec![vec![8, 8]]);
    }

    #[test]
    fn totals_and_critical_path() {
        let mut t = Trace::new();
        t.push_step(vec![10, 20, 5]);
        t.push_uniform_step(2, 7);
        assert_eq!(t.num_steps(), 2);
        assert_eq!(t.total_bytes(), 49);
        assert_eq!(t.critical_path_bytes(), 27);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Trace::new();
        a.push_step(vec![1]);
        let mut b = Trace::new();
        b.push_step(vec![2]);
        a.extend(b);
        assert_eq!(a.num_steps(), 2);
        assert_eq!(a.total_bytes(), 3);
    }

    #[test]
    fn time_matches_schedule_model() {
        let mut t = Trace::new();
        t.push_step(vec![100, 50]);
        t.push_step(vec![25]);
        let link = LinkModel::new(1.0, 100.0);
        // step1: 1 + 100/100 = 2; step2: 1 + 25/100 = 1.25.
        assert!((t.time(link) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_free() {
        let t = Trace::new();
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.time(LinkModel::new(1.0, 1.0)), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every wire attempt of every transfer lands in exactly one
        /// sub-step: total bytes across the expanded steps equals
        /// Σ bytes × attempts, and no sub-step is empty.
        #[test]
        fn faulty_step_preserves_total_bytes(
            transfers in prop::collection::vec((1usize..5000, 1u32..6), 1..40)
        ) {
            let mut fs = FaultyStep::new();
            let mut expected = 0usize;
            for &(bytes, attempts) in &transfers {
                fs.record(bytes, attempts);
                expected += bytes * attempts as usize;
            }
            let steps = fs.into_steps();
            let total: usize = steps.iter().flatten().sum();
            prop_assert_eq!(total, expected);
            // The first slot always exists; retry slots are filtered to be
            // non-empty, so the expansion never prices a zero-transfer step.
            for sub in steps.iter().skip(1) {
                prop_assert!(!sub.is_empty());
            }
        }

        /// Adding one more wire attempt to any transfer can only push the
        /// priced schedule time up (or leave it unchanged), never down.
        #[test]
        fn trace_time_monotone_in_retry_count(
            transfers in prop::collection::vec((1usize..5000, 1u32..5), 1..30),
            bump in any::<u64>()
        ) {
            let build = |extra_at: Option<usize>| {
                let mut fs = FaultyStep::new();
                for (i, &(bytes, attempts)) in transfers.iter().enumerate() {
                    let extra = u32::from(extra_at == Some(i));
                    fs.record(bytes, attempts + extra);
                }
                let mut t = Trace::new();
                for sub in fs.into_steps() {
                    t.push_step(sub);
                }
                t
            };
            let base = build(None);
            let more = build(Some(bump as usize % transfers.len()));
            let link = LinkModel::new(1e-3, 1e6);
            prop_assert!(more.time(link) >= base.time(link));
        }
    }
}
