//! Gossip averaging: the decentralized baseline the paper's introduction
//! contrasts with MAR ("the performance of gossip in terms of convergence
//! rate is much slower than MAR, especially under sparse connections such
//! as ring topology").
//!
//! One gossip step mixes each worker's vector with its ring neighbours via
//! a doubly-stochastic weight matrix `W` (here the symmetric three-point
//! stencil `[⅓, ⅓, ⅓]`). Unlike all-reduce, a single step does *not* reach
//! consensus — workers only converge geometrically at the rate of `W`'s
//! spectral gap, which for a ring closes as `O(1/M²)`; that is exactly why
//! the paper builds on all-reduce instead.

use marsit_tensor::stats::dist_sq;

use crate::trace::Trace;

/// Performs one synchronous gossip step on a ring: each worker replaces its
/// vector with the average of itself and its two ring neighbours.
///
/// Returns the trace: one step in which every worker sends its full vector
/// to both neighbours (`2M` transfers).
///
/// # Panics
///
/// Panics if fewer than 3 workers (the stencil needs two distinct
/// neighbours) or payload lengths differ.
pub fn gossip_ring_step(data: &mut [Vec<f32>]) -> Trace {
    let m = data.len();
    assert!(m >= 3, "ring gossip needs at least 3 workers");
    let d = data[0].len();
    assert!(data.iter().all(|v| v.len() == d), "payload lengths differ");
    let snapshot = data.to_vec();
    for (w, out) in data.iter_mut().enumerate() {
        let left = &snapshot[(w + m - 1) % m];
        let right = &snapshot[(w + 1) % m];
        let own = &snapshot[w];
        for (j, x) in out.iter_mut().enumerate() {
            *x = (left[j] + own[j] + right[j]) / 3.0;
        }
    }
    let mut trace = Trace::new();
    trace.push_uniform_step(2 * m, d * 4);
    trace
}

/// Mean squared disagreement between workers' vectors and their average —
/// the consensus error that gossip only shrinks geometrically.
///
/// # Panics
///
/// Panics if `data` is empty or lengths differ.
#[must_use]
pub fn consensus_error(data: &[Vec<f32>]) -> f64 {
    assert!(!data.is_empty(), "no workers");
    let m = data.len();
    let d = data[0].len();
    let mut mean = vec![0.0f32; d];
    for w in data {
        assert_eq!(w.len(), d, "payload lengths differ");
        for (a, &x) in mean.iter_mut().zip(w) {
            *a += x / m as f32;
        }
    }
    data.iter().map(|w| dist_sq(w, &mean)).sum::<f64>() / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_tensor::rng::FastRng;

    fn payloads(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = FastRng::new(seed, 0);
        (0..m)
            .map(|_| (0..d).map(|_| rng.next_f64() as f32 - 0.5).collect())
            .collect()
    }

    #[test]
    fn gossip_preserves_the_mean() {
        let mut data = payloads(5, 16, 1);
        let before: Vec<f32> = (0..16)
            .map(|j| data.iter().map(|w| w[j]).sum::<f32>())
            .collect();
        let _ = gossip_ring_step(&mut data);
        let after: Vec<f32> = (0..16)
            .map(|j| data.iter().map(|w| w[j]).sum::<f32>())
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-4, "gossip must conserve the sum");
        }
    }

    #[test]
    fn gossip_shrinks_consensus_error_monotonically() {
        let mut data = payloads(8, 32, 2);
        let mut prev = consensus_error(&data);
        assert!(prev > 0.0);
        for _ in 0..20 {
            let _ = gossip_ring_step(&mut data);
            let err = consensus_error(&data);
            assert!(
                err <= prev * 1.0001,
                "error must not grow: {err} after {prev}"
            );
            prev = err;
        }
        assert!(prev < 1e-2, "should be near consensus eventually: {prev}");
    }

    #[test]
    fn gossip_is_much_slower_than_allreduce_on_large_rings() {
        // The intro's claim: one all-reduce reaches exact consensus, while a
        // ring gossip needs many steps — more as M grows.
        let steps_to = |m: usize| -> usize {
            let mut data = payloads(m, 16, 3);
            let initial = consensus_error(&data);
            for step in 1..=1000 {
                let _ = gossip_ring_step(&mut data);
                if consensus_error(&data) < initial * 1e-3 {
                    return step;
                }
            }
            1000
        };
        let s4 = steps_to(4);
        let s16 = steps_to(16);
        assert!(
            s16 > 3 * s4,
            "ring gossip must slow down with M: {s4} vs {s16}"
        );
    }

    #[test]
    fn single_step_does_not_reach_consensus() {
        let mut data = payloads(6, 8, 4);
        let _ = gossip_ring_step(&mut data);
        assert!(consensus_error(&data) > 1e-4);
    }

    #[test]
    fn trace_counts_neighbour_transfers() {
        let mut data = payloads(4, 10, 5);
        let trace = gossip_ring_step(&mut data);
        assert_eq!(trace.num_steps(), 1);
        assert_eq!(trace.total_bytes(), 2 * 4 * 10 * 4);
    }
}
