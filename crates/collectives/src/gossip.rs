//! Gossip averaging: the decentralized baseline the paper's introduction
//! contrasts with MAR ("the performance of gossip in terms of convergence
//! rate is much slower than MAR, especially under sparse connections such
//! as ring topology").
//!
//! One gossip step mixes each worker's vector with its ring neighbours via
//! a doubly-stochastic weight matrix `W` (here the symmetric three-point
//! stencil `[⅓, ⅓, ⅓]`). Unlike all-reduce, a single step does *not* reach
//! consensus — workers only converge geometrically at the rate of `W`'s
//! spectral gap, which for a ring closes as `O(1/M²)`; that is exactly why
//! the paper builds on all-reduce instead.

use marsit_tensor::stats::dist_sq;

use marsit_telemetry::{Hop, HopRecorder};

use crate::reconfigure::SyncError;
use crate::trace::Trace;

/// Performs one synchronous gossip step on a ring: each worker replaces its
/// vector with the average of itself and its two ring neighbours.
///
/// Returns the trace: one step in which every worker sends its full vector
/// to both neighbours (`2M` transfers).
///
/// # Errors
///
/// Returns [`SyncError::TooFewWorkers`] for fewer than 3 workers (the
/// stencil needs two distinct neighbours) and [`SyncError::LengthMismatch`]
/// if payload lengths differ — degenerate memberships an elastic cluster
/// can reach, so they degrade like the faulty collectives instead of
/// panicking.
pub fn gossip_ring_step(data: &mut [Vec<f32>]) -> Result<Trace, SyncError> {
    let m = data.len();
    if m < 3 {
        return Err(SyncError::TooFewWorkers { needed: 3, got: m });
    }
    let d = data[0].len();
    if let Some(bad) = data.iter().find(|v| v.len() != d) {
        return Err(SyncError::LengthMismatch {
            expected: d,
            got: bad.len(),
        });
    }
    let snapshot = data.to_vec();
    for (w, out) in data.iter_mut().enumerate() {
        let left = &snapshot[(w + m - 1) % m];
        let right = &snapshot[(w + 1) % m];
        let own = &snapshot[w];
        for (j, x) in out.iter_mut().enumerate() {
            *x = (left[j] + own[j] + right[j]) / 3.0;
        }
    }
    // Telemetry parity with the all-reduce collectives: one hop event per
    // transfer the trace prices, tagged with the ambient backend/clock.
    let mut rec = HopRecorder::begin();
    if rec.is_active() {
        for w in 0..m {
            for recv in [(w + 1) % m, (w + m - 1) % m] {
                rec.hop(&Hop {
                    expanded_step: 0,
                    step: 0,
                    phase: "gossip",
                    sender: w,
                    receiver: recv,
                    segment: 0,
                    elems: d,
                    bytes: d * 4,
                    attempt: 1,
                    delivered: true,
                });
            }
        }
        rec.reserve_steps(1);
    }
    let mut trace = Trace::new();
    trace.push_uniform_step(2 * m, d * 4);
    Ok(trace)
}

/// Mean squared disagreement between workers' vectors and their average —
/// the consensus error that gossip only shrinks geometrically.
///
/// # Errors
///
/// Returns [`SyncError::TooFewWorkers`] if `data` is empty and
/// [`SyncError::LengthMismatch`] if lengths differ.
pub fn consensus_error(data: &[Vec<f32>]) -> Result<f64, SyncError> {
    if data.is_empty() {
        return Err(SyncError::TooFewWorkers { needed: 1, got: 0 });
    }
    let m = data.len();
    let d = data[0].len();
    let mut mean = vec![0.0f32; d];
    for w in data {
        if w.len() != d {
            return Err(SyncError::LengthMismatch {
                expected: d,
                got: w.len(),
            });
        }
        for (a, &x) in mean.iter_mut().zip(w) {
            *a += x / m as f32;
        }
    }
    Ok(data.iter().map(|w| dist_sq(w, &mean)).sum::<f64>() / m as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_tensor::rng::FastRng;

    fn payloads(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = FastRng::new(seed, 0);
        (0..m)
            .map(|_| (0..d).map(|_| rng.next_f64() as f32 - 0.5).collect())
            .collect()
    }

    #[test]
    fn gossip_preserves_the_mean() {
        let mut data = payloads(5, 16, 1);
        let before: Vec<f32> = (0..16)
            .map(|j| data.iter().map(|w| w[j]).sum::<f32>())
            .collect();
        gossip_ring_step(&mut data).unwrap();
        let after: Vec<f32> = (0..16)
            .map(|j| data.iter().map(|w| w[j]).sum::<f32>())
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-4, "gossip must conserve the sum");
        }
    }

    #[test]
    fn gossip_shrinks_consensus_error_monotonically() {
        let mut data = payloads(8, 32, 2);
        let mut prev = consensus_error(&data).unwrap();
        assert!(prev > 0.0);
        for _ in 0..20 {
            gossip_ring_step(&mut data).unwrap();
            let err = consensus_error(&data).unwrap();
            assert!(
                err <= prev * 1.0001,
                "error must not grow: {err} after {prev}"
            );
            prev = err;
        }
        assert!(prev < 1e-2, "should be near consensus eventually: {prev}");
    }

    #[test]
    fn gossip_is_much_slower_than_allreduce_on_large_rings() {
        // The intro's claim: one all-reduce reaches exact consensus, while a
        // ring gossip needs many steps — more as M grows.
        let steps_to = |m: usize| -> usize {
            let mut data = payloads(m, 16, 3);
            let initial = consensus_error(&data).unwrap();
            for step in 1..=1000 {
                gossip_ring_step(&mut data).unwrap();
                if consensus_error(&data).unwrap() < initial * 1e-3 {
                    return step;
                }
            }
            1000
        };
        let s4 = steps_to(4);
        let s16 = steps_to(16);
        assert!(
            s16 > 3 * s4,
            "ring gossip must slow down with M: {s4} vs {s16}"
        );
    }

    #[test]
    fn single_step_does_not_reach_consensus() {
        let mut data = payloads(6, 8, 4);
        gossip_ring_step(&mut data).unwrap();
        assert!(consensus_error(&data).unwrap() > 1e-4);
    }

    #[test]
    fn trace_counts_neighbour_transfers() {
        let mut data = payloads(4, 10, 5);
        let trace = gossip_ring_step(&mut data).unwrap();
        assert_eq!(trace.num_steps(), 1);
        assert_eq!(trace.total_bytes(), 2 * 4 * 10 * 4);
    }

    #[test]
    fn gossip_emits_one_hop_event_per_priced_transfer() {
        use marsit_telemetry::{scoped, Telemetry};
        let t = Telemetry::recording();
        t.set_transport_tag("simulator", "simulated");
        let trace = scoped(&t, || {
            let mut data = payloads(4, 10, 5);
            gossip_ring_step(&mut data).unwrap()
        });
        let hops = t.snapshot_events();
        assert_eq!(hops.len() as u64, 2 * 4, "one event per transfer");
        let mut bytes = 0;
        for ev in &hops {
            assert_eq!(ev.name, "hop");
            assert_eq!(ev.u64_field("seq"), Some(0), "gossip is one step");
            assert_eq!(ev.str_field("phase"), Some("gossip"));
            assert_eq!(ev.str_field("backend"), Some("simulator"));
            assert_eq!(ev.str_field("clock"), Some("simulated"));
            bytes += ev.u64_field("bytes").unwrap();
        }
        assert_eq!(
            bytes,
            trace.total_bytes() as u64,
            "hop bytes must match trace"
        );
    }

    /// Degenerate memberships surface as typed errors, not panics: a
    /// two-worker ring has no distinct second neighbour, an empty cluster
    /// has no consensus, and ragged payloads name the offending length.
    #[test]
    fn degenerate_membership_returns_typed_errors() {
        let mut lone = payloads(1, 4, 6);
        assert_eq!(
            gossip_ring_step(&mut lone),
            Err(SyncError::TooFewWorkers { needed: 3, got: 1 })
        );
        let mut pair = payloads(2, 4, 6);
        assert_eq!(
            gossip_ring_step(&mut pair),
            Err(SyncError::TooFewWorkers { needed: 3, got: 2 })
        );
        let mut ragged = payloads(3, 4, 7);
        ragged[2].truncate(2);
        assert_eq!(
            gossip_ring_step(&mut ragged),
            Err(SyncError::LengthMismatch {
                expected: 4,
                got: 2
            })
        );
        assert_eq!(
            consensus_error(&[]),
            Err(SyncError::TooFewWorkers { needed: 1, got: 0 })
        );
        let zero_len = vec![Vec::new(), Vec::new(), Vec::new()];
        // Zero-length segments are well-defined for gossip (nothing to mix);
        // the consensus error of empty vectors is exactly zero.
        assert_eq!(consensus_error(&zero_len), Ok(0.0));
    }
}
