//! Parameter-server exchanges (the single-hop baseline).
//!
//! Under PS every worker uploads its message to one central server, which
//! aggregates and broadcasts the result. All traffic shares the server's
//! link, which is the congestion the paper's Section 1 contrasts against
//! MAR. Used by the motivation experiments of Figure 1.

use marsit_compress::SignSumVec;
use marsit_tensor::SignVec;

use crate::reconfigure::SyncError;
use crate::trace::Trace;

/// PS all-reduce of `f32` payloads into their elementwise sum.
///
/// Returns the sum (the "server state" broadcast back to everyone) and the
/// trace: one upload step whose transfers all cross the server link, then
/// one broadcast step.
///
/// # Errors
///
/// Returns [`SyncError::TooFewWorkers`] if `data` is empty and
/// [`SyncError::LengthMismatch`] if payload lengths differ.
pub fn ps_allreduce_sum(data: &[Vec<f32>]) -> Result<(Vec<f32>, Trace), SyncError> {
    let d = check_payloads(data.iter().map(Vec::len))?;
    let mut sum = vec![0.0f32; d];
    for w in data {
        for (s, &x) in sum.iter_mut().zip(w) {
            *s += x;
        }
    }
    let trace = ps_trace(data.len(), d * 4, d * 4);
    Ok((sum, trace))
}

/// PS majority vote over workers' sign vectors (signSGD with majority vote,
/// its native habitat): uploads are one bit per coordinate, the broadcast is
/// the voted signs.
///
/// # Errors
///
/// Returns [`SyncError::TooFewWorkers`] if `signs` is empty and
/// [`SyncError::LengthMismatch`] if sign lengths differ.
pub fn ps_majority_vote(signs: &[SignVec]) -> Result<(SignVec, Trace), SyncError> {
    let d = check_payloads(signs.iter().map(SignVec::len))?;
    let mut sums = SignSumVec::zeros(d);
    for v in signs {
        sums.add_signs(v);
    }
    let bytes = d.div_ceil(8).max(1);
    Ok((sums.majority_sign(), ps_trace(signs.len(), bytes, bytes)))
}

/// PS collection of workers' sign sums (SSDM-style mean aggregation under
/// PS): uploads are one bit per coordinate, the broadcast carries the mean
/// as full-precision values.
///
/// # Errors
///
/// Returns [`SyncError::TooFewWorkers`] if `signs` is empty and
/// [`SyncError::LengthMismatch`] if sign lengths differ.
pub fn ps_sign_sums(signs: &[SignVec]) -> Result<(SignSumVec, Trace), SyncError> {
    let d = check_payloads(signs.iter().map(SignVec::len))?;
    let mut sums = SignSumVec::zeros(d);
    for v in signs {
        sums.add_signs(v);
    }
    let up = d.div_ceil(8).max(1);
    let down = d * 4;
    let trace = ps_trace(signs.len(), up, down);
    Ok((sums, trace))
}

/// Validates a PS membership: at least one worker, all payloads the same
/// length. Returns that common length.
fn check_payloads(mut lens: impl Iterator<Item = usize>) -> Result<usize, SyncError> {
    let Some(d) = lens.next() else {
        return Err(SyncError::TooFewWorkers { needed: 1, got: 0 });
    };
    if let Some(bad) = lens.find(|&l| l != d) {
        return Err(SyncError::LengthMismatch {
            expected: d,
            got: bad,
        });
    }
    Ok(d)
}

/// Builds the two-step PS trace: `m` uploads sharing the server ingress,
/// then `m` downloads sharing the egress. Modeled as serialized transfers on
/// one link per direction — the transfers are recorded in a single step each
/// but the *sum* of their bytes rides one link, so the per-step entry is one
/// transfer of `m·bytes`.
fn ps_trace(m: usize, up_bytes: usize, down_bytes: usize) -> Trace {
    let mut trace = Trace::new();
    trace.push_step(vec![m * up_bytes]);
    trace.push_step(vec![m * down_bytes]);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_simnet::LinkModel;
    use marsit_tensor::rng::FastRng;

    #[test]
    fn sum_matches_manual() {
        let data = vec![vec![1.0f32, 2.0], vec![0.5, -1.0], vec![0.0, 3.0]];
        let (sum, trace) = ps_allreduce_sum(&data).unwrap();
        assert_eq!(sum, vec![1.5, 4.0]);
        assert_eq!(trace.num_steps(), 2);
        assert_eq!(trace.total_bytes(), 3 * 8 + 3 * 8);
    }

    #[test]
    fn majority_matches_recount() {
        let mut rng = FastRng::new(1, 0);
        let signs: Vec<SignVec> = (0..5)
            .map(|_| SignVec::bernoulli_uniform(40, 0.5, &mut rng))
            .collect();
        let (vote, _) = ps_majority_vote(&signs).unwrap();
        for j in 0..40 {
            let s: i32 = signs.iter().map(|v| if v.get(j) { 1 } else { -1 }).sum();
            assert_eq!(vote.get(j), s >= 0);
        }
    }

    #[test]
    fn ps_is_slower_than_it_looks() {
        // The server link serializes M payloads; with M workers the PS time
        // grows linearly in M while a ring's per-step size shrinks.
        let link = LinkModel::new(0.0, 1.0);
        let d = 64;
        let data_small: Vec<Vec<f32>> = (0..2).map(|_| vec![1.0; d]).collect();
        let data_large: Vec<Vec<f32>> = (0..8).map(|_| vec![1.0; d]).collect();
        let (_, t2) = ps_allreduce_sum(&data_small).unwrap();
        let (_, t8) = ps_allreduce_sum(&data_large).unwrap();
        assert!(t8.time(link) > 3.0 * t2.time(link));
    }

    #[test]
    fn sign_sums_count_workers() {
        let signs: Vec<SignVec> = (0..3).map(|_| SignVec::ones(8)).collect();
        let (sums, _) = ps_sign_sums(&signs).unwrap();
        assert_eq!(sums.count(), 3);
        assert!(sums.sums().iter().all(|&s| s == 3));
    }

    /// Degenerate memberships surface as typed errors rather than panics.
    #[test]
    fn degenerate_membership_returns_typed_errors() {
        assert_eq!(
            ps_allreduce_sum(&[]).unwrap_err(),
            SyncError::TooFewWorkers { needed: 1, got: 0 }
        );
        assert_eq!(
            ps_majority_vote(&[]).unwrap_err(),
            SyncError::TooFewWorkers { needed: 1, got: 0 }
        );
        assert_eq!(
            ps_sign_sums(&[]).unwrap_err(),
            SyncError::TooFewWorkers { needed: 1, got: 0 }
        );
        let ragged = vec![vec![1.0f32; 4], vec![1.0f32; 3]];
        assert_eq!(
            ps_allreduce_sum(&ragged).unwrap_err(),
            SyncError::LengthMismatch {
                expected: 4,
                got: 3
            }
        );
        let ragged_signs = vec![SignVec::ones(8), SignVec::ones(5)];
        assert_eq!(
            ps_majority_vote(&ragged_signs).unwrap_err(),
            SyncError::LengthMismatch {
                expected: 8,
                got: 5
            }
        );
        assert_eq!(
            ps_sign_sums(&ragged_signs).unwrap_err(),
            SyncError::LengthMismatch {
                expected: 8,
                got: 5
            }
        );
        // A single live worker is fine for PS (it is its own server).
        let (sum, _) = ps_allreduce_sum(&[vec![2.0f32, 3.0]]).unwrap();
        assert_eq!(sum, vec![2.0, 3.0]);
    }
}
