//! Parameter-server exchanges (the single-hop baseline).
//!
//! Under PS every worker uploads its message to one central server, which
//! aggregates and broadcasts the result. All traffic shares the server's
//! link, which is the congestion the paper's Section 1 contrasts against
//! MAR. Used by the motivation experiments of Figure 1.

use marsit_compress::SignSumVec;
use marsit_tensor::SignVec;

use marsit_telemetry::{Hop, HopRecorder};

use crate::reconfigure::SyncError;
use crate::trace::Trace;

/// PS all-reduce of `f32` payloads into their elementwise sum.
///
/// Returns the sum (the "server state" broadcast back to everyone) and the
/// trace: one upload step whose transfers all cross the server link, then
/// one broadcast step.
///
/// # Errors
///
/// Returns [`SyncError::TooFewWorkers`] if `data` is empty and
/// [`SyncError::LengthMismatch`] if payload lengths differ.
pub fn ps_allreduce_sum(data: &[Vec<f32>]) -> Result<(Vec<f32>, Trace), SyncError> {
    let d = check_payloads(data.iter().map(Vec::len))?;
    let mut sum = vec![0.0f32; d];
    for w in data {
        for (s, &x) in sum.iter_mut().zip(w) {
            *s += x;
        }
    }
    let trace = ps_trace(data.len(), d, d * 4, d * 4);
    Ok((sum, trace))
}

/// PS majority vote over workers' sign vectors (signSGD with majority vote,
/// its native habitat): uploads are one bit per coordinate, the broadcast is
/// the voted signs.
///
/// # Errors
///
/// Returns [`SyncError::TooFewWorkers`] if `signs` is empty and
/// [`SyncError::LengthMismatch`] if sign lengths differ.
pub fn ps_majority_vote(signs: &[SignVec]) -> Result<(SignVec, Trace), SyncError> {
    let d = check_payloads(signs.iter().map(SignVec::len))?;
    let mut sums = SignSumVec::zeros(d);
    for v in signs {
        sums.add_signs(v);
    }
    let bytes = d.div_ceil(8).max(1);
    Ok((sums.majority_sign(), ps_trace(signs.len(), d, bytes, bytes)))
}

/// PS collection of workers' sign sums (SSDM-style mean aggregation under
/// PS): uploads are one bit per coordinate, the broadcast carries the mean
/// as full-precision values.
///
/// # Errors
///
/// Returns [`SyncError::TooFewWorkers`] if `signs` is empty and
/// [`SyncError::LengthMismatch`] if sign lengths differ.
pub fn ps_sign_sums(signs: &[SignVec]) -> Result<(SignSumVec, Trace), SyncError> {
    let d = check_payloads(signs.iter().map(SignVec::len))?;
    let mut sums = SignSumVec::zeros(d);
    for v in signs {
        sums.add_signs(v);
    }
    let up = d.div_ceil(8).max(1);
    let down = d * 4;
    let trace = ps_trace(signs.len(), d, up, down);
    Ok((sums, trace))
}

/// Validates a PS membership: at least one worker, all payloads the same
/// length. Returns that common length.
fn check_payloads(mut lens: impl Iterator<Item = usize>) -> Result<usize, SyncError> {
    let Some(d) = lens.next() else {
        return Err(SyncError::TooFewWorkers { needed: 1, got: 0 });
    };
    if let Some(bad) = lens.find(|&l| l != d) {
        return Err(SyncError::LengthMismatch {
            expected: d,
            got: bad,
        });
    }
    Ok(d)
}

/// Builds the two-step PS trace: `m` uploads sharing the server ingress,
/// then `m` downloads sharing the egress. Modeled as serialized transfers on
/// one link per direction — the transfers are recorded in a single step each
/// but the *sum* of their bytes rides one link, so the per-step entry is one
/// transfer of `m·bytes`.
fn ps_trace(m: usize, d: usize, up_bytes: usize, down_bytes: usize) -> Trace {
    record_ps_hops(m, d, up_bytes, down_bytes);
    let mut trace = Trace::new();
    trace.push_step(vec![m * up_bytes]);
    trace.push_step(vec![m * down_bytes]);
    trace
}

/// Telemetry parity with the multi-hop collectives: when a telemetry scope
/// is active, each upload is one `"reduce"` hop to the server (pseudo-rank
/// `m`, one past the highest worker) and each download one `"gather"` hop
/// back, in the same two expanded steps the trace prices.
fn record_ps_hops(m: usize, d: usize, up_bytes: usize, down_bytes: usize) {
    let mut rec = HopRecorder::begin();
    if !rec.is_active() {
        return;
    }
    let mut hop = Hop {
        expanded_step: 0,
        step: 0,
        phase: "reduce",
        sender: 0,
        receiver: m,
        segment: 0,
        elems: d,
        bytes: up_bytes,
        attempt: 1,
        delivered: true,
    };
    for w in 0..m {
        hop.sender = w;
        rec.hop(&hop);
    }
    hop.expanded_step = 1;
    hop.step = 1;
    hop.phase = "gather";
    hop.sender = m;
    hop.bytes = down_bytes;
    for w in 0..m {
        hop.receiver = w;
        rec.hop(&hop);
    }
    rec.reserve_steps(2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_simnet::LinkModel;
    use marsit_tensor::rng::FastRng;

    #[test]
    fn sum_matches_manual() {
        let data = vec![vec![1.0f32, 2.0], vec![0.5, -1.0], vec![0.0, 3.0]];
        let (sum, trace) = ps_allreduce_sum(&data).unwrap();
        assert_eq!(sum, vec![1.5, 4.0]);
        assert_eq!(trace.num_steps(), 2);
        assert_eq!(trace.total_bytes(), 3 * 8 + 3 * 8);
    }

    #[test]
    fn majority_matches_recount() {
        let mut rng = FastRng::new(1, 0);
        let signs: Vec<SignVec> = (0..5)
            .map(|_| SignVec::bernoulli_uniform(40, 0.5, &mut rng))
            .collect();
        let (vote, _) = ps_majority_vote(&signs).unwrap();
        for j in 0..40 {
            let s: i32 = signs.iter().map(|v| if v.get(j) { 1 } else { -1 }).sum();
            assert_eq!(vote.get(j), s >= 0);
        }
    }

    #[test]
    fn ps_is_slower_than_it_looks() {
        // The server link serializes M payloads; with M workers the PS time
        // grows linearly in M while a ring's per-step size shrinks.
        let link = LinkModel::new(0.0, 1.0);
        let d = 64;
        let data_small: Vec<Vec<f32>> = (0..2).map(|_| vec![1.0; d]).collect();
        let data_large: Vec<Vec<f32>> = (0..8).map(|_| vec![1.0; d]).collect();
        let (_, t2) = ps_allreduce_sum(&data_small).unwrap();
        let (_, t8) = ps_allreduce_sum(&data_large).unwrap();
        assert!(t8.time(link) > 3.0 * t2.time(link));
    }

    #[test]
    fn sign_sums_count_workers() {
        let signs: Vec<SignVec> = (0..3).map(|_| SignVec::ones(8)).collect();
        let (sums, _) = ps_sign_sums(&signs).unwrap();
        assert_eq!(sums.count(), 3);
        assert!(sums.sums().iter().all(|&s| s == 3));
    }

    #[test]
    fn ps_emits_upload_and_download_hops() {
        use marsit_telemetry::{scoped, Telemetry};
        let t = Telemetry::recording();
        t.set_transport_tag("simulator", "simulated");
        let signs: Vec<SignVec> = (0..3).map(|_| SignVec::ones(40)).collect();
        let trace = scoped(&t, || ps_majority_vote(&signs).unwrap().1);
        let hops = t.snapshot_events();
        assert_eq!(hops.len(), 6, "3 uploads + 3 downloads");
        let mut bytes = 0;
        for (i, ev) in hops.iter().enumerate() {
            assert_eq!(ev.name, "hop");
            assert_eq!(ev.str_field("backend"), Some("simulator"));
            if i < 3 {
                assert_eq!(ev.u64_field("seq"), Some(0));
                assert_eq!(ev.str_field("phase"), Some("reduce"));
                assert_eq!(ev.u64_field("recv"), Some(3), "server is pseudo-rank m");
            } else {
                assert_eq!(ev.u64_field("seq"), Some(1));
                assert_eq!(ev.str_field("phase"), Some("gather"));
                assert_eq!(ev.u64_field("send"), Some(3));
            }
            bytes += ev.u64_field("bytes").unwrap();
        }
        assert_eq!(
            bytes,
            trace.total_bytes() as u64,
            "hop bytes must match trace"
        );
    }

    /// Degenerate memberships surface as typed errors rather than panics.
    #[test]
    fn degenerate_membership_returns_typed_errors() {
        assert_eq!(
            ps_allreduce_sum(&[]).unwrap_err(),
            SyncError::TooFewWorkers { needed: 1, got: 0 }
        );
        assert_eq!(
            ps_majority_vote(&[]).unwrap_err(),
            SyncError::TooFewWorkers { needed: 1, got: 0 }
        );
        assert_eq!(
            ps_sign_sums(&[]).unwrap_err(),
            SyncError::TooFewWorkers { needed: 1, got: 0 }
        );
        let ragged = vec![vec![1.0f32; 4], vec![1.0f32; 3]];
        assert_eq!(
            ps_allreduce_sum(&ragged).unwrap_err(),
            SyncError::LengthMismatch {
                expected: 4,
                got: 3
            }
        );
        let ragged_signs = vec![SignVec::ones(8), SignVec::ones(5)];
        assert_eq!(
            ps_majority_vote(&ragged_signs).unwrap_err(),
            SyncError::LengthMismatch {
                expected: 8,
                got: 5
            }
        );
        assert_eq!(
            ps_sign_sums(&ragged_signs).unwrap_err(),
            SyncError::LengthMismatch {
                expected: 8,
                got: 5
            }
        );
        // A single live worker is fine for PS (it is its own server).
        let (sum, _) = ps_allreduce_sum(&[vec![2.0f32, 3.0]]).unwrap();
        assert_eq!(sum, vec![2.0, 3.0]);
    }
}
