//! Multi-hop and single-hop collectives for the Marsit reproduction.
//!
//! Implements the communication *schedules* the paper assumes —
//! bit-exact, in-process, with per-hop transfer tracing:
//!
//! - [`ring`]: ring all-reduce (RAR) for `f32` sums, growing integer
//!   sign-sums (the MAR extensions of signSGD baselines), and one-bit
//!   payloads with a pluggable combine operator (where Marsit's `⊙` lives);
//! - [`torus`]: 2D-torus all-reduce (TAR) versions of the same three;
//! - [`tree`] / [`segring`]: the extension paradigms the paper names
//!   (binary-tree all-reduce and segmented-ring all-reduce), with one-bit
//!   variants proving Marsit composes over them too;
//! - [`gossip`]: decentralized neighbour averaging, the slow-consensus
//!   baseline the introduction contrasts with MAR;
//! - [`ps`]: parameter-server exchanges for the single-hop baselines;
//! - [`reconfigure`]: elastic-membership topology re-formation (torus →
//!   survivor ring, ring re-expansion, lone-survivor and empty terminal
//!   modes) plus the typed [`SyncError`] the faulty paths surface;
//! - [`trace`]: what actually crossed the wire, priceable with
//!   `marsit_simnet`'s α–β model.
//!
//! # Examples
//!
//! ```
//! use marsit_collectives::ring::ring_allreduce_sum;
//!
//! let mut data = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
//! let trace = ring_allreduce_sum(&mut data);
//! assert_eq!(data[0], vec![4.0, 6.0]);
//! assert_eq!(data[1], vec![4.0, 6.0]); // consensus
//! assert_eq!(trace.num_steps(), 2); // 2(M−1) with M = 2
//! ```

pub mod engine;
pub mod gossip;
pub mod ps;
pub mod reconfigure;
pub mod ring;
pub mod segring;
pub mod torus;
pub mod trace;
pub mod tree;

pub use engine::{
    compile_plan, run_lockstep, run_rank, run_threaded, EnginePlan, PlanTopology, PlannedTransfer,
};
pub use reconfigure::{DegradedMode, EffectiveTopology, SyncError, TopologyReconfigurer};
pub use ring::{CombineCtx, PlannedHop, RingOnebitScratch, StepCombine, SumWire};
pub use trace::Trace;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::ring::{ring_allreduce_majority, ring_allreduce_sum, SumWire};
    use crate::torus::torus_allreduce_sum;
    use marsit_tensor::SignVec;

    proptest! {
        /// Ring all-reduce reaches consensus on the exact sum for any
        /// worker count and dimension.
        #[test]
        fn ring_sum_consensus(m in 2usize..7, d in 1usize..40, seed in any::<u32>()) {
            use marsit_tensor::rng::FastRng;
            let mut rng = FastRng::new(u64::from(seed), 0);
            let mut data: Vec<Vec<f32>> = (0..m)
                .map(|_| (0..d).map(|_| (rng.next_f64() as f32) - 0.5).collect())
                .collect();
            let mut expected = vec![0.0f32; d];
            for w in &data {
                for (e, &x) in expected.iter_mut().zip(w) {
                    *e += x;
                }
            }
            let _ = ring_allreduce_sum(&mut data);
            for w in &data {
                for (x, e) in w.iter().zip(&expected) {
                    prop_assert!((x - e).abs() < 1e-3);
                }
            }
        }

        /// Torus all-reduce agrees with ring all-reduce on the sums.
        #[test]
        fn torus_matches_ring(rows in 2usize..4, cols in 2usize..4, d in 4usize..30, seed in any::<u32>()) {
            use marsit_tensor::rng::FastRng;
            let m = rows * cols;
            let mut rng = FastRng::new(u64::from(seed), 1);
            let payloads: Vec<Vec<f32>> = (0..m)
                .map(|_| (0..d).map(|_| (rng.next_f64() as f32) - 0.5).collect())
                .collect();
            let mut ring_data = payloads.clone();
            let mut torus_data = payloads;
            let _ = ring_allreduce_sum(&mut ring_data);
            let _ = torus_allreduce_sum(&mut torus_data, rows, cols);
            for (r, t) in ring_data[0].iter().zip(&torus_data[0]) {
                prop_assert!((r - t).abs() < 1e-3);
            }
        }

        /// Majority vote over the ring matches a direct per-coordinate count
        /// regardless of wire encoding.
        #[test]
        fn ring_majority_correct(m in 2usize..6, d in 1usize..50, seed in any::<u32>()) {
            use marsit_tensor::rng::FastRng;
            let mut rng = FastRng::new(u64::from(seed), 2);
            let signs: Vec<SignVec> = (0..m)
                .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
                .collect();
            for wire in [SumWire::Elias, SumWire::FixedWidth] {
                let (vote, _) = ring_allreduce_majority(&signs, wire);
                for j in 0..d {
                    let s: i32 = signs.iter().map(|v| if v.get(j) { 1 } else { -1 }).sum();
                    prop_assert_eq!(vote.get(j), s >= 0);
                }
            }
        }
    }
}
