//! Process-per-shard serving: a supervisor, shard subprocesses, and the
//! `marsit-wire/1` serving protocol between them.
//!
//! The thread scheduler ([`crate::scheduler`]) dies with its process. This
//! module splits the shards out: a [`SupervisorHandle`] spawns one shard
//! *subprocess* per shard (the `marsit_serve` binary in its hidden
//! `--shard-worker` mode), speaks [`Frame`]s over localhost TCP, and
//! supervises:
//!
//! - **Submission** — `submit` frames carry a fresh job's canonical spec
//!   line, or a restore body (spec + `marsit-checkpoint/1` snapshot +
//!   telemetry sequence floor) for a job resuming from a durability point.
//! - **Durability** — shards push `snapshot` frames at the configured tick
//!   cadence; each carries the snapshot JSON plus the telemetry **delta**
//!   since the last push. The supervisor accumulates deltas in order, so
//!   its log-at-snapshot is exactly the job's log at that round — the
//!   rollback point — and journals every snapshot when a journal is
//!   attached.
//! - **Liveness** — a shard death is detected as EOF on its connection
//!   (the same EOF→`down` protocol as [`marsit_simnet::process`]). The
//!   supervisor restarts the shard with bounded exponential backoff and
//!   re-delivers its in-flight jobs from their last snapshots; a job with
//!   no snapshot yet simply restarts from scratch. Telemetry the dead
//!   shard never pushed is discarded *by construction* (deltas ride only
//!   on snapshot/outcome frames), so the resumed job's concatenated log is
//!   byte-identical to an uninterrupted run.
//! - **Migration** — the supervisor asks a shard to `evict` a job; the
//!   shard answers with a final snapshot frame at the next tick boundary
//!   and drops the job; the supervisor restores it on another shard.
//!
//! A shard subprocess that loses its supervisor (EOF on its socket) exits
//! immediately, so a `kill -9` of the supervisor leaves no orphans.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead as _, BufReader, ErrorKind, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use marsit_simnet::wire::{Frame, FrameKind, Payload, DRIVER};
use marsit_telemetry::Telemetry;
use marsit_tensor::rng::FastRng;
use marsit_trainsim::{TrainSnapshot, TrainerState};

use crate::journal::{
    take_len_prefixed, JournalRecord, JournalWriter, OutcomeRecord, RecoveredOutcome, ResumeJob,
    SnapshotRecord,
};
use crate::scheduler::{report_fingerprint, MigrationPolicy};
use crate::spec::JobSpec;

/// Environment variable naming the shard-worker executable. Tests point
/// it at the `marsit_serve` test binary; production leaves it unset and
/// the supervisor re-execs itself (`current_exe`).
pub const WORKER_BIN_ENV: &str = "MARSIT_SHARD_WORKER_BIN";

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Number of shard subprocesses.
    pub shards: usize,
    /// Rounds per preemption tick inside each shard.
    pub tick_rounds: usize,
    /// Shard pushes a durability snapshot for each job every this many of
    /// its ticks (0 = only eviction snapshots).
    pub snapshot_every_ticks: usize,
    /// Migration policy, evaluated supervisor-side on periodic snapshot
    /// arrivals (the supervisor owns placement; shards just evict on
    /// request).
    pub migration: MigrationPolicy,
    /// Shard-worker executable (`None` = [`WORKER_BIN_ENV`], else the
    /// current executable).
    pub worker_bin: Option<PathBuf>,
    /// Restart budget per shard before its jobs are reassigned for good.
    pub max_restarts_per_shard: u32,
    /// First restart delay; doubles per consecutive restart of the same
    /// shard up to [`Self::backoff_cap_ms`].
    pub backoff_base_ms: u64,
    /// Restart delay cap.
    pub backoff_cap_ms: u64,
}

impl SupervisorConfig {
    /// Defaults: `shards` subprocesses, 4-round ticks, snapshot every 2
    /// ticks, no migration, 50 ms → 2 s restart backoff, 5 restarts per
    /// shard.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            tick_rounds: 4,
            snapshot_every_ticks: 2,
            migration: MigrationPolicy::None,
            worker_bin: None,
            max_restarts_per_shard: 5,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
        }
    }
}

/// Aggregate result of a supervised serve session.
#[derive(Debug)]
pub struct SupervisorReport {
    /// Every finished job, sorted by name. Reports cross the process
    /// boundary as fingerprints, so outcomes are [`RecoveredOutcome`]s —
    /// verify with [`crate::verify_recovered`].
    pub outcomes: Vec<RecoveredOutcome>,
    /// Shard subprocess deaths observed (EOF before Stop).
    pub shard_deaths: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Supervisor-driven migrations completed.
    pub migrations: u64,
}

/// Typed supervisor failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorError {
    /// Socket/listener I/O failed.
    Io(String),
    /// A shard subprocess could not be spawned.
    Spawn(String),
    /// A shard exhausted its restart budget and no other shard is
    /// available to take its jobs.
    ShardUnrecoverable {
        /// The shard.
        shard: usize,
        /// Restarts attempted.
        restarts: u32,
    },
    /// A shard sent a frame the protocol does not allow.
    Protocol(String),
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "supervisor I/O error: {e}"),
            Self::Spawn(e) => write!(f, "cannot spawn shard worker: {e}"),
            Self::ShardUnrecoverable { shard, restarts } => write!(
                f,
                "shard {shard} unrecoverable after {restarts} restarts \
                 and no peer can absorb its jobs"
            ),
            Self::Protocol(e) => write!(f, "serving protocol violation: {e}"),
        }
    }
}

impl std::error::Error for SupervisorError {}

impl From<std::io::Error> for SupervisorError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

type Journal = Arc<Mutex<JournalWriter>>;

enum CtlMsg {
    Submit(JobSpec),
    Resume(ResumeJob),
    Finish,
}

/// A running supervised server.
pub struct SupervisorHandle {
    ctl: Sender<CtlMsg>,
    thread: std::thread::JoinHandle<Result<SupervisorReport, SupervisorError>>,
    pids: Arc<Mutex<Vec<Option<u32>>>>,
    submitted: usize,
    completed: Arc<Mutex<usize>>,
}

impl SupervisorHandle {
    /// Starts the listener, spawns the shard subprocesses, and returns
    /// the handle. `journal` (optional) receives submit/snapshot/migrate/
    /// outcome records exactly like the thread scheduler's journal.
    ///
    /// # Errors
    ///
    /// [`SupervisorError::Io`] if the localhost listener cannot bind.
    pub fn start(cfg: SupervisorConfig, journal: Option<Journal>) -> Result<Self, SupervisorError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?.to_string();
        let (ctl_tx, ctl_rx) = std::sync::mpsc::channel();
        let (ev_tx, ev_rx) = std::sync::mpsc::channel();
        let pids = Arc::new(Mutex::new(vec![None; cfg.shards]));
        let completed = Arc::new(Mutex::new(0usize));
        spawn_accept_loop(listener, &ev_tx);
        let loop_pids = Arc::clone(&pids);
        let loop_completed = Arc::clone(&completed);
        let thread = std::thread::Builder::new()
            .name("marsit-supervisor".to_string())
            .spawn(move || {
                supervisor_main(
                    &cfg,
                    &addr,
                    &ctl_rx,
                    &ev_rx,
                    &loop_pids,
                    &loop_completed,
                    journal,
                )
            })
            .expect("spawn supervisor thread");
        Ok(Self {
            ctl: ctl_tx,
            thread,
            pids,
            submitted: 0,
            completed,
        })
    }

    /// Submits a fresh job.
    pub fn submit(&mut self, spec: JobSpec) {
        self.submitted += 1;
        self.ctl
            .send(CtlMsg::Submit(spec))
            .expect("supervisor alive");
    }

    /// Re-submits a crash-recovered job from its journaled snapshot.
    pub fn submit_resume(&mut self, resume: ResumeJob) {
        self.submitted += 1;
        self.ctl
            .send(CtlMsg::Resume(resume))
            .expect("supervisor alive");
    }

    /// Jobs finished so far.
    #[must_use]
    pub fn completed(&self) -> usize {
        *self.completed.lock().expect("completed lock")
    }

    /// OS pid of shard `i`'s current subprocess (None while down) — lets
    /// the recovery tests SIGKILL one shard mid-storm.
    #[must_use]
    pub fn shard_pid(&self, shard: usize) -> Option<u32> {
        self.pids
            .lock()
            .expect("pids lock")
            .get(shard)
            .copied()
            .flatten()
    }

    /// Waits for every submitted job to finish, stops the shards, and
    /// returns the report.
    ///
    /// # Errors
    ///
    /// The [`SupervisorError`] the event loop died with, if it did.
    pub fn finish(self) -> Result<SupervisorReport, SupervisorError> {
        self.ctl.send(CtlMsg::Finish).expect("supervisor alive");
        self.thread.join().expect("supervisor thread panicked")
    }
}

enum SupEvent {
    Connected { shard: usize, stream: TcpStream },
    Frame { shard: usize, frame: Frame },
    Disconnected { shard: usize },
}

fn spawn_accept_loop(listener: TcpListener, ev_tx: &Sender<SupEvent>) {
    let ev_tx = ev_tx.clone();
    std::thread::Builder::new()
        .name("marsit-sup-accept".to_string())
        .spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let ev_tx = ev_tx.clone();
                std::thread::spawn(move || conn_reader(stream, &ev_tx));
            }
        })
        .expect("spawn accept thread");
}

/// Per-connection reader: first frame must be `hello` (from = shard id);
/// every further frame is forwarded; EOF or a malformed line becomes
/// `Disconnected` — the liveness signal.
fn conn_reader(stream: TcpStream, ev_tx: &Sender<SupEvent>) {
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let shard = match read_frame(&mut reader, &mut line) {
        Some(frame) if frame.kind == FrameKind::Hello => frame.from as usize,
        _ => return,
    };
    if ev_tx.send(SupEvent::Connected { shard, stream }).is_err() {
        return;
    }
    loop {
        match read_frame(&mut reader, &mut line) {
            Some(frame) => {
                if ev_tx.send(SupEvent::Frame { shard, frame }).is_err() {
                    return;
                }
            }
            None => {
                ev_tx.send(SupEvent::Disconnected { shard }).ok();
                return;
            }
        }
    }
}

/// Reads one frame; `None` on EOF or any read/decode error (a torn
/// trailing line from a killed process decodes as an error, which is the
/// same liveness signal as EOF).
fn read_frame(reader: &mut BufReader<TcpStream>, line: &mut String) -> Option<Frame> {
    line.clear();
    match reader.read_line(line) {
        Ok(0) => None,
        Ok(_) if line.ends_with('\n') => Frame::decode(line).ok(),
        _ => None,
    }
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(frame.encode().as_bytes())
}

fn bytes_frame(kind: FrameKind, from: u32, to: u32, body: String) -> Frame {
    Frame {
        kind,
        from,
        to,
        payload: Payload::Bytes(body.into_bytes()),
        ctx: None,
    }
}

fn body_text(frame: &Frame) -> Result<&str, SupervisorError> {
    match &frame.payload {
        Payload::Bytes(bytes) => std::str::from_utf8(bytes)
            .map_err(|e| SupervisorError::Protocol(format!("non-UTF-8 frame body: {e}"))),
        other => Err(SupervisorError::Protocol(format!(
            "expected bytes payload, got {other:?}"
        ))),
    }
}

/// A shard's view from the supervisor.
struct Shard {
    child: Option<Child>,
    stream: Option<TcpStream>,
    restarts: u32,
    respawn_at: Option<Instant>,
    /// Permanently abandoned (restart budget exhausted).
    dead: bool,
}

/// One supervised job.
struct SupJob {
    spec: JobSpec,
    assigned: usize,
    delivered: bool,
    done: bool,
    /// Set while an evict request is outstanding (no double-eviction, no
    /// redelivery race).
    evicting: bool,
    migrations: u32,
    shard_path: Vec<usize>,
    /// Accumulated telemetry (deltas arrive in-order on snapshot/outcome
    /// frames, so this is exact at every snapshot point).
    log: String,
    /// Last durability point: `(snapshot_json, tel_seq, round)`.
    last_snap: Option<(String, u64, u64)>,
}

#[allow(clippy::too_many_lines)]
fn supervisor_main(
    cfg: &SupervisorConfig,
    addr: &str,
    ctl: &Receiver<CtlMsg>,
    events: &Receiver<SupEvent>,
    pids: &Arc<Mutex<Vec<Option<u32>>>>,
    completed: &Arc<Mutex<usize>>,
    journal: Option<Journal>,
) -> Result<SupervisorReport, SupervisorError> {
    let mut shards: Vec<Shard> = (0..cfg.shards)
        .map(|_| Shard {
            child: None,
            stream: None,
            restarts: 0,
            respawn_at: Some(Instant::now()),
            dead: false,
        })
        .collect();
    let mut jobs: HashMap<String, SupJob> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut draining = false;
    let mut report = SupervisorReport {
        outcomes: Vec::new(),
        shard_deaths: 0,
        restarts: 0,
        migrations: 0,
    };
    let mut rng = match cfg.migration {
        MigrationPolicy::Seeded { seed, .. } => FastRng::new(seed, u64::from(DRIVER)),
        _ => FastRng::new(0, 0),
    };

    loop {
        // Respawn any shard whose backoff elapsed.
        for (i, shard) in shards.iter_mut().enumerate() {
            if shard.dead || shard.child.is_some() {
                continue;
            }
            if shard.respawn_at.is_some_and(|t| t <= Instant::now()) {
                shard.respawn_at = None;
                match spawn_worker(cfg, addr, i) {
                    Ok(child) => {
                        pids.lock().expect("pids lock")[i] = Some(child.id());
                        shard.child = Some(child);
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        // Control-plane intake.
        loop {
            match ctl.try_recv() {
                Ok(CtlMsg::Submit(spec)) => {
                    journal_submit(journal.as_ref(), &spec);
                    let assigned = least_loaded(&shards, &jobs);
                    order.push(spec.name.clone());
                    jobs.insert(
                        spec.name.clone(),
                        SupJob {
                            spec,
                            assigned,
                            delivered: false,
                            done: false,
                            evicting: false,
                            migrations: 0,
                            shard_path: vec![assigned],
                            log: String::new(),
                            last_snap: None,
                        },
                    );
                }
                Ok(CtlMsg::Resume(resume)) => {
                    let assigned = least_loaded(&shards, &jobs);
                    order.push(resume.spec.name.clone());
                    jobs.insert(
                        resume.spec.name.clone(),
                        SupJob {
                            spec: resume.spec,
                            assigned,
                            delivered: false,
                            done: false,
                            evicting: false,
                            migrations: resume.migrations,
                            shard_path: vec![assigned],
                            log: resume.log,
                            last_snap: Some((resume.snapshot_json, resume.tel_seq, 0)),
                        },
                    );
                }
                Ok(CtlMsg::Finish) => draining = true,
                Err(_) => break,
            }
        }

        // Deliver undelivered jobs whose shard is up.
        for name in &order {
            let job = jobs.get_mut(name).expect("job recorded");
            if job.done || job.delivered || job.evicting {
                continue;
            }
            let shard = &mut shards[job.assigned];
            let Some(stream) = shard.stream.as_mut() else {
                continue;
            };
            let frame = deliver_frame(job)?;
            if write_frame(stream, &frame).is_ok() {
                job.delivered = true;
            }
            // A failed write surfaces as Disconnected from the reader;
            // the job stays undelivered and is retried after restart.
        }

        if draining && jobs.values().all(|j| j.done) {
            break;
        }

        // Data plane: shard frames and deaths.
        match events.recv_timeout(Duration::from_millis(5)) {
            Ok(SupEvent::Connected { shard, stream }) => {
                if shard < shards.len() {
                    shards[shard].stream = Some(stream);
                    shards[shard].restarts = 0;
                }
            }
            Ok(SupEvent::Frame { shard, frame }) => {
                handle_shard_frame(
                    cfg,
                    shard,
                    &frame,
                    &mut shards,
                    &mut jobs,
                    &mut report,
                    &mut rng,
                    journal.as_ref(),
                    completed,
                )?;
            }
            Ok(SupEvent::Disconnected { shard }) => {
                on_shard_death(cfg, shard, &mut shards, &mut jobs, &mut report, pids)?;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(SupervisorError::Io("accept loop died".to_string()))
            }
        }
        journal_commit(journal.as_ref());
    }

    // Orderly shutdown: stop frames, then reap.
    for (i, shard) in shards.iter_mut().enumerate() {
        if let Some(stream) = shard.stream.as_mut() {
            write_frame(stream, &Frame::control(FrameKind::Stop, DRIVER, i as u32)).ok();
        }
    }
    for (i, shard) in shards.iter_mut().enumerate() {
        if let Some(mut child) = shard.child.take() {
            child.wait().ok();
        }
        pids.lock().expect("pids lock")[i] = None;
    }
    journal_commit(journal.as_ref());
    report
        .outcomes
        .sort_by(|a, b| a.spec.name.cmp(&b.spec.name));
    Ok(report)
}

fn least_loaded(shards: &[Shard], jobs: &HashMap<String, SupJob>) -> usize {
    let mut counts = vec![0usize; shards.len()];
    for job in jobs.values() {
        if !job.done {
            counts[job.assigned] += 1;
        }
    }
    (0..shards.len())
        .filter(|&i| !shards[i].dead)
        .min_by_key(|&i| counts[i])
        .unwrap_or(0)
}

/// The submit frame (re)delivering `job` to its assigned shard: a restore
/// body when a durability point exists, a fresh run body otherwise.
fn deliver_frame(job: &SupJob) -> Result<Frame, SupervisorError> {
    let line = job
        .spec
        .to_line()
        .map_err(|e| SupervisorError::Protocol(format!("unrepresentable spec: {e}")))?;
    let body = match &job.last_snap {
        Some((snapshot_json, tel_seq, _)) => format!(
            "restore tel_seq={tel_seq:016x} migrations={} spec={}:{line} snapshot={}:{snapshot_json}",
            job.migrations,
            line.len(),
            snapshot_json.len(),
        ),
        None => format!("run {line}"),
    };
    Ok(bytes_frame(
        FrameKind::Submit,
        DRIVER,
        job.assigned as u32,
        body,
    ))
}

#[allow(clippy::too_many_arguments)]
fn handle_shard_frame(
    cfg: &SupervisorConfig,
    shard: usize,
    frame: &Frame,
    shards: &mut [Shard],
    jobs: &mut HashMap<String, SupJob>,
    report: &mut SupervisorReport,
    rng: &mut FastRng,
    journal: Option<&Journal>,
    completed: &Arc<Mutex<usize>>,
) -> Result<(), SupervisorError> {
    match frame.kind {
        FrameKind::Snapshot => {
            let push = SnapshotPush::parse(body_text(frame)?)?;
            {
                let Some(job) = jobs.get_mut(&push.name) else {
                    return Ok(()); // stale frame from a job already reassigned
                };
                if job.done || job.assigned != shard {
                    return Ok(());
                }
                job.log.push_str(&push.log_delta);
                job.last_snap = Some((push.snapshot_json.clone(), push.tel_seq, push.round));
                job.migrations = push.migrations;
                journal_snapshot(journal, shard, job, &push);
            }
            if push.evicted {
                // The shard dropped the job; restore it elsewhere (or back
                // on `shard` when it is the only one left alive).
                report.migrations += 1;
                let target = pick_other_shard(shards, shard);
                if let Some(target) = target {
                    journal_migrate(journal, &push.name, shard, target);
                }
                let job = jobs.get_mut(&push.name).expect("job still recorded");
                job.evicting = false;
                job.delivered = false;
                job.migrations += 1;
                if let Some(target) = target {
                    job.assigned = target;
                    job.shard_path.push(target);
                }
            } else {
                let already_evicting = jobs[&push.name].evicting;
                if !already_evicting && wants_eviction(cfg, shards, jobs, shard, rng) {
                    jobs.get_mut(&push.name)
                        .expect("job still recorded")
                        .evicting = true;
                    if let Some(stream) = shards[shard].stream.as_mut() {
                        write_frame(
                            stream,
                            &bytes_frame(
                                FrameKind::Snapshot,
                                DRIVER,
                                shard as u32,
                                format!("evict {}", push.name),
                            ),
                        )
                        .ok();
                    }
                }
            }
            Ok(())
        }
        FrameKind::Outcome => {
            let done = OutcomePush::parse(body_text(frame)?)?;
            let Some(job) = jobs.get_mut(&done.name) else {
                return Ok(());
            };
            if job.done || job.assigned != shard {
                return Ok(());
            }
            job.log.push_str(&done.log_delta);
            job.done = true;
            job.migrations = done.migrations;
            let outcome = RecoveredOutcome {
                spec: job.spec.clone(),
                report_debug: done.report_debug,
                log: job.log.clone(),
                migrations: job.migrations,
                shard_path: job.shard_path.clone(),
            };
            if let Some(journal) = journal {
                journal
                    .lock()
                    .expect("journal lock")
                    .append(&JournalRecord::Outcome(OutcomeRecord {
                        name: outcome.spec.name.clone(),
                        migrations: outcome.migrations,
                        shard_path: outcome.shard_path.clone(),
                        report_debug: outcome.report_debug.clone(),
                        log: outcome.log.clone(),
                    }))
                    .expect("journal-representable outcome");
            }
            report.outcomes.push(outcome);
            *completed.lock().expect("completed lock") += 1;
            Ok(())
        }
        FrameKind::Hello | FrameKind::Telem => Ok(()),
        other => Err(SupervisorError::Protocol(format!(
            "unexpected {other:?} frame from shard {shard}"
        ))),
    }
}

fn jobs_len(jobs: &HashMap<String, SupJob>, shard: usize) -> usize {
    jobs.values()
        .filter(|j| !j.done && j.assigned == shard)
        .count()
}

fn pick_other_shard(shards: &[Shard], not: usize) -> Option<usize> {
    (0..shards.len()).find(|&i| i != not && !shards[i].dead)
}

/// Supervisor-side migration policy: should the job whose periodic
/// snapshot just landed on `shard` be evicted? Evaluated only at
/// snapshot arrivals — the one moment a job is known to have a fresh
/// durability point, which is exactly what the eviction hand-off ships.
fn wants_eviction(
    cfg: &SupervisorConfig,
    shards: &[Shard],
    jobs: &HashMap<String, SupJob>,
    shard: usize,
    rng: &mut FastRng,
) -> bool {
    if shards.iter().filter(|s| !s.dead).count() < 2 {
        return false;
    }
    match cfg.migration {
        MigrationPolicy::None => false,
        MigrationPolicy::LoadBalance { skew } => {
            let min_other = (0..shards.len())
                .filter(|&i| i != shard && !shards[i].dead)
                .map(|i| jobs_len(jobs, i))
                .min()
                .unwrap_or(0);
            jobs_len(jobs, shard) >= min_other + skew.max(1)
        }
        MigrationPolicy::Seeded { per_mille, .. } => rng.next_range(1000) < u64::from(per_mille),
    }
}

fn on_shard_death(
    cfg: &SupervisorConfig,
    shard: usize,
    shards: &mut [Shard],
    jobs: &mut HashMap<String, SupJob>,
    report: &mut SupervisorReport,
    pids: &Arc<Mutex<Vec<Option<u32>>>>,
) -> Result<(), SupervisorError> {
    let s = &mut shards[shard];
    if s.stream.is_none() && s.child.is_none() {
        return Ok(()); // duplicate signal
    }
    s.stream = None;
    if let Some(mut child) = s.child.take() {
        child.kill().ok();
        child.wait().ok();
    }
    pids.lock().expect("pids lock")[shard] = None;
    report.shard_deaths += 1;

    // Roll every resident job back to its last pushed snapshot. Deltas
    // ride only on snapshot/outcome frames, so the accumulated log is
    // already exactly the log at that snapshot — nothing to unwind.
    for job in jobs.values_mut() {
        if !job.done && job.assigned == shard {
            job.delivered = false;
            job.evicting = false;
        }
    }

    if shards[shard].restarts >= cfg.max_restarts_per_shard {
        shards[shard].dead = true;
        let Some(target) = pick_other_shard(shards, shard) else {
            return Err(SupervisorError::ShardUnrecoverable {
                shard,
                restarts: shards[shard].restarts,
            });
        };
        for job in jobs.values_mut() {
            if !job.done && job.assigned == shard {
                job.assigned = target;
                job.shard_path.push(target);
            }
        }
        return Ok(());
    }
    let exp = shards[shard].restarts.min(16);
    let delay = cfg
        .backoff_base_ms
        .saturating_mul(1u64 << exp)
        .min(cfg.backoff_cap_ms);
    shards[shard].restarts += 1;
    report.restarts += 1;
    shards[shard].respawn_at = Some(Instant::now() + Duration::from_millis(delay));
    Ok(())
}

fn spawn_worker(
    cfg: &SupervisorConfig,
    addr: &str,
    shard: usize,
) -> Result<Child, SupervisorError> {
    let bin = std::env::var_os(WORKER_BIN_ENV)
        .map(PathBuf::from)
        .or_else(|| cfg.worker_bin.clone())
        .or_else(|| std::env::current_exe().ok())
        .ok_or_else(|| SupervisorError::Spawn("no worker binary".to_string()))?;
    Command::new(&bin)
        .args([
            "--shard-worker",
            "--addr",
            addr,
            "--shard",
            &shard.to_string(),
            "--tick",
            &cfg.tick_rounds.to_string(),
            "--snapshot-every",
            &cfg.snapshot_every_ticks.to_string(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| SupervisorError::Spawn(format!("{}: {e}", bin.display())))
}

fn journal_submit(journal: Option<&Journal>, spec: &JobSpec) {
    if let Some(journal) = journal {
        let mut journal = journal.lock().expect("journal lock");
        journal
            .append(&JournalRecord::Submit { spec: spec.clone() })
            .expect("journal-representable spec");
        journal.commit().expect("journal commit");
    }
}

fn journal_snapshot(journal: Option<&Journal>, shard: usize, job: &SupJob, push: &SnapshotPush) {
    if let Some(journal) = journal {
        journal
            .lock()
            .expect("journal lock")
            .append(&JournalRecord::Snapshot(SnapshotRecord {
                name: job.spec.name.clone(),
                shard,
                migrations: job.migrations,
                round: push.round,
                tel_seq: push.tel_seq,
                snapshot_json: push.snapshot_json.clone(),
                log: job.log.clone(),
            }))
            .expect("journal-representable snapshot");
    }
}

fn journal_migrate(journal: Option<&Journal>, name: &str, from: usize, to: usize) {
    if let Some(journal) = journal {
        journal
            .lock()
            .expect("journal lock")
            .append(&JournalRecord::Migrate {
                name: name.to_string(),
                from,
                to,
            })
            .expect("journal-representable migration");
    }
}

fn journal_commit(journal: Option<&Journal>) {
    if let Some(journal) = journal {
        journal
            .lock()
            .expect("journal lock")
            .commit()
            .expect("journal commit");
    }
}

// ---------------------------------------------------------------------------
// Wire bodies (UTF-8 text inside `Payload::Bytes`).
// ---------------------------------------------------------------------------

fn proto_err(reason: String) -> SupervisorError {
    SupervisorError::Protocol(reason)
}

fn kv_token<'a>(
    tokens: &mut std::str::SplitWhitespace<'a>,
    key: &str,
) -> Result<&'a str, SupervisorError> {
    let token = tokens
        .next()
        .ok_or_else(|| proto_err(format!("missing {key}= field")))?;
    token
        .strip_prefix(key)
        .and_then(|t| t.strip_prefix('='))
        .ok_or_else(|| proto_err(format!("expected {key}=..., found {token:?}")))
}

/// A shard's snapshot push (`periodic …` or `evicted …`).
struct SnapshotPush {
    evicted: bool,
    name: String,
    round: u64,
    tel_seq: u64,
    migrations: u32,
    snapshot_json: String,
    log_delta: String,
}

impl SnapshotPush {
    fn encode(&self) -> String {
        format!(
            "{} name={} round={} tel_seq={:016x} migrations={} snapshot={}:{} log={}:{}",
            if self.evicted { "evicted" } else { "periodic" },
            self.name,
            self.round,
            self.tel_seq,
            self.migrations,
            self.snapshot_json.len(),
            self.snapshot_json,
            self.log_delta.len(),
            self.log_delta,
        )
    }

    fn parse(body: &str) -> Result<Self, SupervisorError> {
        let (head, tail) = body
            .split_once(" snapshot=")
            .ok_or_else(|| proto_err("snapshot push missing snapshot segment".to_string()))?;
        let mut tokens = head.split_whitespace();
        let verb = tokens.next().unwrap_or("");
        let evicted = match verb {
            "periodic" => false,
            "evicted" => true,
            other => return Err(proto_err(format!("unknown snapshot verb {other:?}"))),
        };
        let name = kv_token(&mut tokens, "name")?.to_string();
        let round = kv_token(&mut tokens, "round")?
            .parse()
            .map_err(|_| proto_err("bad round".to_string()))?;
        let tel_seq = u64::from_str_radix(kv_token(&mut tokens, "tel_seq")?, 16)
            .map_err(|_| proto_err("bad tel_seq".to_string()))?;
        let migrations = kv_token(&mut tokens, "migrations")?
            .parse()
            .map_err(|_| proto_err("bad migrations".to_string()))?;
        let (snapshot_json, tail) =
            take_len_prefixed(tail, "snapshot").map_err(|e| proto_err(e.to_string()))?;
        let tail = tail
            .strip_prefix(" log=")
            .ok_or_else(|| proto_err("snapshot push missing log segment".to_string()))?;
        let (log_delta, rest) =
            take_len_prefixed(tail, "log").map_err(|e| proto_err(e.to_string()))?;
        if !rest.is_empty() {
            return Err(proto_err("trailing bytes after snapshot push".to_string()));
        }
        Ok(Self {
            evicted,
            name,
            round,
            tel_seq,
            migrations,
            snapshot_json: snapshot_json.to_string(),
            log_delta: log_delta.to_string(),
        })
    }
}

/// A shard's outcome push (`done …`).
struct OutcomePush {
    name: String,
    migrations: u32,
    report_debug: String,
    log_delta: String,
}

impl OutcomePush {
    fn encode(&self) -> String {
        format!(
            "done name={} migrations={} report={}:{} log={}:{}",
            self.name,
            self.migrations,
            self.report_debug.len(),
            self.report_debug,
            self.log_delta.len(),
            self.log_delta,
        )
    }

    fn parse(body: &str) -> Result<Self, SupervisorError> {
        let (head, tail) = body
            .split_once(" report=")
            .ok_or_else(|| proto_err("outcome push missing report segment".to_string()))?;
        let mut tokens = head.split_whitespace();
        match tokens.next() {
            Some("done") => {}
            other => return Err(proto_err(format!("unknown outcome verb {other:?}"))),
        }
        let name = kv_token(&mut tokens, "name")?.to_string();
        let migrations = kv_token(&mut tokens, "migrations")?
            .parse()
            .map_err(|_| proto_err("bad migrations".to_string()))?;
        let (report_debug, tail) =
            take_len_prefixed(tail, "report").map_err(|e| proto_err(e.to_string()))?;
        let tail = tail
            .strip_prefix(" log=")
            .ok_or_else(|| proto_err("outcome push missing log segment".to_string()))?;
        let (log_delta, rest) =
            take_len_prefixed(tail, "log").map_err(|e| proto_err(e.to_string()))?;
        if !rest.is_empty() {
            return Err(proto_err("trailing bytes after outcome push".to_string()));
        }
        Ok(Self {
            name,
            migrations,
            report_debug: report_debug.to_string(),
            log_delta: log_delta.to_string(),
        })
    }
}

/// A submit-frame body: `run <spec-line>` or `restore …`.
enum SubmitBody {
    Run(JobSpec),
    Restore {
        spec: JobSpec,
        tel_seq: u64,
        migrations: u32,
        snapshot_json: String,
    },
}

impl SubmitBody {
    fn parse(body: &str) -> Result<Self, SupervisorError> {
        if let Some(line) = body.strip_prefix("run ") {
            return JobSpec::parse_line(line).map(Self::Run).map_err(proto_err);
        }
        let rest = body
            .strip_prefix("restore ")
            .ok_or_else(|| proto_err(format!("unknown submit verb in {body:?}")))?;
        let (head, tail) = rest
            .split_once(" spec=")
            .ok_or_else(|| proto_err("restore body missing spec segment".to_string()))?;
        let mut tokens = head.split_whitespace();
        let tel_seq = u64::from_str_radix(kv_token(&mut tokens, "tel_seq")?, 16)
            .map_err(|_| proto_err("bad tel_seq".to_string()))?;
        let migrations = kv_token(&mut tokens, "migrations")?
            .parse()
            .map_err(|_| proto_err("bad migrations".to_string()))?;
        let (line, tail) = take_len_prefixed(tail, "spec").map_err(|e| proto_err(e.to_string()))?;
        let spec = JobSpec::parse_line(line).map_err(proto_err)?;
        let tail = tail
            .strip_prefix(" snapshot=")
            .ok_or_else(|| proto_err("restore body missing snapshot segment".to_string()))?;
        let (snapshot_json, rest) =
            take_len_prefixed(tail, "snapshot").map_err(|e| proto_err(e.to_string()))?;
        if !rest.is_empty() {
            return Err(proto_err("trailing bytes after restore body".to_string()));
        }
        Ok(Self::Restore {
            spec,
            tel_seq,
            migrations,
            snapshot_json: snapshot_json.to_string(),
        })
    }
}

// ---------------------------------------------------------------------------
// The shard-worker side (runs inside the subprocess).
// ---------------------------------------------------------------------------

struct WorkerJob {
    spec: JobSpec,
    state: TrainerState,
    tel: Telemetry,
    /// Telemetry drained but not yet shipped (deltas ride only on
    /// snapshot/outcome frames — see the module docs).
    pending_log: String,
    migrations: u32,
    ticks_since_snap: usize,
}

/// The shard-worker event loop: the body of `marsit_serve --shard-worker`.
/// Connects to the supervisor, runs submitted jobs tick-by-tick, pushes
/// periodic snapshot frames and final outcomes, and exits the moment the
/// supervisor socket reaches EOF (no orphans after a supervisor
/// `kill -9`). Returns the process exit code.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn shard_worker_main(
    addr: &str,
    shard: usize,
    tick_rounds: usize,
    snapshot_every_ticks: usize,
) -> i32 {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 1;
    };
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return 1;
    };
    let mut reader = BufReader::new(read_half);
    let hello = Frame::control(FrameKind::Hello, shard as u32, DRIVER);
    if write_frame(&mut stream, &hello).is_err() {
        return 1;
    }

    let mut jobs: std::collections::VecDeque<WorkerJob> = std::collections::VecDeque::new();
    let mut evict_requests: Vec<String> = Vec::new();
    let mut partial = String::new();
    let idle_min = Duration::from_millis(1);
    let idle_max = Duration::from_millis(16);
    let mut idle_wait = idle_min;
    let tick_rounds = tick_rounds.max(1);

    loop {
        // Frame intake. Block up to `idle_wait` when idle, poll briefly
        // when jobs are runnable. A read timeout may cut a line in half;
        // `partial` carries the prefix to the next attempt, so frames are
        // never torn by timing.
        let wait = if jobs.is_empty() {
            idle_wait
        } else {
            Duration::from_micros(200)
        };
        reader.get_ref().set_read_timeout(Some(wait)).ok();
        loop {
            match reader.read_line(&mut partial) {
                Ok(0) => return 0, // supervisor gone: exit immediately
                Ok(_) if partial.ends_with('\n') => {
                    let Ok(frame) = Frame::decode(&partial) else {
                        return 1;
                    };
                    partial.clear();
                    match frame.kind {
                        FrameKind::Stop => return 0,
                        FrameKind::Submit => {
                            let Ok(body) = body_text(&frame) else {
                                return 1;
                            };
                            match SubmitBody::parse(body) {
                                Ok(SubmitBody::Run(spec)) => {
                                    let tel = Telemetry::recording();
                                    let cfg = spec.to_train_config(tel.clone());
                                    let state = TrainerState::new(&cfg);
                                    jobs.push_back(WorkerJob {
                                        spec,
                                        state,
                                        tel,
                                        pending_log: String::new(),
                                        migrations: 0,
                                        ticks_since_snap: 0,
                                    });
                                }
                                Ok(SubmitBody::Restore {
                                    spec,
                                    tel_seq,
                                    migrations,
                                    snapshot_json,
                                }) => {
                                    let tel = Telemetry::recording();
                                    tel.restore_seq_floor(tel_seq);
                                    let cfg = spec.to_train_config(tel.clone());
                                    let Ok(snapshot) = TrainSnapshot::from_json(&snapshot_json)
                                    else {
                                        return 1;
                                    };
                                    let state = TrainerState::restore(&cfg, &snapshot);
                                    jobs.push_back(WorkerJob {
                                        spec,
                                        state,
                                        tel,
                                        pending_log: String::new(),
                                        migrations,
                                        ticks_since_snap: 0,
                                    });
                                }
                                Err(_) => return 1,
                            }
                            idle_wait = idle_min;
                        }
                        FrameKind::Snapshot => {
                            let Ok(body) = body_text(&frame) else {
                                return 1;
                            };
                            if let Some(name) = body.strip_prefix("evict ") {
                                evict_requests.push(name.to_string());
                            }
                        }
                        _ => {}
                    }
                }
                Ok(_) => {} // partial line: keep accumulating
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    break;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return 0, // connection reset: supervisor gone
            }
            // Drain whatever is already buffered without re-blocking.
            if reader.buffer().is_empty() {
                break;
            }
        }

        let Some(mut job) = jobs.pop_front() else {
            idle_wait = (idle_wait * 2).min(idle_max);
            continue;
        };
        idle_wait = idle_min;

        // Eviction requested: snapshot at this tick boundary and hand the
        // job back instead of running it further.
        if let Some(pos) = evict_requests.iter().position(|n| *n == job.spec.name) {
            evict_requests.remove(pos);
            let snapshot = job.state.snapshot();
            job.tel.drain_events_jsonl_into(&mut job.pending_log);
            let push = SnapshotPush {
                evicted: true,
                name: job.spec.name.clone(),
                round: snapshot.round,
                tel_seq: job.tel.seq_floor(),
                migrations: job.migrations,
                snapshot_json: snapshot.to_json(),
                log_delta: std::mem::take(&mut job.pending_log),
            };
            let frame = bytes_frame(FrameKind::Snapshot, shard as u32, DRIVER, push.encode());
            if write_frame(&mut stream, &frame).is_err() {
                return 0;
            }
            continue; // job dropped: it now lives in the snapshot
        }

        // One tick.
        let mut ran = 0;
        while ran < tick_rounds && !job.state.is_done() {
            job.state.step();
            ran += 1;
        }
        job.tel.drain_events_jsonl_into(&mut job.pending_log);
        job.ticks_since_snap += 1;

        if job.state.is_done() {
            let report = job.state.finish();
            job.tel.drain_events_jsonl_into(&mut job.pending_log);
            let push = OutcomePush {
                name: job.spec.name.clone(),
                migrations: job.migrations,
                report_debug: report_fingerprint(&report),
                log_delta: std::mem::take(&mut job.pending_log),
            };
            let frame = bytes_frame(FrameKind::Outcome, shard as u32, DRIVER, push.encode());
            if write_frame(&mut stream, &frame).is_err() {
                return 0;
            }
            continue;
        }
        if snapshot_every_ticks > 0 && job.ticks_since_snap >= snapshot_every_ticks {
            let snapshot = job.state.snapshot();
            let push = SnapshotPush {
                evicted: false,
                name: job.spec.name.clone(),
                round: snapshot.round,
                tel_seq: job.tel.seq_floor(),
                migrations: job.migrations,
                snapshot_json: snapshot.to_json(),
                log_delta: std::mem::take(&mut job.pending_log),
            };
            job.ticks_since_snap = 0;
            let frame = bytes_frame(FrameKind::Snapshot, shard as u32, DRIVER, push.encode());
            if write_frame(&mut stream, &frame).is_err() {
                return 0;
            }
        }
        jobs.push_back(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_models::Workload;
    use marsit_simnet::Topology;

    #[test]
    fn snapshot_push_round_trips() {
        let push = SnapshotPush {
            evicted: false,
            name: "j0".to_string(),
            round: 6,
            tel_seq: 0xAB,
            migrations: 2,
            snapshot_json: r#"{"round":6}"#.to_string(),
            log_delta: "l1\nl2 with spaces\n".to_string(),
        };
        let back = SnapshotPush::parse(&push.encode()).expect("round trip");
        assert!(!back.evicted);
        assert_eq!(back.name, push.name);
        assert_eq!(back.tel_seq, 0xAB);
        assert_eq!(back.snapshot_json, push.snapshot_json);
        assert_eq!(back.log_delta, push.log_delta);

        let evicted = SnapshotPush {
            evicted: true,
            ..push
        };
        assert!(
            SnapshotPush::parse(&evicted.encode())
                .expect("parses")
                .evicted
        );
    }

    #[test]
    fn outcome_push_round_trips() {
        let push = OutcomePush {
            name: "j1".to_string(),
            migrations: 1,
            report_debug: "TrainReport { x: 1 }".to_string(),
            log_delta: String::new(),
        };
        let back = OutcomePush::parse(&push.encode()).expect("round trip");
        assert_eq!(back.name, "j1");
        assert_eq!(back.report_debug, push.report_debug);
        assert_eq!(back.log_delta, "");
    }

    #[test]
    fn submit_body_parses_run_and_restore() {
        let mut spec = JobSpec::new("s", Workload::AlexNetMnist, Topology::ring(4));
        spec.rounds = 9;
        let line = spec.to_line().expect("representable");
        let SubmitBody::Run(parsed) = SubmitBody::parse(&format!("run {line}")).expect("run body")
        else {
            panic!("wrong verb");
        };
        assert_eq!(parsed, spec);

        let body = format!(
            "restore tel_seq={:016x} migrations=3 spec={}:{line} snapshot={}:{}",
            0x42u64,
            line.len(),
            7,
            "{\"x\":1}"
        );
        let SubmitBody::Restore {
            spec: rspec,
            tel_seq,
            migrations,
            snapshot_json,
        } = SubmitBody::parse(&body).expect("restore body")
        else {
            panic!("wrong verb");
        };
        assert_eq!(rspec, spec);
        assert_eq!(tel_seq, 0x42);
        assert_eq!(migrations, 3);
        assert_eq!(snapshot_json, "{\"x\":1}");
        assert!(SubmitBody::parse("launch x").is_err());
    }
}
