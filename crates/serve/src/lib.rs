//! Marsit-as-a-service: a sharded multi-job scheduler.
//!
//! This crate turns the single-run training simulator into a job server.
//! Clients submit [`JobSpec`]s (model proxy, topology, full-precision
//! period `K`, fault plan, seed, round budget); the [`JobServer`] shards
//! them across a fixed pool of worker threads, each of which owns its jobs
//! and drives them round-by-round through the step API so any job can be
//! preempted — or migrated to another shard — at a round boundary.
//!
//! Serving throughput comes from three mechanisms, none of which is allowed
//! to change a single output bit:
//!
//! - **Workspace pools** ([`WorkspacePool`]): round workspaces released by
//!   finishing jobs are adopted by the next job of the same shape
//!   (keyed by model dimension, worker count, and topology class).
//! - **Batched telemetry**: one sink flush per shard tick, not per
//!   job-round; drained bytes are cadence-independent.
//! - **Snapshot migration**: jobs move between shards as serialized
//!   deterministic snapshots; restore is bit-exact and adds no log events.
//!
//! The hard guarantee — asserted by [`verify_outcome`], the scheduler unit
//! tests, the `tests/service.rs` proptest suite, and `bench_service` — is
//! that every job's final report and telemetry log are byte-identical to a
//! solo run of the same spec on a dedicated thread.

pub mod admission;
pub mod journal;
pub mod pool;
pub mod scheduler;
pub mod spec;
pub mod supervisor;

pub use admission::{AdmissionController, AdmissionError, TenantQuota};
pub use journal::{
    crc32, decode_line, encode_record, plan_from_replay, replay_bytes, replay_file,
    verify_recovered, JournalError, JournalRecord, JournalWriter, OutcomeRecord, RecoveredOutcome,
    Replay, ReplayState, ResumeJob, ResumePlan, SnapshotRecord, JOURNAL_SCHEMA,
};
pub use pool::{PoolStats, TopologyClass, WorkspaceKey, WorkspacePool};
pub use scheduler::{
    quantile_ns, report_fingerprint, run_solo, verify_outcome, JobOutcome, JobServer,
    MigrationPolicy, MigrationSample, ServeConfig, ServeReport, ServerHandle, ShardSummary,
};
pub use spec::{parse_queue, JobSpec, QueueDiagnostic, DEFAULT_TENANT};
pub use supervisor::{
    shard_worker_main, SupervisorConfig, SupervisorError, SupervisorHandle, SupervisorReport,
};
