//! Spec-driven admission control: per-tenant token buckets and
//! backpressure.
//!
//! The server front door decides, *before* a [`JobSpec`] touches a shard
//! or the journal, whether the submitting tenant may run it now. Two
//! budgets apply per tenant:
//!
//! - **job slots** — a cap on concurrently in-flight jobs, released when a
//!   job completes;
//! - **round budget** — a token bucket in units of training rounds
//!   (capacity `round_budget`, refilled at `rounds_per_sec`), debited by
//!   `spec.rounds` at admission. A 100-round job costs ten times what a
//!   10-round job costs, so one tenant cannot starve the shards with a
//!   few enormous submissions while staying under its job-slot cap.
//!
//! On top of tenant quotas sits a server-wide bounded queue: at most
//! `queue_cap` jobs in flight across all tenants. Every rejection is a
//! typed [`AdmissionError`] carrying a `retry_after_ms` hint — admission
//! **never panics**, and the CLI renders rejections as per-line
//! diagnostics with a nonzero exit code.
//!
//! Time is passed in explicitly (`now_ms`) so refill behavior is exactly
//! testable; the CLI feeds it a monotonic clock.

use std::collections::HashMap;
use std::fmt;

use crate::spec::JobSpec;

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Maximum concurrently in-flight jobs (0 = reject everything).
    pub max_in_flight: usize,
    /// Round-bucket capacity: the largest burst of rounds admissible at
    /// once. A spec with `rounds` above this can never be admitted.
    pub round_budget: f64,
    /// Bucket refill rate, rounds per second.
    pub rounds_per_sec: f64,
}

impl TenantQuota {
    /// Effectively-unlimited quota (the default for unlisted tenants).
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            max_in_flight: usize::MAX,
            round_budget: f64::INFINITY,
            rounds_per_sec: f64::INFINITY,
        }
    }
}

/// Fallback retry hint when the wait is not computable from a refill rate
/// (job-slot and queue-cap rejections clear when some job finishes, which
/// admission cannot predict).
const RETRY_HINT_MS: u64 = 250;

/// Typed admission rejections. Every variant carries `retry_after_ms`:
/// when to retry (`u64::MAX` = never; the spec can never be admitted
/// under the current quota).
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The tenant is at its concurrent-job cap.
    TenantJobsExceeded {
        /// Offending tenant.
        tenant: String,
        /// Jobs the tenant has in flight.
        in_flight: usize,
        /// The tenant's cap.
        limit: usize,
        /// Suggested retry delay.
        retry_after_ms: u64,
    },
    /// The tenant's round bucket cannot cover the spec's round budget.
    RoundBudgetExhausted {
        /// Offending tenant.
        tenant: String,
        /// Rounds the spec asked for.
        requested: usize,
        /// Rounds currently in the bucket.
        available: f64,
        /// Time until the bucket holds `requested` rounds (`u64::MAX`
        /// when `requested` exceeds the bucket capacity outright).
        retry_after_ms: u64,
    },
    /// The server-wide bounded queue is full (backpressure).
    QueueFull {
        /// Jobs in flight across all tenants.
        in_flight: usize,
        /// The server-wide cap.
        cap: usize,
        /// Suggested retry delay.
        retry_after_ms: u64,
    },
}

impl AdmissionError {
    /// The rejection's retry hint, milliseconds.
    #[must_use]
    pub fn retry_after_ms(&self) -> u64 {
        match self {
            Self::TenantJobsExceeded { retry_after_ms, .. }
            | Self::RoundBudgetExhausted { retry_after_ms, .. }
            | Self::QueueFull { retry_after_ms, .. } => *retry_after_ms,
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TenantJobsExceeded {
                tenant,
                in_flight,
                limit,
                retry_after_ms,
            } => write!(
                f,
                "tenant {tenant:?} is at its job cap ({in_flight}/{limit} in flight); \
                 retry in {retry_after_ms}ms"
            ),
            Self::RoundBudgetExhausted {
                tenant,
                requested,
                available,
                retry_after_ms,
            } => {
                if *retry_after_ms == u64::MAX {
                    write!(
                        f,
                        "tenant {tenant:?} round budget can never cover {requested} rounds \
                         (bucket capacity {available:.0})"
                    )
                } else {
                    write!(
                        f,
                        "tenant {tenant:?} round budget exhausted ({available:.1} of \
                         {requested} rounds available); retry in {retry_after_ms}ms"
                    )
                }
            }
            Self::QueueFull {
                in_flight,
                cap,
                retry_after_ms,
            } => write!(
                f,
                "server queue full ({in_flight}/{cap} jobs in flight); \
                 retry in {retry_after_ms}ms"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug)]
struct TenantState {
    in_flight: usize,
    tokens: f64,
    last_refill_ms: u64,
}

/// The admission controller: tenant quotas plus the server-wide bounded
/// queue. Deterministic given the `now_ms` values fed to it.
#[derive(Debug, Default)]
pub struct AdmissionController {
    quotas: HashMap<String, TenantQuota>,
    default_quota: Option<TenantQuota>,
    state: HashMap<String, TenantState>,
    queue_cap: Option<usize>,
    total_in_flight: usize,
    admitted: u64,
    rejected: u64,
}

impl AdmissionController {
    /// A controller that admits everything (no quotas, unbounded queue).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps total in-flight jobs across all tenants (backpressure).
    pub fn set_queue_cap(&mut self, cap: usize) {
        self.queue_cap = Some(cap);
    }

    /// Sets `tenant`'s quota. The bucket starts full.
    pub fn set_quota(&mut self, tenant: impl Into<String>, quota: TenantQuota) {
        self.quotas.insert(tenant.into(), quota);
    }

    /// Quota applied to tenants without an explicit [`Self::set_quota`]
    /// entry (default: unlimited).
    pub fn set_default_quota(&mut self, quota: TenantQuota) {
        self.default_quota = Some(quota);
    }

    fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.quotas
            .get(tenant)
            .copied()
            .or(self.default_quota)
            .unwrap_or_else(TenantQuota::unlimited)
    }

    /// Decides whether `spec` may run now. On `Ok`, the job-slot and
    /// round tokens are debited; pair every admitted job with exactly one
    /// [`Self::on_complete`].
    ///
    /// # Errors
    ///
    /// A typed [`AdmissionError`]; the controller's state is unchanged on
    /// rejection.
    pub fn admit(&mut self, spec: &JobSpec, now_ms: u64) -> Result<(), AdmissionError> {
        if let Some(cap) = self.queue_cap {
            if self.total_in_flight >= cap {
                self.rejected += 1;
                return Err(AdmissionError::QueueFull {
                    in_flight: self.total_in_flight,
                    cap,
                    retry_after_ms: RETRY_HINT_MS,
                });
            }
        }
        let quota = self.quota_for(&spec.tenant);
        let state = self
            .state
            .entry(spec.tenant.clone())
            .or_insert(TenantState {
                in_flight: 0,
                tokens: quota.round_budget,
                last_refill_ms: now_ms,
            });
        // Refill before judging, so a long-idle tenant starts full.
        if quota.rounds_per_sec.is_finite() && now_ms > state.last_refill_ms {
            let dt_s = (now_ms - state.last_refill_ms) as f64 / 1e3;
            state.tokens = (state.tokens + dt_s * quota.rounds_per_sec).min(quota.round_budget);
        }
        state.last_refill_ms = now_ms;

        if state.in_flight >= quota.max_in_flight {
            self.rejected += 1;
            return Err(AdmissionError::TenantJobsExceeded {
                tenant: spec.tenant.clone(),
                in_flight: state.in_flight,
                limit: quota.max_in_flight,
                retry_after_ms: RETRY_HINT_MS,
            });
        }
        let requested = spec.rounds as f64;
        if quota.round_budget.is_finite() && state.tokens < requested {
            let retry_after_ms = if requested > quota.round_budget {
                u64::MAX
            } else if quota.rounds_per_sec > 0.0 {
                (((requested - state.tokens) / quota.rounds_per_sec) * 1e3).ceil() as u64
            } else {
                u64::MAX
            };
            let available = if retry_after_ms == u64::MAX && requested > quota.round_budget {
                quota.round_budget
            } else {
                state.tokens
            };
            self.rejected += 1;
            return Err(AdmissionError::RoundBudgetExhausted {
                tenant: spec.tenant.clone(),
                requested: spec.rounds,
                available,
                retry_after_ms,
            });
        }
        if quota.round_budget.is_finite() {
            state.tokens -= requested;
        }
        state.in_flight += 1;
        self.total_in_flight += 1;
        self.admitted += 1;
        Ok(())
    }

    /// Releases the job slot an admitted job held. Round tokens are *not*
    /// refunded — the work was done; only the refill rate earns them back.
    pub fn on_complete(&mut self, tenant: &str) {
        if let Some(state) = self.state.get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
        self.total_in_flight = self.total_in_flight.saturating_sub(1);
    }

    /// `(admitted, rejected)` counters.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.admitted, self.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_models::Workload;
    use marsit_simnet::Topology;

    fn spec(name: &str, tenant: &str, rounds: usize) -> JobSpec {
        let mut s = JobSpec::new(name, Workload::AlexNetMnist, Topology::ring(4));
        s.tenant = tenant.to_string();
        s.rounds = rounds;
        s
    }

    #[test]
    fn job_slots_cap_and_release() {
        let mut ctrl = AdmissionController::new();
        ctrl.set_quota(
            "t",
            TenantQuota {
                max_in_flight: 2,
                round_budget: f64::INFINITY,
                rounds_per_sec: f64::INFINITY,
            },
        );
        ctrl.admit(&spec("a", "t", 5), 0).unwrap();
        ctrl.admit(&spec("b", "t", 5), 0).unwrap();
        let err = ctrl.admit(&spec("c", "t", 5), 0).unwrap_err();
        assert!(matches!(
            err,
            AdmissionError::TenantJobsExceeded {
                in_flight: 2,
                limit: 2,
                ..
            }
        ));
        assert!(err.retry_after_ms() > 0);
        // Other tenants are unaffected; completion frees the slot.
        ctrl.admit(&spec("d", "other", 5), 0).unwrap();
        ctrl.on_complete("t");
        ctrl.admit(&spec("c", "t", 5), 0).unwrap();
        assert_eq!(ctrl.counters(), (4, 1));
    }

    #[test]
    fn round_bucket_debits_and_refills_deterministically() {
        let mut ctrl = AdmissionController::new();
        ctrl.set_quota(
            "t",
            TenantQuota {
                max_in_flight: usize::MAX,
                round_budget: 20.0,
                rounds_per_sec: 10.0,
            },
        );
        ctrl.admit(&spec("a", "t", 15), 1_000).unwrap();
        // 5 tokens left; a 10-round job must wait (10-5)/10 = 500ms.
        let err = ctrl.admit(&spec("b", "t", 10), 1_000).unwrap_err();
        let AdmissionError::RoundBudgetExhausted { retry_after_ms, .. } = err else {
            panic!("expected budget rejection, got {err:?}");
        };
        assert_eq!(retry_after_ms, 500);
        // Exactly 500ms later the bucket covers it.
        ctrl.admit(&spec("b", "t", 10), 1_500).unwrap();
        // A spec over bucket capacity can never be admitted.
        let err = ctrl.admit(&spec("huge", "t", 21), 100_000).unwrap_err();
        assert_eq!(err.retry_after_ms(), u64::MAX);
    }

    #[test]
    fn queue_cap_applies_backpressure_across_tenants() {
        let mut ctrl = AdmissionController::new();
        ctrl.set_queue_cap(2);
        ctrl.admit(&spec("a", "t1", 5), 0).unwrap();
        ctrl.admit(&spec("b", "t2", 5), 0).unwrap();
        assert!(matches!(
            ctrl.admit(&spec("c", "t3", 5), 0),
            Err(AdmissionError::QueueFull {
                in_flight: 2,
                cap: 2,
                ..
            })
        ));
        ctrl.on_complete("t1");
        ctrl.admit(&spec("c", "t3", 5), 0).unwrap();
    }

    #[test]
    fn rejections_display_and_never_panic() {
        let mut ctrl = AdmissionController::new();
        ctrl.set_default_quota(TenantQuota {
            max_in_flight: 0,
            round_budget: 0.0,
            rounds_per_sec: 0.0,
        });
        let err = ctrl.admit(&spec("a", "anyone", 1), 0).unwrap_err();
        assert!(err.to_string().contains("job cap"));
        // Unknown-tenant completion is a no-op, not a panic.
        ctrl.on_complete("nobody");
    }
}
