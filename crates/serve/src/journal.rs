//! The `marsit-journal/1` submission journal: crash-safe serving state.
//!
//! The journal is the durability half of the serving determinism contract.
//! Every accepted [`JobSpec`], every periodic job snapshot (the same
//! `marsit-checkpoint/1` JSON the migration path ships between shards),
//! every migration, and every completed outcome is appended as one
//! CRC-guarded ASCII line; after a `kill -9`, replaying the journal yields
//! a [`ResumePlan`] from which the server reproduces every job's report
//! and telemetry log byte-for-byte.
//!
//! One record per line, with header fields in the same hex-bit-pattern
//! discipline as `marsit-checkpoint/1` and `marsit-wire/1`:
//!
//! ```text
//! marsit-journal/1 <seq:16hex> <kind> <crc32:8hex> t<body-escaped>\n
//! ```
//!
//! `seq` is the strictly-increasing record index, `kind` is one of
//! `submit`/`snap`/`migrate`/`outcome`, and `crc32` is the IEEE CRC-32 of
//! the raw (unescaped) body bytes. The body is UTF-8 text with `\`, `\n`,
//! and `\r` escaped as `\\`, `\n`, `\r` (two characters each), so a record
//! is always exactly one `\n`-terminated line no matter what a telemetry
//! log contains. Snapshot bodies run to megabytes and are dominated by
//! payloads that are *already* hex bit patterns (`marsit-checkpoint/1`
//! JSON), so the body layer escapes rather than re-hex-encodes: the
//! escaped form is byte-for-byte the raw body except at the three escaped
//! characters, instead of twice its size. Torn-write detection stays
//! trivial: replay stops at the first line that is truncated, fails its
//! CRC, or breaks the sequence, and reports the byte offset the valid
//! prefix ends at so the writer can truncate and resume appending.
//!
//! Durability batching: [`JournalWriter::append`] enqueues the encoded
//! line to a dedicated writer thread; [`JournalWriter::commit`] requests a
//! group commit (write + `fsync`) without blocking the serving thread —
//! consecutive commit requests that pile up behind a large write coalesce
//! into one `fsync`. The scheduler commits at shard-tick boundaries and
//! immediately after each accepted submission. Dropping the writer drains
//! the queue and syncs, so a clean shutdown is always fully durable; after
//! a crash, whatever suffix had not reached the disk is exactly the torn
//! tail the replay path truncates — recovery re-derives those rounds
//! byte-identically from the last durable snapshot (or from the spec).

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::scheduler::{report_fingerprint, run_solo};
use crate::spec::JobSpec;

/// Schema tag at the start of every journal record.
pub const JOURNAL_SCHEMA: &str = "marsit-journal/1";

/// IEEE CRC-32 (the ubiquitous reflected 0xEDB88320 polynomial),
/// slicing-by-8, dependency-free. Snapshot records put megabytes through
/// this per journal append, so the byte-at-a-time loop (one table lookup
/// per byte, serialized through the crc register) is worth widening: eight
/// tables let each iteration fold in 8 bytes with independent lookups.
/// Check value: `crc32(b"123456789") == 0xCBF4_3926`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0u32, bytes)
}

/// Streaming form of [`crc32`]: folds `bytes` into a raw (pre-inverted)
/// CRC state. `!crc32_update(!0, b)` equals `crc32(b)`, and chaining
/// updates over slices equals one update over their concatenation — the
/// encoder uses this to checksum a record body without materializing it.
fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    const fn tables() -> [[u32; 256]; 8] {
        let mut t = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[0][i] = c;
            i += 1;
        }
        let mut slice = 1;
        while slice < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = t[slice - 1][i];
                t[slice][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
                i += 1;
            }
            slice += 1;
        }
        t
    }
    static TABLES: [[u32; 256]; 8] = tables();
    let mut crc = state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// A periodic (or pre-migration) durability point for one in-flight job:
/// everything a fresh process needs to resume it bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRecord {
    /// Job name.
    pub name: String,
    /// Shard hosting the job when the snapshot was taken.
    pub shard: usize,
    /// Migrations survived so far.
    pub migrations: u32,
    /// Rounds completed (mirrors the snapshot JSON's own `round`).
    pub round: u64,
    /// The job's telemetry sequence floor at the snapshot: hop events
    /// carry absolute sequence numbers, so a resumed job's fresh sink
    /// must continue numbering here for byte-identical logs.
    pub tel_seq: u64,
    /// The `marsit-checkpoint/1` snapshot JSON.
    pub snapshot_json: String,
    /// The full telemetry log accumulated up to (and flushed at) the
    /// snapshot point.
    pub log: String,
}

/// A journaled final outcome: the report's exact `Debug` rendering (which
/// is the bit-exactness fingerprint) plus the complete telemetry log.
/// [`marsit_trainsim::TrainReport`] itself cannot cross a process or crash
/// boundary, so this is the durable — and wire — form of a finished job.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeRecord {
    /// Job name.
    pub name: String,
    /// Migrations survived.
    pub migrations: u32,
    /// Every shard that hosted the job, in order.
    pub shard_path: Vec<usize>,
    /// `format!("{report:?}")` of the final [`marsit_trainsim::TrainReport`].
    pub report_debug: String,
    /// Concatenated JSONL telemetry log.
    pub log: String,
}

/// One `marsit-journal/1` record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A job was accepted into the server (durable before it runs).
    Submit {
        /// The accepted spec.
        spec: JobSpec,
    },
    /// A periodic durability snapshot of an in-flight job.
    Snapshot(SnapshotRecord),
    /// A job moved between shards (audit trail; resume state comes from
    /// the snapshot records that bracket it).
    Migrate {
        /// Job name.
        name: String,
        /// Source shard.
        from: usize,
        /// Destination shard.
        to: usize,
    },
    /// A job finished.
    Outcome(OutcomeRecord),
}

impl JournalRecord {
    fn kind_tag(&self) -> &'static str {
        match self {
            Self::Submit { .. } => "submit",
            Self::Snapshot(_) => "snap",
            Self::Migrate { .. } => "migrate",
            Self::Outcome(_) => "outcome",
        }
    }

    /// The job name the record is about.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Self::Submit { spec } => &spec.name,
            Self::Snapshot(s) => &s.name,
            Self::Migrate { name, .. } => name,
            Self::Outcome(o) => &o.name,
        }
    }
}

/// Typed journal failures. Decoding and replay never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The line does not start with `marsit-journal/…`.
    BadMagic {
        /// What was found instead.
        found: String,
    },
    /// The schema tag names a version this decoder does not speak.
    UnsupportedVersion {
        /// The full schema tag found.
        found: String,
    },
    /// The line ended before all five fields were present (a torn write).
    Truncated,
    /// The record kind is unknown.
    UnknownKind {
        /// The unrecognized kind tag.
        found: String,
    },
    /// A fixed-width hex field is malformed.
    BadHex {
        /// Which field.
        field: &'static str,
    },
    /// The body bytes do not match the recorded CRC (a torn or corrupted
    /// write).
    BadCrc {
        /// CRC stored in the record.
        recorded: u32,
        /// CRC of the bytes actually present.
        actual: u32,
    },
    /// The body decoded but its inner grammar is malformed.
    BadBody {
        /// What is wrong with it.
        reason: String,
    },
    /// A spec cannot be rendered as a journal line (see
    /// [`JobSpec::to_line`]).
    Unrepresentable {
        /// Why.
        reason: String,
    },
    /// The backing file failed on the writer thread; the journal is
    /// unusable from here on.
    Io {
        /// The latched I/O error message.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { found } => write!(f, "bad journal magic {found:?}"),
            Self::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported journal version {found:?} (want {JOURNAL_SCHEMA:?})"
                )
            }
            Self::Truncated => write!(f, "truncated journal record"),
            Self::UnknownKind { found } => write!(f, "unknown journal record kind {found:?}"),
            Self::BadHex { field } => write!(f, "malformed hex in journal field {field}"),
            Self::BadCrc { recorded, actual } => {
                write!(
                    f,
                    "journal CRC mismatch: recorded {recorded:08x}, actual {actual:08x}"
                )
            }
            Self::BadBody { reason } => write!(f, "bad journal record body: {reason}"),
            Self::Unrepresentable { reason } => {
                write!(f, "unrepresentable journal record: {reason}")
            }
            Self::Io { message } => write!(f, "journal I/O failure: {message}"),
        }
    }
}

impl std::error::Error for JournalError {}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

fn push_hex(out: &mut String, bits: u64, nibbles: u32) {
    for i in (0..nibbles).rev() {
        out.push(HEX_DIGITS[((bits >> (4 * i)) & 0xF) as usize] as char);
    }
}

/// Appends the body with `\`, `\n`, `\r` escaped as `\\`, `\n`, `\r`, so
/// the record stays a single line. Clean runs copy in bulk: all three
/// escaped bytes are ASCII and therefore always `char` boundaries. The
/// scan is kept free of side effects so it vectorizes; snapshot bodies
/// push megabytes through here with typically zero escapes.
fn push_escaped_body(out: &mut String, body: &str) {
    let mut rest = body;
    loop {
        let Some(i) = rest
            .bytes()
            .position(|b| matches!(b, b'\\' | b'\n' | b'\r'))
        else {
            out.push_str(rest);
            return;
        };
        out.push_str(&rest[..i]);
        out.push_str(match rest.as_bytes()[i] {
            b'\\' => "\\\\",
            b'\n' => "\\n",
            _ => "\\r",
        });
        rest = &rest[i + 1..];
    }
}

/// Reverses [`push_escaped_body`]. A trailing lone `\` or an unknown
/// escape is a torn or corrupt record.
fn unescape_body(escaped: &str) -> Result<String, JournalError> {
    let bytes = escaped.as_bytes();
    let mut out = String::with_capacity(escaped.len());
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'\\' {
            i += 1;
            continue;
        }
        out.push_str(&escaped[start..i]);
        let unescaped = match bytes.get(i + 1) {
            Some(b'\\') => '\\',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            _ => {
                return Err(JournalError::BadBody {
                    reason: "bad or truncated body escape".to_string(),
                })
            }
        };
        out.push(unescaped);
        i += 2;
        start = i;
    }
    out.push_str(&escaped[start..]);
    Ok(out)
}

fn parse_hex_u64(s: &str, field: &'static str) -> Result<u64, JournalError> {
    if s.len() != 16 && s.len() != 8 {
        return Err(JournalError::BadHex { field });
    }
    u64::from_str_radix(s, 16).map_err(|_| JournalError::BadHex { field })
}

/// Encodes one record as its wire line (trailing `\n` included).
///
/// # Errors
///
/// [`JournalError::Unrepresentable`] when a submit record's spec cannot be
/// rendered as a queue line (see [`JobSpec::to_line`]).
pub fn encode_record(seq: u64, record: &JournalRecord) -> Result<String, JournalError> {
    // Two streaming passes over the body pieces instead of materializing
    // the body: snapshot payloads run to megabytes, and the intermediate
    // String costs an allocation plus a full extra copy per record. Pass 1
    // folds the raw bytes into the CRC (chained updates equal one update
    // over the concatenation); pass 2 escapes each piece straight into the
    // wire line (escaping is byte-local, so per-piece escaping equals
    // escaping the concatenation).
    let mut crc = !0u32;
    let mut body_len = 0usize;
    with_body_pieces(record, |piece| {
        crc = crc32_update(crc, piece.as_bytes());
        body_len += piece.len();
    })?;
    let mut line = String::with_capacity(JOURNAL_SCHEMA.len() + 48 + body_len);
    line.push_str(JOURNAL_SCHEMA);
    line.push(' ');
    push_hex(&mut line, seq, 16);
    line.push(' ');
    line.push_str(record.kind_tag());
    line.push(' ');
    push_hex(&mut line, u64::from(!crc), 8);
    line.push_str(" t");
    with_body_pieces(record, |piece| push_escaped_body(&mut line, piece))?;
    line.push('\n');
    Ok(line)
}

/// Feeds the record body to `emit` as an ordered sequence of raw
/// (unescaped) pieces whose concatenation is the body. Large payload
/// fields are passed through by reference; only the small framing text
/// around them is formatted.
fn with_body_pieces(
    record: &JournalRecord,
    mut emit: impl FnMut(&str),
) -> Result<(), JournalError> {
    match record {
        JournalRecord::Submit { spec } => {
            let queue_line = spec
                .to_line()
                .map_err(|reason| JournalError::Unrepresentable { reason })?;
            emit(&queue_line);
        }
        JournalRecord::Snapshot(s) => {
            let mut head = format!(
                "name={} shard={} migrations={} round={} tel_seq=",
                s.name, s.shard, s.migrations, s.round
            );
            push_hex(&mut head, s.tel_seq, 16);
            head.push_str(" snapshot=");
            head.push_str(&s.snapshot_json.len().to_string());
            head.push(':');
            emit(&head);
            emit(&s.snapshot_json);
            emit(&format!(" log={}:", s.log.len()));
            emit(&s.log);
        }
        JournalRecord::Migrate { name, from, to } => {
            emit(&format!("name={name} from={from} to={to}"));
        }
        JournalRecord::Outcome(o) => {
            let path = if o.shard_path.is_empty() {
                "-".to_string()
            } else {
                o.shard_path
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            emit(&format!(
                "name={} migrations={} path={} report={}:",
                o.name,
                o.migrations,
                path,
                o.report_debug.len()
            ));
            emit(&o.report_debug);
            emit(&format!(" log={}:", o.log.len()));
            emit(&o.log);
        }
    }
    Ok(())
}

/// Decodes one journal line into `(seq, record)`.
///
/// # Errors
///
/// A typed [`JournalError`] for any malformed input; never panics.
pub fn decode_line(line: &str) -> Result<(u64, JournalRecord), JournalError> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let mut fields = line.splitn(5, ' ');
    let magic = fields.next().unwrap_or("");
    if magic != JOURNAL_SCHEMA {
        return if magic.starts_with("marsit-journal/") {
            Err(JournalError::UnsupportedVersion {
                found: magic.to_string(),
            })
        } else {
            Err(JournalError::BadMagic {
                found: magic.chars().take(32).collect(),
            })
        };
    }
    let seq = parse_hex_u64(fields.next().ok_or(JournalError::Truncated)?, "seq")?;
    let kind = fields.next().ok_or(JournalError::Truncated)?.to_string();
    let crc_text = fields.next().ok_or(JournalError::Truncated)?;
    if crc_text.len() != 8 {
        return Err(JournalError::BadHex { field: "crc" });
    }
    let recorded = parse_hex_u64(crc_text, "crc")? as u32;
    let body_escaped = fields
        .next()
        .ok_or(JournalError::Truncated)?
        .strip_prefix('t')
        .ok_or(JournalError::BadBody {
            reason: "missing t payload tag".to_string(),
        })?;
    let body = unescape_body(body_escaped)?;
    let actual = crc32(body.as_bytes());
    if actual != recorded {
        return Err(JournalError::BadCrc { recorded, actual });
    }
    let record = decode_body(&kind, &body)?;
    Ok((seq, record))
}

/// `len:payload` segment parser: returns `(payload, rest)`. Shared with
/// the supervisor wire bodies, which embed the same free-text segments.
pub(crate) fn take_len_prefixed<'a>(
    s: &'a str,
    field: &str,
) -> Result<(&'a str, &'a str), JournalError> {
    let (len, rest) = s.split_once(':').ok_or_else(|| JournalError::BadBody {
        reason: format!("{field}: missing length prefix"),
    })?;
    let len: usize = len.parse().map_err(|_| JournalError::BadBody {
        reason: format!("{field}: bad length {len:?}"),
    })?;
    let payload = rest.get(..len).ok_or_else(|| JournalError::BadBody {
        reason: format!("{field}: body shorter than declared length {len}"),
    })?;
    Ok((payload, &rest[len..]))
}

fn kv<'a>(token: &'a str, key: &str) -> Result<&'a str, JournalError> {
    token
        .strip_prefix(key)
        .and_then(|t| t.strip_prefix('='))
        .ok_or_else(|| JournalError::BadBody {
            reason: format!("expected {key}=..., found {token:?}"),
        })
}

fn parse_usize(s: &str, field: &str) -> Result<usize, JournalError> {
    s.parse().map_err(|_| JournalError::BadBody {
        reason: format!("bad {field}: {s:?}"),
    })
}

fn decode_body(kind: &str, body: &str) -> Result<JournalRecord, JournalError> {
    match kind {
        "submit" => JobSpec::parse_line(body)
            .map(|spec| JournalRecord::Submit { spec })
            .map_err(|reason| JournalError::BadBody { reason }),
        "snap" => {
            let (head, tail) =
                body.split_once(" snapshot=")
                    .ok_or_else(|| JournalError::BadBody {
                        reason: "snap record missing snapshot segment".to_string(),
                    })?;
            let mut tokens = head.split_whitespace();
            let mut next = |key: &'static str| {
                tokens
                    .next()
                    .ok_or(JournalError::Truncated)
                    .and_then(|t| kv(t, key).map(str::to_string))
            };
            let name = next("name")?;
            let shard = parse_usize(&next("shard")?, "shard")?;
            let migrations = parse_usize(&next("migrations")?, "migrations")? as u32;
            let round = parse_usize(&next("round")?, "round")? as u64;
            let tel_seq = parse_hex_u64(&next("tel_seq")?, "tel_seq")?;
            let (snapshot_json, tail) = take_len_prefixed(tail, "snapshot")?;
            let tail = tail
                .strip_prefix(" log=")
                .ok_or_else(|| JournalError::BadBody {
                    reason: "snap record missing log segment".to_string(),
                })?;
            let (log, rest) = take_len_prefixed(tail, "log")?;
            if !rest.is_empty() {
                return Err(JournalError::BadBody {
                    reason: format!("trailing bytes after snap record: {rest:?}"),
                });
            }
            Ok(JournalRecord::Snapshot(SnapshotRecord {
                name,
                shard,
                migrations,
                round,
                tel_seq,
                snapshot_json: snapshot_json.to_string(),
                log: log.to_string(),
            }))
        }
        "migrate" => {
            let mut tokens = body.split_whitespace();
            let mut next = |key: &'static str| {
                tokens
                    .next()
                    .ok_or(JournalError::Truncated)
                    .and_then(|t| kv(t, key).map(str::to_string))
            };
            let name = next("name")?;
            let from = parse_usize(&next("from")?, "from")?;
            let to = parse_usize(&next("to")?, "to")?;
            Ok(JournalRecord::Migrate { name, from, to })
        }
        "outcome" => {
            let (head, tail) =
                body.split_once(" report=")
                    .ok_or_else(|| JournalError::BadBody {
                        reason: "outcome record missing report segment".to_string(),
                    })?;
            let mut tokens = head.split_whitespace();
            let mut next = |key: &'static str| {
                tokens
                    .next()
                    .ok_or(JournalError::Truncated)
                    .and_then(|t| kv(t, key).map(str::to_string))
            };
            let name = next("name")?;
            let migrations = parse_usize(&next("migrations")?, "migrations")? as u32;
            let path_text = next("path")?;
            let shard_path = if path_text == "-" {
                Vec::new()
            } else {
                path_text
                    .split(',')
                    .map(|p| parse_usize(p, "path"))
                    .collect::<Result<Vec<_>, _>>()?
            };
            let (report_debug, tail) = take_len_prefixed(tail, "report")?;
            let tail = tail
                .strip_prefix(" log=")
                .ok_or_else(|| JournalError::BadBody {
                    reason: "outcome record missing log segment".to_string(),
                })?;
            let (log, rest) = take_len_prefixed(tail, "log")?;
            if !rest.is_empty() {
                return Err(JournalError::BadBody {
                    reason: format!("trailing bytes after outcome record: {rest:?}"),
                });
            }
            Ok(JournalRecord::Outcome(OutcomeRecord {
                name,
                migrations,
                shard_path,
                report_debug: report_debug.to_string(),
                log: log.to_string(),
            }))
        }
        other => Err(JournalError::UnknownKind {
            found: other.to_string(),
        }),
    }
}

/// The result of scanning a journal byte stream: the decodable prefix.
#[derive(Debug)]
pub struct Replay {
    /// Every record in the valid prefix, in journal order.
    pub records: Vec<(u64, JournalRecord)>,
    /// Byte length of the valid prefix — a resuming writer truncates the
    /// file here before appending.
    pub valid_len: usize,
    /// The sequence number the next appended record must carry.
    pub next_seq: u64,
    /// Why scanning stopped before the end of the input, if it did (a
    /// torn tail is expected after a crash, not an error).
    pub torn: Option<String>,
}

/// Scans journal bytes, decoding records until the first torn or corrupt
/// line. Never fails: a journal truncated at *any* byte yields the longest
/// valid prefix (replay of which is a valid resume state).
#[must_use]
pub fn replay_bytes(bytes: &[u8]) -> Replay {
    let mut records = Vec::new();
    let mut valid_len = 0usize;
    let mut next_seq = 0u64;
    let mut torn = None;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            torn = Some("unterminated final line".to_string());
            break;
        };
        let line_bytes = &bytes[offset..offset + nl + 1];
        let line = match std::str::from_utf8(line_bytes) {
            Ok(l) => l,
            Err(e) => {
                torn = Some(format!("non-UTF-8 line: {e}"));
                break;
            }
        };
        match decode_line(line) {
            Ok((seq, record)) => {
                if seq != next_seq {
                    torn = Some(format!("sequence break: expected {next_seq}, found {seq}"));
                    break;
                }
                records.push((seq, record));
                next_seq += 1;
                offset += nl + 1;
                valid_len = offset;
            }
            Err(e) => {
                torn = Some(e.to_string());
                break;
            }
        }
    }
    Replay {
        records,
        valid_len,
        next_seq,
        torn,
    }
}

/// Reads and scans a journal file (see [`replay_bytes`]).
///
/// # Errors
///
/// Only on I/O failure opening or reading the file; torn tails are
/// reported inside the [`Replay`], not as errors.
pub fn replay_file(path: &Path) -> std::io::Result<Replay> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(replay_bytes(&bytes))
}

/// A finished job recovered from the journal (or received over the
/// supervisor wire): everything [`verify_recovered`] needs to prove the
/// crash changed no output bit.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredOutcome {
    /// The spec the job ran under.
    pub spec: JobSpec,
    /// `Debug` fingerprint of the final report.
    pub report_debug: String,
    /// Full telemetry log.
    pub log: String,
    /// Migrations survived.
    pub migrations: u32,
    /// Shards that hosted the job (empty when unknown).
    pub shard_path: Vec<usize>,
}

/// An in-flight job recovered from its last journaled snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeJob {
    /// The spec the job runs under.
    pub spec: JobSpec,
    /// `marsit-checkpoint/1` snapshot JSON to restore from.
    pub snapshot_json: String,
    /// Telemetry log accumulated up to the snapshot.
    pub log: String,
    /// Telemetry sequence floor at the snapshot (see
    /// [`marsit_telemetry::Telemetry::restore_seq_floor`]).
    pub tel_seq: u64,
    /// Migrations survived before the snapshot.
    pub migrations: u32,
}

/// What a restarted server does with each journaled job.
#[derive(Debug, Default)]
pub struct ResumePlan {
    /// Jobs whose outcome record landed: nothing to re-run.
    pub completed: Vec<RecoveredOutcome>,
    /// Jobs with a snapshot but no outcome: restore and finish.
    pub resumes: Vec<ResumeJob>,
    /// Jobs submitted but never snapshotted: run from scratch.
    pub fresh: Vec<JobSpec>,
    /// Names of snap/migrate/outcome records whose submit record is
    /// missing (possible only with a corrupted head; surfaced, not
    /// silently dropped).
    pub orphaned: Vec<String>,
}

/// Replay state: a pure, idempotent fold over journal records. Applying
/// the same journal twice yields the same [`ResumePlan`] as applying it
/// once — the property the recovery proptests pin.
#[derive(Debug, Default)]
pub struct ReplayState {
    jobs: BTreeMap<String, JobReplay>,
    orphaned: Vec<String>,
}

#[derive(Debug, Default)]
struct JobReplay {
    spec: Option<JobSpec>,
    snap: Option<SnapshotRecord>,
    outcome: Option<OutcomeRecord>,
}

impl ReplayState {
    /// Empty state (no journal yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record in. Idempotent: re-applying a record the state
    /// already reflects changes nothing.
    pub fn apply(&mut self, record: &JournalRecord) {
        match record {
            JournalRecord::Submit { spec } => {
                let job = self.jobs.entry(spec.name.clone()).or_default();
                if job.spec.is_none() {
                    job.spec = Some(spec.clone());
                }
            }
            JournalRecord::Snapshot(s) => {
                if !self.jobs.contains_key(&s.name) {
                    self.note_orphan(&s.name);
                    return;
                }
                let job = self.jobs.entry(s.name.clone()).or_default();
                // Later snapshots supersede earlier ones; an equal round
                // is the same snapshot re-applied (idempotence).
                if job.snap.as_ref().is_none_or(|cur| s.round >= cur.round) {
                    job.snap = Some(s.clone());
                }
            }
            JournalRecord::Migrate { name, .. } => {
                // Audit trail only: resume state comes from snapshots, so
                // replaying a migrate record twice is trivially idempotent.
                if !self.jobs.contains_key(name) {
                    self.note_orphan(name);
                }
            }
            JournalRecord::Outcome(o) => {
                if !self.jobs.contains_key(&o.name) {
                    self.note_orphan(&o.name);
                    return;
                }
                let job = self.jobs.entry(o.name.clone()).or_default();
                if job.outcome.is_none() {
                    job.outcome = Some(o.clone());
                }
            }
        }
    }

    fn note_orphan(&mut self, name: &str) {
        if !self.orphaned.iter().any(|n| n == name) {
            self.orphaned.push(name.to_string());
        }
    }

    /// The resume plan for the current state, jobs sorted by name.
    #[must_use]
    pub fn plan(&self) -> ResumePlan {
        let mut plan = ResumePlan {
            orphaned: self.orphaned.clone(),
            ..ResumePlan::default()
        };
        for (name, job) in &self.jobs {
            let Some(spec) = &job.spec else {
                plan.orphaned.push(name.clone());
                continue;
            };
            if let Some(outcome) = &job.outcome {
                plan.completed.push(RecoveredOutcome {
                    spec: spec.clone(),
                    report_debug: outcome.report_debug.clone(),
                    log: outcome.log.clone(),
                    migrations: outcome.migrations,
                    shard_path: outcome.shard_path.clone(),
                });
            } else if let Some(snap) = &job.snap {
                plan.resumes.push(ResumeJob {
                    spec: spec.clone(),
                    snapshot_json: snap.snapshot_json.clone(),
                    log: snap.log.clone(),
                    tel_seq: snap.tel_seq,
                    migrations: snap.migrations,
                });
            } else {
                plan.fresh.push(spec.clone());
            }
        }
        plan
    }
}

/// Folds a scanned [`Replay`] into its [`ResumePlan`].
#[must_use]
pub fn plan_from_replay(replay: &Replay) -> ResumePlan {
    let mut state = ReplayState::new();
    for (_, record) in &replay.records {
        state.apply(record);
    }
    state.plan()
}

/// Checks a recovered outcome against a fresh solo run of its spec — the
/// cross-crash bit-exactness guarantee: the report fingerprint and the
/// full telemetry byte stream of a job that survived a `kill -9` (or came
/// back from a shard subprocess) must match a run that never crashed.
///
/// # Errors
///
/// Returns which artifact diverged.
pub fn verify_recovered(outcome: &RecoveredOutcome) -> Result<(), String> {
    let solo = run_solo(&outcome.spec);
    if outcome.report_debug != report_fingerprint(&solo.report) {
        return Err(format!(
            "job {}: recovered report diverged from solo run\n  recovered: {}\n  solo:      {:?}",
            outcome.spec.name, outcome.report_debug, solo.report
        ));
    }
    if outcome.log != solo.log {
        return Err(format!(
            "job {}: recovered telemetry log diverged from solo run \
             ({} vs {} bytes)",
            outcome.spec.name,
            outcome.log.len(),
            solo.log.len()
        ));
    }
    Ok(())
}

/// Append-only journal writer with group commit (write + `fsync`)
/// batching on a dedicated writer thread. `append` enqueues an encoded
/// line; `commit` requests an `fsync` without blocking (consecutive
/// requests coalesce). Dropping the writer drains the queue and syncs, so
/// a clean shutdown is always fully durable; a crash loses at most the
/// not-yet-synced suffix, which replay truncates as a torn tail.
#[derive(Debug)]
pub struct JournalWriter {
    tx: Option<std::sync::mpsc::SyncSender<WriterMsg>>,
    thread: Option<std::thread::JoinHandle<()>>,
    shared: std::sync::Arc<WriterShared>,
    path: PathBuf,
    next_seq: u64,
    records_appended: u64,
}

enum WriterMsg {
    /// One encoded record line to append.
    Line(String),
    /// Group-commit request: `fsync` everything appended so far.
    Commit,
}

/// Counters and error state shared with the writer thread.
#[derive(Debug)]
struct WriterShared {
    commits: std::sync::atomic::AtomicU64,
    bytes_committed: std::sync::atomic::AtomicU64,
    error: std::sync::Mutex<Option<String>>,
}

/// How many encoded lines may queue between the serving threads and the
/// writer thread before appends block (bounded memory under bursts; disk
/// backpressure instead of unbounded buffering).
const WRITER_QUEUE_DEPTH: usize = 64;

/// Minimum spacing between `fsync`s. Every shard requests a commit at
/// every tick boundary; honoring each request individually makes the
/// writer thread fsync-latency-bound (one barrier per tick per shard).
/// Group commit instead: requests landing inside the window coalesce into
/// the next sync, so the durability window is bounded by this interval
/// (plus write time) while the fsync rate stays bandwidth-bound. A crash
/// inside the window loses only the unsynced suffix, which replay
/// truncates as a torn tail and recovery re-derives byte-identically.
const MIN_SYNC_INTERVAL: std::time::Duration = std::time::Duration::from_millis(20);

fn writer_thread(mut file: File, rx: &std::sync::mpsc::Receiver<WriterMsg>, shared: &WriterShared) {
    use std::sync::atomic::Ordering;
    use std::sync::mpsc::RecvTimeoutError;
    let mut dirty = false;
    let mut failed = false;
    let mut commit_requested = false;
    let mut last_sync = std::time::Instant::now();
    let latch = |e: std::io::Error, failed: &mut bool| {
        *shared.error.lock().expect("journal error lock") = Some(e.to_string());
        *failed = true;
    };
    let apply = |msg: WriterMsg,
                 file: &mut File,
                 dirty: &mut bool,
                 failed: &mut bool,
                 commit_requested: &mut bool| {
        // Past the first failure, drain and discard so senders never
        // wedge on a full queue; the latched error surfaces on the
        // serving side at the next append or commit.
        if *failed {
            return;
        }
        match msg {
            WriterMsg::Line(line) => {
                if let Err(e) = file.write_all(line.as_bytes()) {
                    latch(e, failed);
                    return;
                }
                shared
                    .bytes_committed
                    .fetch_add(line.len() as u64, Ordering::Relaxed);
                *dirty = true;
            }
            WriterMsg::Commit => *commit_requested = *dirty,
        }
    };
    loop {
        // With a commit pending, wait only until the sync window opens;
        // otherwise block until there is work.
        let received = if commit_requested {
            let wait = MIN_SYNC_INTERVAL.saturating_sub(last_sync.elapsed());
            match rx.recv_timeout(wait) {
                Ok(msg) => Some(Some(msg)),
                Err(RecvTimeoutError::Timeout) => Some(None),
                Err(RecvTimeoutError::Disconnected) => None,
            }
        } else {
            rx.recv().ok().map(Some)
        };
        let Some(received) = received else { break };
        if let Some(msg) = received {
            apply(
                msg,
                &mut file,
                &mut dirty,
                &mut failed,
                &mut commit_requested,
            );
            // Batch everything already queued before considering a sync.
            while let Ok(next) = rx.try_recv() {
                apply(
                    next,
                    &mut file,
                    &mut dirty,
                    &mut failed,
                    &mut commit_requested,
                );
            }
        }
        if commit_requested && !failed && last_sync.elapsed() >= MIN_SYNC_INTERVAL {
            match file.sync_data() {
                Ok(()) => {
                    dirty = false;
                    commit_requested = false;
                    last_sync = std::time::Instant::now();
                    shared.commits.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => latch(e, &mut failed),
            }
        }
    }
    // Channel closed (writer dropped): final sync so a clean shutdown is
    // always fully durable.
    if dirty && !failed {
        if let Err(e) = file.sync_data() {
            latch(e, &mut failed);
        } else {
            shared.commits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl JournalWriter {
    fn start(file: File, path: &Path, next_seq: u64) -> Self {
        let shared = std::sync::Arc::new(WriterShared {
            commits: std::sync::atomic::AtomicU64::new(0),
            bytes_committed: std::sync::atomic::AtomicU64::new(0),
            error: std::sync::Mutex::new(None),
        });
        let (tx, rx) = std::sync::mpsc::sync_channel(WRITER_QUEUE_DEPTH);
        let thread_shared = std::sync::Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("marsit-journal".to_string())
            .spawn(move || writer_thread(file, &rx, &thread_shared))
            .expect("spawn journal writer thread");
        Self {
            tx: Some(tx),
            thread: Some(thread),
            shared,
            path: path.to_path_buf(),
            next_seq,
            records_appended: 0,
        }
    }

    /// Creates (truncating) a fresh journal at `path`.
    ///
    /// # Errors
    ///
    /// I/O failure creating the file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::start(file, path, 0))
    }

    /// Reopens a journal after [`replay_file`]: truncates the torn tail
    /// (everything past `replay.valid_len`) and resumes appending with
    /// `replay.next_seq`.
    ///
    /// # Errors
    ///
    /// I/O failure opening, truncating, or seeking.
    pub fn resume(path: &Path, replay: &Replay) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(replay.valid_len as u64)?;
        file.seek(SeekFrom::End(0))?;
        file.sync_data()?;
        Ok(Self::start(file, path, replay.next_seq))
    }

    fn latched_error(&self) -> Option<String> {
        self.shared
            .error
            .lock()
            .expect("journal error lock")
            .clone()
    }

    /// Encodes one record and hands it to the writer thread. Blocks only
    /// when the writer queue is full (64 lines; disk backpressure).
    ///
    /// # Errors
    ///
    /// [`JournalError::Unrepresentable`] for specs that cannot round-trip
    /// the line format (rejected at admission, so this is defensive), or
    /// [`JournalError::Io`] once the writer thread has latched a failure.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        if let Some(message) = self.latched_error() {
            return Err(JournalError::Io { message });
        }
        let line = encode_record(self.next_seq, record)?;
        let tx = self.tx.as_ref().expect("writer thread alive");
        if tx.send(WriterMsg::Line(line)).is_err() {
            return Err(JournalError::Io {
                message: self
                    .latched_error()
                    .unwrap_or_else(|| "journal writer thread exited".to_string()),
            });
        }
        self.next_seq += 1;
        self.records_appended += 1;
        Ok(())
    }

    /// Requests a group commit: the writer thread writes and `fsync`s
    /// everything appended so far. Non-blocking — consecutive requests
    /// queued behind one large write coalesce into a single `fsync`. A
    /// no-op when nothing is pending, so callers commit unconditionally
    /// at tick boundaries.
    ///
    /// # Errors
    ///
    /// A latched writer-thread I/O failure (from any earlier write or
    /// sync).
    pub fn commit(&mut self) -> std::io::Result<()> {
        if let Some(message) = self.latched_error() {
            return Err(std::io::Error::other(message));
        }
        let tx = self.tx.as_ref().expect("writer thread alive");
        if tx.send(WriterMsg::Commit).is_err() {
            return Err(std::io::Error::other(
                self.latched_error()
                    .unwrap_or_else(|| "journal writer thread exited".to_string()),
            ));
        }
        Ok(())
    }

    /// Journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `(records appended, fsyncs performed, bytes written)` counters.
    /// The latter two race the writer thread; they are exact only after
    /// drop (or for a single-threaded test that pauses).
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.records_appended,
            self.shared.commits.load(Ordering::Relaxed),
            self.shared.bytes_committed.load(Ordering::Relaxed),
        )
    }
}

impl Drop for JournalWriter {
    /// Drains the queue and syncs: a clean shutdown is fully durable.
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_models::Workload;
    use marsit_simnet::Topology;

    fn spec(name: &str) -> JobSpec {
        let mut s = JobSpec::new(name, Workload::AlexNetMnist, Topology::ring(4));
        s.rounds = 6;
        s.seed = 11;
        s.train_examples = 128;
        s.test_examples = 32;
        s
    }

    #[test]
    fn crc32_matches_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn golden_fixture_submit_record() {
        // Pinned journal bytes: if this moves, marsit-journal/1 is broken.
        let record = JournalRecord::Submit { spec: spec("g0") };
        let line = encode_record(7, &record).expect("representable");
        assert_eq!(
            line,
            "marsit-journal/1 0000000000000007 submit e3a56db2 \
             tname=g0 workload=alexnet_mnist topo=ring:4 k=20 seed=11 rounds=6 \
             examples=128 test=32 batch=16 lr=0.01 glr=0.002\n"
        );
        let (seq, back) = decode_line(&line).expect("golden line decodes");
        assert_eq!(seq, 7);
        assert_eq!(back, record);
    }

    #[test]
    fn golden_fixture_migrate_record() {
        let record = JournalRecord::Migrate {
            name: "g0".to_string(),
            from: 2,
            to: 0,
        };
        let line = encode_record(0, &record).expect("representable");
        assert_eq!(
            line,
            "marsit-journal/1 0000000000000000 migrate e11b232f tname=g0 from=2 to=0\n"
        );
        assert_eq!(decode_line(&line).expect("decodes"), (0, record));
    }

    #[test]
    fn records_round_trip() {
        let records = [
            JournalRecord::Submit { spec: spec("a") },
            JournalRecord::Snapshot(SnapshotRecord {
                name: "a".to_string(),
                shard: 1,
                migrations: 2,
                round: 4,
                tel_seq: 0xDEAD_BEEF,
                snapshot_json: r#"{"schema":"marsit-checkpoint/1","round":4}"#.to_string(),
                log: "{\"ev\":\"x\"}\n{\"ev\":\"y\"}\n".to_string(),
            }),
            JournalRecord::Migrate {
                name: "a".to_string(),
                from: 1,
                to: 0,
            },
            JournalRecord::Outcome(OutcomeRecord {
                name: "a".to_string(),
                migrations: 3,
                shard_path: vec![1, 0],
                report_debug: "TrainReport { rounds: 6 }".to_string(),
                log: "line1\nline2\n".to_string(),
            }),
        ];
        for (i, record) in records.iter().enumerate() {
            let line = encode_record(i as u64, record).expect("representable");
            assert_eq!(
                decode_line(&line).expect("round trip"),
                (i as u64, record.clone()),
                "record {i}"
            );
        }
    }

    #[test]
    fn corrupt_body_fails_crc() {
        let line = encode_record(0, &JournalRecord::Submit { spec: spec("c") }).unwrap();
        // Flip one nibble of the body hex.
        let mut bytes: Vec<u8> = line.into_bytes();
        let n = bytes.len() - 3;
        bytes[n] = if bytes[n] == b'0' { b'1' } else { b'0' };
        let corrupted = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            decode_line(&corrupted),
            Err(JournalError::BadCrc { .. })
        ));
    }

    #[test]
    fn replay_stops_at_torn_tail_and_sequence_breaks() {
        let mut text = String::new();
        text.push_str(&encode_record(0, &JournalRecord::Submit { spec: spec("a") }).unwrap());
        text.push_str(&encode_record(1, &JournalRecord::Submit { spec: spec("b") }).unwrap());
        let full_len = text.len();
        // Torn mid-line: only the first record survives.
        let torn = &text.as_bytes()[..full_len - 10];
        let replay = replay_bytes(torn);
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn.is_some());
        assert_eq!(
            replay.valid_len,
            encode_record(0, &JournalRecord::Submit { spec: spec("a") })
                .unwrap()
                .len()
        );
        // Sequence break (a record skipped wholesale) also stops replay.
        let mut skipped = encode_record(0, &JournalRecord::Submit { spec: spec("a") }).unwrap();
        skipped.push_str(&encode_record(5, &JournalRecord::Submit { spec: spec("b") }).unwrap());
        let replay = replay_bytes(skipped.as_bytes());
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn.unwrap().contains("sequence break"));
    }

    #[test]
    fn writer_commit_then_replay_round_trips() {
        let dir = std::env::temp_dir().join(format!("marsit-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.log");
        {
            let mut writer = JournalWriter::create(&path).unwrap();
            writer
                .append(&JournalRecord::Submit { spec: spec("w") })
                .unwrap();
            writer.commit().unwrap();
            // Drop drains the writer thread's queue and syncs.
        }
        let replay = replay_file(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn.is_none());

        // Simulate a torn tail, then resume: the tail is truncated and the
        // next record continues the sequence.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"marsit-journal/1 0000").unwrap();
        }
        let replay = replay_file(&path).unwrap();
        assert!(replay.torn.is_some());
        {
            let mut writer = JournalWriter::resume(&path, &replay).unwrap();
            writer
                .append(&JournalRecord::Migrate {
                    name: "w".to_string(),
                    from: 0,
                    to: 1,
                })
                .unwrap();
            writer.commit().unwrap();
        }
        let replay = replay_file(&path).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].0, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_plan_classifies_jobs() {
        let mut state = ReplayState::new();
        state.apply(&JournalRecord::Submit { spec: spec("done") });
        state.apply(&JournalRecord::Submit {
            spec: spec("midway"),
        });
        state.apply(&JournalRecord::Submit {
            spec: spec("queued"),
        });
        state.apply(&JournalRecord::Snapshot(SnapshotRecord {
            name: "midway".to_string(),
            shard: 0,
            migrations: 0,
            round: 2,
            tel_seq: 40,
            snapshot_json: "{}".to_string(),
            log: "l".to_string(),
        }));
        // A later snapshot supersedes; an earlier replayed one does not.
        state.apply(&JournalRecord::Snapshot(SnapshotRecord {
            name: "midway".to_string(),
            shard: 1,
            migrations: 1,
            round: 4,
            tel_seq: 80,
            snapshot_json: "{later}".to_string(),
            log: "ll".to_string(),
        }));
        state.apply(&JournalRecord::Outcome(OutcomeRecord {
            name: "done".to_string(),
            migrations: 0,
            shard_path: vec![0],
            report_debug: "r".to_string(),
            log: "g".to_string(),
        }));
        state.apply(&JournalRecord::Outcome(OutcomeRecord {
            name: "ghost".to_string(),
            migrations: 0,
            shard_path: vec![],
            report_debug: "r".to_string(),
            log: "g".to_string(),
        }));
        let plan = state.plan();
        assert_eq!(plan.completed.len(), 1);
        assert_eq!(plan.completed[0].spec.name, "done");
        assert_eq!(plan.resumes.len(), 1);
        assert_eq!(plan.resumes[0].tel_seq, 80);
        assert_eq!(plan.resumes[0].snapshot_json, "{later}");
        assert_eq!(plan.fresh.len(), 1);
        assert_eq!(plan.fresh[0].name, "queued");
        assert_eq!(plan.orphaned, vec!["ghost".to_string()]);
    }
}
