//! The sharded multi-job scheduler.
//!
//! A [`JobServer`] owns a fixed pool of shard threads. Each shard owns the
//! jobs currently assigned to it and drives them round-by-round through the
//! [`TrainerState`] step API, so any job can be preempted — and migrated —
//! at a round boundary. Three serving-side mechanisms keep heavy traffic
//! cheap without touching a single output bit:
//!
//! 1. **Workspace pools** ([`crate::WorkspacePool`]): a finishing or
//!    migrating job releases its warm [`marsit_core::WorkspaceHandle`] into
//!    the shard's pool; the next job of the same shape adopts it.
//! 2. **Batched telemetry**: each job records into its own in-memory
//!    [`Telemetry`] sink, and the shard flushes it with one
//!    `drain_events_jsonl_into` call per *tick* (a burst of rounds), not per
//!    round. The drained bytes are identical whatever the flush cadence.
//! 3. **Snapshot migration**: a job moves between shards as a
//!    [`TrainSnapshot`] serialized to JSON. Restore is bit-exact and emits
//!    no fresh `run_meta`, so the concatenated telemetry log of a migrated
//!    job is byte-identical to an unmigrated run.
//!
//! The determinism contract — the reason a scheduler decision can never
//! perturb a job — is that every cross-job mechanism above is either pure
//! capacity reuse (pools), pure buffering (batched flush), or the bit-exact
//! snapshot path already proven by the trainsim round-trip tests. The
//! property is asserted end-to-end by [`verify_outcome`] and the proptest
//! suite in `tests/service.rs`.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use marsit_telemetry::Telemetry;
use marsit_tensor::rng::FastRng;
use marsit_trainsim::{TrainReport, TrainSnapshot, TrainerState};

use crate::admission::{AdmissionController, AdmissionError};
use crate::journal::{JournalRecord, JournalWriter, OutcomeRecord, ResumeJob, SnapshotRecord};
use crate::pool::{PoolStats, WorkspaceKey, WorkspacePool};
use crate::spec::JobSpec;

/// Shared handle to the submission journal: the handle side commits
/// accepted submissions, the shard side commits snapshots and outcomes at
/// tick boundaries.
type Journal = Arc<Mutex<JournalWriter>>;

/// How the scheduler decides to move a running job to another shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Never migrate.
    None,
    /// After each tick, move the job off any shard hosting at least `skew`
    /// more jobs than the least-loaded shard.
    LoadBalance {
        /// Minimum load imbalance (in jobs) that triggers a migration.
        skew: usize,
    },
    /// After each tick, migrate with probability `per_mille`/1000 to a
    /// seeded-random other shard. Exists to let tests and the bench drive
    /// the migration path hard under a reproducible schedule.
    Seeded {
        /// Seed for the per-shard migration RNG stream.
        seed: u64,
        /// Migration probability per tick, in thousandths.
        per_mille: u32,
    },
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of shard threads.
    pub shards: usize,
    /// Rounds a shard runs on one job before rotating to the next
    /// (the preemption quantum).
    pub tick_rounds: usize,
    /// Workspace-pool capacity per shape key, per shard.
    pub pool_cap_per_key: usize,
    /// Migration policy.
    pub migration: MigrationPolicy,
    /// Shortest idle wait (milliseconds) when a shard has nothing to run.
    pub idle_wait_min_ms: u64,
    /// Longest idle wait: consecutive empty waits double the timeout from
    /// `idle_wait_min_ms` up to this cap (reset the moment work arrives),
    /// so an idle shard makes ~1/16th the wakeups of a fixed 1 ms poll.
    /// Set equal to `idle_wait_min_ms` to disable the backoff.
    pub idle_wait_max_ms: u64,
    /// When journaling, snapshot each in-flight job every this many of its
    /// ticks (0 = only the pre-migration snapshots are journaled). Smaller
    /// values bound replayed work after a crash at the cost of more
    /// journal bytes per job.
    pub snapshot_every_ticks: usize,
}

impl ServeConfig {
    /// A server with `shards` shard threads and serving defaults
    /// (4-round ticks, pool capacity 4, no migration, 1→16 ms idle
    /// backoff, a journal snapshot every 4 ticks when journaling).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            tick_rounds: 4,
            pool_cap_per_key: 4,
            migration: MigrationPolicy::None,
            idle_wait_min_ms: 1,
            idle_wait_max_ms: 16,
            snapshot_every_ticks: 4,
        }
    }
}

/// Timing of one completed migration (snapshot on the source shard,
/// restore on the target shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationSample {
    /// Nanoseconds to snapshot + serialize on the source shard.
    pub snapshot_ns: u64,
    /// Nanoseconds to deserialize + restore on the target shard.
    pub restore_ns: u64,
    /// Size of the serialized snapshot in bytes.
    pub snapshot_bytes: usize,
}

/// A finished job: its final report plus the telemetry log accumulated
/// across every shard it ran on.
#[derive(Debug)]
pub struct JobOutcome {
    /// The spec the job ran under.
    pub spec: JobSpec,
    /// Final training report.
    pub report: TrainReport,
    /// Concatenated JSONL telemetry log (batched shard-tick flushes).
    pub log: String,
    /// Every shard that hosted the job, in order (first = admission shard).
    pub shard_path: Vec<usize>,
    /// Number of migrations the job survived.
    pub migrations: u32,
}

/// Per-shard accounting returned when the server finishes.
#[derive(Debug)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Jobs this shard ran to completion.
    pub jobs_completed: usize,
    /// Ticks executed.
    pub ticks: u64,
    /// Wall-clock nanoseconds of every round stepped on this shard.
    pub round_ns: Vec<u64>,
    /// Workspace-pool counters.
    pub pool: PoolStats,
    /// Workspaces still pooled when the shard drained.
    pub pooled_at_exit: usize,
    /// Jobs migrated away from this shard.
    pub migrations_out: u64,
    /// Migrations that landed on this shard (timed end-to-end).
    pub migrations_in: Vec<MigrationSample>,
    /// Times the shard woke from an idle wait with nothing to do — the
    /// busy-wait cost the exponential idle backoff exists to bound.
    pub idle_wakeups: u64,
}

/// The aggregate result of a serve session.
#[derive(Debug)]
pub struct ServeReport {
    /// All finished jobs, sorted by name.
    pub outcomes: Vec<JobOutcome>,
    /// Per-shard accounting.
    pub shards: Vec<ShardSummary>,
    /// Peak number of jobs in flight at once.
    pub peak_in_flight: usize,
    /// Median in-flight count observed at job-completion instants — the
    /// concurrency the server actually sustained.
    pub sustained_in_flight: usize,
}

impl ServeReport {
    /// All per-round latencies across shards, sorted ascending.
    #[must_use]
    pub fn round_latencies_sorted(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.round_ns.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// All migration samples across shards.
    #[must_use]
    pub fn migration_samples(&self) -> Vec<MigrationSample> {
        self.shards
            .iter()
            .flat_map(|s| s.migrations_in.iter().copied())
            .collect()
    }

    /// Pool counters summed across shards.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.shards {
            total.merge(&s.pool);
        }
        total
    }

    /// The outcome of the job named `name`, if it finished.
    #[must_use]
    pub fn outcome(&self, name: &str) -> Option<&JobOutcome> {
        self.outcomes.iter().find(|o| o.spec.name == name)
    }
}

/// A quantile (by nearest-rank) of a sorted latency slice, in nanoseconds.
#[must_use]
pub fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A job resident on a shard.
struct ActiveJob {
    spec: JobSpec,
    state: TrainerState,
    tel: Telemetry,
    log: String,
    shard_path: Vec<usize>,
    migrations: u32,
    /// Ticks since the last journaled snapshot (periodic-snapshot cadence).
    ticks_since_snap: usize,
}

/// A job in transit between shards: the spec plus the serialized snapshot
/// and everything accumulated so far.
struct MigratingJob {
    spec: JobSpec,
    snapshot_json: String,
    tel: Telemetry,
    log: String,
    shard_path: Vec<usize>,
    migrations: u32,
    snapshot_ns: u64,
}

enum ShardMsg {
    Admit(Box<JobSpec>),
    MigrateIn(Box<MigratingJob>),
    /// Crash recovery: resume a job from its last journaled snapshot on a
    /// fresh telemetry sink (sequence floor restored from the journal).
    Restore(Box<ResumeJob>),
    /// No more submissions: finish resident jobs, refuse new migrations,
    /// then exit.
    Drain,
}

/// Shared in-flight accounting: job counts per shard (for load balancing
/// and migration targeting) plus concurrency high-water marks.
#[derive(Debug)]
struct Flight {
    per_shard: Vec<usize>,
    current: usize,
    peak: usize,
    at_completion: Vec<usize>,
}

impl Flight {
    fn new(shards: usize) -> Self {
        Self {
            per_shard: vec![0; shards],
            current: 0,
            peak: 0,
            at_completion: Vec::new(),
        }
    }
}

struct ShardCtx {
    shard: usize,
    cfg: ServeConfig,
    rx: Receiver<ShardMsg>,
    peers: Vec<Sender<ShardMsg>>,
    results: Sender<JobOutcome>,
    flight: Arc<Mutex<Flight>>,
    journal: Option<Journal>,
}

/// A running job server. Dropping the handle without calling
/// [`ServerHandle::finish`] aborts the shard threads' channels; always
/// finish to collect outcomes and summaries.
pub struct ServerHandle {
    txs: Vec<Sender<ShardMsg>>,
    threads: Vec<std::thread::JoinHandle<ShardSummary>>,
    results: Receiver<JobOutcome>,
    flight: Arc<Mutex<Flight>>,
    outcomes: Vec<JobOutcome>,
    submitted: usize,
    journal: Option<Journal>,
    admission: Option<AdmissionController>,
    /// Outcomes whose admission job slot has been released already.
    slots_released: usize,
}

/// The job server entry point.
pub struct JobServer;

impl JobServer {
    /// Starts the shard threads and returns a handle for submissions.
    #[must_use]
    pub fn start(cfg: ServeConfig) -> ServerHandle {
        Self::start_inner(cfg, None)
    }

    /// Starts the shard threads with a submission journal: every accepted
    /// spec is committed (written + fsynced) before it is dispatched,
    /// shards journal periodic and pre-migration snapshots plus final
    /// outcomes, and commits are batched at shard-tick boundaries. A
    /// `kill -9` at any instant leaves a journal whose replay resumes
    /// every job bit-exactly (see [`crate::journal`]).
    #[must_use]
    pub fn start_journaled(cfg: ServeConfig, journal: Journal) -> ServerHandle {
        Self::start_inner(cfg, Some(journal))
    }

    fn start_inner(cfg: ServeConfig, journal: Option<Journal>) -> ServerHandle {
        let shards = cfg.shards;
        let flight = Arc::new(Mutex::new(Flight::new(shards)));
        let (results_tx, results_rx) = std::sync::mpsc::channel();
        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = std::sync::mpsc::channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let mut threads = Vec::with_capacity(shards);
        for (shard, rx) in rxs.into_iter().enumerate() {
            let ctx = ShardCtx {
                shard,
                cfg,
                rx,
                peers: txs.clone(),
                results: results_tx.clone(),
                flight: Arc::clone(&flight),
                journal: journal.clone(),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("marsit-shard-{shard}"))
                    .spawn(move || shard_main(ctx))
                    .expect("spawn shard thread"),
            );
        }
        ServerHandle {
            txs,
            threads,
            results: results_rx,
            flight,
            outcomes: Vec::new(),
            submitted: 0,
            journal,
            admission: None,
            slots_released: 0,
        }
    }
}

impl ServerHandle {
    /// Installs an admission controller: subsequent [`Self::try_submit`]
    /// calls are quota-checked, and completed jobs release their tenant's
    /// job slot.
    pub fn set_admission(&mut self, admission: AdmissionController) {
        self.admission = Some(admission);
    }

    /// The admission counters `(admitted, rejected)`, when a controller
    /// is installed.
    #[must_use]
    pub fn admission_counters(&self) -> Option<(u64, u64)> {
        self.admission.as_ref().map(AdmissionController::counters)
    }

    /// Submits a job to the least-loaded shard, bypassing admission
    /// control. With a journal, the submission is durable before this
    /// returns.
    pub fn submit(&mut self, spec: JobSpec) {
        if let Some(journal) = &self.journal {
            let mut journal = journal.lock().expect("journal lock");
            journal
                .append(&JournalRecord::Submit { spec: spec.clone() })
                .expect("journal-representable spec (parse_line round-trip)");
            journal.commit().expect("journal commit");
        }
        self.dispatch(ShardMsg::Admit(Box::new(spec)));
    }

    /// Quota-checked submission: consults the installed
    /// [`AdmissionController`] (releasing slots of jobs that finished
    /// since the last call first), then submits. Without a controller
    /// this is plain [`Self::submit`].
    ///
    /// # Errors
    ///
    /// The typed [`AdmissionError`] for over-quota or backpressured
    /// submissions; the job is not accepted and nothing is journaled.
    pub fn try_submit(&mut self, spec: JobSpec, now_ms: u64) -> Result<(), AdmissionError> {
        self.release_completed_slots();
        if let Some(admission) = &mut self.admission {
            admission.admit(&spec, now_ms)?;
        }
        self.submit(spec);
        Ok(())
    }

    /// Resumes a crash-recovered job from its journaled snapshot on the
    /// least-loaded shard. The job was journaled as submitted before the
    /// crash, so no new submit record is written.
    pub fn submit_resume(&mut self, resume: ResumeJob) {
        self.dispatch(ShardMsg::Restore(Box::new(resume)));
    }

    fn dispatch(&mut self, msg: ShardMsg) {
        let target = {
            let mut flight = self.flight.lock().expect("flight lock");
            let target = flight
                .per_shard
                .iter()
                .enumerate()
                .min_by_key(|(_, &n)| n)
                .map_or(0, |(i, _)| i);
            flight.per_shard[target] += 1;
            flight.current += 1;
            flight.peak = flight.peak.max(flight.current);
            target
        };
        self.submitted += 1;
        self.txs[target].send(msg).expect("shard alive");
    }

    fn release_completed_slots(&mut self) {
        while let Ok(outcome) = self.results.try_recv() {
            self.outcomes.push(outcome);
        }
        if let Some(admission) = &mut self.admission {
            for outcome in &self.outcomes[self.slots_released..] {
                admission.on_complete(&outcome.spec.tenant);
            }
        }
        self.slots_released = self.outcomes.len();
    }

    /// Jobs finished so far (drains the results channel without blocking).
    pub fn completed(&mut self) -> usize {
        self.release_completed_slots();
        self.outcomes.len()
    }

    /// Drains the server: waits for every submitted job to finish, stops
    /// the shard threads, and returns the aggregate report.
    #[must_use]
    pub fn finish(mut self) -> ServeReport {
        for tx in &self.txs {
            tx.send(ShardMsg::Drain).expect("shard alive");
        }
        // Shards may still bounce migrations between each other, so keep
        // the submission senders alive until every thread has exited.
        while let Ok(outcome) = self.results.recv() {
            self.outcomes.push(outcome);
            if self.outcomes.len() == self.submitted {
                break;
            }
        }
        drop(self.txs);
        drop(self.results);
        let mut shards: Vec<ShardSummary> = self
            .threads
            .into_iter()
            .map(|t| t.join().expect("shard thread panicked"))
            .collect();
        shards.sort_by_key(|s| s.shard);
        assert_eq!(
            self.outcomes.len(),
            self.submitted,
            "every submitted job must produce an outcome"
        );
        self.outcomes.sort_by(|a, b| a.spec.name.cmp(&b.spec.name));
        let (peak, sustained) = {
            let mut flight = self.flight.lock().expect("flight lock");
            flight.at_completion.sort_unstable();
            let sustained = if flight.at_completion.is_empty() {
                0
            } else {
                flight.at_completion[flight.at_completion.len() / 2]
            };
            (flight.peak, sustained)
        };
        ServeReport {
            outcomes: self.outcomes,
            shards,
            peak_in_flight: peak,
            sustained_in_flight: sustained,
        }
    }
}

fn shard_main(ctx: ShardCtx) -> ShardSummary {
    let mut pool = WorkspacePool::new(ctx.cfg.pool_cap_per_key);
    let mut active: VecDeque<ActiveJob> = VecDeque::new();
    let mut summary = ShardSummary {
        shard: ctx.shard,
        jobs_completed: 0,
        ticks: 0,
        round_ns: Vec::new(),
        pool: PoolStats::default(),
        pooled_at_exit: 0,
        migrations_out: 0,
        migrations_in: Vec::new(),
        idle_wakeups: 0,
    };
    let mut draining = false;
    let idle_min = Duration::from_millis(ctx.cfg.idle_wait_min_ms.max(1));
    let idle_max = Duration::from_millis(
        ctx.cfg
            .idle_wait_max_ms
            .max(ctx.cfg.idle_wait_min_ms)
            .max(1),
    );
    let mut idle_wait = idle_min;
    let mut rng = match ctx.cfg.migration {
        MigrationPolicy::Seeded { seed, .. } => FastRng::new(seed, ctx.shard as u64),
        _ => FastRng::new(0, ctx.shard as u64),
    };

    loop {
        // Ingest every pending message without blocking.
        loop {
            match ctx.rx.try_recv() {
                Ok(msg) => handle_msg(
                    msg,
                    &ctx,
                    &mut active,
                    &mut pool,
                    &mut summary,
                    &mut draining,
                ),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    draining = true;
                    break;
                }
            }
        }

        let Some(mut job) = active.pop_front() else {
            // Idle. A draining shard must stay alive until every job in
            // the whole server has finished: a peer that has not yet
            // processed its own Drain may still migrate a job here, and
            // exiting early would strand it in a dead channel.
            if draining && ctx.flight.lock().expect("flight lock").current == 0 {
                break;
            }
            match ctx.rx.recv_timeout(idle_wait) {
                Ok(msg) => {
                    idle_wait = idle_min;
                    handle_msg(
                        msg,
                        &ctx,
                        &mut active,
                        &mut pool,
                        &mut summary,
                        &mut draining,
                    );
                }
                Err(RecvTimeoutError::Timeout) => {
                    summary.idle_wakeups += 1;
                    idle_wait = (idle_wait * 2).min(idle_max);
                }
                Err(RecvTimeoutError::Disconnected) => draining = true,
            }
            continue;
        };
        idle_wait = idle_min;

        // One tick: a burst of rounds, preemptible only at its end.
        let mut ran = 0;
        while ran < ctx.cfg.tick_rounds && !job.state.is_done() {
            let t0 = Instant::now();
            job.state.step();
            summary.round_ns.push(t0.elapsed().as_nanos() as u64);
            ran += 1;
        }
        summary.ticks += 1;
        // Batched telemetry: one sink flush per shard tick, not per round.
        job.tel.drain_events_jsonl_into(&mut job.log);
        job.ticks_since_snap += 1;

        if job.state.is_done() {
            complete(job, &ctx, &mut pool);
            summary.jobs_completed += 1;
        } else if let Some(target) = migration_target(&ctx, active.len(), &mut rng) {
            migrate_out(job, target, &ctx, &mut pool, &mut summary);
        } else {
            // Periodic durability point: snapshot at the configured tick
            // cadence and commit at this tick boundary. Snapshotting
            // mid-run is bit-invisible (`TrainerState::snapshot`
            // materializes pending state exactly as the next step would).
            if ctx.journal.is_some()
                && ctx.cfg.snapshot_every_ticks > 0
                && job.ticks_since_snap >= ctx.cfg.snapshot_every_ticks
            {
                journal_snapshot(&mut job, &ctx);
            }
            active.push_back(job);
        }
        journal_commit(&ctx);
    }

    summary.pool = pool.stats();
    summary.pooled_at_exit = pool.pooled();
    summary
}

fn handle_msg(
    msg: ShardMsg,
    ctx: &ShardCtx,
    active: &mut VecDeque<ActiveJob>,
    pool: &mut WorkspacePool,
    summary: &mut ShardSummary,
    draining: &mut bool,
) {
    match msg {
        ShardMsg::Admit(spec) => {
            let job = admit(*spec, ctx.shard, pool);
            active.push_back(job);
        }
        ShardMsg::MigrateIn(mj) => {
            let job = land_migration(*mj, ctx.shard, pool, summary);
            active.push_back(job);
        }
        ShardMsg::Restore(resume) => {
            let job = land_restore(*resume, ctx.shard, pool);
            active.push_back(job);
        }
        ShardMsg::Drain => *draining = true,
    }
}

/// Appends a snapshot record for `job` (everything a fresh process needs
/// to resume it bit-exactly) to the shard's journal.
fn journal_snapshot(job: &mut ActiveJob, ctx: &ShardCtx) {
    let Some(journal) = &ctx.journal else { return };
    let snapshot = job.state.snapshot();
    let record = JournalRecord::Snapshot(SnapshotRecord {
        name: job.spec.name.clone(),
        shard: ctx.shard,
        migrations: job.migrations,
        round: snapshot.round,
        tel_seq: job.tel.seq_floor(),
        snapshot_json: snapshot.to_json(),
        log: job.log.clone(),
    });
    journal
        .lock()
        .expect("journal lock")
        .append(&record)
        .expect("journal-representable snapshot");
    job.ticks_since_snap = 0;
}

/// Commits (writes + fsyncs) everything shards appended this tick.
fn journal_commit(ctx: &ShardCtx) {
    if let Some(journal) = &ctx.journal {
        journal
            .lock()
            .expect("journal lock")
            .commit()
            .expect("journal commit");
    }
}

/// Builds a fresh job, adopting a pooled workspace when one fits.
fn admit(spec: JobSpec, shard: usize, pool: &mut WorkspacePool) -> ActiveJob {
    let tel = Telemetry::recording();
    let cfg = spec.to_train_config(tel.clone());
    let mut state = TrainerState::new(&cfg);
    let key = WorkspaceKey::new(state.model_dim(), spec.topology);
    if let Some(handle) = pool.checkout(key) {
        state.adopt_workspace(handle);
    }
    ActiveJob {
        spec,
        state,
        tel,
        log: String::new(),
        shard_path: vec![shard],
        migrations: 0,
        ticks_since_snap: 0,
    }
}

/// Rebuilds a crash-recovered job from its journaled snapshot: a fresh
/// telemetry sink with the journaled sequence floor restored, so the hop
/// events of the resumed rounds continue the dead process's absolute
/// numbering and the concatenated log stays byte-identical to an
/// uninterrupted run.
fn land_restore(resume: ResumeJob, shard: usize, pool: &mut WorkspacePool) -> ActiveJob {
    let tel = Telemetry::recording();
    tel.restore_seq_floor(resume.tel_seq);
    let cfg = resume.spec.to_train_config(tel.clone());
    let snapshot = TrainSnapshot::from_json(&resume.snapshot_json)
        .expect("journaled snapshot is CRC-guarded and must parse");
    let mut state = TrainerState::restore(&cfg, &snapshot);
    let key = WorkspaceKey::new(state.model_dim(), resume.spec.topology);
    if let Some(handle) = pool.checkout(key) {
        state.adopt_workspace(handle);
    }
    ActiveJob {
        spec: resume.spec,
        state,
        tel,
        log: resume.log,
        shard_path: vec![shard],
        migrations: resume.migrations,
        ticks_since_snap: 0,
    }
}

/// Restores a migrated-in job from its snapshot, timing the restore side.
fn land_migration(
    mj: MigratingJob,
    shard: usize,
    pool: &mut WorkspacePool,
    summary: &mut ShardSummary,
) -> ActiveJob {
    let cfg = mj.spec.to_train_config(mj.tel.clone());
    let t0 = Instant::now();
    let snapshot = TrainSnapshot::from_json(&mj.snapshot_json).expect("valid migration snapshot");
    let mut state = TrainerState::restore(&cfg, &snapshot);
    let restore_ns = t0.elapsed().as_nanos() as u64;
    let key = WorkspaceKey::new(state.model_dim(), mj.spec.topology);
    if let Some(handle) = pool.checkout(key) {
        state.adopt_workspace(handle);
    }
    summary.migrations_in.push(MigrationSample {
        snapshot_ns: mj.snapshot_ns,
        restore_ns,
        snapshot_bytes: mj.snapshot_json.len(),
    });
    let mut shard_path = mj.shard_path;
    shard_path.push(shard);
    ActiveJob {
        spec: mj.spec,
        state,
        tel: mj.tel,
        log: mj.log,
        shard_path,
        migrations: mj.migrations + 1,
        ticks_since_snap: 0,
    }
}

/// Finishes a job: returns its workspace to the pool, emits the outcome,
/// and updates the shared in-flight accounting.
fn complete(mut job: ActiveJob, ctx: &ShardCtx, pool: &mut WorkspacePool) {
    let key = WorkspaceKey::new(job.state.model_dim(), job.spec.topology);
    if let Some(handle) = job.state.release_workspace() {
        pool.checkin(key, handle);
    }
    let report = job.state.finish();
    job.tel.drain_events_jsonl_into(&mut job.log);
    if let Some(journal) = &ctx.journal {
        journal
            .lock()
            .expect("journal lock")
            .append(&JournalRecord::Outcome(OutcomeRecord {
                name: job.spec.name.clone(),
                migrations: job.migrations,
                shard_path: job.shard_path.clone(),
                report_debug: report_fingerprint(&report),
                log: job.log.clone(),
            }))
            .expect("journal-representable outcome");
    }
    {
        let mut flight = ctx.flight.lock().expect("flight lock");
        let current = flight.current;
        flight.at_completion.push(current);
        flight.current -= 1;
        flight.per_shard[ctx.shard] -= 1;
    }
    ctx.results
        .send(JobOutcome {
            spec: job.spec,
            report,
            log: job.log,
            shard_path: job.shard_path,
            migrations: job.migrations,
        })
        .expect("results receiver alive");
}

/// Decides whether (and where) to migrate the job just preempted.
/// Migration stays enabled while draining — shards outlive every in-flight
/// job, so a migrating job always finds a live receiver (and the send-error
/// fallback recovers locally if not).
fn migration_target(ctx: &ShardCtx, resident_after: usize, rng: &mut FastRng) -> Option<usize> {
    if ctx.cfg.shards < 2 {
        return None;
    }
    match ctx.cfg.migration {
        MigrationPolicy::None => None,
        MigrationPolicy::LoadBalance { skew } => {
            let flight = ctx.flight.lock().expect("flight lock");
            let (target, &min_load) = flight
                .per_shard
                .iter()
                .enumerate()
                .min_by_key(|(_, &n)| n)?;
            // `resident_after` excludes the preempted job itself.
            if target != ctx.shard && resident_after + 1 >= min_load + skew.max(1) {
                Some(target)
            } else {
                None
            }
        }
        MigrationPolicy::Seeded { per_mille, .. } => {
            if rng.next_range(1000) < u64::from(per_mille) {
                let pick = rng.next_range(ctx.cfg.shards as u64 - 1) as usize;
                let target = if pick >= ctx.shard { pick + 1 } else { pick };
                Some(target)
            } else {
                None
            }
        }
    }
}

/// Snapshots a job and ships it to `target`. The workspace stays in this
/// shard's pool (capacity is shard-local); the snapshot carries all live
/// state. If the target already drained, the job is restored locally —
/// the same code path as crash recovery from a written snapshot.
fn migrate_out(
    mut job: ActiveJob,
    target: usize,
    ctx: &ShardCtx,
    pool: &mut WorkspacePool,
    summary: &mut ShardSummary,
) {
    let key = WorkspaceKey::new(job.state.model_dim(), job.spec.topology);
    if let Some(handle) = job.state.release_workspace() {
        pool.checkin(key, handle);
    }
    let t0 = Instant::now();
    let snapshot = job.state.snapshot();
    let snapshot_json = snapshot.to_json();
    let snapshot_ns = t0.elapsed().as_nanos() as u64;
    // The migration hand-off doubles as a durability point: the snapshot
    // and the move are journaled before the job leaves this shard, so a
    // crash mid-migration resumes from exactly these bytes.
    if let Some(journal) = &ctx.journal {
        let mut journal = journal.lock().expect("journal lock");
        journal
            .append(&JournalRecord::Snapshot(SnapshotRecord {
                name: job.spec.name.clone(),
                shard: ctx.shard,
                migrations: job.migrations,
                round: snapshot.round,
                tel_seq: job.tel.seq_floor(),
                snapshot_json: snapshot_json.clone(),
                log: job.log.clone(),
            }))
            .expect("journal-representable snapshot");
        journal
            .append(&JournalRecord::Migrate {
                name: job.spec.name.clone(),
                from: ctx.shard,
                to: target,
            })
            .expect("journal-representable migration");
    }
    drop(job.state);
    {
        let mut flight = ctx.flight.lock().expect("flight lock");
        flight.per_shard[ctx.shard] -= 1;
        flight.per_shard[target] += 1;
    }
    let mj = Box::new(MigratingJob {
        spec: job.spec,
        snapshot_json,
        tel: job.tel,
        log: job.log,
        shard_path: job.shard_path,
        migrations: job.migrations,
        snapshot_ns,
    });
    summary.migrations_out += 1;
    if let Err(std::sync::mpsc::SendError(msg)) = ctx.peers[target].send(ShardMsg::MigrateIn(mj)) {
        // Target shard already exited: recover from the written snapshot
        // locally. This is exactly the crash-mid-migration path.
        let ShardMsg::MigrateIn(mj) = msg else {
            unreachable!("we sent a MigrateIn")
        };
        {
            let mut flight = ctx.flight.lock().expect("flight lock");
            flight.per_shard[target] -= 1;
            flight.per_shard[ctx.shard] += 1;
        }
        let job = land_migration(*mj, ctx.shard, pool, summary);
        finish_locally(job, ctx, pool, summary);
    }
}

/// Runs a locally-recovered job to completion. Recovery only happens when
/// the target shard has already drained, so interleaving is over anyway.
fn finish_locally(
    mut job: ActiveJob,
    ctx: &ShardCtx,
    pool: &mut WorkspacePool,
    summary: &mut ShardSummary,
) {
    while !job.state.is_done() {
        let t0 = Instant::now();
        job.state.step();
        summary.round_ns.push(t0.elapsed().as_nanos() as u64);
    }
    job.tel.drain_events_jsonl_into(&mut job.log);
    complete(job, ctx, pool);
    summary.jobs_completed += 1;
}

/// Runs `spec` alone — no scheduler, no pooling, no migration — and
/// returns the reference outcome scheduled runs must match bit-for-bit.
#[must_use]
pub fn run_solo(spec: &JobSpec) -> JobOutcome {
    let tel = Telemetry::recording();
    let cfg = spec.to_train_config(tel.clone());
    let mut state = TrainerState::new(&cfg);
    while !state.is_done() {
        state.step();
    }
    let report = state.finish();
    let mut log = String::new();
    tel.drain_events_jsonl_into(&mut log);
    JobOutcome {
        spec: spec.clone(),
        report,
        log,
        shard_path: Vec::new(),
        migrations: 0,
    }
}

/// A stable fingerprint of a training report (full `Debug` rendering, which
/// covers every field bit-for-bit via exact float formatting).
#[must_use]
pub fn report_fingerprint(report: &TrainReport) -> String {
    format!("{report:?}")
}

/// Checks a scheduled outcome against a fresh solo run of the same spec.
///
/// Passing means the scheduler provably did not perturb this job: the final
/// report and the full telemetry byte stream are identical to a run that
/// never shared a thread, never adopted a pooled workspace, and never
/// migrated.
///
/// # Errors
///
/// Returns which artifact diverged (report or telemetry log).
pub fn verify_outcome(outcome: &JobOutcome) -> Result<(), String> {
    let solo = run_solo(&outcome.spec);
    if report_fingerprint(&outcome.report) != report_fingerprint(&solo.report) {
        return Err(format!(
            "job {}: scheduled report diverged from solo run\n  scheduled: {:?}\n  solo:      {:?}",
            outcome.spec.name, outcome.report, solo.report
        ));
    }
    if outcome.log != solo.log {
        let (a, b) = first_log_divergence(&outcome.log, &solo.log);
        return Err(format!(
            "job {}: scheduled telemetry log diverged from solo run at line {a}:\n  {b}",
            outcome.spec.name
        ));
    }
    Ok(())
}

fn first_log_divergence(scheduled: &str, solo: &str) -> (usize, String) {
    for (i, (a, b)) in scheduled.lines().zip(solo.lines()).enumerate() {
        if a != b {
            return (i + 1, format!("scheduled: {a}\n  solo:      {b}"));
        }
    }
    let (n_sched, n_solo) = (scheduled.lines().count(), solo.lines().count());
    (
        n_sched.min(n_solo) + 1,
        format!("line counts differ: scheduled {n_sched} vs solo {n_solo}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_models::Workload;
    use marsit_simnet::Topology;

    fn tiny(name: &str, seed: u64) -> JobSpec {
        let mut spec = JobSpec::new(name, Workload::AlexNetMnist, Topology::ring(4));
        spec.rounds = 8;
        spec.seed = seed;
        spec.train_examples = 128;
        spec.test_examples = 32;
        spec
    }

    #[test]
    fn single_job_matches_solo_run() {
        let mut handle = JobServer::start(ServeConfig::new(1));
        handle.submit(tiny("only", 3));
        let report = handle.finish();
        assert_eq!(report.outcomes.len(), 1);
        verify_outcome(&report.outcomes[0]).expect("bit-exact");
    }

    #[test]
    fn many_jobs_on_few_shards_all_match_solo() {
        let mut cfg = ServeConfig::new(2);
        cfg.tick_rounds = 3;
        let mut handle = JobServer::start(cfg);
        for i in 0..5 {
            handle.submit(tiny(&format!("j{i}"), 10 + i));
        }
        let report = handle.finish();
        assert_eq!(report.outcomes.len(), 5);
        assert!(report.peak_in_flight >= 2);
        for outcome in &report.outcomes {
            verify_outcome(outcome).expect("bit-exact");
        }
        // Every finishing job returns its workspace to the shard pool.
        assert!(
            report.pool_stats().returns >= 1,
            "{:?}",
            report.pool_stats()
        );
    }

    #[test]
    fn later_submission_adopts_pooled_workspace() {
        let mut handle = JobServer::start(ServeConfig::new(1));
        handle.submit(tiny("first", 5));
        while handle.completed() < 1 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        handle.submit(tiny("second", 6));
        let report = handle.finish();
        let stats = report.pool_stats();
        assert!(
            stats.hits >= 1,
            "second job should adopt warm workspace: {stats:?}"
        );
        for outcome in &report.outcomes {
            verify_outcome(outcome).expect("bit-exact with warm adoption");
        }
    }

    #[test]
    fn seeded_migration_preserves_bit_exactness() {
        let mut cfg = ServeConfig::new(3);
        cfg.tick_rounds = 2;
        cfg.migration = MigrationPolicy::Seeded {
            seed: 7,
            per_mille: 700,
        };
        let mut handle = JobServer::start(cfg);
        for i in 0..4 {
            let mut spec = tiny(&format!("m{i}"), 20 + i);
            spec.rounds = 10;
            handle.submit(spec);
        }
        let report = handle.finish();
        let migrations: u32 = report.outcomes.iter().map(|o| o.migrations).sum();
        assert!(migrations >= 1, "seeded policy at 70% should migrate");
        assert!(!report.migration_samples().is_empty());
        for outcome in &report.outcomes {
            verify_outcome(outcome).expect("bit-exact across migration");
        }
    }

    #[test]
    fn load_balance_policy_moves_work_off_hot_shards() {
        let mut cfg = ServeConfig::new(2);
        cfg.tick_rounds = 2;
        cfg.migration = MigrationPolicy::LoadBalance { skew: 1 };
        let mut handle = JobServer::start(cfg);
        for i in 0..6 {
            let mut spec = tiny(&format!("lb{i}"), 40 + i);
            spec.rounds = 12;
            handle.submit(spec);
        }
        let report = handle.finish();
        for outcome in &report.outcomes {
            verify_outcome(outcome).expect("bit-exact under load balancing");
        }
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted = vec![10, 20, 30, 40];
        assert_eq!(quantile_ns(&sorted, 0.5), 20);
        assert_eq!(quantile_ns(&sorted, 0.99), 40);
        assert_eq!(quantile_ns(&[], 0.5), 0);
    }
}
