//! Job specifications: what a client submits to the job server.
//!
//! A [`JobSpec`] is the serving-side unit of work — one Marsit training run
//! described by its model proxy, topology, full-precision period `K`, fault
//! plan, seed, and round budget. Specs arrive over the submission queue as
//! single `key=value` lines (see [`JobSpec::parse_line`]), the format the
//! `marsit_serve` binary reads from a file or stdin.

use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::{FaultPlan, Topology};
use marsit_telemetry::Telemetry;
use marsit_trainsim::{StrategyKind, TrainConfig};

/// One training job submitted to the server.
///
/// The defaults describe a short serving-sized run (small synthetic split,
/// no periodic eval) so a storm of jobs exercises the scheduler rather than
/// the data generator; every field can be overridden per job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen job name (unique per submission batch).
    pub name: String,
    /// Model/dataset proxy to train.
    pub workload: Workload,
    /// Cluster topology the job's collectives run over.
    pub topology: Topology,
    /// Full-precision period `K` (`None` = plain one-bit Marsit).
    pub k: Option<u32>,
    /// Master seed.
    pub seed: u64,
    /// Round budget `T`.
    pub rounds: usize,
    /// Deterministic fault plan ([`FaultPlan::none`] by default).
    pub fault_plan: FaultPlan,
    /// Training-set size (split IID across the topology's workers).
    pub train_examples: usize,
    /// Held-out test-set size.
    pub test_examples: usize,
    /// Per-worker minibatch size.
    pub batch_per_worker: usize,
    /// Local learning rate `η_l`.
    pub local_lr: f32,
    /// Marsit global learning rate `η_s`.
    pub global_lr: f32,
}

impl JobSpec {
    /// A serving-sized job: `workload` on `topology` for `rounds` rounds.
    #[must_use]
    pub fn new(name: impl Into<String>, workload: Workload, topology: Topology) -> Self {
        Self {
            name: name.into(),
            workload,
            topology,
            k: Some(20),
            seed: 42,
            rounds: 30,
            fault_plan: FaultPlan::none(),
            train_examples: 512,
            test_examples: 64,
            batch_per_worker: 16,
            local_lr: 0.01,
            global_lr: 0.002,
        }
    }

    /// The trainer configuration for this job, recording into `telemetry`.
    ///
    /// The scheduler owns parallelism at the job level (one shard thread
    /// drives many jobs), so the per-job config keeps the worker compute
    /// phase and the collectives on the shard thread.
    #[must_use]
    pub fn to_train_config(&self, telemetry: Telemetry) -> TrainConfig {
        let mut cfg = TrainConfig::new(
            self.workload,
            self.topology,
            StrategyKind::Marsit { k: self.k },
        );
        cfg.rounds = self.rounds;
        cfg.seed = self.seed;
        cfg.fault_plan = self.fault_plan.clone();
        cfg.train_examples = self.train_examples;
        cfg.test_examples = self.test_examples;
        cfg.batch_per_worker = self.batch_per_worker;
        cfg.local_lr = self.local_lr;
        cfg.marsit_global_lr = self.global_lr;
        cfg.optimizer = OptimizerKind::Momentum(0.9);
        cfg.eval_every = 0;
        cfg.parallel_workers = false;
        cfg.marsit_intra_threads = 1;
        cfg.telemetry = telemetry;
        cfg
    }

    /// Parses one submission-queue line of whitespace-separated `key=value`
    /// tokens, e.g.
    ///
    /// ```text
    /// name=j0 workload=alexnet_mnist topo=ring:4 k=20 seed=7 rounds=40
    /// ```
    ///
    /// Recognized keys: `name`, `workload` (snake-case proxy name), `topo`
    /// (`ring:M` or `torus:RxC`), `k` (`never` or a period), `seed`,
    /// `rounds`, `examples`, `test`, `batch`, `lr`, `glr`, and `fault`
    /// (`SEED:DROP_PERMILLE`). `name` is required; everything else falls
    /// back to the [`JobSpec::new`] defaults.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let mut spec = Self::new("", Workload::AlexNetMnist, Topology::ring(4));
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed token (expected key=value): {token}"))?;
            match key {
                "name" => spec.name = value.to_string(),
                "workload" => spec.workload = parse_workload(value)?,
                "topo" => spec.topology = parse_topology(value)?,
                "k" => {
                    spec.k = if value == "never" {
                        None
                    } else {
                        Some(parse_num(key, value)?)
                    };
                }
                "seed" => spec.seed = parse_num(key, value)?,
                "rounds" => spec.rounds = parse_num(key, value)?,
                "examples" => spec.train_examples = parse_num(key, value)?,
                "test" => spec.test_examples = parse_num(key, value)?,
                "batch" => spec.batch_per_worker = parse_num(key, value)?,
                "lr" => spec.local_lr = parse_num(key, value)?,
                "glr" => spec.global_lr = parse_num(key, value)?,
                "fault" => spec.fault_plan = parse_fault(value)?,
                other => return Err(format!("unknown job-spec key: {other}")),
            }
        }
        if spec.name.is_empty() {
            return Err("job spec is missing name=".to_string());
        }
        Ok(spec)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value for {key}: {value}"))
}

fn parse_workload(value: &str) -> Result<Workload, String> {
    Ok(match value {
        "alexnet_mnist" => Workload::AlexNetMnist,
        "alexnet_cifar10" => Workload::AlexNetCifar10,
        "resnet20_cifar10" => Workload::ResNet20Cifar10,
        "resnet18_imagenet" => Workload::ResNet18ImageNet,
        "resnet50_imagenet" => Workload::ResNet50ImageNet,
        "distilbert_imdb" => Workload::DistilBertImdb,
        other => return Err(format!("unknown workload: {other}")),
    })
}

fn parse_topology(value: &str) -> Result<Topology, String> {
    if let Some(m) = value.strip_prefix("ring:") {
        return Ok(Topology::ring(parse_num("topo", m)?));
    }
    if let Some(rc) = value.strip_prefix("torus:") {
        let (r, c) = rc
            .split_once('x')
            .ok_or_else(|| format!("bad torus spec (expected torus:RxC): {value}"))?;
        return Ok(Topology::torus(
            parse_num("topo", r)?,
            parse_num("topo", c)?,
        ));
    }
    Err(format!(
        "unknown topology (expected ring:M or torus:RxC): {value}"
    ))
}

fn parse_fault(value: &str) -> Result<FaultPlan, String> {
    let (seed, drop) = value
        .split_once(':')
        .ok_or_else(|| format!("bad fault spec (expected SEED:DROP_PERMILLE): {value}"))?;
    let seed: u64 = parse_num("fault", seed)?;
    let drop_permille: u64 = parse_num("fault", drop)?;
    Ok(FaultPlan::seeded(seed).with_link_drop(drop_permille as f64 / 1000.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_line_round_trips_the_readme_example() {
        let spec =
            JobSpec::parse_line("name=j0 workload=alexnet_mnist topo=ring:4 k=20 seed=7 rounds=40")
                .expect("valid line");
        assert_eq!(spec.name, "j0");
        assert_eq!(spec.workload, Workload::AlexNetMnist);
        assert_eq!(spec.topology, Topology::ring(4));
        assert_eq!(spec.k, Some(20));
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.rounds, 40);
    }

    #[test]
    fn parse_line_supports_torus_never_and_fault() {
        let spec = JobSpec::parse_line(
            "name=t workload=distilbert_imdb topo=torus:2x3 k=never fault=9:50",
        )
        .expect("valid line");
        assert_eq!(spec.topology, Topology::torus(2, 3));
        assert_eq!(spec.k, None);
        assert!(!spec.fault_plan.is_none());
    }

    #[test]
    fn parse_line_rejects_garbage() {
        assert!(JobSpec::parse_line("name=x topo=star:4").is_err());
        assert!(JobSpec::parse_line("name=x bogus=1").is_err());
        assert!(JobSpec::parse_line("workload=alexnet_mnist").is_err());
    }
}
