//! Job specifications: what a client submits to the job server.
//!
//! A [`JobSpec`] is the serving-side unit of work — one Marsit training run
//! described by its model proxy, topology, full-precision period `K`, fault
//! plan, seed, and round budget. Specs arrive over the submission queue as
//! single `key=value` lines (see [`JobSpec::parse_line`]), the format the
//! `marsit_serve` binary reads from a file or stdin.

use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::{FaultPlan, Topology};
use marsit_telemetry::Telemetry;
use marsit_trainsim::{StrategyKind, TrainConfig};

/// Tenant a spec belongs to when no `tenant=` key is given. Admission
/// control buckets quota by tenant; single-tenant deployments never need
/// to name one.
pub const DEFAULT_TENANT: &str = "default";

/// One training job submitted to the server.
///
/// The defaults describe a short serving-sized run (small synthetic split,
/// no periodic eval) so a storm of jobs exercises the scheduler rather than
/// the data generator; every field can be overridden per job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen job name (unique per submission batch).
    pub name: String,
    /// Tenant the job is billed to (admission-control quota bucket).
    pub tenant: String,
    /// Model/dataset proxy to train.
    pub workload: Workload,
    /// Cluster topology the job's collectives run over.
    pub topology: Topology,
    /// Full-precision period `K` (`None` = plain one-bit Marsit).
    pub k: Option<u32>,
    /// Master seed.
    pub seed: u64,
    /// Round budget `T`.
    pub rounds: usize,
    /// Deterministic fault plan ([`FaultPlan::none`] by default).
    pub fault_plan: FaultPlan,
    /// Training-set size (split IID across the topology's workers).
    pub train_examples: usize,
    /// Held-out test-set size.
    pub test_examples: usize,
    /// Per-worker minibatch size.
    pub batch_per_worker: usize,
    /// Local learning rate `η_l`.
    pub local_lr: f32,
    /// Marsit global learning rate `η_s`.
    pub global_lr: f32,
}

impl JobSpec {
    /// A serving-sized job: `workload` on `topology` for `rounds` rounds.
    #[must_use]
    pub fn new(name: impl Into<String>, workload: Workload, topology: Topology) -> Self {
        Self {
            name: name.into(),
            tenant: DEFAULT_TENANT.to_string(),
            workload,
            topology,
            k: Some(20),
            seed: 42,
            rounds: 30,
            fault_plan: FaultPlan::none(),
            train_examples: 512,
            test_examples: 64,
            batch_per_worker: 16,
            local_lr: 0.01,
            global_lr: 0.002,
        }
    }

    /// The trainer configuration for this job, recording into `telemetry`.
    ///
    /// The scheduler owns parallelism at the job level (one shard thread
    /// drives many jobs), so the per-job config keeps the worker compute
    /// phase and the collectives on the shard thread.
    #[must_use]
    pub fn to_train_config(&self, telemetry: Telemetry) -> TrainConfig {
        let mut cfg = TrainConfig::new(
            self.workload,
            self.topology,
            StrategyKind::Marsit { k: self.k },
        );
        cfg.rounds = self.rounds;
        cfg.seed = self.seed;
        cfg.fault_plan = self.fault_plan.clone();
        cfg.train_examples = self.train_examples;
        cfg.test_examples = self.test_examples;
        cfg.batch_per_worker = self.batch_per_worker;
        cfg.local_lr = self.local_lr;
        cfg.marsit_global_lr = self.global_lr;
        cfg.optimizer = OptimizerKind::Momentum(0.9);
        cfg.eval_every = 0;
        cfg.parallel_workers = false;
        cfg.marsit_intra_threads = 1;
        cfg.telemetry = telemetry;
        cfg
    }

    /// Parses one submission-queue line of whitespace-separated `key=value`
    /// tokens, e.g.
    ///
    /// ```text
    /// name=j0 workload=alexnet_mnist topo=ring:4 k=20 seed=7 rounds=40
    /// ```
    ///
    /// Recognized keys: `name`, `tenant`, `workload` (snake-case proxy
    /// name), `topo` (`ring:M` or `torus:RxC`), `k` (`never` or a period),
    /// `seed`, `rounds`, `examples`, `test`, `batch`, `lr`, `glr`, and
    /// `fault` (`SEED:DROP_PERMILLE`). `name` is required; everything else
    /// falls back to the [`JobSpec::new`] defaults.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let mut spec = Self::new("", Workload::AlexNetMnist, Topology::ring(4));
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed token (expected key=value): {token}"))?;
            match key {
                "name" => spec.name = value.to_string(),
                "tenant" => spec.tenant = value.to_string(),
                "workload" => spec.workload = parse_workload(value)?,
                "topo" => spec.topology = parse_topology(value)?,
                "k" => {
                    spec.k = if value == "never" {
                        None
                    } else {
                        Some(parse_num(key, value)?)
                    };
                }
                "seed" => spec.seed = parse_num(key, value)?,
                "rounds" => spec.rounds = parse_num(key, value)?,
                "examples" => spec.train_examples = parse_num(key, value)?,
                "test" => spec.test_examples = parse_num(key, value)?,
                "batch" => spec.batch_per_worker = parse_num(key, value)?,
                "lr" => spec.local_lr = parse_num(key, value)?,
                "glr" => spec.global_lr = parse_num(key, value)?,
                "fault" => spec.fault_plan = parse_fault(value)?,
                other => return Err(format!("unknown job-spec key: {other}")),
            }
        }
        if spec.name.is_empty() {
            return Err("job spec is missing name=".to_string());
        }
        Ok(spec)
    }

    /// Serializes the spec back to one canonical submission-queue line that
    /// [`JobSpec::parse_line`] reconstructs field-for-field — the exact
    /// round-trip the submission journal depends on. Floats are rendered
    /// with Rust's shortest-round-trip formatting, so every `f32` bit
    /// pattern a client can type survives the trip.
    ///
    /// # Errors
    ///
    /// Returns a description when the spec cannot be expressed as a queue
    /// line: a name or tenant containing whitespace (the line format is
    /// whitespace-delimited), or a fault plan richer than the seeded
    /// link-drop form the `fault=SEED:DROP_PERMILLE` key encodes.
    pub fn to_line(&self) -> Result<String, String> {
        for (what, value) in [("name", &self.name), ("tenant", &self.tenant)] {
            if value.is_empty() || value.chars().any(char::is_whitespace) {
                return Err(format!(
                    "job {what} {value:?} is not line-representable \
                     (must be non-empty with no whitespace)"
                ));
            }
        }
        let mut line = format!("name={}", self.name);
        if self.tenant != DEFAULT_TENANT {
            line.push_str(&format!(" tenant={}", self.tenant));
        }
        line.push_str(&format!(
            " workload={} topo={}",
            workload_tag(self.workload),
            topology_tag(self.topology)
        ));
        match self.k {
            Some(k) => line.push_str(&format!(" k={k}")),
            None => line.push_str(" k=never"),
        }
        line.push_str(&format!(
            " seed={} rounds={} examples={} test={} batch={} lr={:?} glr={:?}",
            self.seed,
            self.rounds,
            self.train_examples,
            self.test_examples,
            self.batch_per_worker,
            self.local_lr,
            self.global_lr,
        ));
        if !self.fault_plan.is_none() {
            let permille = (self.fault_plan.link_drop_prob * 1000.0).round() as u64;
            let rebuilt = FaultPlan::seeded(self.fault_plan.seed)
                .with_link_drop(permille.min(1000) as f64 / 1000.0);
            if rebuilt != self.fault_plan {
                return Err(format!(
                    "fault plan for job {} is not line-representable \
                     (only seeded link-drop in whole permille fits fault=SEED:PERMILLE)",
                    self.name
                ));
            }
            line.push_str(&format!(" fault={}:{permille}", self.fault_plan.seed));
        }
        Ok(line)
    }
}

fn workload_tag(workload: Workload) -> &'static str {
    match workload {
        Workload::AlexNetMnist => "alexnet_mnist",
        Workload::AlexNetCifar10 => "alexnet_cifar10",
        Workload::ResNet20Cifar10 => "resnet20_cifar10",
        Workload::ResNet18ImageNet => "resnet18_imagenet",
        Workload::ResNet50ImageNet => "resnet50_imagenet",
        Workload::DistilBertImdb => "distilbert_imdb",
    }
}

fn topology_tag(topology: Topology) -> String {
    match topology {
        Topology::Ring { workers } => format!("ring:{workers}"),
        Topology::Torus { rows, cols } => format!("torus:{rows}x{cols}"),
        // Star is not in the submission-line grammar yet; emit the ring
        // form it would be rejected as, so the caller's parse round-trip
        // check fails loudly rather than silently serving a different job.
        Topology::Star { workers } => format!("star:{workers}"),
    }
}

/// One rejected line from a submission queue: where it was, what it said,
/// and why it was refused. The CLI renders these as `path:line: reason`
/// diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueDiagnostic {
    /// 1-based line number in the queue file.
    pub line_no: usize,
    /// The offending line, verbatim.
    pub line: String,
    /// Why it was rejected.
    pub reason: String,
}

impl std::fmt::Display for QueueDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}: {:?}", self.line_no, self.reason, self.line)
    }
}

/// Parses a whole submission queue, collecting *every* malformed line as a
/// [`QueueDiagnostic`] instead of stopping at the first (or panicking).
/// Blank lines and `#` comments are skipped; duplicate job names are
/// diagnosed because the journal and the outcome map key jobs by name.
#[must_use]
pub fn parse_queue(text: &str) -> (Vec<JobSpec>, Vec<QueueDiagnostic>) {
    let mut specs: Vec<JobSpec> = Vec::new();
    let mut diagnostics = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match JobSpec::parse_line(line) {
            Ok(spec) => {
                if specs.iter().any(|s| s.name == spec.name) {
                    diagnostics.push(QueueDiagnostic {
                        line_no: idx + 1,
                        line: raw.to_string(),
                        reason: format!("duplicate job name {:?}", spec.name),
                    });
                } else {
                    specs.push(spec);
                }
            }
            Err(reason) => diagnostics.push(QueueDiagnostic {
                line_no: idx + 1,
                line: raw.to_string(),
                reason,
            }),
        }
    }
    (specs, diagnostics)
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value for {key}: {value}"))
}

fn parse_workload(value: &str) -> Result<Workload, String> {
    Ok(match value {
        "alexnet_mnist" => Workload::AlexNetMnist,
        "alexnet_cifar10" => Workload::AlexNetCifar10,
        "resnet20_cifar10" => Workload::ResNet20Cifar10,
        "resnet18_imagenet" => Workload::ResNet18ImageNet,
        "resnet50_imagenet" => Workload::ResNet50ImageNet,
        "distilbert_imdb" => Workload::DistilBertImdb,
        other => return Err(format!("unknown workload: {other}")),
    })
}

fn parse_topology(value: &str) -> Result<Topology, String> {
    if let Some(m) = value.strip_prefix("ring:") {
        return Ok(Topology::ring(parse_num("topo", m)?));
    }
    if let Some(rc) = value.strip_prefix("torus:") {
        let (r, c) = rc
            .split_once('x')
            .ok_or_else(|| format!("bad torus spec (expected torus:RxC): {value}"))?;
        return Ok(Topology::torus(
            parse_num("topo", r)?,
            parse_num("topo", c)?,
        ));
    }
    Err(format!(
        "unknown topology (expected ring:M or torus:RxC): {value}"
    ))
}

fn parse_fault(value: &str) -> Result<FaultPlan, String> {
    let (seed, drop) = value
        .split_once(':')
        .ok_or_else(|| format!("bad fault spec (expected SEED:DROP_PERMILLE): {value}"))?;
    let seed: u64 = parse_num("fault", seed)?;
    let drop_permille: u64 = parse_num("fault", drop)?;
    Ok(FaultPlan::seeded(seed).with_link_drop(drop_permille as f64 / 1000.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_line_round_trips_the_readme_example() {
        let spec =
            JobSpec::parse_line("name=j0 workload=alexnet_mnist topo=ring:4 k=20 seed=7 rounds=40")
                .expect("valid line");
        assert_eq!(spec.name, "j0");
        assert_eq!(spec.workload, Workload::AlexNetMnist);
        assert_eq!(spec.topology, Topology::ring(4));
        assert_eq!(spec.k, Some(20));
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.rounds, 40);
    }

    #[test]
    fn parse_line_supports_torus_never_and_fault() {
        let spec = JobSpec::parse_line(
            "name=t workload=distilbert_imdb topo=torus:2x3 k=never fault=9:50",
        )
        .expect("valid line");
        assert_eq!(spec.topology, Topology::torus(2, 3));
        assert_eq!(spec.k, None);
        assert!(!spec.fault_plan.is_none());
    }

    #[test]
    fn parse_line_rejects_garbage() {
        assert!(JobSpec::parse_line("name=x topo=star:4").is_err());
        assert!(JobSpec::parse_line("name=x bogus=1").is_err());
        assert!(JobSpec::parse_line("workload=alexnet_mnist").is_err());
    }

    #[test]
    fn to_line_round_trips_every_field() {
        let mut spec = JobSpec::new("rt", Workload::ResNet20Cifar10, Topology::torus(2, 3));
        spec.tenant = "team-a".to_string();
        spec.k = None;
        spec.seed = u64::MAX;
        spec.rounds = 17;
        spec.train_examples = 300;
        spec.test_examples = 41;
        spec.batch_per_worker = 7;
        spec.local_lr = f32::from_bits(0x3C23_D70B); // not exactly representable in decimal shorthand
        spec.global_lr = -0.0;
        spec.fault_plan = FaultPlan::seeded(9).with_link_drop(0.05);
        let line = spec.to_line().expect("representable");
        let back = JobSpec::parse_line(&line).expect("canonical line parses");
        assert_eq!(back, spec);
        // Canonical form is a fixed point.
        assert_eq!(back.to_line().expect("still representable"), line);
    }

    #[test]
    fn to_line_rejects_unrepresentable_specs() {
        let mut spec = JobSpec::new("bad name", Workload::AlexNetMnist, Topology::ring(4));
        assert!(spec.to_line().is_err(), "whitespace in name");
        spec.name = "ok".to_string();
        spec.fault_plan = FaultPlan::seeded(1).with_link_corruption(0.5);
        assert!(spec.to_line().is_err(), "corruption not line-encodable");
        spec.fault_plan = FaultPlan::seeded(1).with_link_drop(0.0005);
        assert!(spec.to_line().is_err(), "sub-permille drop not encodable");
    }

    #[test]
    fn parse_queue_collects_all_diagnostics() {
        let queue = "# storm\n\
                     name=a rounds=3\n\
                     name=b topo=hypercube:4\n\
                     \n\
                     bogus line\n\
                     name=a rounds=5\n\
                     name=c tenant=t2\n";
        let (specs, diags) = parse_queue(queue);
        assert_eq!(
            specs.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["a", "c"]
        );
        assert_eq!(specs[1].tenant, "t2");
        assert_eq!(diags.len(), 3);
        assert_eq!(diags[0].line_no, 3);
        assert_eq!(diags[1].line_no, 5);
        assert!(diags[2].reason.contains("duplicate"));
    }
}
