//! Per-shard workspace pools.
//!
//! A shard recycles [`WorkspaceHandle`]s between the jobs it hosts: a
//! finishing (or migrating-out) job releases its warm round workspace into
//! the shard's pool, and the next job of the same shape adopts it instead
//! of growing a cold one. Pools are keyed by [`WorkspaceKey`] — model
//! dimension, worker count, and topology class — the three quantities that
//! determine every buffer capacity a Marsit round touches.
//!
//! Pooling is purely a capacity optimization: the handle carries no live
//! state (see [`WorkspaceHandle`]'s determinism argument), so a pool hit
//! changes allocation traffic and nothing else.

use std::collections::HashMap;

use marsit_core::WorkspaceHandle;
use marsit_simnet::Topology;

/// Which collective schedule family a workspace was shaped by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyClass {
    /// Ring all-reduce schedules.
    Ring,
    /// Torus (row/column phase) schedules.
    Torus,
}

impl TopologyClass {
    /// The class of `topology`.
    ///
    /// # Panics
    ///
    /// Panics on a star topology (Marsit is multi-hop all-reduce only, so
    /// no job-server workspace ever has a star shape).
    #[must_use]
    pub fn of(topology: Topology) -> Self {
        match topology {
            Topology::Ring { .. } => Self::Ring,
            Topology::Torus { .. } => Self::Torus,
            Topology::Star { .. } => panic!("Marsit jobs never run on a star topology"),
        }
    }
}

/// Pool key: the shape class of a round workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkspaceKey {
    /// Model dimension `d`.
    pub d: usize,
    /// Worker count `m`.
    pub m: usize,
    /// Collective schedule family.
    pub topology: TopologyClass,
}

impl WorkspaceKey {
    /// The key for a job of dimension `d` on `topology`.
    #[must_use]
    pub fn new(d: usize, topology: Topology) -> Self {
        Self {
            d,
            m: topology.workers(),
            topology: TopologyClass::of(topology),
        }
    }
}

/// Cumulative pool activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the pool (warm adoption).
    pub hits: u64,
    /// Checkouts that found no pooled workspace of the right shape.
    pub misses: u64,
    /// Handles returned to the pool.
    pub returns: u64,
    /// Handles dropped because the per-key cap was reached.
    pub evictions: u64,
}

impl PoolStats {
    /// Hit fraction over all checkouts (0 when none happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.returns += other.returns;
        self.evictions += other.evictions;
    }
}

/// A shard-local pool of released round workspaces, keyed by shape.
#[derive(Debug)]
pub struct WorkspacePool {
    slots: HashMap<WorkspaceKey, Vec<WorkspaceHandle>>,
    cap_per_key: usize,
    stats: PoolStats,
}

impl WorkspacePool {
    /// A pool holding at most `cap_per_key` workspaces per shape key.
    #[must_use]
    pub fn new(cap_per_key: usize) -> Self {
        Self {
            slots: HashMap::new(),
            cap_per_key: cap_per_key.max(1),
            stats: PoolStats::default(),
        }
    }

    /// Checks out a warm workspace for `key`, if one is pooled.
    pub fn checkout(&mut self, key: WorkspaceKey) -> Option<WorkspaceHandle> {
        let handle = self.slots.get_mut(&key).and_then(Vec::pop);
        if handle.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        handle
    }

    /// Returns a released workspace to the pool (dropped if the key is at
    /// capacity).
    pub fn checkin(&mut self, key: WorkspaceKey, handle: WorkspaceHandle) {
        let slot = self.slots.entry(key).or_default();
        if slot.len() < self.cap_per_key {
            slot.push(handle);
            self.stats.returns += 1;
        } else {
            self.stats.evictions += 1;
        }
    }

    /// Cumulative activity counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Workspaces currently pooled (all keys).
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.slots.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_checkin_cycle_counts_hits_and_misses() {
        let key = WorkspaceKey::new(128, Topology::ring(4));
        let mut pool = WorkspacePool::new(2);
        assert!(pool.checkout(key).is_none());
        pool.checkin(key, WorkspaceHandle::new());
        assert!(pool.checkout(key).is_some());
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.returns), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cap_per_key_evicts_extras() {
        let key = WorkspaceKey::new(64, Topology::torus(2, 2));
        let mut pool = WorkspacePool::new(1);
        pool.checkin(key, WorkspaceHandle::new());
        pool.checkin(key, WorkspaceHandle::new());
        assert_eq!(pool.pooled(), 1);
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn keys_separate_shapes() {
        let ring = WorkspaceKey::new(64, Topology::ring(4));
        let torus = WorkspaceKey::new(64, Topology::torus(2, 2));
        assert_ne!(ring, torus);
        let mut pool = WorkspacePool::new(4);
        pool.checkin(ring, WorkspaceHandle::new());
        assert!(pool.checkout(torus).is_none());
        assert!(pool.checkout(ring).is_some());
    }
}
