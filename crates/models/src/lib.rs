//! Training substrate for the Marsit reproduction: models with flat
//! parameter/gradient views, plus the local optimizers the paper uses.
//!
//! The paper trains AlexNet/ResNet/DistilBERT with PyTorch; this crate
//! provides CPU-trainable proxies — MLPs (see [`Workload`]) and a small
//! convolutional network ([`ConvNet`]) — with *exact* manual
//! backpropagation, so that the gradients fed into the synchronization layer
//! are true stochastic gradients — the property all of the paper's analysis
//! rests on. Gradients are exposed as flat `&[f32]`, the shape in which they
//! are compressed and transmitted.
//!
//! # Examples
//!
//! ```
//! use marsit_models::{Mlp, Model, Workload};
//! use marsit_datagen::synthetic::cifar10_like;
//!
//! let (train, test) = cifar10_like().generate_split(512, 128, 0);
//! let spec = Workload::ResNet20Cifar10.proxy_spec();
//! let mut model = Mlp::new(spec, 42);
//! let mut grad = vec![0.0; model.num_params()];
//! let loss = model.loss_and_grad(&train, &mut grad);
//! assert!(loss > 0.0);
//! let eval = model.evaluate(&test);
//! assert!(eval.accuracy <= 1.0);
//! ```

pub mod convnet;
pub mod mlp;
pub mod model;
pub mod optim;
pub mod proxy;

pub use convnet::{ConvNet, ConvNetSpec};
pub use mlp::{Mlp, MlpSpec};
pub use model::{Evaluation, Model};
pub use optim::{Adam, Momentum, Optimizer, OptimizerKind, OptimizerState, Sgd};
pub use proxy::Workload;
