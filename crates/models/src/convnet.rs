//! A small convolutional network with exact manual backpropagation.
//!
//! The paper's vision workloads are CNNs (AlexNet, ResNets). [`ConvNet`]
//! provides a genuine convolutional substrate — single-channel input
//! interpreted as an `H×W` image, one valid-padding conv layer with ReLU, a
//! hidden fully-connected ReLU layer, and a softmax head — so that the
//! synchronization experiments can also be driven by structured CNN
//! gradients rather than MLP gradients only. Backprop is written out
//! long-hand and verified against finite differences.

use marsit_datagen::Dataset;
use marsit_tensor::rng::FastRng;
use marsit_tensor::Tensor;

use crate::model::{Evaluation, Model};

/// Architecture of a [`ConvNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvNetSpec {
    /// Input image height (input dim must equal `height × width`).
    pub height: usize,
    /// Input image width.
    pub width: usize,
    /// Number of convolution filters.
    pub channels: usize,
    /// Square kernel side (valid padding, stride 1).
    pub kernel: usize,
    /// Hidden fully-connected width.
    pub hidden: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl ConvNetSpec {
    /// A spec for `side × side` images.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the image or any size is zero.
    #[must_use]
    pub fn square(
        side: usize,
        channels: usize,
        kernel: usize,
        hidden: usize,
        classes: usize,
    ) -> Self {
        let spec = Self {
            height: side,
            width: side,
            channels,
            kernel,
            hidden,
            classes,
        };
        spec.validate();
        spec
    }

    fn validate(self) {
        assert!(
            self.height > 0 && self.width > 0 && self.channels > 0 && self.kernel > 0,
            "sizes must be positive"
        );
        assert!(
            self.hidden > 0 && self.classes > 0,
            "sizes must be positive"
        );
        assert!(
            self.kernel <= self.height && self.kernel <= self.width,
            "kernel must fit the image"
        );
    }

    /// Input dimensionality (`height × width`).
    #[must_use]
    pub fn input_dim(self) -> usize {
        self.height * self.width
    }

    /// Convolution output height (valid padding, stride 1).
    #[must_use]
    pub fn out_h(self) -> usize {
        self.height - self.kernel + 1
    }

    /// Convolution output width.
    #[must_use]
    pub fn out_w(self) -> usize {
        self.width - self.kernel + 1
    }

    /// Flattened convolution feature count.
    #[must_use]
    pub fn conv_features(self) -> usize {
        self.channels * self.out_h() * self.out_w()
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn num_params(self) -> usize {
        let conv = self.channels * self.kernel * self.kernel + self.channels;
        let fc1 = self.conv_features() * self.hidden + self.hidden;
        let fc2 = self.hidden * self.classes + self.classes;
        conv + fc1 + fc2
    }
}

/// Parameter-block offsets within the flat buffer.
#[derive(Debug, Clone, Copy)]
struct Blocks {
    conv_w: usize,
    conv_b: usize,
    fc1_w: usize,
    fc1_b: usize,
    fc2_w: usize,
    fc2_b: usize,
    total: usize,
}

impl Blocks {
    fn new(spec: ConvNetSpec) -> Self {
        let conv_w = 0;
        let conv_b = conv_w + spec.channels * spec.kernel * spec.kernel;
        let fc1_w = conv_b + spec.channels;
        let fc1_b = fc1_w + spec.conv_features() * spec.hidden;
        let fc2_w = fc1_b + spec.hidden;
        let fc2_b = fc2_w + spec.hidden * spec.classes;
        let total = fc2_b + spec.classes;
        Self {
            conv_w,
            conv_b,
            fc1_w,
            fc1_b,
            fc2_w,
            fc2_b,
            total,
        }
    }
}

/// `conv(k×k) → ReLU → fc → ReLU → softmax` on single-channel images.
///
/// # Examples
///
/// ```
/// use marsit_models::{ConvNet, ConvNetSpec, Model};
/// use marsit_datagen::synthetic::mnist_like;
///
/// let (train, _) = mnist_like().generate_split(32, 8, 0); // 64-dim = 8×8
/// let spec = ConvNetSpec::square(8, 4, 3, 16, 10);
/// let mut model = ConvNet::new(spec, 1);
/// let mut grad = vec![0.0; model.num_params()];
/// let loss = model.loss_and_grad(&train, &mut grad);
/// assert!(loss > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConvNet {
    spec: ConvNetSpec,
    blocks_total: usize,
    params: Vec<f32>,
}

impl ConvNet {
    /// Creates a network with He-style initialization from `seed`.
    #[must_use]
    pub fn new(spec: ConvNetSpec, seed: u64) -> Self {
        spec.validate();
        let blocks = Blocks::new(spec);
        let mut rng = FastRng::new(seed, 0xC0A7);
        let mut params = vec![0.0f32; blocks.total];
        // Conv filters: fan-in = k².
        let conv_std = (2.0 / (spec.kernel * spec.kernel) as f32).sqrt();
        let conv = Tensor::gaussian(1, blocks.conv_b - blocks.conv_w, conv_std, &mut rng);
        params[blocks.conv_w..blocks.conv_b].copy_from_slice(conv.as_slice());
        // FC1: fan-in = conv features.
        let fc1_std = (2.0 / spec.conv_features() as f32).sqrt();
        let fc1 = Tensor::gaussian(1, blocks.fc1_b - blocks.fc1_w, fc1_std, &mut rng);
        params[blocks.fc1_w..blocks.fc1_b].copy_from_slice(fc1.as_slice());
        // FC2: fan-in = hidden.
        let fc2_std = (2.0 / spec.hidden as f32).sqrt();
        let fc2 = Tensor::gaussian(1, blocks.fc2_b - blocks.fc2_w, fc2_std, &mut rng);
        params[blocks.fc2_w..blocks.fc2_b].copy_from_slice(fc2.as_slice());
        Self {
            spec,
            blocks_total: blocks.total,
            params,
        }
    }

    /// The architecture spec.
    #[must_use]
    pub fn spec(&self) -> ConvNetSpec {
        self.spec
    }

    /// Forward pass for one batch. Returns (conv pre-activations, conv
    /// activations flattened per example, fc1 activations, logits).
    #[allow(clippy::type_complexity)]
    fn forward(&self, x: &Tensor) -> (Vec<Vec<f32>>, Tensor, Tensor, Tensor) {
        let s = self.spec;
        let b = Blocks::new(s);
        let n = x.rows();
        let (oh, ow) = (s.out_h(), s.out_w());
        let feat = s.conv_features();
        let mut conv_pre: Vec<Vec<f32>> = Vec::with_capacity(n);
        let mut conv_act = Tensor::zeros(n, feat);
        for i in 0..n {
            let img = x.row(i);
            let mut pre = vec![0.0f32; feat];
            for c in 0..s.channels {
                let w0 = b.conv_w + c * s.kernel * s.kernel;
                let bias = self.params[b.conv_b + c];
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut acc = bias;
                        for ky in 0..s.kernel {
                            for kx in 0..s.kernel {
                                acc += self.params[w0 + ky * s.kernel + kx]
                                    * img[(y + ky) * s.width + (xx + kx)];
                            }
                        }
                        pre[c * oh * ow + y * ow + xx] = acc;
                    }
                }
            }
            for (o, &p) in conv_act.row_mut(i).iter_mut().zip(&pre) {
                *o = p.max(0.0);
            }
            conv_pre.push(pre);
        }
        // FC1.
        let w1 = Tensor::from_vec(
            feat,
            s.hidden,
            self.params[b.fc1_w..b.fc1_w + feat * s.hidden].to_vec(),
        );
        let mut h1 = conv_act.matmul(&w1);
        h1.add_row_inplace(&self.params[b.fc1_b..b.fc1_b + s.hidden]);
        let h1_act = h1.map(|v| v.max(0.0));
        // FC2.
        let w2 = Tensor::from_vec(
            s.hidden,
            s.classes,
            self.params[b.fc2_w..b.fc2_w + s.hidden * s.classes].to_vec(),
        );
        let mut logits = h1_act.matmul(&w2);
        logits.add_row_inplace(&self.params[b.fc2_b..b.fc2_b + s.classes]);
        (conv_pre, conv_act, h1_act, logits)
    }

    fn softmax_xent(logits: &mut Tensor, labels: &[usize]) -> f64 {
        let n = logits.rows();
        let mut loss = 0.0f64;
        for r in 0..n {
            let row = logits.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
            loss -= f64::from(row[labels[r]].max(1e-12).ln());
        }
        loss / n as f64
    }
}

impl Model for ConvNet {
    fn num_params(&self) -> usize {
        self.blocks_total
    }

    fn read_params(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.params.len(), "parameter length mismatch");
        out.copy_from_slice(&self.params);
    }

    fn write_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(params);
    }

    fn loss_and_grad(&self, batch: &Dataset, grad_out: &mut [f32]) -> f64 {
        let s = self.spec;
        let b = Blocks::new(s);
        assert_eq!(
            grad_out.len(),
            self.params.len(),
            "gradient length mismatch"
        );
        assert_eq!(batch.dim(), s.input_dim(), "batch dimensionality mismatch");
        let n = batch.len();
        let x = batch.features();
        let (conv_pre, conv_act, h1_act, mut probs) = self.forward(x);
        let loss = Self::softmax_xent(&mut probs, batch.labels());

        grad_out.fill(0.0);
        let inv_n = 1.0 / n as f32;
        // dlogits.
        for r in 0..n {
            let label = batch.labels()[r];
            let row = probs.row_mut(r);
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v *= inv_n;
            }
        }
        let dlogits = probs;
        // FC2 grads: dW2 = h1ᵀ·dlogits, db2 = colsum.
        let dw2 = h1_act.matmul_tn(&dlogits);
        grad_out[b.fc2_w..b.fc2_w + s.hidden * s.classes].copy_from_slice(dw2.as_slice());
        grad_out[b.fc2_b..b.fc2_b + s.classes].copy_from_slice(&dlogits.sum_rows());
        // Back to h1 through ReLU.
        let w2 = Tensor::from_vec(
            s.hidden,
            s.classes,
            self.params[b.fc2_w..b.fc2_w + s.hidden * s.classes].to_vec(),
        );
        let mut dh1 = dlogits.matmul_nt(&w2);
        for r in 0..n {
            let act = h1_act.row(r);
            for (d, &a) in dh1.row_mut(r).iter_mut().zip(act) {
                if a <= 0.0 {
                    *d = 0.0;
                }
            }
        }
        // FC1 grads.
        let feat = s.conv_features();
        let dw1 = conv_act.matmul_tn(&dh1);
        grad_out[b.fc1_w..b.fc1_w + feat * s.hidden].copy_from_slice(dw1.as_slice());
        grad_out[b.fc1_b..b.fc1_b + s.hidden].copy_from_slice(&dh1.sum_rows());
        // Back to conv activations through ReLU.
        let w1 = Tensor::from_vec(
            feat,
            s.hidden,
            self.params[b.fc1_w..b.fc1_w + feat * s.hidden].to_vec(),
        );
        let dconv = dh1.matmul_nt(&w1);
        let (oh, ow) = (s.out_h(), s.out_w());
        for (i, pre) in conv_pre.iter().enumerate() {
            let img = x.row(i);
            let drow = dconv.row(i);
            for c in 0..s.channels {
                let w0 = b.conv_w + c * s.kernel * s.kernel;
                for y in 0..oh {
                    for xx in 0..ow {
                        let idx = c * oh * ow + y * ow + xx;
                        if pre[idx] <= 0.0 {
                            continue;
                        }
                        let d = drow[idx];
                        if d == 0.0 {
                            continue;
                        }
                        grad_out[b.conv_b + c] += d;
                        for ky in 0..s.kernel {
                            for kx in 0..s.kernel {
                                grad_out[w0 + ky * s.kernel + kx] +=
                                    d * img[(y + ky) * s.width + (xx + kx)];
                            }
                        }
                    }
                }
            }
        }
        loss
    }

    fn evaluate(&self, data: &Dataset) -> Evaluation {
        let (_, _, _, mut logits) = self.forward(data.features());
        let mut correct = 0usize;
        for r in 0..data.len() {
            if logits.argmax_row(r) == data.labels()[r] {
                correct += 1;
            }
        }
        let loss = Self::softmax_xent(&mut logits, data.labels());
        Evaluation {
            loss,
            accuracy: correct as f64 / data.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_datagen::synthetic::mnist_like;

    fn small_spec() -> ConvNetSpec {
        ConvNetSpec::square(8, 3, 3, 12, 10)
    }

    #[test]
    fn param_count_matches_layout() {
        let s = small_spec();
        // conv: 3·9 + 3; fc1: (3·36)·12 + 12; fc2: 12·10 + 10.
        assert_eq!(s.num_params(), 27 + 3 + 108 * 12 + 12 + 120 + 10);
        let model = ConvNet::new(s, 0);
        assert_eq!(model.num_params(), s.num_params());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let batch = mnist_like().generate(8, 3, 0);
        let mut model = ConvNet::new(small_spec(), 7);
        let d = model.num_params();
        let mut grad = vec![0.0; d];
        model.loss_and_grad(&batch, &mut grad);
        let base = model.params_vec();
        let eps = 1e-3f32;
        let mut rng = FastRng::new(5, 0);
        for _ in 0..40 {
            let i = rng.next_range(d as u64) as usize;
            let mut p = base.clone();
            p[i] += eps;
            model.write_params(&p);
            let mut tmp = vec![0.0; d];
            let lp = model.loss_and_grad(&batch, &mut tmp);
            p[i] -= 2.0 * eps;
            model.write_params(&p);
            let lm = model.loss_and_grad(&batch, &mut tmp);
            model.write_params(&base);
            let numeric = (lp - lm) / (2.0 * f64::from(eps));
            let analytic = f64::from(grad[i]);
            assert!(
                (numeric - analytic).abs() < 3e-2 * (1.0 + analytic.abs()),
                "coord {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn convnet_learns_the_image_proxy() {
        let (train, test) = mnist_like().generate_split(2048, 512, 11);
        let mut model = ConvNet::new(small_spec(), 2);
        let mut grad = vec![0.0; model.num_params()];
        let mut rng = FastRng::new(0, 0);
        for _ in 0..300 {
            let batch = train.sample_batch(32, &mut rng);
            model.loss_and_grad(&batch, &mut grad);
            let update: Vec<f32> = grad.iter().map(|g| 0.05 * g).collect();
            model.apply_update(&update);
        }
        let eval = model.evaluate(&test);
        assert!(eval.accuracy > 0.8, "accuracy {}", eval.accuracy);
    }

    #[test]
    fn deterministic_init_and_gradients() {
        let batch = mnist_like().generate(8, 1, 0);
        let a = ConvNet::new(small_spec(), 9);
        let b = ConvNet::new(small_spec(), 9);
        assert_eq!(a.params_vec(), b.params_vec());
        let mut ga = vec![0.0; a.num_params()];
        let mut gb = vec![0.0; b.num_params()];
        assert_eq!(
            a.loss_and_grad(&batch, &mut ga),
            b.loss_and_grad(&batch, &mut gb)
        );
        assert_eq!(ga, gb);
    }

    #[test]
    #[should_panic(expected = "kernel must fit")]
    fn oversized_kernel_panics() {
        let _ = ConvNetSpec::square(4, 2, 5, 8, 3);
    }
}
