//! Multi-layer perceptron with exact manual backpropagation.
//!
//! Fully-connected layers with ReLU activations and a softmax cross-entropy
//! head. A zero-hidden-layer [`Mlp`] is softmax (multinomial logistic)
//! regression. Parameters live in one flat buffer so the synchronization
//! strategies can treat the gradient as a plain `&[f32]`.

use marsit_datagen::Dataset;
use marsit_tensor::rng::FastRng;
use marsit_tensor::Tensor;

use crate::model::{Evaluation, Model};

/// Architecture description for an [`Mlp`].
///
/// # Examples
///
/// ```
/// use marsit_models::MlpSpec;
///
/// let spec = MlpSpec::new(64, vec![32], 10);
/// // (64*32 + 32) + (32*10 + 10)
/// assert_eq!(spec.num_params(), 2410);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    input_dim: usize,
    hidden: Vec<usize>,
    output_dim: usize,
}

impl MlpSpec {
    /// Creates a spec; `hidden` may be empty (softmax regression).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(input_dim: usize, hidden: Vec<usize>, output_dim: usize) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "dims must be positive");
        assert!(
            hidden.iter().all(|&h| h > 0),
            "hidden dims must be positive"
        );
        Self {
            input_dim,
            hidden,
            output_dim,
        }
    }

    /// Input dimensionality.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden layer widths.
    #[must_use]
    pub fn hidden(&self) -> &[usize] {
        &self.hidden
    }

    /// Number of output classes.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Layer dimension pairs `(in, out)` from input to output.
    #[must_use]
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        let mut dims = Vec::with_capacity(self.hidden.len() + 1);
        let mut prev = self.input_dim;
        for &h in &self.hidden {
            dims.push((prev, h));
            prev = h;
        }
        dims.push((prev, self.output_dim));
        dims
    }

    /// Total trainable parameter count `D`.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.layer_dims().iter().map(|(i, o)| i * o + o).sum()
    }
}

/// A fully-connected network: `input → [hidden ReLU]* → softmax`.
///
/// # Examples
///
/// ```
/// use marsit_models::{Mlp, MlpSpec, Model};
/// use marsit_datagen::synthetic::mnist_like;
///
/// let (train, _) = mnist_like().generate_split(64, 16, 0);
/// let mut model = Mlp::new(MlpSpec::new(64, vec![], 10), 7);
/// let mut grad = vec![0.0; model.num_params()];
/// let loss = model.loss_and_grad(&train, &mut grad);
/// assert!(loss > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    spec: MlpSpec,
    /// Flat parameters: per layer, `W` (in×out row-major) then `b` (out).
    params: Vec<f32>,
    /// L2 regularization strength (0 disables).
    l2_reg: f32,
}

impl Mlp {
    /// Creates an MLP with He-style initialization from `seed`.
    #[must_use]
    pub fn new(spec: MlpSpec, seed: u64) -> Self {
        let mut rng = FastRng::new(seed, 0x11117);
        let mut params = Vec::with_capacity(spec.num_params());
        for (fan_in, fan_out) in spec.layer_dims() {
            let std = (2.0 / fan_in as f32).sqrt();
            let w = Tensor::gaussian(fan_in, fan_out, std, &mut rng);
            params.extend_from_slice(w.as_slice());
            params.extend(std::iter::repeat_n(0.0f32, fan_out));
        }
        Self {
            spec,
            params,
            l2_reg: 0.0,
        }
    }

    /// Sets the L2 regularization coefficient (returns `self` for chaining).
    #[must_use]
    pub fn with_l2_reg(mut self, l2: f32) -> Self {
        self.l2_reg = l2;
        self
    }

    /// The architecture spec.
    #[must_use]
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// Offsets of each layer's `(W, b)` block within the flat buffer.
    fn layer_offsets(&self) -> Vec<(usize, usize, usize, usize)> {
        // (w_start, w_len, b_start, b_len)
        let mut out = Vec::new();
        let mut off = 0;
        for (i, o) in self.spec.layer_dims() {
            out.push((off, i * o, off + i * o, o));
            off += i * o + o;
        }
        out
    }

    /// Runs the forward pass, returning pre-activations per layer and the
    /// final logits. `acts[0]` is the input batch.
    fn forward(&self, x: &Tensor) -> (Vec<Tensor>, Tensor) {
        let dims = self.spec.layer_dims();
        let offsets = self.layer_offsets();
        let mut acts = vec![x.clone()];
        let mut cur = x.clone();
        for (layer, &(ws, wl, bs, bl)) in offsets.iter().enumerate() {
            let (fan_in, fan_out) = dims[layer];
            let w = Tensor::from_vec(fan_in, fan_out, self.params[ws..ws + wl].to_vec());
            let b = &self.params[bs..bs + bl];
            let mut z = cur.matmul(&w);
            z.add_row_inplace(b);
            if layer + 1 < offsets.len() {
                let h = z.map(|v| v.max(0.0));
                acts.push(h.clone());
                cur = h;
            } else {
                return (acts, z);
            }
        }
        unreachable!("spec always has at least one layer");
    }

    /// Row-wise softmax of `logits`, in place, returning the mean
    /// cross-entropy against `labels`.
    fn softmax_xent(logits: &mut Tensor, labels: &[usize]) -> f64 {
        let n = logits.rows();
        let mut loss = 0.0f64;
        for r in 0..n {
            let row = logits.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
            loss -= f64::from(row[labels[r]].max(1e-12).ln());
        }
        loss / n as f64
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn read_params(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.params.len(), "parameter length mismatch");
        out.copy_from_slice(&self.params);
    }

    fn write_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(params);
    }

    fn loss_and_grad(&self, batch: &Dataset, grad_out: &mut [f32]) -> f64 {
        assert_eq!(
            grad_out.len(),
            self.params.len(),
            "gradient length mismatch"
        );
        assert_eq!(
            batch.dim(),
            self.spec.input_dim,
            "batch dimensionality mismatch"
        );
        let n = batch.len();
        let (acts, mut probs) = self.forward(batch.features());
        let loss = Self::softmax_xent(&mut probs, batch.labels());

        // dL/dlogits = (softmax − onehot) / n
        let inv_n = 1.0 / n as f32;
        for r in 0..n {
            let label = batch.labels()[r];
            let row = probs.row_mut(r);
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v *= inv_n;
            }
        }

        grad_out.fill(0.0);
        let dims = self.spec.layer_dims();
        let offsets = self.layer_offsets();
        let mut delta = probs; // gradient w.r.t. the current layer's output
        for layer in (0..offsets.len()).rev() {
            let (ws, wl, bs, bl) = offsets[layer];
            let (fan_in, fan_out) = dims[layer];
            let input = &acts[layer];
            // dW = inputᵀ · delta ; db = column-sums of delta.
            let dw = input.matmul_tn(&delta);
            grad_out[ws..ws + wl].copy_from_slice(dw.as_slice());
            grad_out[bs..bs + bl].copy_from_slice(&delta.sum_rows());
            if layer > 0 {
                // Propagate: d(input) = delta · Wᵀ, gated by ReLU mask.
                let w = Tensor::from_vec(fan_in, fan_out, self.params[ws..ws + wl].to_vec());
                let mut dprev = delta.matmul_nt(&w);
                for r in 0..dprev.rows() {
                    let mask = acts[layer].row(r);
                    for (d, &a) in dprev.row_mut(r).iter_mut().zip(mask) {
                        if a <= 0.0 {
                            *d = 0.0;
                        }
                    }
                }
                delta = dprev;
            }
        }

        if self.l2_reg > 0.0 {
            // Regularize weights only, not biases.
            let mut reg_loss = 0.0f64;
            for &(ws, wl, _, _) in &offsets {
                for (g, &p) in grad_out[ws..ws + wl]
                    .iter_mut()
                    .zip(&self.params[ws..ws + wl])
                {
                    *g += self.l2_reg * p;
                    reg_loss += 0.5 * f64::from(self.l2_reg) * f64::from(p) * f64::from(p);
                }
            }
            return loss + reg_loss;
        }
        loss
    }

    fn evaluate(&self, data: &Dataset) -> Evaluation {
        let (_, mut logits) = self.forward(data.features());
        let mut correct = 0usize;
        for r in 0..data.len() {
            if logits.argmax_row(r) == data.labels()[r] {
                correct += 1;
            }
        }
        let loss = Self::softmax_xent(&mut logits, data.labels());
        Evaluation {
            loss,
            accuracy: correct as f64 / data.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_datagen::synthetic::mnist_like;

    fn small_batch() -> Dataset {
        mnist_like().generate(16, 3, 0)
    }

    #[test]
    fn spec_param_count() {
        let spec = MlpSpec::new(10, vec![8, 4], 3);
        assert_eq!(spec.num_params(), 10 * 8 + 8 + 8 * 4 + 4 + 4 * 3 + 3);
    }

    #[test]
    fn init_is_deterministic() {
        let spec = MlpSpec::new(64, vec![16], 10);
        let a = Mlp::new(spec.clone(), 5);
        let b = Mlp::new(spec, 5);
        assert_eq!(a.params_vec(), b.params_vec());
    }

    #[test]
    fn params_round_trip() {
        let mut m = Mlp::new(MlpSpec::new(64, vec![], 10), 1);
        let mut p = m.params_vec();
        p[0] = 123.0;
        m.write_params(&p);
        assert_eq!(m.params_vec()[0], 123.0);
    }

    /// Finite-difference check: the analytic gradient must match numerical
    /// differentiation of the loss. This validates the entire backprop chain.
    #[test]
    fn gradient_matches_finite_differences() {
        let batch = small_batch();
        for hidden in [vec![], vec![12], vec![10, 7]] {
            let mut model = Mlp::new(MlpSpec::new(64, hidden, 10), 9).with_l2_reg(0.01);
            let d = model.num_params();
            let mut grad = vec![0.0; d];
            model.loss_and_grad(&batch, &mut grad);
            let base = model.params_vec();
            let eps = 1e-3f32;
            let mut rng = FastRng::new(4, 0);
            // Check a random subset of coordinates.
            for _ in 0..30 {
                let i = rng.next_range(d as u64) as usize;
                let mut p = base.clone();
                p[i] += eps;
                model.write_params(&p);
                let mut tmp = vec![0.0; d];
                let lp = model.loss_and_grad(&batch, &mut tmp);
                p[i] -= 2.0 * eps;
                model.write_params(&p);
                let lm = model.loss_and_grad(&batch, &mut tmp);
                model.write_params(&base);
                let numeric = (lp - lm) / (2.0 * f64::from(eps));
                let analytic = f64::from(grad[i]);
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                    "coord {i}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn sgd_reduces_loss() {
        let (train, test) = mnist_like().generate_split(512, 256, 11);
        let mut model = Mlp::new(MlpSpec::new(64, vec![32], 10), 2);
        let mut grad = vec![0.0; model.num_params()];
        let before = model.evaluate(&test);
        let mut rng = FastRng::new(0, 0);
        for _ in 0..150 {
            let batch = train.sample_batch(64, &mut rng);
            model.loss_and_grad(&batch, &mut grad);
            let update: Vec<f32> = grad.iter().map(|g| 0.1 * g).collect();
            model.apply_update(&update);
        }
        let after = model.evaluate(&test);
        assert!(
            after.loss < before.loss,
            "{} -> {}",
            before.loss,
            after.loss
        );
        assert!(after.accuracy > 0.7, "accuracy only {}", after.accuracy);
    }

    #[test]
    fn evaluate_random_model_is_chance_level() {
        let data = mnist_like().generate(1000, 8, 0);
        let model = Mlp::new(MlpSpec::new(64, vec![], 10), 3);
        let eval = model.evaluate(&data);
        assert!(eval.accuracy < 0.35, "untrained accuracy {}", eval.accuracy);
        assert!(eval.loss > 1.0);
    }

    #[test]
    fn deterministic_gradients() {
        let batch = small_batch();
        let model = Mlp::new(MlpSpec::new(64, vec![8], 10), 6);
        let mut g1 = vec![0.0; model.num_params()];
        let mut g2 = vec![0.0; model.num_params()];
        let l1 = model.loss_and_grad(&batch, &mut g1);
        let l2 = model.loss_and_grad(&batch, &mut g2);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "batch dimensionality mismatch")]
    fn wrong_input_dim_panics() {
        let model = Mlp::new(MlpSpec::new(32, vec![], 10), 0);
        let batch = small_batch(); // 64-dimensional
        let mut g = vec![0.0; model.num_params()];
        let _ = model.loss_and_grad(&batch, &mut g);
    }
}
