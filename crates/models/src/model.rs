//! The [`Model`] abstraction used by the distributed-training simulator.
//!
//! Synchronization strategies operate on *flat* gradient vectors (that is
//! what travels on the wire), so models expose their parameters and
//! gradients as contiguous `f32` slices regardless of internal structure.

use marsit_datagen::Dataset;

/// Loss and accuracy of a model on a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Evaluation {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
}

impl std::fmt::Display for Evaluation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "loss={:.4} acc={:.2}%", self.loss, self.accuracy * 100.0)
    }
}

/// A trainable classifier with flat parameter and gradient views.
///
/// Implementations must be deterministic: identical parameters and identical
/// batches produce identical losses and gradients, which the simulator relies
/// on to verify the worker-consistency invariant of multi-hop all-reduce.
pub trait Model {
    /// Total number of trainable parameters `D`.
    fn num_params(&self) -> usize;

    /// Copies the current parameters into `out`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `out.len() != num_params()`.
    fn read_params(&self, out: &mut [f32]);

    /// Overwrites the parameters from `params`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.len() != num_params()`.
    fn write_params(&mut self, params: &[f32]);

    /// Computes the mean loss on `batch` and writes the gradient of that
    /// loss with respect to the parameters into `grad_out`.
    ///
    /// Returns the mean loss.
    ///
    /// # Panics
    ///
    /// Implementations panic if `grad_out.len() != num_params()` or if the
    /// batch dimensionality does not match the model.
    fn loss_and_grad(&self, batch: &Dataset, grad_out: &mut [f32]) -> f64;

    /// Evaluates loss and top-1 accuracy on `data`.
    fn evaluate(&self, data: &Dataset) -> Evaluation;

    /// Convenience: returns the parameters as a fresh vector.
    fn params_vec(&self) -> Vec<f32> {
        let mut v = vec![0.0; self.num_params()];
        self.read_params(&mut v);
        v
    }

    /// Applies `params[i] -= update[i]` for all `i` — the raw model update
    /// of Marsit's Algorithm 2, line 6 (`x_{t+1} = x_t − g_t`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `update.len() != num_params()`.
    fn apply_update(&mut self, update: &[f32]) {
        let mut p = self.params_vec();
        assert_eq!(update.len(), p.len(), "update length mismatch");
        for (x, &u) in p.iter_mut().zip(update) {
            *x -= u;
        }
        self.write_params(&p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_display() {
        let e = Evaluation {
            loss: 1.5,
            accuracy: 0.925,
        };
        assert_eq!(format!("{e}"), "loss=1.5000 acc=92.50%");
    }
}
