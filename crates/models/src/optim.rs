//! Local optimizers: SGD, Momentum, and Adam.
//!
//! In the paper's experiments the *local* optimizer shapes the gradient each
//! worker feeds to the synchronization layer ("The optimizer for image
//! classification task is Momentum, and Adam for sentiment analysis",
//! Section 5). An [`Optimizer`] therefore transforms a raw stochastic
//! gradient into an update *direction*; the synchronization strategy decides
//! how directions are compressed, aggregated, and applied.

/// Transforms raw gradients into update directions, carrying internal state
/// (momentum buffers, Adam moments) across rounds.
pub trait Optimizer: Send {
    /// Rewrites `grad` in place into the update direction for this round.
    ///
    /// # Panics
    ///
    /// Implementations panic if `grad` changes length across calls.
    fn direction(&mut self, grad: &mut [f32]);

    /// Resets internal state (used when a training run is restarted).
    fn reset(&mut self);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Captures the internal state for deterministic checkpointing.
    fn state(&self) -> OptimizerState;

    /// Restores state captured by [`Optimizer::state`].
    ///
    /// # Panics
    ///
    /// Implementations panic if `state` was captured from a different
    /// optimizer kind.
    fn load_state(&mut self, state: &OptimizerState);
}

/// Serializable internal state of an [`Optimizer`] (deterministic
/// checkpoint/restore: a restored optimizer continues bit-identically).
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerState {
    /// Plain SGD carries no state.
    Sgd,
    /// Momentum's velocity buffer (empty before the first step).
    Momentum {
        /// The heavy-ball velocity `v`.
        velocity: Vec<f32>,
    },
    /// Adam's step counter and first/second moment buffers.
    Adam {
        /// Steps taken so far (drives bias correction).
        step: u32,
        /// First-moment estimate.
        m: Vec<f32>,
        /// Second-moment estimate.
        v: Vec<f32>,
    },
}

/// Plain stochastic gradient descent: the direction is the gradient itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sgd;

impl Sgd {
    /// Creates a plain-SGD optimizer.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Optimizer for Sgd {
    fn direction(&mut self, _grad: &mut [f32]) {}

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "sgd"
    }

    fn state(&self) -> OptimizerState {
        OptimizerState::Sgd
    }

    fn load_state(&mut self, state: &OptimizerState) {
        assert!(
            matches!(state, OptimizerState::Sgd),
            "state kind mismatch: expected Sgd"
        );
    }
}

/// Heavy-ball momentum: `v ← μ·v + g`, direction `v`.
#[derive(Debug, Clone, PartialEq)]
pub struct Momentum {
    mu: f32,
    velocity: Vec<f32>,
}

impl Momentum {
    /// Creates a momentum optimizer with coefficient `mu` (typically 0.9).
    ///
    /// # Panics
    ///
    /// Panics if `mu` is not in `[0, 1)`.
    #[must_use]
    pub fn new(mu: f32) -> Self {
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0, 1)");
        Self {
            mu,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Momentum {
    fn direction(&mut self, grad: &mut [f32]) {
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; grad.len()];
        }
        assert_eq!(self.velocity.len(), grad.len(), "gradient length changed");
        for (v, g) in self.velocity.iter_mut().zip(grad.iter_mut()) {
            *v = self.mu * *v + *g;
            *g = *v;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn name(&self) -> &'static str {
        "momentum"
    }

    fn state(&self) -> OptimizerState {
        OptimizerState::Momentum {
            velocity: self.velocity.clone(),
        }
    }

    fn load_state(&mut self, state: &OptimizerState) {
        let OptimizerState::Momentum { velocity } = state else {
            panic!("state kind mismatch: expected Momentum");
        };
        self.velocity = velocity.clone();
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u32,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates Adam with the standard defaults `β₁=0.9, β₂=0.999, ε=1e-8`.
    #[must_use]
    pub fn new() -> Self {
        Self::with_betas(0.9, 0.999, 1e-8)
    }

    /// Creates Adam with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if betas are outside `[0, 1)` or `eps <= 0`.
    #[must_use]
    pub fn with_betas(beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas in [0,1)"
        );
        assert!(eps > 0.0, "eps must be positive");
        Self {
            beta1,
            beta2,
            eps,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adam {
    fn direction(&mut self, grad: &mut [f32]) {
        if self.m.is_empty() {
            self.m = vec![0.0; grad.len()];
            self.v = vec![0.0; grad.len()];
        }
        assert_eq!(self.m.len(), grad.len(), "gradient length changed");
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for ((m, v), g) in self.m.iter_mut().zip(&mut self.v).zip(grad.iter_mut()) {
            *m = self.beta1 * *m + (1.0 - self.beta1) * *g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * *g * *g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *g = m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.step = 0;
        self.m.clear();
        self.v.clear();
    }

    fn name(&self) -> &'static str {
        "adam"
    }

    fn state(&self) -> OptimizerState {
        OptimizerState::Adam {
            step: self.step,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    fn load_state(&mut self, state: &OptimizerState) {
        let OptimizerState::Adam { step, m, v } = state else {
            panic!("state kind mismatch: expected Adam");
        };
        self.step = *step;
        self.m = m.clone();
        self.v = v.clone();
    }
}

/// Optimizer selection used by experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub enum OptimizerKind {
    /// Plain SGD.
    #[default]
    Sgd,
    /// Heavy-ball momentum with the given coefficient.
    Momentum(f32),
    /// Adam with default betas.
    Adam,
}

impl OptimizerKind {
    /// Instantiates the optimizer.
    #[must_use]
    pub fn build(self) -> Box<dyn Optimizer> {
        match self {
            Self::Sgd => Box::new(Sgd::new()),
            Self::Momentum(mu) => Box::new(Momentum::new(mu)),
            Self::Adam => Box::new(Adam::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_is_identity() {
        let mut g = vec![1.0, -2.0, 3.0];
        Sgd::new().direction(&mut g);
        assert_eq!(g, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Momentum::new(0.5);
        let mut g = vec![1.0, 1.0];
        opt.direction(&mut g);
        assert_eq!(g, vec![1.0, 1.0]);
        let mut g2 = vec![1.0, 0.0];
        opt.direction(&mut g2);
        // v = 0.5*[1,1] + [1,0] = [1.5, 0.5]
        assert_eq!(g2, vec![1.5, 0.5]);
    }

    #[test]
    fn momentum_reset_clears_state() {
        let mut opt = Momentum::new(0.9);
        let mut g = vec![1.0];
        opt.direction(&mut g);
        opt.reset();
        let mut g2 = vec![1.0];
        opt.direction(&mut g2);
        assert_eq!(g2, vec![1.0]);
    }

    #[test]
    fn adam_first_step_is_sign_scaled() {
        let mut opt = Adam::new();
        let mut g = vec![10.0, -0.001];
        opt.direction(&mut g);
        // After bias correction the first step is g/(|g|+eps) ≈ ±1.
        assert!((g[0] - 1.0).abs() < 1e-3, "{:?}", g);
        assert!((g[1] + 1.0).abs() < 1e-2, "{:?}", g);
    }

    #[test]
    fn adam_direction_is_bounded() {
        let mut opt = Adam::new();
        for step in 0..50 {
            let mut g: Vec<f32> = (0..8).map(|i| ((i + step) as f32).sin() * 100.0).collect();
            opt.direction(&mut g);
            assert!(g.iter().all(|x| x.abs() < 5.0), "unbounded direction {g:?}");
        }
    }

    #[test]
    fn kind_builds_correct_optimizer() {
        assert_eq!(OptimizerKind::Sgd.build().name(), "sgd");
        assert_eq!(OptimizerKind::Momentum(0.9).build().name(), "momentum");
        assert_eq!(OptimizerKind::Adam.build().name(), "adam");
    }

    #[test]
    fn state_roundtrip_resumes_bit_identically() {
        for kind in [
            OptimizerKind::Sgd,
            OptimizerKind::Momentum(0.9),
            OptimizerKind::Adam,
        ] {
            let mut warm = kind.build();
            for step in 0..5 {
                let mut g: Vec<f32> = (0..6).map(|i| ((i + step) as f32 * 0.3).sin()).collect();
                warm.direction(&mut g);
            }
            let snap = warm.state();
            let mut restored = kind.build();
            restored.load_state(&snap);
            for step in 5..10 {
                let mut a: Vec<f32> = (0..6).map(|i| ((i + step) as f32 * 0.3).sin()).collect();
                let mut b = a.clone();
                warm.direction(&mut a);
                restored.direction(&mut b);
                assert_eq!(a, b, "{kind:?} diverged after restore at step {step}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "state kind mismatch")]
    fn cross_kind_state_load_panics() {
        let snap = Momentum::new(0.9).state();
        Adam::new().load_state(&snap);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn invalid_momentum_panics() {
        let _ = Momentum::new(1.0);
    }
}
