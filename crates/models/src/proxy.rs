//! Proxy models standing in for the paper's architectures.
//!
//! Training AlexNet/ResNet/DistilBERT on a CPU is infeasible, so each paper
//! workload maps to a small MLP (the *trainable* proxy) plus the real
//! architecture's parameter count and per-sample compute cost (the *logical*
//! profile). Learning dynamics — accuracy curves, compression error,
//! convergence — come from actually training the proxy; communication sizes
//! and simulated wall-clock times use the logical profile, so the timing
//! experiments (Fig 1a, 4a, 5; time columns of Table 1/Fig 3) keep the
//! paper's scale. See `DESIGN.md` for the substitution rationale.

use crate::mlp::MlpSpec;

/// One of the paper's model/dataset workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Workload {
    /// AlexNet on MNIST (Table 1 / Fig 1 motivation experiments).
    AlexNetMnist,
    /// AlexNet on CIFAR-10 (Fig 3, Fig 5, Table 2 row 1).
    AlexNetCifar10,
    /// ResNet-20 on CIFAR-10 (Table 2 row 2).
    ResNet20Cifar10,
    /// ResNet-18 on ImageNet (Table 2 row 3).
    ResNet18ImageNet,
    /// ResNet-50 on ImageNet (Table 2 row 4, Fig 4).
    ResNet50ImageNet,
    /// DistilBERT on IMDb reviews (Table 2 row 5).
    DistilBertImdb,
}

impl Workload {
    /// All workloads, in Table 2 order.
    pub const ALL: [Workload; 6] = [
        Workload::AlexNetMnist,
        Workload::AlexNetCifar10,
        Workload::ResNet20Cifar10,
        Workload::ResNet18ImageNet,
        Workload::ResNet50ImageNet,
        Workload::DistilBertImdb,
    ];

    /// Human-readable `model / dataset` label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::AlexNetMnist => "AlexNet / MNIST",
            Self::AlexNetCifar10 => "AlexNet / CIFAR-10",
            Self::ResNet20Cifar10 => "ResNet-20 / CIFAR-10",
            Self::ResNet18ImageNet => "ResNet-18 / ImageNet",
            Self::ResNet50ImageNet => "ResNet-50 / ImageNet",
            Self::DistilBertImdb => "DistilBERT / IMDb",
        }
    }

    /// Parameter count of the *real* architecture, used for communication
    /// sizing and simulated timing (paper's "# parameters" column).
    ///
    /// Note: the paper's Table 2 lists DistilBERT as "8.3B"; the actual
    /// DistilBERT-base has ~66M parameters. We use 66M — the realistic value —
    /// and note the discrepancy in `EXPERIMENTS.md`.
    #[must_use]
    pub fn logical_params(self) -> usize {
        match self {
            Self::AlexNetMnist => 23_000_000,
            Self::AlexNetCifar10 => 23_000_000,
            Self::ResNet20Cifar10 => 270_000,
            Self::ResNet18ImageNet => 11_000_000,
            Self::ResNet50ImageNet => 25_000_000,
            Self::DistilBertImdb => 66_000_000,
        }
    }

    /// Approximate forward+backward FLOPs per training sample of the real
    /// architecture, used by the compute-time model.
    #[must_use]
    pub fn flops_per_sample(self) -> f64 {
        match self {
            // ~3x forward MACs * 2 (rough fwd+bwd convention).
            Self::AlexNetMnist => 2.0e9,
            Self::AlexNetCifar10 => 2.0e9,
            Self::ResNet20Cifar10 => 2.5e8,
            Self::ResNet18ImageNet => 1.1e10,
            Self::ResNet50ImageNet => 2.5e10,
            Self::DistilBertImdb => 1.4e10,
        }
    }

    /// Batch size used in the paper's Table 2 for this workload (global,
    /// across all workers).
    #[must_use]
    pub fn paper_batch_size(self) -> usize {
        match self {
            Self::AlexNetMnist => 256,
            Self::AlexNetCifar10 | Self::ResNet20Cifar10 => 8192,
            Self::ResNet18ImageNet | Self::ResNet50ImageNet => 6144,
            Self::DistilBertImdb => 512,
        }
    }

    /// Architecture of the *trainable* proxy (an MLP sized for CPU training
    /// whose input matches the corresponding synthetic dataset).
    #[must_use]
    pub fn proxy_spec(self) -> MlpSpec {
        match self {
            // mnist_like: 64-dim, 10 classes.
            Self::AlexNetMnist => MlpSpec::new(64, vec![128, 64], 10),
            // cifar10_like: 256-dim, 10 classes. AlexNet proxy is wider than
            // the ResNet-20 proxy, mirroring 23M vs 0.27M real parameters.
            Self::AlexNetCifar10 => MlpSpec::new(256, vec![256, 128], 10),
            Self::ResNet20Cifar10 => MlpSpec::new(256, vec![48], 10),
            // imagenet_like: 512-dim, 50 classes.
            Self::ResNet18ImageNet => MlpSpec::new(512, vec![192], 50),
            Self::ResNet50ImageNet => MlpSpec::new(512, vec![256, 128], 50),
            // imdb_like: 512-dim vocabulary, 2 classes.
            Self::DistilBertImdb => MlpSpec::new(512, vec![128], 2),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_sizes_preserve_orderings() {
        // The paper's comparisons rely on these orderings.
        assert!(
            Workload::ResNet20Cifar10.logical_params()
                < Workload::ResNet18ImageNet.logical_params()
        );
        assert!(
            Workload::ResNet18ImageNet.logical_params() < Workload::AlexNetCifar10.logical_params()
        );
        assert!(
            Workload::AlexNetCifar10.logical_params() < Workload::ResNet50ImageNet.logical_params()
        );
        assert!(
            Workload::ResNet50ImageNet.logical_params() < Workload::DistilBertImdb.logical_params()
        );
    }

    #[test]
    fn proxy_specs_match_dataset_shapes() {
        assert_eq!(Workload::AlexNetMnist.proxy_spec().input_dim(), 64);
        assert_eq!(Workload::AlexNetCifar10.proxy_spec().input_dim(), 256);
        assert_eq!(Workload::ResNet50ImageNet.proxy_spec().output_dim(), 50);
        assert_eq!(Workload::DistilBertImdb.proxy_spec().output_dim(), 2);
    }

    #[test]
    fn proxy_size_orderings_track_real_models() {
        let alex = Workload::AlexNetCifar10.proxy_spec().num_params();
        let r20 = Workload::ResNet20Cifar10.proxy_spec().num_params();
        assert!(alex > 4 * r20, "AlexNet proxy should dwarf ResNet-20 proxy");
        let r18 = Workload::ResNet18ImageNet.proxy_spec().num_params();
        let r50 = Workload::ResNet50ImageNet.proxy_spec().num_params();
        assert!(r50 > r18);
    }

    #[test]
    fn all_contains_every_workload_once() {
        let mut labels: Vec<&str> = Workload::ALL.iter().map(|w| w.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(
            format!("{}", Workload::AlexNetCifar10),
            "AlexNet / CIFAR-10"
        );
    }
}
