//! Decentralized (gossip) training — the paradigm the paper's introduction
//! rules out before building on multi-hop all-reduce.
//!
//! In gossip SGD each worker takes a local step and then averages its
//! *parameters* with its ring neighbours; no round ever reaches consensus,
//! and on a ring the mixing rate degrades as `O(1/M²)`. [`train_gossip`]
//! runs that loop so experiments can reproduce the introduction's claim
//! that "the performance of gossip in terms of convergence rate is much
//! slower than MAR, especially under sparse connections such as ring
//! topology".

use marsit_collectives::gossip::{consensus_error, gossip_ring_step};
use marsit_models::{Evaluation, Mlp, Model, Optimizer};
use marsit_simnet::PhaseBreakdown;
use marsit_tensor::rng::{split_seed, FastRng};

use crate::timing::TimingModel;
use crate::trainer::TrainConfig;

/// Per-round record of a gossip run.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipRound {
    /// Round index.
    pub round: usize,
    /// Mean training loss across workers.
    pub train_loss: f64,
    /// Mean squared parameter disagreement across workers.
    pub consensus_error: f64,
    /// Simulated phase times (one gossip exchange per round).
    pub time: PhaseBreakdown,
    /// Evaluation of the *averaged* model, when scheduled.
    pub eval: Option<Evaluation>,
}

/// Result of a gossip training run.
#[derive(Debug, Clone)]
pub struct GossipReport {
    /// Per-round records.
    pub records: Vec<GossipRound>,
    /// Final evaluation of the averaged model.
    pub final_eval: Evaluation,
    /// Final consensus error.
    pub final_consensus_error: f64,
    /// Total simulated time.
    pub total_time: PhaseBreakdown,
}

/// Runs decentralized gossip SGD with the ring stencil.
///
/// Reuses [`TrainConfig`] for the workload, sizes, learning rate, optimizer
/// and seed; the `strategy`, `marsit_global_lr` and consistency fields are
/// ignored. Each round: one local minibatch step per worker, then one
/// gossip averaging exchange.
///
/// # Panics
///
/// Panics if the topology has fewer than 3 workers (the ring stencil needs
/// two distinct neighbours).
#[must_use]
pub fn train_gossip(cfg: &TrainConfig) -> GossipReport {
    let m = cfg.topology.workers();
    assert!(m >= 3, "ring gossip needs at least 3 workers");
    let (train_set, test_set) = cfg.datasets();
    let shards = train_set.shard_iid(m, split_seed(cfg.seed, 0x5A4D));
    let spec = cfg.workload.proxy_spec();
    let d = spec.num_params();
    let reference = Mlp::new(spec.clone(), split_seed(cfg.seed, 0x30DE));
    let mut params: Vec<Vec<f32>> = vec![reference.params_vec(); m];
    let mut optimizers: Vec<Box<dyn Optimizer>> = (0..m).map(|_| cfg.optimizer.build()).collect();
    let mut rngs: Vec<FastRng> = (0..m)
        .map(|w| FastRng::new(split_seed(cfg.seed, 0xB000 + w as u64), 1))
        .collect();
    let timing = TimingModel {
        rates: cfg.rates,
        logical_d: cfg.workload.logical_params(),
        topology: cfg.topology,
        flops_per_sample: cfg.workload.flops_per_sample(),
        batch_per_worker: cfg.batch_per_worker,
        overlap: true,
    };
    // One gossip exchange: full-precision vectors to both neighbours, links
    // in parallel → one α plus the payload.
    let comm = timing.rates.link.transfer_time(d * 4) * 2.0;
    let round_time = PhaseBreakdown::new(timing.compute_time(), 0.0, comm);

    let mut scratch = reference;
    let mut grad = vec![0.0f32; d];
    let mut records = Vec::with_capacity(cfg.rounds);
    let mut total_time = PhaseBreakdown::zero();
    for t in 0..cfg.rounds {
        let mut loss_sum = 0.0;
        for w in 0..m {
            scratch.write_params(&params[w]);
            let batch = shards[w].sample_batch(cfg.batch_per_worker, &mut rngs[w]);
            loss_sum += scratch.loss_and_grad(&batch, &mut grad);
            optimizers[w].direction(&mut grad);
            for (x, &g) in params[w].iter_mut().zip(&grad) {
                *x -= cfg.local_lr * g;
            }
        }
        let _ = gossip_ring_step(&mut params).expect("harness builds a valid ring");
        total_time += round_time;
        let eval = if (cfg.eval_every > 0 && (t + 1) % cfg.eval_every == 0) || t + 1 == cfg.rounds {
            Some(evaluate_mean(&mut scratch, &params, &test_set))
        } else {
            None
        };
        records.push(GossipRound {
            round: t,
            train_loss: loss_sum / m as f64,
            consensus_error: consensus_error(&params).expect("harness builds a valid ring"),
            time: round_time,
            eval,
        });
    }
    let final_eval = evaluate_mean(&mut scratch, &params, &test_set);
    GossipReport {
        final_consensus_error: consensus_error(&params).expect("harness builds a valid ring"),
        final_eval,
        total_time,
        records,
    }
}

/// Evaluates the parameter-averaged model.
fn evaluate_mean(
    scratch: &mut Mlp,
    params: &[Vec<f32>],
    test: &marsit_datagen::Dataset,
) -> Evaluation {
    let m = params.len() as f32;
    let d = params[0].len();
    let mut mean = vec![0.0f32; d];
    for p in params {
        for (a, &x) in mean.iter_mut().zip(p) {
            *a += x / m;
        }
    }
    scratch.write_params(&mean);
    scratch.evaluate(test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use marsit_models::{OptimizerKind, Workload};
    use marsit_simnet::Topology;

    fn cfg(m: usize, rounds: usize) -> TrainConfig {
        let mut cfg = TrainConfig::new(
            Workload::AlexNetMnist,
            Topology::ring(m),
            StrategyKind::Psgd, // ignored by gossip
        );
        cfg.rounds = rounds;
        cfg.train_examples = 2048;
        cfg.test_examples = 512;
        cfg.batch_per_worker = 32;
        cfg.local_lr = 0.05;
        cfg.optimizer = OptimizerKind::Sgd;
        cfg.eval_every = 0;
        cfg
    }

    #[test]
    fn gossip_learns_but_keeps_disagreement() {
        let report = train_gossip(&cfg(4, 80));
        assert!(
            report.final_eval.accuracy > 0.6,
            "acc {}",
            report.final_eval.accuracy
        );
        assert!(
            report.final_consensus_error > 0.0,
            "gossip never fully agrees"
        );
    }

    #[test]
    fn gossip_slower_than_allreduce_at_same_budget() {
        // The intro's comparison: with the same rounds and stepsize, exact
        // averaging (PSGD over MAR) beats neighbourhood averaging.
        let gossip = train_gossip(&cfg(8, 80));
        let mut psgd_cfg = cfg(8, 80);
        psgd_cfg.strategy = StrategyKind::Psgd;
        let psgd = crate::trainer::train(&psgd_cfg);
        assert!(
            psgd.final_eval.accuracy >= gossip.final_eval.accuracy - 0.01,
            "PSGD {} vs gossip {}",
            psgd.final_eval.accuracy,
            gossip.final_eval.accuracy
        );
    }

    #[test]
    fn gossip_is_deterministic() {
        let a = train_gossip(&cfg(4, 20));
        let b = train_gossip(&cfg(4, 20));
        assert_eq!(a.final_eval, b.final_eval);
        assert_eq!(a.final_consensus_error, b.final_consensus_error);
    }

    #[test]
    fn records_track_rounds() {
        let report = train_gossip(&cfg(3, 10));
        assert_eq!(report.records.len(), 10);
        assert!(report.records.iter().all(|r| r.consensus_error >= 0.0));
    }
}
