//! Deterministic training checkpoints: [`TrainSnapshot`] and its JSON wire
//! format (schema `marsit-checkpoint/1`).
//!
//! A snapshot captures everything that evolves during a run — the consensus
//! parameter vector, per-worker optimizer and RNG states, the synchronizer's
//! cross-round state (Marsit compensation residuals), the per-round records,
//! and the run accumulators. Restoring it with
//! [`TrainerState::restore`](crate::trainer::TrainerState::restore) resumes
//! **bit-identically**, so the serialization must round-trip every float and
//! counter *exactly*. JSON numbers cannot do that (an `f64` bit pattern or a
//! `u64` above 2⁵³ loses bits through a decimal literal), so every
//! bit-sensitive scalar is encoded as a fixed-width lowercase hex string of
//! its bit pattern — 8 hex chars per `f32`, 16 per `f64`/`u64` — and vectors
//! as the concatenation of their elements' hex words. Structural small
//! integers (round indices, optimizer step counts) stay plain JSON numbers.
//!
//! The writer emits keys in a fixed order, so serialization is
//! byte-deterministic: equal snapshots produce equal strings.

use marsit_models::OptimizerState;
use marsit_simnet::{FaultStats, PhaseBreakdown};
use marsit_telemetry::json::{self, Json};

use crate::strategy::{SynchronizerSnapshot, SynchronizerState};
use crate::trainer::RoundRecord;
use marsit_models::Evaluation;

/// Schema tag written into (and required from) every serialized snapshot.
pub const SNAPSHOT_SCHEMA: &str = "marsit-checkpoint/1";

/// The complete evolving state of a training run at a round boundary.
///
/// Produced by [`TrainerState::snapshot`](crate::trainer::TrainerState::snapshot);
/// consumed by [`TrainerState::restore`](crate::trainer::TrainerState::restore).
/// Serializes to deterministic JSON with [`TrainSnapshot::to_json`] and back
/// with [`TrainSnapshot::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSnapshot {
    /// Rounds completed before the capture (the next round to run).
    pub round: u64,
    /// Current local learning rate (after any full-precision decays).
    pub lr: f32,
    /// The consensus parameter vector shared by every replica.
    pub params: Vec<f32>,
    /// Per-worker optimizer states.
    pub optimizers: Vec<OptimizerState>,
    /// Per-worker RNG streams as `(state, draws)` pairs.
    pub worker_rngs: Vec<(u64, u64)>,
    /// The synchronizer's cross-round state.
    pub sync: SynchronizerSnapshot,
    /// Per-round records completed so far.
    pub records: Vec<RoundRecord>,
    /// Accumulated simulated phase times.
    pub total_time: PhaseBreakdown,
    /// Total bytes moved by the collectives so far.
    pub total_bytes: u64,
    /// Cumulative per-worker wire bits.
    pub cumulative_bits_per_worker: f64,
    /// Total elements transferred (wire-width denominator).
    pub total_elements: u64,
    /// Whether a non-finite loss has been observed.
    pub diverged: bool,
    /// Aggregate fault-layer activity so far.
    pub run_faults: FaultStats,
}

// --- hex bit-pattern codec --------------------------------------------------

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

/// Two lowercase hex digits per byte value, for bulk encoding without a
/// per-nibble branch.
const HEX_PAIRS: [[u8; 2]; 256] = {
    let mut table = [[0u8; 2]; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = [HEX_DIGITS[i >> 4], HEX_DIGITS[i & 0xF]];
        i += 1;
    }
    table
};

/// Nibble value of each ASCII byte, or -1 for non-hex bytes, for bulk
/// decoding without `from_str_radix`'s per-word UTF-8 and radix checks.
const HEX_VALUES: [i8; 256] = {
    let mut table = [-1i8; 256];
    let mut i = 0u8;
    while i < 16 {
        table[HEX_DIGITS[i as usize] as usize] = i as i8;
        i += 1;
    }
    table[b'A' as usize] = 10;
    table[b'B' as usize] = 11;
    table[b'C' as usize] = 12;
    table[b'D' as usize] = 13;
    table[b'E' as usize] = 14;
    table[b'F' as usize] = 15;
    table
};

/// Appends `nibbles` lowercase hex digits of `bits` (most significant
/// first). Hand-rolled because snapshots hex-encode millions of parameter
/// words — a `format!` per element dominates serialization time.
fn push_hex(out: &mut String, bits: u64, nibbles: u32) {
    for i in (0..nibbles).rev() {
        out.push(HEX_DIGITS[((bits >> (4 * i)) & 0xF) as usize] as char);
    }
}

fn hex_u64(v: u64) -> String {
    let mut out = String::with_capacity(16);
    push_hex(&mut out, v, 16);
    out
}

fn hex_f64(v: f64) -> String {
    hex_u64(v.to_bits())
}

fn hex_f32s(values: &[f32]) -> String {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        let [b0, b1, b2, b3] = v.to_bits().to_be_bytes();
        let [h0, h1] = HEX_PAIRS[b0 as usize];
        let [h2, h3] = HEX_PAIRS[b1 as usize];
        let [h4, h5] = HEX_PAIRS[b2 as usize];
        let [h6, h7] = HEX_PAIRS[b3 as usize];
        out.extend_from_slice(&[h0, h1, h2, h3, h4, h5, h6, h7]);
    }
    // Every byte comes from HEX_DIGITS, so the buffer is ASCII.
    String::from_utf8(out).expect("hex output is ASCII")
}

fn parse_hex_u64(s: &str) -> Result<u64, String> {
    if s.len() != 16 {
        return Err(format!("expected 16 hex chars, got {:?}", s));
    }
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex u64 {s:?}: {e}"))
}

fn parse_hex_f64(s: &str) -> Result<f64, String> {
    parse_hex_u64(s).map(f64::from_bits)
}

fn parse_hex_f32s(s: &str) -> Result<Vec<f32>, String> {
    if !s.len().is_multiple_of(8) {
        return Err(format!("f32 vector hex length {} is not 8k", s.len()));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 8);
    for chunk in bytes.chunks_exact(8) {
        let mut word = 0u32;
        for &c in chunk {
            let nibble = HEX_VALUES[c as usize];
            if nibble < 0 {
                let word = String::from_utf8_lossy(chunk);
                return Err(format!("bad hex f32 {word:?}: invalid digit"));
            }
            word = (word << 4) | nibble as u32;
        }
        out.push(f32::from_bits(word));
    }
    Ok(out)
}

// --- JSON navigation helpers ------------------------------------------------

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an integer"))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} is not a bool"))
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} is not an array"))
}

fn hex_u64_field(v: &Json, key: &str) -> Result<u64, String> {
    parse_hex_u64(str_field(v, key)?)
}

fn hex_f64_field(v: &Json, key: &str) -> Result<f64, String> {
    parse_hex_f64(str_field(v, key)?)
}

fn hex_f32s_field(v: &Json, key: &str) -> Result<Vec<f32>, String> {
    parse_hex_f32s(str_field(v, key)?)
}

// --- writer -----------------------------------------------------------------

fn write_phase(out: &mut String, time: &PhaseBreakdown) {
    out.push('[');
    json::write_str(out, &hex_f64(time.compute_s));
    out.push(',');
    json::write_str(out, &hex_f64(time.compression_s));
    out.push(',');
    json::write_str(out, &hex_f64(time.communication_s));
    out.push(']');
}

fn write_optimizer(out: &mut String, state: &OptimizerState) {
    match state {
        OptimizerState::Sgd => out.push_str(r#"{"kind":"sgd"}"#),
        OptimizerState::Momentum { velocity } => {
            out.push_str(r#"{"kind":"momentum","velocity":"#);
            json::write_str(out, &hex_f32s(velocity));
            out.push('}');
        }
        OptimizerState::Adam { step, m, v } => {
            out.push_str(&format!(r#"{{"kind":"adam","step":{step},"m":"#));
            json::write_str(out, &hex_f32s(m));
            out.push_str(r#","v":"#);
            json::write_str(out, &hex_f32s(v));
            out.push('}');
        }
    }
}

fn write_sync(out: &mut String, sync: &SynchronizerSnapshot) {
    out.push_str(&format!(r#"{{"round":{},"#, sync.round));
    match &sync.state {
        SynchronizerState::Stateless => out.push_str(r#""kind":"stateless"}"#),
        SynchronizerState::Ssdm { velocity } => {
            out.push_str(r#""kind":"ssdm","velocity":"#);
            json::write_str(out, &hex_f32s(velocity));
            out.push('}');
        }
        SynchronizerState::Marsit(m) => {
            out.push_str(&format!(
                r#""kind":"marsit","marsit_round":{},"compensations":["#,
                m.round
            ));
            for (i, c) in m.compensations.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(out, &hex_f32s(c));
            }
            out.push_str("]}");
        }
    }
}

fn write_record(out: &mut String, r: &RoundRecord) {
    out.push_str(&format!(r#"{{"round":{},"train_loss":"#, r.round));
    json::write_str(out, &hex_f64(r.train_loss));
    out.push_str(r#","mean_grad_norm_sq":"#);
    json::write_str(out, &hex_f64(r.mean_grad_norm_sq));
    out.push_str(r#","matching_rate":"#);
    json::write_str(out, &hex_f64(r.matching_rate));
    out.push_str(&format!(
        r#","full_precision":{},"time":"#,
        r.full_precision
    ));
    write_phase(out, &r.time);
    out.push_str(r#","wire_bits_per_element":"#);
    json::write_str(out, &hex_f64(r.wire_bits_per_element));
    out.push_str(r#","cumulative_megabits_per_worker":"#);
    json::write_str(out, &hex_f64(r.cumulative_megabits_per_worker));
    out.push_str(r#","eval":"#);
    match &r.eval {
        None => out.push_str("null"),
        Some(e) => {
            out.push('[');
            json::write_str(out, &hex_f64(e.loss));
            out.push(',');
            json::write_str(out, &hex_f64(e.accuracy));
            out.push(']');
        }
    }
    out.push('}');
}

fn write_faults(out: &mut String, f: &FaultStats) {
    let counters = [
        ("retransmits", f.retransmits),
        ("dropped_transfers", f.dropped_transfers),
        ("corrupted_transfers", f.corrupted_transfers),
        ("repairs", f.repairs),
        ("crashed_workers", f.crashed_workers),
        ("forced_deliveries", f.forced_deliveries),
        ("rejoins", f.rejoins),
    ];
    out.push('{');
    for (key, value) in counters {
        out.push_str(&format!(r#""{key}":"#));
        json::write_str(out, &hex_u64(value));
        out.push(',');
    }
    out.push_str(r#""retry_extra_s":"#);
    json::write_str(out, &hex_f64(f.retry_extra_s));
    out.push_str(r#","catchup_extra_s":"#);
    json::write_str(out, &hex_f64(f.catchup_extra_s));
    out.push('}');
}

// --- reader -----------------------------------------------------------------

fn read_phase(v: &Json) -> Result<PhaseBreakdown, String> {
    let arr = v.as_arr().ok_or("phase breakdown is not an array")?;
    if arr.len() != 3 {
        return Err(format!("phase breakdown has {} entries, want 3", arr.len()));
    }
    let part = |i: usize| -> Result<f64, String> {
        parse_hex_f64(arr[i].as_str().ok_or("phase entry is not a string")?)
    };
    Ok(PhaseBreakdown {
        compute_s: part(0)?,
        compression_s: part(1)?,
        communication_s: part(2)?,
    })
}

fn read_optimizer(v: &Json) -> Result<OptimizerState, String> {
    match str_field(v, "kind")? {
        "sgd" => Ok(OptimizerState::Sgd),
        "momentum" => Ok(OptimizerState::Momentum {
            velocity: hex_f32s_field(v, "velocity")?,
        }),
        "adam" => Ok(OptimizerState::Adam {
            step: u32::try_from(u64_field(v, "step")?).map_err(|e| e.to_string())?,
            m: hex_f32s_field(v, "m")?,
            v: hex_f32s_field(v, "v")?,
        }),
        other => Err(format!("unknown optimizer kind {other:?}")),
    }
}

fn read_sync(v: &Json) -> Result<SynchronizerSnapshot, String> {
    let round = u64_field(v, "round")?;
    let state = match str_field(v, "kind")? {
        "stateless" => SynchronizerState::Stateless,
        "ssdm" => SynchronizerState::Ssdm {
            velocity: hex_f32s_field(v, "velocity")?,
        },
        "marsit" => SynchronizerState::Marsit(marsit_core::MarsitSnapshot {
            round: u64_field(v, "marsit_round")?,
            compensations: arr_field(v, "compensations")?
                .iter()
                .map(|c| parse_hex_f32s(c.as_str().ok_or("compensation is not a string")?))
                .collect::<Result<_, _>>()?,
        }),
        other => return Err(format!("unknown synchronizer kind {other:?}")),
    };
    Ok(SynchronizerSnapshot { round, state })
}

fn read_record(v: &Json) -> Result<RoundRecord, String> {
    let eval = match field(v, "eval")? {
        Json::Null => None,
        Json::Arr(pair) if pair.len() == 2 => Some(Evaluation {
            loss: parse_hex_f64(pair[0].as_str().ok_or("eval loss is not a string")?)?,
            accuracy: parse_hex_f64(pair[1].as_str().ok_or("eval accuracy is not a string")?)?,
        }),
        _ => return Err("eval is neither null nor a 2-array".to_string()),
    };
    Ok(RoundRecord {
        round: usize::try_from(u64_field(v, "round")?).map_err(|e| e.to_string())?,
        train_loss: hex_f64_field(v, "train_loss")?,
        mean_grad_norm_sq: hex_f64_field(v, "mean_grad_norm_sq")?,
        matching_rate: hex_f64_field(v, "matching_rate")?,
        full_precision: bool_field(v, "full_precision")?,
        time: read_phase(field(v, "time")?)?,
        wire_bits_per_element: hex_f64_field(v, "wire_bits_per_element")?,
        cumulative_megabits_per_worker: hex_f64_field(v, "cumulative_megabits_per_worker")?,
        eval,
    })
}

fn read_faults(v: &Json) -> Result<FaultStats, String> {
    Ok(FaultStats {
        retransmits: hex_u64_field(v, "retransmits")?,
        dropped_transfers: hex_u64_field(v, "dropped_transfers")?,
        corrupted_transfers: hex_u64_field(v, "corrupted_transfers")?,
        repairs: hex_u64_field(v, "repairs")?,
        crashed_workers: hex_u64_field(v, "crashed_workers")?,
        forced_deliveries: hex_u64_field(v, "forced_deliveries")?,
        rejoins: hex_u64_field(v, "rejoins")?,
        retry_extra_s: hex_f64_field(v, "retry_extra_s")?,
        catchup_extra_s: hex_f64_field(v, "catchup_extra_s")?,
        // Health-observation counters are deliberately not serialized (the
        // marsit-checkpoint/1 format is pinned); a restore starts them at 0.
        stragglers_suspected: 0,
        links_degraded: 0,
        ranks_silent: 0,
    })
}

impl TrainSnapshot {
    /// Serializes to one deterministic JSON document (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            r#"{{"schema":"{SNAPSHOT_SCHEMA}","round":{},"lr":"#,
            self.round
        ));
        json::write_str(&mut out, &format!("{:08x}", self.lr.to_bits()));
        out.push_str(r#","params":"#);
        json::write_str(&mut out, &hex_f32s(&self.params));
        out.push_str(r#","optimizers":["#);
        for (i, opt) in self.optimizers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_optimizer(&mut out, opt);
        }
        out.push_str(r#"],"worker_rngs":["#);
        for (i, &(state, draws)) in self.worker_rngs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            json::write_str(&mut out, &hex_u64(state));
            out.push(',');
            json::write_str(&mut out, &hex_u64(draws));
            out.push(']');
        }
        out.push_str(r#"],"sync":"#);
        write_sync(&mut out, &self.sync);
        out.push_str(r#","records":["#);
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_record(&mut out, r);
        }
        out.push_str(r#"],"total_time":"#);
        write_phase(&mut out, &self.total_time);
        out.push_str(r#","total_bytes":"#);
        json::write_str(&mut out, &hex_u64(self.total_bytes));
        out.push_str(r#","cumulative_bits_per_worker":"#);
        json::write_str(&mut out, &hex_f64(self.cumulative_bits_per_worker));
        out.push_str(r#","total_elements":"#);
        json::write_str(&mut out, &hex_u64(self.total_elements));
        out.push_str(&format!(r#","diverged":{},"run_faults":"#, self.diverged));
        write_faults(&mut out, &self.run_faults);
        out.push('}');
        out
    }

    /// Parses a document written by [`TrainSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax error, schema mismatch,
    /// or malformed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = str_field(&v, "schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "unsupported snapshot schema {schema:?} (want {SNAPSHOT_SCHEMA:?})"
            ));
        }
        let lr_hex = str_field(&v, "lr")?;
        if lr_hex.len() != 8 {
            return Err(format!("lr: expected 8 hex chars, got {lr_hex:?}"));
        }
        let lr = u32::from_str_radix(lr_hex, 16)
            .map(f32::from_bits)
            .map_err(|e| format!("bad hex f32 {lr_hex:?}: {e}"))?;
        Ok(Self {
            round: u64_field(&v, "round")?,
            lr,
            params: hex_f32s_field(&v, "params")?,
            optimizers: arr_field(&v, "optimizers")?
                .iter()
                .map(read_optimizer)
                .collect::<Result<_, _>>()?,
            worker_rngs: arr_field(&v, "worker_rngs")?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().ok_or("rng entry is not an array")?;
                    if pair.len() != 2 {
                        return Err("rng entry is not a 2-array".to_string());
                    }
                    let word = |i: usize| -> Result<u64, String> {
                        parse_hex_u64(pair[i].as_str().ok_or("rng word is not a string")?)
                    };
                    Ok((word(0)?, word(1)?))
                })
                .collect::<Result<_, _>>()?,
            sync: read_sync(field(&v, "sync")?)?,
            records: arr_field(&v, "records")?
                .iter()
                .map(read_record)
                .collect::<Result<_, _>>()?,
            total_time: read_phase(field(&v, "total_time")?)?,
            total_bytes: hex_u64_field(&v, "total_bytes")?,
            cumulative_bits_per_worker: hex_f64_field(&v, "cumulative_bits_per_worker")?,
            total_elements: hex_u64_field(&v, "total_elements")?,
            diverged: bool_field(&v, "diverged")?,
            run_faults: read_faults(field(&v, "run_faults")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_core::MarsitSnapshot;

    fn sample_snapshot() -> TrainSnapshot {
        TrainSnapshot {
            round: 7,
            lr: 0.1,
            params: vec![1.5, -2.25, 1e-30, f32::MIN_POSITIVE],
            optimizers: vec![
                OptimizerState::Sgd,
                OptimizerState::Momentum {
                    velocity: vec![0.25, -0.75],
                },
                OptimizerState::Adam {
                    step: 9,
                    m: vec![0.125],
                    v: vec![3.5],
                },
            ],
            worker_rngs: vec![(0xDEAD_BEEF_0000_0001, 42), (u64::MAX, 2u64.pow(60))],
            sync: SynchronizerSnapshot {
                round: 7,
                state: SynchronizerState::Marsit(MarsitSnapshot {
                    round: 7,
                    compensations: vec![vec![0.5, -0.5], vec![0.0, 1.0]],
                }),
            },
            records: vec![RoundRecord {
                round: 6,
                train_loss: 0.123_456_789,
                mean_grad_norm_sq: 1e-17,
                matching_rate: 0.875,
                full_precision: true,
                time: PhaseBreakdown {
                    compute_s: 0.001,
                    compression_s: 2e-5,
                    communication_s: 0.25,
                },
                wire_bits_per_element: 1.0,
                cumulative_megabits_per_worker: 12.5,
                eval: Some(Evaluation {
                    loss: 0.5,
                    accuracy: 0.75,
                }),
            }],
            total_time: PhaseBreakdown {
                compute_s: 0.25,
                compression_s: 0.125,
                communication_s: 1.0,
            },
            total_bytes: (1 << 55) + 3,
            cumulative_bits_per_worker: 1e9 + 0.5,
            total_elements: 10_000,
            diverged: false,
            run_faults: FaultStats {
                retransmits: 3,
                rejoins: 1,
                retry_extra_s: 0.125,
                catchup_extra_s: 1e-300,
                ..FaultStats::default()
            },
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let snap = sample_snapshot();
        let text = snap.to_json();
        let back = TrainSnapshot::from_json(&text).expect("parses");
        assert_eq!(snap, back);
        // Determinism: re-serializing the parsed snapshot is byte-identical.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn u64_beyond_2_53_survives() {
        // The motivating case for hex encoding: a JSON number would lose
        // the low bits of this value.
        let snap = sample_snapshot();
        assert_eq!(snap.total_bytes % 8, 3);
        let back = TrainSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back.total_bytes, (1 << 55) + 3);
        assert_eq!(back.worker_rngs[1], (u64::MAX, 2u64.pow(60)));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample_snapshot()
            .to_json()
            .replace("marsit-checkpoint/1", "marsit-checkpoint/0");
        let err = TrainSnapshot::from_json(&text).expect_err("must reject");
        assert!(err.contains("unsupported snapshot schema"), "{err}");
    }

    #[test]
    fn truncated_document_is_rejected() {
        let text = sample_snapshot().to_json();
        assert!(TrainSnapshot::from_json(&text[..text.len() - 2]).is_err());
    }

    #[test]
    fn negative_zero_and_subnormals_roundtrip() {
        let mut snap = sample_snapshot();
        snap.params = vec![-0.0, f32::from_bits(1), f32::INFINITY, -f32::NAN];
        snap.cumulative_bits_per_worker = -0.0;
        let back = TrainSnapshot::from_json(&snap.to_json()).expect("parses");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&snap.params), bits(&back.params));
        assert_eq!(
            snap.cumulative_bits_per_worker.to_bits(),
            back.cumulative_bits_per_worker.to_bits()
        );
    }
}
