//! The simulated-time model: computation, compression, communication.
//!
//! The paper's timing results come from wall-clock measurements on a real
//! cluster; this module substitutes a first-order model priced against the
//! *logical* model size (the real architecture's parameter count — see
//! `Workload::logical_params`), so the time axes of Figures 1a, 4a and 5
//! have the paper's scale even though the trained proxy is small.
//!
//! Per round:
//!
//! - **computation** — `batch × FLOPs/sample ÷ accelerator rate`, identical
//!   across strategies (they share the training substrate);
//! - **compression** — codec passes priced at streaming/RNG element rates;
//!   crucially, cascading compression's per-hop recompression is
//!   *serialized* (`M−1` repetitions), while Marsit's transient-vector
//!   generation overlaps the receive window (Section 4.1.1 "run in
//!   parallel") and costs only the non-hidden sign extraction;
//! - **communication** — α–β costs of the exact hop schedule, including the
//!   `⌈log₂ M⌉` payload growth of the integer-sum MAR extensions and the
//!   serialized full-vector hops of cascading compression.

use marsit_compress::SignSumVec;
use marsit_simnet::{cost, PhaseBreakdown, RateProfile, Topology};

use crate::strategy::StrategyKind;

/// Inputs of the round-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Hardware rates (link, accelerator, codec).
    pub rates: RateProfile,
    /// Logical model size `D` (real architecture parameter count).
    pub logical_d: usize,
    /// Cluster topology.
    pub topology: Topology,
    /// Forward+backward FLOPs per training sample.
    pub flops_per_sample: f64,
    /// Per-worker minibatch size.
    pub batch_per_worker: usize,
    /// Whether Marsit's transient-vector generation overlaps the receive
    /// window (the paper's design; disable for the ablation).
    pub overlap: bool,
}

impl TimingModel {
    /// Per-round computation time (identical for all strategies).
    #[must_use]
    pub fn compute_time(&self) -> f64 {
        self.rates
            .compute_time(self.flops_per_sample * self.batch_per_worker as f64)
    }

    /// Full per-round phase breakdown for `kind`.
    ///
    /// `full_precision` selects Marsit's reset rounds (and is ignored by
    /// strategies without a mixed schedule).
    #[must_use]
    pub fn round_time(&self, kind: StrategyKind, full_precision: bool) -> PhaseBreakdown {
        PhaseBreakdown::new(
            self.compute_time(),
            self.compression_time(kind, full_precision),
            self.communication_time(kind, full_precision),
        )
    }

    /// Communication time of one synchronization.
    #[must_use]
    pub fn communication_time(&self, kind: StrategyKind, full_precision: bool) -> f64 {
        let link = self.rates.link;
        let d = self.logical_d;
        let m = self.topology.workers();
        match kind {
            StrategyKind::Psgd => cost::allreduce_time(link, d * 4, self.topology),
            StrategyKind::Marsit { .. } => {
                if full_precision {
                    cost::allreduce_time(link, d * 4, self.topology)
                } else {
                    cost::allreduce_time(link, d.div_ceil(8), self.topology)
                }
            }
            StrategyKind::Cascading => {
                // Sequential full-vector chain: reduce around the ring, then
                // broadcast; no segmentation, no parallel links.
                let hop = link.transfer_time(d.div_ceil(8) + 4);
                2.0 * (m - 1) as f64 * hop
            }
            StrategyKind::SignMajority => self.signsum_time(true),
            StrategyKind::EfSign | StrategyKind::Ssdm => self.signsum_time(false),
            StrategyKind::PowerSgd { rank } => {
                // Two *sequential* all-reduce passes over the factor
                // matrices P (rows×rank) and Q (cols×rank).
                let (rows, cols) = marsit_compress::powersgd::matrix_shape(d);
                let p_bytes = rows * rank as usize * 4;
                let q_bytes = cols * rank as usize * 4;
                cost::allreduce_time(link, p_bytes, self.topology)
                    + cost::allreduce_time(link, q_bytes, self.topology)
            }
        }
    }

    /// Communication time of the integer-sum MAR extensions.
    /// `onebit_gather` selects a 1-bit gather (majority vote) versus a
    /// full-width sum gather (mean-of-signs reconstruction).
    fn signsum_time(&self, onebit_gather: bool) -> f64 {
        let link = self.rates.link;
        let d = self.logical_d;
        let bits = |count: usize| SignSumVec::bits_per_coord(count as u32);
        match self.topology {
            Topology::Ring { workers: m } => {
                let seg = d.div_ceil(m);
                let reduce: Vec<usize> = (0..m - 1)
                    .map(|r| (seg * bits(r + 1)).div_ceil(8))
                    .collect();
                let gather_bits = if onebit_gather { 1 } else { bits(m) };
                let gather: Vec<usize> = (0..m - 1)
                    .map(|_| (seg * gather_bits).div_ceil(8))
                    .collect();
                cost::ring_allreduce_time_varying(link, &reduce, &gather)
            }
            Topology::Torus { rows, cols } => {
                let m = rows * cols;
                let chunk = d.div_ceil(cols);
                let sub = chunk.div_ceil(rows);
                let mut t = 0.0;
                // Horizontal reduce-scatter: widths grow 1..cols−1.
                for r in 0..cols - 1 {
                    t += link.transfer_time((chunk * bits(r + 1)).div_ceil(8));
                }
                // Vertical reduce: widths grow in units of `cols`.
                for r in 0..rows - 1 {
                    t += link.transfer_time((sub * bits((r + 1) * cols)).div_ceil(8));
                }
                // Vertical + horizontal gathers.
                let gather_bits = if onebit_gather { 1 } else { bits(m) };
                for _ in 0..rows - 1 {
                    t += link.transfer_time((sub * gather_bits).div_ceil(8));
                }
                for _ in 0..cols - 1 {
                    t += link.transfer_time((chunk * gather_bits).div_ceil(8));
                }
                t
            }
            Topology::Star { workers: m } => {
                let up = d.div_ceil(8);
                let down = if onebit_gather { d.div_ceil(8) } else { d * 4 };
                cost::ps_exchange_time(link, up, down, m)
            }
        }
    }

    /// Compression/codec time of one synchronization (per worker; workers
    /// run in parallel, so this is the round's critical-path codec cost).
    #[must_use]
    pub fn compression_time(&self, kind: StrategyKind, full_precision: bool) -> f64 {
        let d = self.logical_d;
        let m = self.topology.workers();
        let r = &self.rates;
        // Elements each worker relays during the reduce phase of a
        // segmented MAR schedule (≈ D for a ring).
        let relayed = match self.topology {
            Topology::Ring { workers } => d.div_ceil(workers) * (workers - 1),
            Topology::Torus { rows, cols } => {
                d.div_ceil(cols) * (cols - 1) + d.div_ceil(cols * rows) * (rows - 1)
            }
            Topology::Star { .. } => d, // server-side aggregate pass
        };
        match kind {
            StrategyKind::Psgd => 0.0,
            StrategyKind::SignMajority => {
                // Sign extraction + per-hop integer decode/add/encode.
                r.codec_time(d) + r.codec_time(2 * relayed)
            }
            StrategyKind::Ssdm => {
                // ℓ2 norm + stochastic signs + per-hop integer codec.
                r.codec_time(d) + r.rng_time(d) + r.codec_time(2 * relayed)
            }
            StrategyKind::EfSign => {
                // p = g+e, ℓ1 norm, signs, error update + per-hop codec.
                r.codec_time(4 * d) + r.codec_time(2 * relayed)
            }
            StrategyKind::Cascading => {
                // Serialized per-hop recompression along the whole chain:
                // decompress + aggregate + norm (streaming) and requantize
                // (RNG) over the full vector at every relay.
                (m - 1) as f64 * (r.codec_time(3 * d) + r.rng_time(d))
            }
            StrategyKind::Marsit { .. } => {
                if full_precision {
                    0.0
                } else if self.overlap {
                    // Transient vectors hide behind the receive window
                    // (Section 4.1.1); only sign extraction is exposed.
                    r.codec_time(d)
                } else {
                    r.codec_time(d) + r.rng_time(relayed)
                }
            }
            StrategyKind::PowerSgd { rank } => {
                // Three dense rank-r products per round (P, Q, Ĝ), run on
                // the accelerator: ~6·D·r FLOPs.
                r.compute_time(6.0 * d as f64 * f64::from(rank))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(topology: Topology) -> TimingModel {
        TimingModel {
            rates: RateProfile::public_cloud(),
            logical_d: 23_000_000,
            topology,
            flops_per_sample: 2.0e9,
            batch_per_worker: 32,
            overlap: true,
        }
    }

    #[test]
    fn marsit_round_is_fastest_onebit() {
        let m = model(Topology::ring(8));
        let marsit = m
            .round_time(StrategyKind::Marsit { k: None }, false)
            .total();
        for kind in [
            StrategyKind::Psgd,
            StrategyKind::SignMajority,
            StrategyKind::EfSign,
            StrategyKind::Ssdm,
            StrategyKind::Cascading,
        ] {
            let t = m.round_time(kind, false).total();
            assert!(marsit < t, "Marsit {marsit} should beat {kind} {t}");
        }
    }

    #[test]
    fn cascading_codec_dominates() {
        // Fig 1a: cascading's decompression/compression period is large —
        // bigger than its communication time on a fast-enough link.
        let m = model(Topology::ring(8));
        let p = m.round_time(StrategyKind::Cascading, false);
        assert!(p.compression_s > p.communication_s * 0.5);
        // And hugely bigger than Marsit's codec cost.
        let pm = m.round_time(StrategyKind::Marsit { k: None }, false);
        assert!(p.compression_s > 10.0 * pm.compression_s);
    }

    #[test]
    fn signsum_mar_slower_than_marsit_comm() {
        // Section 3.1: growing bit width makes MAR-extended SSDM spend more
        // transmission time than a strictly one-bit scheme.
        let m = model(Topology::ring(8));
        let ssdm = m.communication_time(StrategyKind::Ssdm, false);
        let marsit = m.communication_time(StrategyKind::Marsit { k: None }, false);
        assert!(ssdm > 1.5 * marsit, "ssdm {ssdm} vs marsit {marsit}");
    }

    #[test]
    fn tar_faster_than_rar_per_round() {
        // Fig 5: every method communicates faster under TAR.
        let ring = model(Topology::ring(16));
        let torus = model(Topology::square_torus(16));
        for kind in [
            StrategyKind::Psgd,
            StrategyKind::SignMajority,
            StrategyKind::Ssdm,
            StrategyKind::Marsit { k: None },
        ] {
            let tr = ring.communication_time(kind, false);
            let tt = torus.communication_time(kind, false);
            assert!(tt < tr, "{kind}: TAR {tt} should beat RAR {tr}");
        }
    }

    #[test]
    fn full_precision_marsit_round_matches_psgd_comm() {
        let m = model(Topology::ring(4));
        assert_eq!(
            m.communication_time(StrategyKind::Marsit { k: Some(10) }, true),
            m.communication_time(StrategyKind::Psgd, true)
        );
    }

    #[test]
    fn overlap_ablation_increases_marsit_codec() {
        let mut m = model(Topology::ring(8));
        let with = m.compression_time(StrategyKind::Marsit { k: None }, false);
        m.overlap = false;
        let without = m.compression_time(StrategyKind::Marsit { k: None }, false);
        assert!(without > with);
    }

    #[test]
    fn compute_time_scales_with_batch() {
        let mut m = model(Topology::ring(4));
        let t32 = m.compute_time();
        m.batch_per_worker = 64;
        assert!((m.compute_time() - 2.0 * t32).abs() < 1e-12);
    }

    #[test]
    fn non_compressed_rar_beats_ps_fig1a() {
        // Fig 1a: PSGD under RAR is faster than PSGD under PS.
        let ring = model(Topology::ring(8));
        let star = model(Topology::star(8));
        assert!(
            ring.communication_time(StrategyKind::Psgd, true)
                < star.communication_time(StrategyKind::Psgd, true)
        );
    }
}
