//! End-to-end distributed-training simulation for the Marsit reproduction.
//!
//! Ties the substrates together: synthetic datasets (`marsit_datagen`),
//! exact-backprop models (`marsit_models`), the six synchronization
//! strategies ([`StrategyKind`]), the collectives (`marsit_collectives`),
//! and the simulated clock (`marsit_simnet`). One [`train`] call reproduces
//! one cell of the paper's evaluation: accuracy trace, sign matching rate,
//! phase-time breakdown, and exact wire-bit accounting.
//!
//! # Examples
//!
//! Train the MNIST proxy with Marsit over an 8-worker ring:
//!
//! ```
//! use marsit_trainsim::{train, StrategyKind, TrainConfig};
//! use marsit_models::Workload;
//! use marsit_simnet::Topology;
//!
//! let mut cfg = TrainConfig::new(
//!     Workload::AlexNetMnist,
//!     Topology::ring(4),
//!     StrategyKind::Marsit { k: Some(50) },
//! );
//! cfg.rounds = 20;
//! cfg.train_examples = 1024;
//! cfg.test_examples = 256;
//! cfg.eval_every = 0; // final evaluation only
//! let report = train(&cfg);
//! assert!(!report.diverged);
//! assert_eq!(report.records.len(), 20);
//! ```

pub mod decentralized;
pub mod snapshot;
pub mod strategy;
pub mod timing;
pub mod trainer;

pub use decentralized::{train_gossip, GossipReport, GossipRound};
pub use snapshot::{TrainSnapshot, SNAPSHOT_SCHEMA};
pub use strategy::{
    StrategyKind, SyncResult, Synchronizer, SynchronizerSnapshot, SynchronizerState,
};
pub use timing::TimingModel;
pub use trainer::{elements_per_round, train, RoundRecord, TrainConfig, TrainReport, TrainerState};
