//! Synchronization strategies: the six approaches of the paper's evaluation.
//!
//! Every strategy consumes the workers' scaled local updates (`η_l` times the
//! optimizer direction) and produces the consensus global update applied by
//! all replicas, plus the transfer trace. The six kinds match Figures 4–5
//! and Table 2:
//!
//! | Kind | Aggregation | Payload per hop |
//! |---|---|---|
//! | [`StrategyKind::Psgd`] | exact mean | 32-bit floats |
//! | [`StrategyKind::SignMajority`] | majority vote of signs | growing integer sums (Elias), 1-bit gather |
//! | [`StrategyKind::EfSign`] | mean of error-fed sign messages | growing integer sums + scales |
//! | [`StrategyKind::Ssdm`] | mean of stochastic signs | growing integer sums (Elias) |
//! | [`StrategyKind::Cascading`] | recompress at every hop | 1 bit, but serialized full-vector hops |
//! | [`StrategyKind::Marsit`] | `⊙` one-bit all-reduce + compensation | exactly 1 bit |
//!
//! The MAR extensions of signSGD/SSDM/EF-signSGD aggregate *unweighted* sign
//! sums (the linear quantity of Section 3.1). EF-signSGD additionally
//! carries per-worker scalar scales, folded into the final update as the
//! mean scale: with IID shards the per-worker scales are nearly equal, so
//! this preserves the method's PS semantics; the scalar side-channel is a
//! few bytes per hop and is ignored in the byte accounting.

use marsit_collectives::ps::{ps_allreduce_sum, ps_majority_vote, ps_sign_sums};
use marsit_collectives::ring::{
    ring_allreduce_majority, ring_allreduce_signsum, ring_allreduce_sum,
};
use marsit_collectives::torus::{
    torus_allreduce_majority, torus_allreduce_signsum, torus_allreduce_sum,
};
use marsit_collectives::{SumWire, Trace};
use marsit_compress::cascading::cascade_reduce_practical;
use marsit_compress::compressor::{Compressor, EfSign, Ssdm};
use marsit_compress::powersgd::{orthonormalize_columns, PowerSgd as PowerSgdState};
use marsit_core::{Marsit, MarsitConfig, MarsitSnapshot, SyncSchedule, WorkspaceHandle};
use marsit_simnet::{Backend, FaultPlan, FaultStats, Topology};
use marsit_tensor::rng::{split_seed, FastRng};
use marsit_tensor::SignVec;

/// Configuration-level strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum StrategyKind {
    /// Full-precision parallel SGD (no compression).
    Psgd,
    /// signSGD with majority vote (Bernstein et al.), extended to MAR.
    SignMajority,
    /// EF-signSGD (Karimireddy et al.), extended to MAR.
    EfSign,
    /// SSDM (Safaryan & Richtárik), extended to MAR.
    Ssdm,
    /// SSDM with cascading compression at every hop (Section 3.2).
    Cascading,
    /// Marsit with full-precision synchronization every `k` rounds
    /// (`None` = never, the paper's plain "Marsit").
    Marsit {
        /// Full-precision period `K`.
        k: Option<u32>,
    },
    /// PowerSGD low-rank compression (related work \[24\]): linear and
    /// MAR-compatible, but needs two sequential all-reduce passes per
    /// round.
    PowerSgd {
        /// Approximation rank.
        rank: u32,
    },
}

impl StrategyKind {
    /// All six strategies in the paper's Table 2 column order, with
    /// `Marsit { k: Some(100) }` as "Marsit-100".
    pub const TABLE2: [StrategyKind; 6] = [
        StrategyKind::Psgd,
        StrategyKind::SignMajority,
        StrategyKind::EfSign,
        StrategyKind::Ssdm,
        StrategyKind::Marsit { k: Some(100) },
        StrategyKind::Marsit { k: None },
    ];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Self::Psgd => "PSGD".to_owned(),
            Self::SignMajority => "signSGD".to_owned(),
            Self::EfSign => "EF-signSGD".to_owned(),
            Self::Ssdm => "SSDM".to_owned(),
            Self::Cascading => "Cascading".to_owned(),
            Self::Marsit { k: Some(k) } => format!("Marsit-{k}"),
            Self::Marsit { k: None } => "Marsit".to_owned(),
            Self::PowerSgd { rank } => format!("PowerSGD-{rank}"),
        }
    }

    /// Builds the stateful synchronizer.
    ///
    /// `local_lr` is `η_l` (the scale of incoming updates; sign strategies
    /// re-apply it to their unit-sign votes), `global_lr` is Marsit's `η_s`,
    /// and `seed` drives all stochastic compression.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`, `d == 0`, or a learning rate is not positive.
    #[must_use]
    pub fn build(
        self,
        m: usize,
        d: usize,
        local_lr: f32,
        global_lr: f32,
        seed: u64,
    ) -> Synchronizer {
        assert!(m >= 2, "need at least 2 workers");
        assert!(d > 0, "model dimension must be positive");
        assert!(
            local_lr > 0.0 && global_lr > 0.0,
            "learning rates must be positive"
        );
        let state = match self {
            Self::Psgd => State::Psgd,
            Self::SignMajority => State::SignMajority,
            Self::EfSign => State::EfSign {
                workers: vec![EfSign::new(); m],
            },
            Self::Ssdm => State::Ssdm {
                velocity: vec![0.0; d],
            },
            Self::Cascading => State::Cascading,
            Self::Marsit { k } => {
                let schedule = match k {
                    Some(k) => SyncSchedule::every(k),
                    None => SyncSchedule::never(),
                };
                State::Marsit(Box::new(Marsit::new(
                    MarsitConfig::new(schedule, global_lr, seed),
                    m,
                    d,
                )))
            }
            Self::PowerSgd { rank } => State::PowerSgd {
                workers: (0..m)
                    .map(|_| PowerSgdState::new(d, rank as usize, seed))
                    .collect(),
            },
        };
        Synchronizer {
            kind: self,
            state,
            local_lr,
            seed,
            round: 0,
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Result of one synchronization round.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncResult {
    /// The consensus update applied by every worker (`x ← x − update`).
    pub global_update: Vec<f32>,
    /// Transfers performed.
    pub trace: Trace,
    /// Whether this round used full precision (Marsit reset rounds; always
    /// true for PSGD).
    pub full_precision: bool,
    /// Exact mean of what the strategy actually aggregated, when that
    /// differs from the raw local updates (Marsit aggregates *compensated*
    /// updates). The matching-rate metric compares signs against this.
    pub reference_mean: Option<Vec<f32>>,
    /// What the fault layer did this round (all-zero without a fault plan;
    /// only Marsit supports fault injection).
    pub faults: FaultStats,
}

enum State {
    Psgd,
    SignMajority,
    EfSign { workers: Vec<EfSign> },
    Ssdm { velocity: Vec<f32> },
    Cascading,
    Marsit(Box<Marsit>),
    PowerSgd { workers: Vec<PowerSgdState> },
}

/// A stateful synchronizer for one training run.
pub struct Synchronizer {
    kind: StrategyKind,
    state: State,
    local_lr: f32,
    seed: u64,
    round: u64,
}

/// Serializable cross-round state of a [`Synchronizer`] (deterministic
/// checkpoint/restore; see [`Synchronizer::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SynchronizerState {
    /// PSGD, signSGD majority, and cascading carry no cross-round state.
    Stateless,
    /// SSDM's namesake momentum buffer.
    Ssdm {
        /// The smoothing velocity `v`.
        velocity: Vec<f32>,
    },
    /// Marsit's compensation state and round counter.
    Marsit(MarsitSnapshot),
}

/// A deterministic checkpoint of a [`Synchronizer`]: the round counter plus
/// the strategy's cross-round state.
#[derive(Debug, Clone, PartialEq)]
pub struct SynchronizerSnapshot {
    /// Rounds synchronized before the capture.
    pub round: u64,
    /// Strategy-specific state.
    pub state: SynchronizerState,
}

impl Synchronizer {
    /// The strategy kind this synchronizer implements.
    #[must_use]
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// Rounds synchronized so far.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Captures a deterministic checkpoint: the round counter plus the
    /// strategy's cross-round state. A restored synchronizer continues
    /// bit-identically to one that never stopped.
    ///
    /// Takes `&mut self` because Marsit materializes its deferred residual
    /// first (bit-identical to the eager bookkeeping).
    ///
    /// # Panics
    ///
    /// Panics for EF-signSGD and PowerSGD, whose per-worker error states are
    /// not checkpointable yet.
    #[must_use]
    pub fn snapshot(&mut self) -> SynchronizerSnapshot {
        let state = match &mut self.state {
            State::Psgd | State::SignMajority | State::Cascading => SynchronizerState::Stateless,
            State::Ssdm { velocity } => SynchronizerState::Ssdm {
                velocity: velocity.clone(),
            },
            State::Marsit(marsit) => SynchronizerState::Marsit(marsit.snapshot()),
            State::EfSign { .. } | State::PowerSgd { .. } => {
                panic!("checkpointing is not supported for {}", self.kind.label())
            }
        };
        SynchronizerSnapshot {
            round: self.round,
            state,
        }
    }

    /// Restores state captured by [`Synchronizer::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was captured from a different strategy kind
    /// or with mismatched dimensions.
    pub fn restore(&mut self, snapshot: &SynchronizerSnapshot) {
        match (&mut self.state, &snapshot.state) {
            (
                State::Psgd | State::SignMajority | State::Cascading,
                SynchronizerState::Stateless,
            ) => {}
            (State::Ssdm { velocity }, SynchronizerState::Ssdm { velocity: saved }) => {
                assert_eq!(velocity.len(), saved.len(), "dimension mismatch");
                velocity.copy_from_slice(saved);
            }
            (State::Marsit(marsit), SynchronizerState::Marsit(saved)) => marsit.restore(saved),
            _ => panic!(
                "snapshot kind mismatch: cannot restore {} from this state",
                self.kind.label()
            ),
        }
        self.round = snapshot.round;
    }

    /// Installs a fault plan on the underlying synchronizer.
    ///
    /// # Panics
    ///
    /// Panics if the plan injects faults and the strategy is not Marsit —
    /// graceful degradation is implemented for Marsit's collectives only.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        match &mut self.state {
            State::Marsit(marsit) => marsit.set_fault_plan(plan),
            _ => assert!(
                plan.is_none(),
                "fault injection is only supported for the Marsit strategy"
            ),
        }
    }

    /// Selects the transport backend for the underlying collectives.
    ///
    /// # Panics
    ///
    /// Panics if a non-default backend is requested for a strategy other
    /// than Marsit — only Marsit's collectives compile to transport plans —
    /// or on [`Backend::Process`], which is driven externally (see
    /// `marsit_core::transport`).
    pub fn set_collective_backend(&mut self, backend: Backend) {
        match &mut self.state {
            State::Marsit(marsit) => marsit.set_backend(backend),
            _ => assert!(
                backend == Backend::Simulator,
                "non-default transport backends are only supported for the Marsit strategy"
            ),
        }
    }

    /// Sets the number of OS threads one reduce step's combines may spread
    /// over (Marsit's simulator backend; bit-identical at any count).
    ///
    /// # Panics
    ///
    /// Panics if `n > 1` and the strategy is not Marsit — no other
    /// strategy has an intra-round combine loop to parallelize.
    pub fn set_intra_threads(&mut self, n: usize) {
        match &mut self.state {
            State::Marsit(marsit) => marsit.set_intra_threads(n),
            _ => assert!(
                n <= 1,
                "intra-round threads are only supported for the Marsit strategy"
            ),
        }
    }

    /// Detaches the Marsit round workspace for pooling (see
    /// [`marsit_core::WorkspaceHandle`]); `None` for every other strategy,
    /// which keeps no poolable scratch.
    #[must_use]
    pub fn release_workspace(&mut self) -> Option<WorkspaceHandle> {
        match &mut self.state {
            State::Marsit(marsit) => Some(marsit.release_workspace()),
            _ => None,
        }
    }

    /// Installs a pooled Marsit round workspace; a no-op (the handle is
    /// dropped) for every other strategy. Never changes an output bit —
    /// see [`marsit_core::WorkspaceHandle`].
    pub fn adopt_workspace(&mut self, handle: WorkspaceHandle) {
        if let State::Marsit(marsit) = &mut self.state {
            marsit.adopt_workspace(handle);
        }
    }

    /// Performs one global synchronization.
    ///
    /// `local_updates[w]` is worker `w`'s `η_l`-scaled update direction.
    ///
    /// # Panics
    ///
    /// Panics if worker count or dimensions are inconsistent with the
    /// topology.
    pub fn synchronize(&mut self, local_updates: &[Vec<f32>], topology: Topology) -> SyncResult {
        let m = local_updates.len();
        assert_eq!(topology.workers(), m, "topology size must match workers");
        let d = local_updates[0].len();
        assert!(
            local_updates.iter().all(|u| u.len() == d),
            "dimension mismatch"
        );
        let t = self.round;
        self.round += 1;
        let mut rng = FastRng::new(split_seed(self.seed, t), 0xA663);

        match &mut self.state {
            State::Psgd => {
                let (sum, trace) = allreduce_sum(local_updates, topology);
                let inv = 1.0 / m as f32;
                SyncResult {
                    global_update: sum.into_iter().map(|x| x * inv).collect(),
                    trace,
                    full_precision: true,
                    reference_mean: None,
                    faults: FaultStats::default(),
                }
            }
            State::SignMajority => {
                let signs: Vec<SignVec> = local_updates
                    .iter()
                    .map(|u| SignVec::from_signs(u))
                    .collect();
                let (vote, trace) = match topology {
                    Topology::Ring { .. } => ring_allreduce_majority(&signs, SumWire::Elias),
                    Topology::Torus { rows, cols } => {
                        torus_allreduce_majority(&signs, rows, cols, SumWire::Elias)
                    }
                    Topology::Star { .. } => {
                        ps_majority_vote(&signs).expect("harness builds a valid membership")
                    }
                };
                let mut update = vec![0.0f32; d];
                vote.write_scaled_signs(self.local_lr, &mut update);
                SyncResult {
                    global_update: update,
                    trace,
                    full_precision: false,
                    reference_mean: None,
                    faults: FaultStats::default(),
                }
            }
            State::EfSign { workers } => {
                let mut scales = Vec::with_capacity(m);
                let mut signs = Vec::with_capacity(m);
                for (w, u) in workers.iter_mut().zip(local_updates) {
                    let msg = w.compress(u, &mut rng);
                    scales.push(msg.scale());
                    signs.push(msg.signs().clone());
                }
                let (update, trace) = mean_scaled_signs(&signs, &scales, topology);
                SyncResult {
                    global_update: update,
                    trace,
                    full_precision: false,
                    reference_mean: None,
                    faults: FaultStats::default(),
                }
            }
            State::Ssdm { velocity } => {
                // SSDM transmits stochastic signs; aggregation is the linear
                // *mean* of the signs (unbiased in the normalized direction
                // g/‖g‖), smoothed by the method's namesake momentum before
                // being applied. The momentum is essential here: one
                // stochastic sign has a per-coordinate tilt of only
                // g_j/(2‖g‖), so without cross-round smoothing the update is
                // dominated by sign noise. (The ‖v‖-scaled decode of the
                // paper's appendix is an analysis device; applying it as the
                // step would scale every coordinate by the full vector
                // norm.)
                let signs: Vec<SignVec> = local_updates
                    .iter()
                    .map(|u| Ssdm::quantize(u, &mut rng).signs().clone())
                    .collect();
                let (sums, trace) = match topology {
                    Topology::Ring { .. } => ring_allreduce_signsum(&signs, SumWire::Elias),
                    Topology::Torus { rows, cols } => {
                        torus_allreduce_signsum(&signs, rows, cols, SumWire::Elias)
                    }
                    Topology::Star { .. } => {
                        ps_sign_sums(&signs).expect("harness builds a valid membership")
                    }
                };
                let mut update = Vec::with_capacity(d);
                for (v, mean_sign) in velocity.iter_mut().zip(sums.mean_signs()) {
                    *v = 0.9 * *v + mean_sign;
                    update.push(self.local_lr * *v);
                }
                SyncResult {
                    global_update: update,
                    trace,
                    full_precision: false,
                    reference_mean: None,
                    faults: FaultStats::default(),
                }
            }
            State::Cascading => {
                // The practical relay (deterministic sign, RMS scale): the
                // applied step is the η-scaled sign of the final message.
                // The sign is exactly where the cascade's error lives
                // (Fig 1b's ~56% matching rate); the appendix's unbiased
                // ‖w‖·σ decode would overflow the model within a handful of
                // rounds (Theorem 3).
                let refs: Vec<&[f32]> = local_updates.iter().map(Vec::as_slice).collect();
                let out = cascade_reduce_practical(&refs, &mut rng);
                let mut update = vec![0.0f32; d];
                out.final_message
                    .signs()
                    .write_scaled_signs(self.local_lr, &mut update);
                // Serialized chain: 2(M−1) sequential hops, each one full
                // 1-bit vector plus a 4-byte norm.
                let mut trace = Trace::new();
                let hop = d.div_ceil(8) + 4;
                for _ in 0..2 * (m - 1) {
                    trace.push_step(vec![hop]);
                }
                SyncResult {
                    global_update: update,
                    trace,
                    full_precision: false,
                    reference_mean: None,
                    faults: FaultStats::default(),
                }
            }
            State::Marsit(marsit) => {
                let out = marsit.synchronize(local_updates, topology);
                SyncResult {
                    global_update: out.global_update,
                    trace: out.trace,
                    full_precision: out.full_precision,
                    reference_mean: Some(out.compensated_mean),
                    faults: out.faults,
                }
            }
            State::PowerSgd { workers } => {
                // Two sequential linear all-reduce passes: P̄ then Q̄ — the
                // "multiple sequential vectors" the paper's related work
                // flags as inefficient under RAR.
                let (rows, _cols) = workers[0].shape();
                let rank = workers[0].rank();
                let p_flat: Vec<Vec<f32>> = workers
                    .iter()
                    .zip(local_updates)
                    .map(|(w, g)| w.project_p(g).into_vec())
                    .collect();
                let (p_sum, trace_p) = allreduce_sum(&p_flat, topology);
                let mut p_mean = marsit_tensor::Tensor::from_vec(
                    rows,
                    rank,
                    p_sum.into_iter().map(|x| x / m as f32).collect(),
                );
                orthonormalize_columns(&mut p_mean);
                let q_flat: Vec<Vec<f32>> = workers
                    .iter()
                    .zip(local_updates)
                    .map(|(w, g)| w.project_q(g, &p_mean).into_vec())
                    .collect();
                let (q_sum, mut trace) = allreduce_sum(&q_flat, topology);
                let q_mean = marsit_tensor::Tensor::from_vec(
                    q_flat[0].len() / rank,
                    rank,
                    q_sum.into_iter().map(|x| x / m as f32).collect(),
                );
                let update = workers[0].reconstruct(&p_mean, &q_mean);
                for (w, g) in workers.iter_mut().zip(local_updates) {
                    w.absorb(g, &update, &q_mean);
                }
                let mut combined = trace_p;
                combined.extend(std::mem::take(&mut trace));
                SyncResult {
                    global_update: update,
                    trace: combined,
                    full_precision: false,
                    reference_mean: None,
                    faults: FaultStats::default(),
                }
            }
        }
    }
}

/// Exact sum all-reduce over any topology; returns (sum, trace).
fn allreduce_sum(updates: &[Vec<f32>], topology: Topology) -> (Vec<f32>, Trace) {
    match topology {
        Topology::Ring { .. } => {
            let mut buffers = updates.to_vec();
            let trace = ring_allreduce_sum(&mut buffers);
            (buffers.swap_remove(0), trace)
        }
        Topology::Torus { rows, cols } => {
            let mut buffers = updates.to_vec();
            let trace = torus_allreduce_sum(&mut buffers, rows, cols);
            (buffers.swap_remove(0), trace)
        }
        Topology::Star { .. } => {
            ps_allreduce_sum(updates).expect("harness builds a valid membership")
        }
    }
}

/// Aggregates scaled-sign messages linearly: `(mean scale) · (mean sign)`,
/// the MAR extension shared by SSDM and EF-signSGD.
fn mean_scaled_signs(signs: &[SignVec], scales: &[f32], topology: Topology) -> (Vec<f32>, Trace) {
    let m = signs.len() as f32;
    let (sums, trace) = match topology {
        Topology::Ring { .. } => ring_allreduce_signsum(signs, SumWire::Elias),
        Topology::Torus { rows, cols } => {
            torus_allreduce_signsum(signs, rows, cols, SumWire::Elias)
        }
        Topology::Star { .. } => ps_sign_sums(signs).expect("harness builds a valid membership"),
    };
    let mean_scale: f32 = scales.iter().sum::<f32>() / m;
    let update: Vec<f32> = sums
        .mean_signs()
        .into_iter()
        .map(|mean_sign| mean_scale * mean_sign)
        .collect();
    (update, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        (0..m)
            .map(|w| {
                let mut rng = FastRng::new(seed, w as u64);
                (0..d).map(|_| (rng.next_f64() as f32) - 0.5).collect()
            })
            .collect()
    }

    #[test]
    fn psgd_is_exact_mean() {
        let u = updates(4, 12, 1);
        let mut sync = StrategyKind::Psgd.build(4, 12, 0.1, 0.1, 0);
        let out = sync.synchronize(&u, Topology::ring(4));
        assert!(out.full_precision);
        for j in 0..12 {
            let mean: f32 = u.iter().map(|v| v[j]).sum::<f32>() / 4.0;
            assert!((out.global_update[j] - mean).abs() < 1e-5);
        }
    }

    #[test]
    fn sign_majority_update_is_lr_scaled() {
        let u = updates(3, 10, 2);
        let mut sync = StrategyKind::SignMajority.build(3, 10, 0.05, 0.1, 0);
        let out = sync.synchronize(&u, Topology::ring(3));
        for (j, &g) in out.global_update.iter().enumerate() {
            assert!((g.abs() - 0.05).abs() < 1e-7, "coord {j}");
            // Must match the majority of input signs.
            let sum: i32 = u.iter().map(|v| if v[j] >= 0.0 { 1 } else { -1 }).sum();
            assert_eq!(g > 0.0, sum >= 0, "coord {j}");
        }
    }

    #[test]
    fn ssdm_update_is_lr_scaled_mean_sign() {
        let u = updates(4, 8, 3);
        let mut sync = StrategyKind::Ssdm.build(4, 8, 0.1, 0.1, 7);
        let out = sync.synchronize(&u, Topology::ring(4));
        // Each coordinate is η·k/4 for k ∈ {−4, −2, 0, 2, 4}.
        for &g in &out.global_update {
            let k = g / 0.1 * 4.0;
            assert!(
                (k - k.round()).abs() < 1e-4,
                "entry {g} not on the mean-sign grid"
            );
            assert!(g.abs() <= 0.1 + 1e-7);
        }
        assert!(!out.full_precision);
    }

    #[test]
    fn cascading_update_is_lr_scaled_sign() {
        let u = updates(4, 8, 9);
        let mut sync = StrategyKind::Cascading.build(4, 8, 0.1, 0.1, 7);
        let out = sync.synchronize(&u, Topology::ring(4));
        for &g in &out.global_update {
            assert!((g.abs() - 0.1).abs() < 1e-7, "entry {g} is not ±η");
        }
    }

    #[test]
    fn strategies_agree_across_topologies_on_deterministic_paths() {
        // PSGD and majority vote are deterministic; ring and torus must give
        // identical results.
        let u = updates(4, 20, 4);
        for kind in [StrategyKind::Psgd, StrategyKind::SignMajority] {
            let mut ring = kind.build(4, 20, 0.1, 0.1, 5);
            let mut torus = kind.build(4, 20, 0.1, 0.1, 5);
            let a = ring.synchronize(&u, Topology::ring(4));
            let b = torus.synchronize(&u, Topology::torus(2, 2));
            for (x, y) in a.global_update.iter().zip(&b.global_update) {
                assert!((x - y).abs() < 1e-4, "{kind}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn cascading_trace_is_serialized() {
        let u = updates(4, 64, 5);
        let mut sync = StrategyKind::Cascading.build(4, 64, 0.1, 0.1, 6);
        let out = sync.synchronize(&u, Topology::ring(4));
        // One transfer per step: no parallelism.
        for step in out.trace.steps() {
            assert_eq!(step.len(), 1);
        }
        assert_eq!(out.trace.num_steps(), 6);
    }

    #[test]
    fn marsit_k_schedules_full_precision() {
        let u = updates(2, 16, 6);
        let mut sync = StrategyKind::Marsit { k: Some(2) }.build(2, 16, 0.1, 0.05, 8);
        assert!(sync.synchronize(&u, Topology::ring(2)).full_precision);
        assert!(!sync.synchronize(&u, Topology::ring(2)).full_precision);
        assert!(sync.synchronize(&u, Topology::ring(2)).full_precision);
    }

    #[test]
    fn ef_sign_state_accumulates_error() {
        let u = updates(2, 16, 7);
        let mut sync = StrategyKind::EfSign.build(2, 16, 0.1, 0.1, 9);
        let a = sync.synchronize(&u, Topology::ring(2));
        let b = sync.synchronize(&u, Topology::ring(2));
        // With error feedback, the second round's update differs even for
        // identical inputs.
        assert_ne!(a.global_update, b.global_update);
    }

    #[test]
    fn one_bit_strategies_move_fewer_bytes_than_psgd() {
        let u = updates(8, 1024, 8);
        let mut psgd = StrategyKind::Psgd.build(8, 1024, 0.1, 0.1, 1);
        let mut marsit = StrategyKind::Marsit { k: None }.build(8, 1024, 0.1, 0.1, 1);
        let p = psgd.synchronize(&u, Topology::ring(8));
        let m = marsit.synchronize(&u, Topology::ring(8));
        let ratio = p.trace.total_bytes() as f64 / m.trace.total_bytes() as f64;
        assert!(ratio > 25.0, "compression ratio only {ratio}");
    }

    #[test]
    fn powersgd_reaches_consensus_and_compresses() {
        let u = updates(4, 100, 11);
        let mut sync = StrategyKind::PowerSgd { rank: 2 }.build(4, 100, 0.1, 0.1, 3);
        let out = sync.synchronize(&u, Topology::ring(4));
        assert_eq!(out.global_update.len(), 100);
        // Factor traffic is far below a dense fp32 all-reduce.
        let mut psgd = StrategyKind::Psgd.build(4, 100, 0.1, 0.1, 3);
        let dense = psgd.synchronize(&u, Topology::ring(4));
        assert!(out.trace.total_bytes() < dense.trace.total_bytes() / 2);
    }

    #[test]
    fn powersgd_error_feedback_improves_over_rounds() {
        // Repeatedly synchronizing the same updates: with error feedback the
        // cumulative applied update converges to the cumulative mean.
        let d = 64;
        let u = updates(3, d, 12);
        let mut mean = vec![0.0f32; d];
        for w in &u {
            for (a, &x) in mean.iter_mut().zip(w) {
                *a += x / 3.0;
            }
        }
        let mut sync = StrategyKind::PowerSgd { rank: 2 }.build(3, d, 0.1, 0.1, 5);
        let rounds = 50;
        let mut applied = vec![0.0f64; d];
        for _ in 0..rounds {
            let out = sync.synchronize(&u, Topology::ring(3));
            for (a, &g) in applied.iter_mut().zip(&out.global_update) {
                *a += f64::from(g);
            }
        }
        let target: Vec<f64> = mean
            .iter()
            .map(|&x| f64::from(x) * f64::from(rounds as u32))
            .collect();
        let err: f64 = applied
            .iter()
            .zip(&target)
            .map(|(a, t)| (a - t).powi(2))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = target.iter().map(|t| t * t).sum::<f64>().sqrt();
        assert!(err / norm < 0.2, "relative error {}", err / norm);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(StrategyKind::Psgd.label(), "PSGD");
        assert_eq!(StrategyKind::Marsit { k: Some(100) }.label(), "Marsit-100");
        assert_eq!(StrategyKind::Marsit { k: None }.label(), "Marsit");
        assert_eq!(StrategyKind::PowerSgd { rank: 4 }.label(), "PowerSGD-4");
    }
}
