//! The distributed-training simulator: cluster, training loop, and reports.
//!
//! [`train`] runs the full pipeline of the paper's experiments: an IID-
//! sharded synthetic dataset, `M` model replicas computing true stochastic
//! gradients, a local optimizer per worker, and one of the six
//! synchronization strategies. Per round it records loss, sign matching
//! rate, simulated phase times, and exact wire-bit accounting — everything
//! Figures 1, 3, 4, 5 and Tables 1–2 read out.

use marsit_datagen::synthetic::{cifar10_like, imagenet_like, imdb_like, mnist_like};
use marsit_datagen::Dataset;
use marsit_models::{Evaluation, Mlp, Model, Optimizer, OptimizerKind, Workload};
use marsit_simnet::{cost, Backend, FaultPlan, FaultStats, PhaseBreakdown, RateProfile, Topology};
use marsit_telemetry::{scoped, Telemetry};
use marsit_tensor::rng::{split_seed, FastRng};
use marsit_tensor::SignVec;

use crate::snapshot::TrainSnapshot;
use crate::strategy::{StrategyKind, Synchronizer};
use crate::timing::TimingModel;

/// Configuration of one training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Which paper workload (model/dataset pair) to train.
    pub workload: Workload,
    /// Cluster topology.
    pub topology: Topology,
    /// Synchronization strategy.
    pub strategy: StrategyKind,
    /// Number of synchronization rounds `T`.
    pub rounds: usize,
    /// Training-set size (split IID across workers).
    pub train_examples: usize,
    /// Held-out test-set size.
    pub test_examples: usize,
    /// Per-worker minibatch size.
    pub batch_per_worker: usize,
    /// Local learning rate `η_l`.
    pub local_lr: f32,
    /// Marsit's global learning rate `η_s`.
    pub marsit_global_lr: f32,
    /// Local optimizer (the paper uses Momentum for vision, Adam for NLP).
    pub optimizer: OptimizerKind,
    /// Master seed.
    pub seed: u64,
    /// Evaluate on the test set every this many rounds (0 = final only).
    pub eval_every: usize,
    /// Hardware rates for the simulated clock.
    pub rates: RateProfile,
    /// Marsit receive/compression overlap (disable for the ablation).
    pub overlap: bool,
    /// Multiply `η_l` by this factor at every full-precision round (the
    /// paper decays by 0.1 at full-precision synchronizations).
    pub lr_decay_on_full_precision: Option<f32>,
    /// Assert that all replicas stay bitwise identical after every
    /// synchronization (the MAR consensus invariant).
    pub check_consistency: bool,
    /// Label-skewed (non-IID) sharding with this Dirichlet `alpha`;
    /// `None` keeps the paper's IID assumption. Used to probe the
    /// compensation mechanism's IID justification (Section 4.1.3).
    pub data_skew: Option<f64>,
    /// Deterministic fault plan (link drops/corruption, stragglers, a
    /// scheduled crash). [`FaultPlan::none`] — the default — leaves the
    /// run byte-identical to a build without the fault layer. Only the
    /// Marsit strategy supports an active plan.
    pub fault_plan: FaultPlan,
    /// Run the per-worker gradient-compute phase on one OS thread per
    /// worker. Bit-identical to the sequential path: every worker owns its
    /// model, optimizer, and `split_seed`-derived RNG stream, and the
    /// results are reduced in worker order on the main thread, so the
    /// resulting [`TrainReport`] is byte-for-byte the same either way.
    pub parallel_workers: bool,
    /// Transport backend for Marsit's collectives. [`Backend::Simulator`]
    /// (the default) runs the deterministic in-process schedules;
    /// [`Backend::Threaded`] executes the same compiled plan with one OS
    /// thread per rank and stays bit-identical via the frozen per-hop RNG
    /// contract. Hop telemetry is tagged with the backend whenever it is
    /// not the default. [`Backend::Process`] is driven externally (see
    /// `marsit_core::transport`) and rejected here.
    pub collective_backend: Backend,
    /// Number of OS threads one Marsit reduce step's combines may spread
    /// over (1 = the serial hot path). Orthogonal to `parallel_workers`
    /// (which parallelizes the compute phase *across* workers, between
    /// rounds) — this parallelizes *within* one collective round. Every
    /// count produces bit-identical results: the per-step combine cells are
    /// provably disjoint and each hop's randomness is a pure function of
    /// its coordinates.
    pub marsit_intra_threads: usize,
    /// Telemetry handle. The default ([`Telemetry::disabled`]) records
    /// nothing and adds no per-round work; an enabled handle receives a
    /// `run_meta` event, per-round `round`/`worker`/`marsit_sync` events,
    /// per-hop wire events from the collectives, and phase/matching-rate
    /// histograms — all stamped with the simulated clock.
    pub telemetry: Telemetry,
}

impl TrainConfig {
    /// A sensible default configuration for `workload` on `topology` with
    /// `strategy`; tune fields directly afterwards.
    #[must_use]
    pub fn new(workload: Workload, topology: Topology, strategy: StrategyKind) -> Self {
        Self {
            workload,
            topology,
            strategy,
            rounds: 300,
            train_examples: 8192,
            test_examples: 1024,
            batch_per_worker: 32,
            local_lr: 0.01,
            marsit_global_lr: 0.002,
            optimizer: OptimizerKind::Momentum(0.9),
            seed: 42,
            eval_every: 25,
            rates: RateProfile::public_cloud(),
            overlap: true,
            lr_decay_on_full_precision: None,
            check_consistency: true,
            data_skew: None,
            fault_plan: FaultPlan::none(),
            parallel_workers: true,
            collective_backend: Backend::Simulator,
            marsit_intra_threads: 1,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Generates the `(train, test)` datasets for the workload.
    #[must_use]
    pub fn datasets(&self) -> (Dataset, Dataset) {
        let seed = split_seed(self.seed, 0xDA7A);
        match self.workload {
            Workload::AlexNetMnist => {
                mnist_like().generate_split(self.train_examples, self.test_examples, seed)
            }
            Workload::AlexNetCifar10 | Workload::ResNet20Cifar10 => {
                cifar10_like().generate_split(self.train_examples, self.test_examples, seed)
            }
            Workload::ResNet18ImageNet | Workload::ResNet50ImageNet => {
                imagenet_like().generate_split(self.train_examples, self.test_examples, seed)
            }
            Workload::DistilBertImdb => {
                imdb_like().generate_split(self.train_examples, self.test_examples, seed)
            }
        }
    }
}

/// Everything recorded about one synchronization round.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoundRecord {
    /// Round index `t`.
    pub round: usize,
    /// Mean training loss across workers' minibatches.
    pub train_loss: f64,
    /// ‖mean of raw worker gradients‖² before the optimizer and learning
    /// rate — the quantity Theorem 1 bounds.
    pub mean_grad_norm_sq: f64,
    /// Fraction of coordinates where the applied update's sign matches the
    /// exact mean update's sign (Fig 1b's matching rate).
    pub matching_rate: f64,
    /// Whether the round synchronized in full precision.
    pub full_precision: bool,
    /// Simulated phase times for this round.
    pub time: PhaseBreakdown,
    /// Average wire width in bits per transmitted element this round
    /// (32 for fp32 payloads, 1 for strictly one-bit payloads).
    pub wire_bits_per_element: f64,
    /// Cumulative per-worker traffic in megabits since round 0.
    pub cumulative_megabits_per_worker: f64,
    /// Test evaluation, when scheduled.
    pub eval: Option<Evaluation>,
}

/// Result of a full training run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainReport {
    /// Display label of the strategy.
    pub strategy_label: String,
    /// Per-round records.
    pub records: Vec<RoundRecord>,
    /// Final test evaluation.
    pub final_eval: Evaluation,
    /// Total simulated time.
    pub total_time: PhaseBreakdown,
    /// Total bytes moved by the collective (all links).
    pub total_bytes: usize,
    /// Traffic-weighted average wire bits per element over the run.
    pub avg_wire_bits_per_element: f64,
    /// Whether training diverged (non-finite loss observed).
    pub diverged: bool,
    /// Aggregate fault-layer activity over the run (all-zero when the
    /// fault plan is [`FaultPlan::none`]).
    pub faults: FaultStats,
}

impl TrainReport {
    /// Best test accuracy observed at any evaluation point.
    #[must_use]
    pub fn best_accuracy(&self) -> f64 {
        self.records
            .iter()
            .filter_map(|r| r.eval.map(|e| e.accuracy))
            .fold(self.final_eval.accuracy, f64::max)
    }

    /// Simulated time elapsed at the *end* of each round — one cumulative
    /// pass over the records that both `*_to_accuracy` helpers derive from.
    #[must_use]
    pub fn cumulative_time(&self) -> Vec<f64> {
        self.records
            .iter()
            .scan(0.0, |elapsed, r| {
                *elapsed += r.time.total();
                Some(*elapsed)
            })
            .collect()
    }

    /// Index of the first record whose evaluation reached `target` accuracy.
    fn first_record_reaching(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .position(|r| r.eval.is_some_and(|e| e.accuracy >= target))
    }

    /// First round whose evaluation reached `target` accuracy.
    #[must_use]
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        self.first_record_reaching(target)
            .map(|i| self.records[i].round)
    }

    /// Simulated time at which `target` accuracy was first reached.
    #[must_use]
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        let i = self.first_record_reaching(target)?;
        Some(self.cumulative_time()[i])
    }

    /// Minimum `‖∇F‖²` proxy observed over the run — the left-hand side of
    /// Theorem 1's bound.
    #[must_use]
    pub fn min_grad_norm_sq(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.mean_grad_norm_sq)
            .fold(f64::INFINITY, f64::min)
    }

    /// `(cumulative megabits/worker, accuracy)` series for the
    /// communication-budget plot (Fig 4b).
    #[must_use]
    pub fn accuracy_vs_megabits(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .filter_map(|r| {
                r.eval
                    .map(|e| (r.cumulative_megabits_per_worker, e.accuracy))
            })
            .collect()
    }
}

/// Elements transferred per synchronization round under `topology` on a
/// `d`-dimensional payload — the denominator of the wire-width metric.
#[must_use]
pub fn elements_per_round(topology: Topology, d: usize) -> usize {
    match topology {
        Topology::Ring { workers: m } => 2 * (m - 1) * d,
        Topology::Torus { rows, cols } => 2 * (cols - 1) * rows * d + 2 * (rows - 1) * d,
        Topology::Star { workers: m } => 2 * m * d,
    }
}

/// Runs one full training experiment.
///
/// Thin wrapper over [`TrainerState`]: builds the state, steps every round,
/// and finalizes the report. Interruptible runs drive [`TrainerState`]
/// directly and checkpoint with [`TrainerState::snapshot`].
///
/// # Panics
///
/// Panics on inconsistent configuration (topology vs worker counts,
/// zero-sized datasets) and — with `check_consistency` — if the replicas
/// ever disagree after a synchronization.
#[must_use]
pub fn train(cfg: &TrainConfig) -> TrainReport {
    let mut state = TrainerState::new(cfg);
    while !state.is_done() {
        state.step();
    }
    state.finish()
}

/// A resumable training run: the full mutable state of [`train`], stepped
/// one synchronization round at a time.
///
/// Everything derivable from the [`TrainConfig`] (datasets, shards, the
/// timing model) is rebuilt on construction; everything that evolves
/// (replicas, optimizer/synchronizer state, RNG streams, accumulators,
/// round records) lives here and is captured by [`TrainerState::snapshot`].
/// A run restored from a snapshot continues **bit-identically** to one that
/// never stopped — same outcome words, same records, same telemetry events
/// (the restored run emits no fresh `run_meta`, so an uninterrupted event
/// log equals the prefix + resumed concatenation).
pub struct TrainerState {
    cfg: TrainConfig,
    shards: Vec<Dataset>,
    test_set: Dataset,
    d: usize,
    models: Vec<Mlp>,
    optimizers: Vec<Box<dyn Optimizer>>,
    worker_rngs: Vec<FastRng>,
    sync: Synchronizer,
    timing: TimingModel,
    elements_round: usize,
    round: usize,
    lr: f32,
    records: Vec<RoundRecord>,
    total_time: PhaseBreakdown,
    total_bytes: usize,
    cumulative_bits_per_worker: f64,
    total_elements: usize,
    diverged: bool,
    run_faults: FaultStats,
}

impl TrainerState {
    /// Builds the run state for round 0 and emits the `run_meta` telemetry
    /// event.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (see [`train`]).
    #[must_use]
    pub fn new(cfg: &TrainConfig) -> Self {
        let state = Self::build(cfg);
        let tel = &state.cfg.telemetry;
        if tel.is_enabled() {
            tel.set_time(0.0);
            tel.emit(
                "run_meta",
                vec![
                    ("schema", "marsit-telemetry/1".into()),
                    ("seed", cfg.seed.into()),
                    ("strategy", cfg.strategy.label().into()),
                    ("topology", format!("{:?}", cfg.topology).into()),
                    ("workers", state.models.len().into()),
                    ("d", state.d.into()),
                    ("rounds", cfg.rounds.into()),
                    ("alpha_s", cfg.rates.link.latency_s().into()),
                    (
                        "beta_bytes_per_s",
                        cfg.rates.link.bandwidth_bytes_per_s().into(),
                    ),
                ],
            );
        }
        state
    }

    /// Everything deterministically derivable from the configuration, with
    /// zeroed run-state accumulators. Shared by [`TrainerState::new`] and
    /// [`TrainerState::restore`].
    fn build(cfg: &TrainConfig) -> Self {
        let m = cfg.topology.workers();
        assert!(m >= 2, "need at least 2 workers");
        let (train_set, test_set) = cfg.datasets();
        let shard_seed = split_seed(cfg.seed, 0x5A4D);
        let shards = match cfg.data_skew {
            Some(alpha) => train_set.shard_dirichlet(m, alpha, shard_seed),
            None => train_set.shard_iid(m, shard_seed),
        };
        let spec = cfg.workload.proxy_spec();
        let d = spec.num_params();

        // Identical replicas (consensus holds by induction from round 0).
        let reference = Mlp::new(spec, split_seed(cfg.seed, 0x30DE));
        let models: Vec<Mlp> = vec![reference; m];
        let optimizers: Vec<Box<dyn Optimizer>> = (0..m).map(|_| cfg.optimizer.build()).collect();
        let worker_rngs: Vec<FastRng> = (0..m)
            .map(|w| FastRng::new(split_seed(cfg.seed, a_seed(w)), 1))
            .collect();
        let mut sync = cfg.strategy.build(
            m,
            d,
            cfg.local_lr,
            cfg.marsit_global_lr,
            split_seed(cfg.seed, 0x57A7),
        );
        sync.set_fault_plan(cfg.fault_plan.clone());
        sync.set_collective_backend(cfg.collective_backend);
        sync.set_intra_threads(cfg.marsit_intra_threads);
        if cfg.collective_backend != Backend::Simulator {
            cfg.telemetry.set_transport_tag(
                cfg.collective_backend.name(),
                cfg.collective_backend.clock_kind(),
            );
        }
        let timing = TimingModel {
            rates: cfg.rates,
            logical_d: cfg.workload.logical_params(),
            topology: cfg.topology,
            flops_per_sample: cfg.workload.flops_per_sample(),
            batch_per_worker: cfg.batch_per_worker,
            overlap: cfg.overlap,
        };

        Self {
            shards,
            test_set,
            d,
            models,
            optimizers,
            worker_rngs,
            sync,
            timing,
            elements_round: elements_per_round(cfg.topology, d),
            round: 0,
            lr: cfg.local_lr,
            records: Vec::with_capacity(cfg.rounds),
            total_time: PhaseBreakdown::zero(),
            total_bytes: 0,
            cumulative_bits_per_worker: 0.0,
            total_elements: 0,
            diverged: false,
            run_faults: FaultStats::default(),
            cfg: cfg.clone(),
        }
    }

    /// The next round index to run (also: rounds completed so far).
    #[must_use]
    pub fn round(&self) -> usize {
        self.round
    }

    /// Whether every configured round has run.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.round >= self.cfg.rounds
    }

    /// Per-round records completed so far.
    #[must_use]
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Model dimension `d` (the workspace-pool key component).
    #[must_use]
    pub fn model_dim(&self) -> usize {
        self.d
    }

    /// Detaches the synchronizer's round workspace for pooling; `None` for
    /// strategies without poolable scratch. Preemption-safe at any round
    /// boundary and never changes an output bit — see
    /// [`marsit_core::WorkspaceHandle`].
    #[must_use]
    pub fn release_workspace(&mut self) -> Option<marsit_core::WorkspaceHandle> {
        self.sync.release_workspace()
    }

    /// Installs a pooled round workspace (a no-op for strategies without
    /// poolable scratch). Bit-exactness is unaffected whatever the handle
    /// previously served.
    pub fn adopt_workspace(&mut self, handle: marsit_core::WorkspaceHandle) {
        self.sync.adopt_workspace(handle);
    }

    /// Whether every replica currently holds bit-identical parameters (the
    /// MAR consensus invariant).
    #[must_use]
    pub fn replicas_consistent(&self) -> bool {
        let p0 = self.models[0].params_vec();
        self.models
            .iter()
            .skip(1)
            .all(|model| model.params_vec() == p0)
    }

    /// Runs one synchronization round.
    ///
    /// # Panics
    ///
    /// Panics if the run is already done, or — with `check_consistency` —
    /// if the replicas disagree after the synchronization.
    pub fn step(&mut self) {
        assert!(!self.is_done(), "all configured rounds have run");
        let cfg = self.cfg.clone();
        let m = self.models.len();
        let d = self.d;
        let t = self.round;
        let lr = self.lr;
        let tel = &cfg.telemetry;
        // Telemetry rides the simulated clock: every event this round is
        // stamped with the time elapsed before the round started.
        tel.set_time(self.total_time.total());
        let draws_before: Vec<u64> = if tel.is_enabled() {
            self.worker_rngs.iter().map(FastRng::draws).collect()
        } else {
            Vec::new()
        };
        // Local computation: every worker touches only its own model,
        // optimizer, and RNG stream, so the phase parallelizes without any
        // cross-worker synchronization. Reduction stays on the main thread
        // in worker order, keeping both paths bit-identical.
        let batch_per_worker = cfg.batch_per_worker;
        let steps: Vec<WorkerStep> = if cfg.parallel_workers && m > 1 {
            let mut slots: Vec<Option<WorkerStep>> = Vec::new();
            slots.resize_with(m, || None);
            std::thread::scope(|scope| {
                for ((((slot, model), opt), rng), shard) in slots
                    .iter_mut()
                    .zip(&mut self.models)
                    .zip(&mut self.optimizers)
                    .zip(&mut self.worker_rngs)
                    .zip(&self.shards)
                {
                    scope.spawn(move || {
                        *slot = Some(worker_step(
                            model,
                            opt.as_mut(),
                            rng,
                            shard,
                            batch_per_worker,
                            lr,
                            d,
                        ));
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("worker thread completed"))
                .collect()
        } else {
            (0..m)
                .map(|w| {
                    worker_step(
                        &mut self.models[w],
                        self.optimizers[w].as_mut(),
                        &mut self.worker_rngs[w],
                        &self.shards[w],
                        batch_per_worker,
                        lr,
                        d,
                    )
                })
                .collect()
        };
        let mut loss_sum = 0.0f64;
        let mut raw_grad_mean = vec![0.0f64; d];
        let mut local_updates: Vec<Vec<f32>> = Vec::with_capacity(m);
        for step in steps {
            loss_sum += step.loss;
            for (acc, &g) in raw_grad_mean.iter_mut().zip(&step.raw_grad) {
                *acc += f64::from(g) / m as f64;
            }
            local_updates.push(step.update);
        }
        let mean_grad_norm_sq: f64 = raw_grad_mean.iter().map(|&g| g * g).sum();
        let train_loss = loss_sum / m as f64;
        if !train_loss.is_finite() {
            self.diverged = true;
        }

        // Exact mean (free in-process) for the matching-rate metric.
        let mut exact_mean = vec![0.0f32; d];
        for u in &local_updates {
            for (e, &x) in exact_mean.iter_mut().zip(u) {
                *e += x / m as f32;
            }
        }

        // Synchronize, with the telemetry scope installed so the collectives
        // and the Marsit core report per-hop and per-sync events.
        let out = scoped(tel, || self.sync.synchronize(&local_updates, cfg.topology));
        // Matching rate against what the strategy actually aggregated
        // (compensated updates for Marsit, raw updates otherwise).
        let reference = out.reference_mean.as_deref().unwrap_or(&exact_mean);
        let matching_rate =
            SignVec::from_signs(&out.global_update).matching_rate(&SignVec::from_signs(reference));

        // Apply the consensus update everywhere.
        for model in &mut self.models {
            model.apply_update(&out.global_update);
        }
        if cfg.check_consistency && (t.is_multiple_of(16) || t + 1 == cfg.rounds) {
            let p0 = self.models[0].params_vec();
            for (w, model) in self.models.iter().enumerate().skip(1) {
                assert_eq!(
                    model.params_vec(),
                    p0,
                    "replica {w} diverged from consensus at round {t}"
                );
            }
        }
        if out.full_precision {
            if let Some(decay) = cfg.lr_decay_on_full_precision {
                if t > 0 {
                    self.lr *= decay;
                }
            }
        }

        // Accounting. An active fault plan stretches the simulated clock:
        // stragglers multiply this round's compute, every retransmit pays a
        // timeout plus one extra α–β transfer of its payload, and every
        // rejoining worker pays a full-precision catch-up state transfer.
        let mut time = self.timing.round_time(cfg.strategy, out.full_precision);
        let base_compute_s = time.compute_s;
        let mut round_faults = out.faults;
        if !cfg.fault_plan.is_none() {
            time.compute_s *= cfg.fault_plan.compute_multiplier(t as u64);
            if round_faults.retransmits > 0 {
                let payload = retry_payload_bytes(self.timing.logical_d, m, out.full_precision);
                round_faults.retry_extra_s = cost::retry_overhead_time(
                    cfg.rates.link,
                    payload,
                    round_faults.retransmits,
                    cfg.fault_plan.retry_timeout_s,
                );
                time.communication_s += round_faults.retry_extra_s;
            }
            if round_faults.rejoins > 0 {
                round_faults.catchup_extra_s = round_faults.rejoins as f64
                    * cfg.rates.link.transfer_time(self.timing.logical_d * 4);
                time.communication_s += round_faults.catchup_extra_s;
            }
            self.run_faults.merge(&round_faults);
        }
        self.total_time += time;
        let round_bytes = out.trace.total_bytes();
        self.total_bytes += round_bytes;
        self.total_elements += self.elements_round;
        self.cumulative_bits_per_worker += round_bytes as f64 * 8.0 / m as f64;
        let wire_bits_per_element = round_bytes as f64 * 8.0 / self.elements_round as f64;

        let eval = if (cfg.eval_every > 0 && (t + 1).is_multiple_of(cfg.eval_every))
            || t + 1 == cfg.rounds
        {
            Some(self.models[0].evaluate(&self.test_set))
        } else {
            None
        };
        self.records.push(RoundRecord {
            round: t,
            train_loss,
            mean_grad_norm_sq,
            matching_rate,
            full_precision: out.full_precision,
            time,
            wire_bits_per_element,
            cumulative_megabits_per_worker: self.cumulative_bits_per_worker / 1e6,
            eval,
        });

        if tel.is_enabled() {
            for (w, &before) in draws_before.iter().enumerate() {
                let straggler_mult = cfg
                    .fault_plan
                    .stragglers
                    .iter()
                    .filter(|&&(ww, _)| ww == w)
                    .map(|&(_, f)| f)
                    .fold(1.0, f64::max);
                let worker_compute_s = base_compute_s * straggler_mult;
                tel.observe("train.worker_compute_s", worker_compute_s);
                tel.emit(
                    "worker",
                    vec![
                        ("round", t.into()),
                        ("worker", w.into()),
                        ("compute_s", worker_compute_s.into()),
                        ("straggler_mult", straggler_mult.into()),
                        ("rng_draws", (self.worker_rngs[w].draws() - before).into()),
                        ("crashed", (!cfg.fault_plan.live_at(w, t as u64)).into()),
                    ],
                );
            }
            tel.emit(
                "round",
                vec![
                    ("round", t.into()),
                    ("full_precision", out.full_precision.into()),
                    ("loss", train_loss.into()),
                    ("matching_rate", matching_rate.into()),
                    ("compute_s", time.compute_s.into()),
                    ("compression_s", time.compression_s.into()),
                    ("communication_s", time.communication_s.into()),
                    ("bytes", round_bytes.into()),
                    ("wire_bits_per_elem", wire_bits_per_element.into()),
                ],
            );
            tel.counter_add("train.rounds", 1);
            tel.counter_add("train.bytes", round_bytes as u64);
            tel.observe("train.compute_s", time.compute_s);
            tel.observe("train.compression_s", time.compression_s);
            tel.observe("train.communication_s", time.communication_s);
            tel.observe("train.matching_rate", matching_rate);
            tel.observe("train.wire_bits_per_elem", wire_bits_per_element);
        }
        self.round += 1;
    }

    /// Consumes the state into the final [`TrainReport`].
    #[must_use]
    pub fn finish(self) -> TrainReport {
        let tel = &self.cfg.telemetry;
        tel.set_time(self.total_time.total());

        let final_eval = self.models[0].evaluate(&self.test_set);
        let diverged = self.diverged || !final_eval.loss.is_finite();
        TrainReport {
            strategy_label: self.cfg.strategy.label(),
            records: self.records,
            final_eval,
            total_time: self.total_time,
            total_bytes: self.total_bytes,
            avg_wire_bits_per_element: self.total_bytes as f64 * 8.0
                / self.total_elements.max(1) as f64,
            diverged,
            faults: self.run_faults,
        }
    }

    /// Captures every evolving quantity at the current round boundary.
    ///
    /// Because the consensus update is applied to all replicas each round,
    /// the replicas are bit-identical; the snapshot stores a *single*
    /// parameter vector alongside per-worker optimizer states and RNG
    /// streams, the synchronizer state, and the run accumulators.
    ///
    /// # Panics
    ///
    /// Panics if the replicas have diverged from consensus, or if the
    /// strategy does not support checkpointing (see
    /// [`Synchronizer::snapshot`](crate::strategy::Synchronizer::snapshot)).
    #[must_use]
    pub fn snapshot(&mut self) -> TrainSnapshot {
        assert!(
            self.replicas_consistent(),
            "cannot snapshot: replicas have diverged from consensus"
        );
        TrainSnapshot {
            round: self.round as u64,
            lr: self.lr,
            params: self.models[0].params_vec(),
            optimizers: self.optimizers.iter().map(|o| o.state()).collect(),
            worker_rngs: self.worker_rngs.iter().map(FastRng::snapshot).collect(),
            sync: self.sync.snapshot(),
            records: self.records.clone(),
            total_time: self.total_time,
            total_bytes: self.total_bytes as u64,
            cumulative_bits_per_worker: self.cumulative_bits_per_worker,
            total_elements: self.total_elements as u64,
            diverged: self.diverged,
            run_faults: self.run_faults,
        }
    }

    /// Rebuilds a run from `cfg` and a snapshot captured by
    /// [`TrainerState::snapshot`]; the resumed run continues bit-identically.
    ///
    /// Emits **no** fresh `run_meta` event: concatenating the original run's
    /// telemetry prefix with the resumed run's events reproduces the
    /// uninterrupted log byte-for-byte.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shapes disagree with the configuration
    /// (worker count, parameter dimension, synchronizer kind).
    #[must_use]
    pub fn restore(cfg: &TrainConfig, snapshot: &TrainSnapshot) -> Self {
        let mut state = Self::build(cfg);
        let m = state.models.len();
        assert_eq!(snapshot.optimizers.len(), m, "worker count mismatch");
        assert_eq!(snapshot.worker_rngs.len(), m, "worker count mismatch");
        assert_eq!(
            snapshot.params.len(),
            state.d,
            "parameter dimension mismatch"
        );
        for model in &mut state.models {
            model.write_params(&snapshot.params);
        }
        for (opt, s) in state.optimizers.iter_mut().zip(&snapshot.optimizers) {
            opt.load_state(s);
        }
        for (rng, &pair) in state.worker_rngs.iter_mut().zip(&snapshot.worker_rngs) {
            *rng = FastRng::from_snapshot(pair);
        }
        state.sync.restore(&snapshot.sync);
        state.round = snapshot.round as usize;
        state.lr = snapshot.lr;
        state.records.clone_from(&snapshot.records);
        state.total_time = snapshot.total_time;
        state.total_bytes = snapshot.total_bytes as usize;
        state.cumulative_bits_per_worker = snapshot.cumulative_bits_per_worker;
        state.total_elements = snapshot.total_elements as usize;
        state.diverged = snapshot.diverged;
        state.run_faults = snapshot.run_faults;
        state
    }
}

/// One worker's contribution to a round: its minibatch loss, the raw
/// stochastic gradient (before the optimizer), and the `η_l`-scaled update
/// direction handed to the synchronization layer.
struct WorkerStep {
    loss: f64,
    raw_grad: Vec<f32>,
    update: Vec<f32>,
}

/// The per-worker gradient-compute phase, shared verbatim by the sequential
/// and the thread-per-worker paths so both produce identical bits.
fn worker_step(
    model: &mut Mlp,
    optimizer: &mut dyn Optimizer,
    rng: &mut FastRng,
    shard: &Dataset,
    batch_per_worker: usize,
    lr: f32,
    d: usize,
) -> WorkerStep {
    let batch = shard.sample_batch(batch_per_worker, rng);
    let mut grad = vec![0.0f32; d];
    let loss = model.loss_and_grad(&batch, &mut grad);
    let raw_grad = grad.clone();
    optimizer.direction(&mut grad);
    for g in &mut grad {
        *g *= lr;
    }
    WorkerStep {
        loss,
        raw_grad,
        update: grad,
    }
}

/// Bytes of one retransmitted segment at logical model scale: a ring-style
/// `D/M` segment, one bit per element in compressed rounds and fp32 in
/// full-precision rounds.
fn retry_payload_bytes(logical_d: usize, m: usize, full_precision: bool) -> usize {
    let seg = logical_d.div_ceil(m);
    if full_precision {
        seg * 4
    } else {
        seg.div_ceil(8)
    }
}

/// Derives a per-worker seed stream id.
fn a_seed(w: usize) -> u64 {
    0xB000 + w as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(strategy: StrategyKind) -> TrainConfig {
        let mut cfg = TrainConfig::new(Workload::AlexNetMnist, Topology::ring(4), strategy);
        cfg.rounds = 60;
        cfg.train_examples = 2048;
        cfg.test_examples = 512;
        cfg.eval_every = 20;
        cfg.local_lr = 0.1;
        cfg.marsit_global_lr = 0.01;
        cfg.optimizer = OptimizerKind::Sgd;
        cfg
    }

    #[test]
    fn psgd_learns_mnist_proxy() {
        let report = train(&quick_cfg(StrategyKind::Psgd));
        assert!(!report.diverged);
        assert!(
            report.final_eval.accuracy > 0.85,
            "accuracy {}",
            report.final_eval.accuracy
        );
        assert_eq!(report.records.len(), 60);
    }

    #[test]
    fn marsit_learns_mnist_proxy() {
        let report = train(&quick_cfg(StrategyKind::Marsit { k: Some(50) }));
        assert!(!report.diverged);
        assert!(
            report.final_eval.accuracy > 0.8,
            "accuracy {}",
            report.final_eval.accuracy
        );
    }

    #[test]
    fn marsit_wire_bits_are_one() {
        let mut cfg = quick_cfg(StrategyKind::Marsit { k: None });
        cfg.rounds = 10;
        let report = train(&cfg);
        assert!(
            report.avg_wire_bits_per_element < 1.2,
            "bits {}",
            report.avg_wire_bits_per_element
        );
    }

    #[test]
    fn psgd_wire_bits_are_32() {
        let mut cfg = quick_cfg(StrategyKind::Psgd);
        cfg.rounds = 5;
        let report = train(&cfg);
        assert!(
            (report.avg_wire_bits_per_element - 32.0).abs() < 0.5,
            "bits {}",
            report.avg_wire_bits_per_element
        );
    }

    #[test]
    fn matching_rate_is_high_for_psgd_and_lower_for_cascading() {
        let mut psgd_cfg = quick_cfg(StrategyKind::Psgd);
        psgd_cfg.rounds = 20;
        let mut casc_cfg = quick_cfg(StrategyKind::Cascading);
        casc_cfg.rounds = 20;
        let psgd = train(&psgd_cfg);
        let casc = train(&casc_cfg);
        let avg = |r: &TrainReport| {
            r.records.iter().map(|x| x.matching_rate).sum::<f64>() / r.records.len() as f64
        };
        assert!(avg(&psgd) > 0.99, "PSGD matching {}", avg(&psgd));
        assert!(
            avg(&casc) < 0.8,
            "cascading matching should be poor: {}",
            avg(&casc)
        );
    }

    #[test]
    fn report_helpers_work() {
        let mut cfg = quick_cfg(StrategyKind::Psgd);
        cfg.rounds = 40;
        cfg.eval_every = 10;
        let report = train(&cfg);
        assert!(report.best_accuracy() >= report.final_eval.accuracy - 1e-9);
        if let Some(rounds) = report.rounds_to_accuracy(0.5) {
            assert!(rounds < 40);
            assert!(report.time_to_accuracy(0.5).is_some());
        }
        assert!(!report.accuracy_vs_megabits().is_empty());
    }

    #[test]
    fn torus_training_runs() {
        let mut cfg = quick_cfg(StrategyKind::Marsit { k: Some(25) });
        cfg.topology = Topology::torus(2, 2);
        cfg.rounds = 30;
        let report = train(&cfg);
        assert!(!report.diverged);
        assert!(report.final_eval.accuracy > 0.5);
    }

    #[test]
    fn explicit_none_fault_plan_report_is_identical() {
        let mut cfg = quick_cfg(StrategyKind::Marsit { k: Some(20) });
        cfg.rounds = 12;
        let baseline = train(&cfg);
        cfg.fault_plan = FaultPlan::none();
        let explicit = train(&cfg);
        assert_eq!(baseline, explicit);
        assert!(baseline.faults.is_clean());
    }

    #[test]
    fn faulty_run_records_retransmits_and_costs_time() {
        let mut cfg = quick_cfg(StrategyKind::Marsit { k: Some(20) });
        cfg.rounds = 12;
        let clean = train(&cfg);
        cfg.fault_plan = FaultPlan::seeded(7)
            .with_link_drop(0.05)
            .with_straggler(1, 4.0);
        let faulty = train(&cfg);
        assert!(faulty.faults.retransmits > 0, "{:?}", faulty.faults);
        assert!(faulty.faults.retry_extra_s > 0.0);
        assert!(
            faulty.total_time.total() > clean.total_time.total(),
            "faults must stretch the simulated clock"
        );
        // Deterministic replay under a fixed plan seed.
        let again = train(&cfg);
        assert_eq!(faulty, again);
    }

    #[test]
    fn crash_mid_run_repairs_and_converges() {
        let mut cfg = quick_cfg(StrategyKind::Marsit { k: Some(20) });
        cfg.rounds = 30;
        cfg.fault_plan = FaultPlan::seeded(11).with_crash(3, 10);
        let report = train(&cfg);
        assert_eq!(report.faults.repairs, 1);
        assert_eq!(report.faults.crashed_workers, 1);
        assert!(!report.diverged);
    }

    #[test]
    #[should_panic(expected = "only supported for the Marsit strategy")]
    fn non_marsit_strategy_rejects_fault_plan() {
        let mut cfg = quick_cfg(StrategyKind::Psgd);
        cfg.rounds = 2;
        cfg.fault_plan = FaultPlan::seeded(1).with_link_drop(0.1);
        let _ = train(&cfg);
    }

    /// Tentpole invariant: the thread-per-worker compute phase must be
    /// byte-for-byte identical to the sequential one — same
    /// `SyncOutcome`s, same losses, same wire accounting, same final model.
    #[test]
    fn parallel_workers_bit_identical_to_sequential() {
        for (strategy, topology) in [
            (StrategyKind::Marsit { k: Some(10) }, Topology::ring(4)),
            (StrategyKind::Marsit { k: None }, Topology::torus(2, 2)),
            (StrategyKind::Psgd, Topology::ring(4)),
            (StrategyKind::Ssdm, Topology::ring(4)),
        ] {
            let mut cfg = quick_cfg(strategy);
            cfg.topology = topology;
            cfg.rounds = 12;
            cfg.optimizer = OptimizerKind::Momentum(0.9);
            cfg.parallel_workers = false;
            let sequential = train(&cfg);
            cfg.parallel_workers = true;
            let parallel = train(&cfg);
            assert_eq!(
                sequential, parallel,
                "{strategy:?} on {topology:?}: parallel compute diverged"
            );
        }
    }

    #[test]
    fn parallel_workers_bit_identical_under_faults() {
        let mut cfg = quick_cfg(StrategyKind::Marsit { k: Some(20) });
        cfg.rounds = 12;
        cfg.fault_plan = FaultPlan::seeded(7)
            .with_link_drop(0.05)
            .with_straggler(1, 4.0);
        cfg.parallel_workers = false;
        let sequential = train(&cfg);
        cfg.parallel_workers = true;
        let parallel = train(&cfg);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = {
            let mut c = quick_cfg(StrategyKind::Ssdm);
            c.rounds = 15;
            c
        };
        let a = train(&cfg);
        let b = train(&cfg);
        assert_eq!(a.final_eval, b.final_eval);
        assert_eq!(a.total_bytes, b.total_bytes);
    }
}
