//! Theoretical bounds (Theorems 1–3) and their Monte-Carlo counterparts.
//!
//! The appendix bounds the deviation between the compressed and exact
//! aggregates: `O(DG²)` for SSDM under a parameter server (Theorem 2) versus
//! `O((2D)^M G²/M)` for cascading compression (Theorem 3) — the exponential
//! blow-up that motivates Marsit. This module provides the closed-form
//! bounds plus empirical estimators that the `theory` experiment binary uses
//! to reproduce the comparison.

use marsit_compress::cascading::{cascade_reduce, exact_sum};
use marsit_compress::compressor::Ssdm;
use marsit_tensor::rng::{split_seed, FastRng};
use marsit_tensor::stats::dist_sq;
use marsit_tensor::Tensor;

/// Theorem 2 bound: `‖s₂ − s₁‖² ≤ D·G²` for SSDM under PS.
///
/// # Panics
///
/// Panics if `g < 0`.
#[must_use]
pub fn ps_deviation_bound(d: usize, g: f64) -> f64 {
    assert!(g >= 0.0, "gradient bound must be non-negative");
    d as f64 * g * g
}

/// Theorem 3 bound: `‖s₃ − s₁‖² ≤ (2D)^M·G²/M` for cascading compression.
///
/// Saturates at `f64::INFINITY` when the power overflows — which is itself
/// the theorem's message.
///
/// # Panics
///
/// Panics if `g < 0` or `m == 0`.
#[must_use]
pub fn cascading_deviation_bound(d: usize, m: usize, g: f64) -> f64 {
    assert!(g >= 0.0, "gradient bound must be non-negative");
    assert!(m > 0, "worker count must be positive");
    (2.0 * d as f64).powi(i32::try_from(m).unwrap_or(i32::MAX)) * g * g / m as f64
}

/// Empirical deviations of the two aggregation schemes on random gradients.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviationEstimate {
    /// Mean `‖s₂ − s₁‖²`: SSDM per worker under PS, then averaged.
    pub ps: f64,
    /// Mean `‖s₃ − s₁‖²`: SSDM cascading compression along the chain.
    pub cascading: f64,
}

/// Monte-Carlo estimate of the Theorem 2 / Theorem 3 deviations.
///
/// Draws `m` worker gradients i.i.d. `N(0, I_d)` (so `E‖g‖² = d`, i.e.
/// `G² ≈ d`), computes the exact mean `s₁`, the PS aggregate
/// `s₂ = (1/M)ΣQ(g_m)`, and the cascading aggregate `s₃`, and averages the
/// squared deviations over `trials`.
///
/// # Panics
///
/// Panics if any size parameter is zero.
#[must_use]
pub fn estimate_deviations(d: usize, m: usize, trials: usize, seed: u64) -> DeviationEstimate {
    assert!(d > 0 && m > 0 && trials > 0, "sizes must be positive");
    let mut ps_total = 0.0;
    let mut cascade_total = 0.0;
    for trial in 0..trials {
        let trial_seed = split_seed(seed, trial as u64);
        let grads: Vec<Vec<f32>> = (0..m)
            .map(|w| {
                let mut rng = FastRng::new(trial_seed, w as u64);
                Tensor::gaussian(1, d, 1.0, &mut rng).into_vec()
            })
            .collect();
        let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
        let sum = exact_sum(&refs);
        let s1: Vec<f32> = sum.iter().map(|&x| x / m as f32).collect();

        // s₂: independent SSDM per worker, then average.
        let mut rng = FastRng::new(split_seed(trial_seed, 0x9A), 0);
        let mut s2 = vec![0.0f32; d];
        for g in &refs {
            let msg = Ssdm::quantize(g, &mut rng);
            for (acc, v) in s2.iter_mut().zip(msg.to_values()) {
                *acc += v / m as f32;
            }
        }
        ps_total += dist_sq(&s2, &s1);

        // s₃: cascading compression, normalized by M.
        let mut rng = FastRng::new(split_seed(trial_seed, 0x3C), 0);
        let out = cascade_reduce(&refs, &mut rng);
        let s3: Vec<f32> = out.aggregate.iter().map(|&x| x / m as f32).collect();
        cascade_total += dist_sq(&s3, &s1);
    }
    DeviationEstimate {
        ps: ps_total / trials as f64,
        cascading: cascade_total / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_known_values() {
        assert_eq!(ps_deviation_bound(100, 2.0), 400.0);
        // (2·4)^2 · 1 / 2 = 32.
        assert_eq!(cascading_deviation_bound(4, 2, 1.0), 32.0);
    }

    #[test]
    fn cascading_bound_explodes() {
        let small = cascading_deviation_bound(64, 2, 1.0);
        let large = cascading_deviation_bound(64, 8, 1.0);
        assert!(large / small > 1e10);
        assert!(cascading_deviation_bound(1000, 300, 1.0).is_infinite());
    }

    #[test]
    fn empirical_matches_theory_shape() {
        // PS deviation roughly flat in M (actually shrinking), cascading
        // deviation growing rapidly.
        let d = 32;
        let e2 = estimate_deviations(d, 2, 100, 5);
        let e6 = estimate_deviations(d, 6, 100, 5);
        assert!(e6.cascading > 10.0 * e2.cascading, "{e2:?} vs {e6:?}");
        assert!(
            e6.ps < 4.0 * e2.ps,
            "PS deviation should not explode: {e2:?} vs {e6:?}"
        );
        // Both under their closed-form bounds (G² ≈ d for standard normals).
        let g2 = d as f64;
        assert!(e6.ps < ps_deviation_bound(d, g2.sqrt()) * 2.0);
        assert!(e6.cascading < cascading_deviation_bound(d, 6, g2.sqrt()));
    }

    #[test]
    fn estimates_are_deterministic() {
        assert_eq!(
            estimate_deviations(16, 3, 20, 9),
            estimate_deviations(16, 3, 20, 9)
        );
    }

    #[test]
    #[should_panic(expected = "sizes must be positive")]
    fn zero_sizes_panic() {
        let _ = estimate_deviations(0, 1, 1, 0);
    }
}
