//! The `⊙` operator: unbiased one-bit sign aggregation (paper Section 4.1.1).
//!
//! Combining a received sign vector `v_i` with the local sign vector `v_i*`
//! must stay within one bit *and* remain an unbiased estimate of the mean
//! sign. Marsit achieves this with
//!
//! ```text
//! v_i ⊙ v_i* = (v_i AND v_i*) OR ((v_i XOR v_i*) AND v)
//! ```
//!
//! where the *transient vector* `v` resolves disagreements by a Bernoulli
//! draw (Eq. 2): when folding the `m`-th worker into an aggregate of `m−1`,
//! a disagreeing bit keeps the local value with probability `1/m`. By
//! induction the final bit at every coordinate is the sign of a *uniformly
//! random* worker — an unbiased one-bit sample of the sign average.
//!
//! This module implements the operator in the generalized *weighted* form
//! needed by 2D-torus all-reduce, where both operands may already aggregate
//! several workers: `combine_weighted(recv, a, local, b)` keeps the received
//! bit with probability `a/(a+b)`. Eq. (2) is exactly the `b = 1` case
//! ([`combine_eq2`]). A deliberately *biased* variant ([`combine_unweighted`])
//! is provided for the ablation study in `DESIGN.md`.

use marsit_tensor::rng::FastRng;
use marsit_tensor::SignVec;

/// Combines `received` (an aggregate over `a` workers) with `local` (an
/// aggregate over `b` workers) into an unbiased one-bit aggregate over
/// `a + b` workers.
///
/// Implements the paper's bit-wise form: matching bits pass through
/// unchanged; disagreeing bits take the value of the transient vector `v`,
/// drawn per Eq. (2) generalized to weights: `P(v_j = 1) = a/(a+b)` when the
/// local bit is 0, and `b/(a+b)` when the local bit is 1 — i.e. the output
/// bit equals the received bit with probability `a/(a+b)`.
///
/// The transient vector is generated word-parallel (64 lanes per RNG word);
/// whenever `a + b` is a power of two — every step of a power-of-two ring
/// and both phases of a power-of-two torus — the keep probability is dyadic
/// and realized *exactly*; otherwise the per-bit bias is below `2⁻³²` (see
/// [`SignVec::bernoulli_uniform`]).
///
/// # Panics
///
/// Panics if the vectors' lengths differ or `a + b == 0`.
///
/// # Examples
///
/// ```
/// use marsit_core::ominus::combine_weighted;
/// use marsit_tensor::{rng::FastRng, SignVec};
///
/// let recv = SignVec::ones(8);
/// let local = SignVec::ones(8);
/// let mut rng = FastRng::new(0, 0);
/// // Agreement passes through regardless of the draw.
/// let out = combine_weighted(&recv, 3, &local, 1, &mut rng);
/// assert_eq!(out, SignVec::ones(8));
/// ```
#[must_use]
pub fn combine_weighted(
    received: &SignVec,
    a: usize,
    local: &SignVec,
    b: usize,
    rng: &mut FastRng,
) -> SignVec {
    assert_eq!(received.len(), local.len(), "sign vector lengths differ");
    assert!(a + b > 0, "weights must not both be zero");
    // Transient vector v (Eq. 2 generalized): where the local bit is 1 the
    // disagreeing received bit must be 0, so emitting 1 means keeping
    // *local* → P = b/(a+b). Where the local bit is 0 the received bit is 1,
    // so emitting 1 means keeping *received* → P = a/(a+b). One
    // Bernoulli(a/(a+b)) mask `keep` with v = local XOR keep realizes
    // exactly those per-bit probabilities; the fused kernel evaluates the
    // whole ⊙ expression in a single word pass on the same RNG stream as
    // the composed form ([`combine_weighted_reference`]).
    let mut out = SignVec::zeros(received.len());
    SignVec::transient_combine_into(received, local, a as f64 / (a + b) as f64, rng, &mut out);
    out
}

/// In-place [`combine_weighted`]: folds `received` into `local`, which
/// becomes the combined aggregate. Bit- and RNG-stream-identical to the
/// functional form, with zero allocations.
///
/// # Panics
///
/// Panics if the vectors' lengths differ or `a + b == 0`.
pub fn combine_weighted_assign(
    received: &SignVec,
    a: usize,
    local: &mut SignVec,
    b: usize,
    rng: &mut FastRng,
) {
    assert_eq!(received.len(), local.len(), "sign vector lengths differ");
    assert!(a + b > 0, "weights must not both be zero");
    SignVec::transient_combine_assign(received, local, a as f64 / (a + b) as f64, rng);
}

/// The original composed implementation of [`combine_weighted`], retained
/// verbatim as the differential-testing reference: ~8 intermediate
/// `SignVec`s, but the exact semantics (and RNG stream) the fused kernel
/// must reproduce bit for bit.
///
/// # Panics
///
/// Panics if the vectors' lengths differ or `a + b == 0`.
#[must_use]
pub fn combine_weighted_reference(
    received: &SignVec,
    a: usize,
    local: &SignVec,
    b: usize,
    rng: &mut FastRng,
) -> SignVec {
    assert_eq!(received.len(), local.len(), "sign vector lengths differ");
    assert!(a + b > 0, "weights must not both be zero");
    let p_keep_received = a as f64 / (a + b) as f64;
    let keep = SignVec::bernoulli_uniform(received.len(), p_keep_received, rng);
    let v = local.and(&keep.not()).or(&local.not().and(&keep));
    // v_i ⊙ v_i* = (v_i AND v_i*) OR ((v_i XOR v_i*) AND v)
    received.and(local).or(&received.xor(local).and(&v))
}

/// The paper's Eq. (2) exactly: folds one worker (`local`) into a received
/// aggregate of `m − 1` workers.
///
/// # Panics
///
/// Panics if `m < 2` or the vectors' lengths differ.
#[must_use]
pub fn combine_eq2(received: &SignVec, local: &SignVec, m: usize, rng: &mut FastRng) -> SignVec {
    assert!(
        m >= 2,
        "Eq. (2) needs at least two workers in the aggregate"
    );
    combine_weighted(received, m - 1, local, 1, rng)
}

/// Ablation: an *unweighted* coin-flip combine (`P(keep received) = ½`
/// regardless of aggregate sizes).
///
/// This looks plausible but is biased: early workers in the chain are
/// exponentially down-weighted, so the result over-represents late workers.
/// Kept for the ablation benchmark that quantifies the value of Eq. (2)'s
/// weighting.
#[must_use]
pub fn combine_unweighted(received: &SignVec, local: &SignVec, rng: &mut FastRng) -> SignVec {
    assert_eq!(received.len(), local.len(), "sign vector lengths differ");
    let mut out = SignVec::zeros(received.len());
    SignVec::transient_combine_into(received, local, 0.5, rng, &mut out);
    out
}

/// In-place [`combine_unweighted`]: folds `received` into `local`.
/// Bit- and RNG-stream-identical to the functional form.
///
/// # Panics
///
/// Panics if the vectors' lengths differ.
pub fn combine_unweighted_assign(received: &SignVec, local: &mut SignVec, rng: &mut FastRng) {
    assert_eq!(received.len(), local.len(), "sign vector lengths differ");
    SignVec::transient_combine_assign(received, local, 0.5, rng);
}

/// The original composed implementation of [`combine_unweighted`], retained
/// as the differential-testing reference.
///
/// # Panics
///
/// Panics if the vectors' lengths differ.
#[must_use]
pub fn combine_unweighted_reference(
    received: &SignVec,
    local: &SignVec,
    rng: &mut FastRng,
) -> SignVec {
    assert_eq!(received.len(), local.len(), "sign vector lengths differ");
    let keep = SignVec::bernoulli_uniform(received.len(), 0.5, rng);
    received.and(local).or(&received
        .xor(local)
        .and(&local.and(&keep.not()).or(&local.not().and(&keep))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_always_passes_through() {
        let mut rng = FastRng::new(1, 0);
        let v = SignVec::bernoulli_uniform(256, 0.5, &mut rng);
        for _ in 0..20 {
            let out = combine_weighted(&v, 5, &v, 3, &mut rng);
            assert_eq!(out, v);
        }
    }

    #[test]
    fn disagreement_probability_matches_weights() {
        // recv = all ones, local = all zeros: every bit disagrees; output
        // bit is 1 iff the received value is kept, expected rate a/(a+b).
        let n = 200_000;
        let recv = SignVec::ones(n);
        let local = SignVec::zeros(n);
        for (a, b) in [(1usize, 1usize), (3, 1), (7, 1), (4, 4), (12, 4)] {
            let mut rng = FastRng::new(42, (a * 100 + b) as u64);
            let out = combine_weighted(&recv, a, &local, b, &mut rng);
            let rate = out.count_ones() as f64 / n as f64;
            let expect = a as f64 / (a + b) as f64;
            assert!(
                (rate - expect).abs() < 0.005,
                "a={a} b={b}: rate {rate} vs {expect}"
            );
        }
    }

    /// Strongly asymmetric weights (e.g. folding worker 64 into an
    /// aggregate of 63) must keep the combine unbiased: the keep
    /// probability 63/64 is dyadic, so the word-parallel transient vector
    /// realizes it *exactly*, and the empirical rate has to sit inside a 5σ
    /// binomial interval. Complements the operand-swap property test, which
    /// only exercises weights up to 8.
    #[test]
    fn strongly_asymmetric_weights_stay_unbiased() {
        let n = 1 << 16;
        let trials = 16u64;
        let total = trials * n as u64;
        let recv = SignVec::ones(n);
        let local = SignVec::zeros(n);
        for (a, b) in [(63usize, 1usize), (1, 63), (127, 1), (255, 1)] {
            let expect = a as f64 / (a + b) as f64;
            let hw = marsit_tensor::stats::binomial_ci_halfwidth(expect, total);
            let mut rng = FastRng::new(0xA5, (a * 1000 + b) as u64);
            let mut ones = 0usize;
            for _ in 0..trials {
                ones += combine_weighted(&recv, a, &local, b, &mut rng).count_ones();
            }
            let rate = ones as f64 / total as f64;
            assert!(
                (rate - expect).abs() <= hw,
                "a={a} b={b}: rate {rate} vs {expect} (±{hw})"
            );
        }
    }

    #[test]
    fn eq2_matches_weighted_b1_statistics() {
        let n = 100_000;
        let recv = SignVec::zeros(n);
        let local = SignVec::ones(n);
        let mut rng = FastRng::new(3, 0);
        let out = combine_eq2(&recv, &local, 4, &mut rng);
        // Keep local w.p. 1/4.
        let rate = out.count_ones() as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.006, "rate {rate}");
    }

    /// The induction behind Theorem 1: chaining Eq. (2) along a ring makes
    /// the final bit a uniform sample over all workers' signs, i.e.
    /// `E[final bit] = mean of input bits`.
    #[test]
    fn chained_combine_is_unbiased_over_chain() {
        let m = 6;
        let n = 64;
        let mut seed_rng = FastRng::new(9, 0);
        let inputs: Vec<SignVec> = (0..m)
            .map(|_| SignVec::bernoulli_uniform(n, 0.5, &mut seed_rng))
            .collect();
        let trials = 40_000;
        let mut ones = vec![0u32; n];
        let mut rng = FastRng::new(17, 0);
        for _ in 0..trials {
            let mut agg = inputs[0].clone();
            for (i, input) in inputs.iter().enumerate().skip(1) {
                agg = combine_weighted(&agg, i, input, 1, &mut rng);
            }
            for (j, o) in ones.iter_mut().enumerate() {
                *o += u32::from(agg.get(j));
            }
        }
        for (j, &o) in ones.iter().enumerate() {
            let measured = f64::from(o) / f64::from(trials as u32);
            let expected = inputs.iter().filter(|v| v.get(j)).count() as f64 / m as f64;
            // Binomial standard error ≈ 0.5/√trials ≈ 0.0025; allow 5σ.
            assert!(
                (measured - expected).abs() < 0.015,
                "coord {j}: measured {measured} vs expected {expected}"
            );
        }
    }

    /// Weighted combine keeps unbiasedness when merging two multi-worker
    /// aggregates (the torus column phase).
    #[test]
    fn weighted_merge_of_aggregates_is_unbiased() {
        let n = 32;
        let mut seed_rng = FastRng::new(11, 0);
        let recv = SignVec::bernoulli_uniform(n, 0.5, &mut seed_rng);
        let local = SignVec::bernoulli_uniform(n, 0.5, &mut seed_rng);
        let (a, b) = (4usize, 4usize);
        let trials = 40_000;
        let mut ones = vec![0u32; n];
        let mut rng = FastRng::new(23, 0);
        for _ in 0..trials {
            let out = combine_weighted(&recv, a, &local, b, &mut rng);
            for (j, o) in ones.iter_mut().enumerate() {
                *o += u32::from(out.get(j));
            }
        }
        for (j, &o) in ones.iter().enumerate() {
            let measured = f64::from(o) / f64::from(trials as u32);
            let expected = (a as f64 * f64::from(u8::from(recv.get(j)))
                + b as f64 * f64::from(u8::from(local.get(j))))
                / (a + b) as f64;
            assert!(
                (measured - expected).abs() < 0.015,
                "coord {j}: measured {measured} vs expected {expected}"
            );
        }
    }

    /// The ablation combine is measurably biased: chaining over M workers
    /// with equal-weight coin flips over-weights late workers.
    #[test]
    fn unweighted_combine_is_biased_toward_late_workers() {
        let m = 5;
        let n = 20_000;
        // Worker 0 says all-ones; everyone else says all-zeros. The true
        // mean bit is 1/m = 0.2; the coin-flip chain keeps worker 0's bits
        // with probability 2^-(m-1) = 0.0625.
        let mut inputs = vec![SignVec::zeros(n); m];
        inputs[0] = SignVec::ones(n);
        let mut rng = FastRng::new(31, 0);
        let trials = 200;
        let mut total_rate = 0.0;
        for _ in 0..trials {
            let mut agg = inputs[0].clone();
            for input in &inputs[1..] {
                agg = combine_unweighted(&agg, input, &mut rng);
            }
            total_rate += agg.count_ones() as f64 / n as f64;
        }
        let rate = total_rate / f64::from(trials as u32);
        assert!(
            (rate - 0.0625).abs() < 0.01,
            "rate {rate} should be ~2^-(m-1)"
        );
        assert!(
            (rate - 0.2).abs() > 0.05,
            "rate {rate} must differ from unbiased 1/m"
        );
    }

    #[test]
    fn determinism_given_same_rng_stream() {
        let mut r1 = FastRng::new(5, 7);
        let mut r2 = FastRng::new(5, 7);
        let mut seed_rng = FastRng::new(1, 1);
        let a = SignVec::bernoulli_uniform(100, 0.5, &mut seed_rng);
        let b = SignVec::bernoulli_uniform(100, 0.5, &mut seed_rng);
        assert_eq!(
            combine_weighted(&a, 2, &b, 1, &mut r1),
            combine_weighted(&a, 2, &b, 1, &mut r2)
        );
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn length_mismatch_panics() {
        let mut rng = FastRng::new(0, 0);
        let _ = combine_weighted(&SignVec::zeros(4), 1, &SignVec::zeros(5), 1, &mut rng);
    }
}

#[cfg(test)]
mod properties {
    //! Property-based tests of `⊙`'s algebraic invariants: the packed
    //! bitwise form agrees with the scalar specification on every bit, the
    //! output is bounded by AND/OR (count conservation), agreements are
    //! untouched, and the keep/flip split matches the consumed Bernoulli
    //! mask exactly.

    use proptest::prelude::*;

    use super::*;

    fn signvec_from_bits(bits: &[bool]) -> SignVec {
        let mut v = SignVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    proptest! {
        /// Bitwise identity: `(a AND b) OR ((a XOR b) AND v)` equals the
        /// scalar spec "agreement passes through; disagreement takes the
        /// received bit iff the transient draw kept it". The Bernoulli mask
        /// is replayed by cloning the RNG before the combine.
        #[test]
        fn packed_combine_matches_scalar_spec(
            recv_bits in prop::collection::vec(any::<bool>(), 1..200),
            local_bits in prop::collection::vec(any::<bool>(), 1..200),
            a in 1usize..12,
            b in 1usize..12,
            seed in any::<u64>(),
        ) {
            let n = recv_bits.len().min(local_bits.len());
            let recv = signvec_from_bits(&recv_bits[..n]);
            let local = signvec_from_bits(&local_bits[..n]);
            let mut rng = FastRng::new(seed, 1);
            // Replay the exact keep-mask the combine will draw.
            let keep = SignVec::bernoulli_uniform(
                n,
                a as f64 / (a + b) as f64,
                &mut rng.clone(),
            );
            let out = combine_weighted(&recv, a, &local, b, &mut rng);
            for j in 0..n {
                // Agreement passes through; a disagreement keeps the
                // received bit iff the transient draw kept it.
                let expected = if recv.get(j) == local.get(j) || keep.get(j) {
                    recv.get(j)
                } else {
                    local.get(j)
                };
                prop_assert_eq!(
                    out.get(j),
                    expected,
                    "bit {} (recv {} local {} keep {})",
                    j,
                    recv.get(j),
                    local.get(j),
                    keep.get(j)
                );
            }
        }

        /// Count conservation: every output bit is bounded below by
        /// `a AND b` and above by `a OR b` — `⊙` only ever resolves
        /// disagreements, never inverts an agreement.
        #[test]
        fn output_is_bounded_by_and_and_or(
            recv_bits in prop::collection::vec(any::<bool>(), 1..300),
            local_bits in prop::collection::vec(any::<bool>(), 1..300),
            a in 1usize..20,
            b in 1usize..20,
            seed in any::<u64>(),
        ) {
            let n = recv_bits.len().min(local_bits.len());
            let recv = signvec_from_bits(&recv_bits[..n]);
            let local = signvec_from_bits(&local_bits[..n]);
            let mut rng = FastRng::new(seed, 2);
            let out = combine_weighted(&recv, a, &local, b, &mut rng);
            let floor = recv.and(&local);
            let ceil = recv.or(&local);
            // Bitwise: floor ⊆ out ⊆ ceil.
            prop_assert_eq!(out.and(&floor), floor.clone());
            prop_assert_eq!(out.or(&ceil), ceil.clone());
            // Count form of the same fact.
            prop_assert!(out.count_ones() >= floor.count_ones());
            prop_assert!(out.count_ones() <= ceil.count_ones());
            // Agreement bits pass through exactly.
            let agree = recv.xor(&local).not();
            prop_assert_eq!(out.and(&agree), recv.and(&agree));
        }

        /// Differential: the fused `combine_weighted` is bit-identical to
        /// the retained composed reference AND consumes the same number of
        /// RNG draws, across random lengths, weights up to 255, and seeds.
        /// This is the contract that lets every pre-fusion statistical and
        /// fault-tolerance guarantee carry over unchanged.
        #[test]
        fn fused_weighted_matches_reference_bit_for_bit(
            len in 1usize..=300,
            a in 1usize..=255,
            b in 1usize..=255,
            seed in any::<u64>(),
            input_seed in any::<u64>(),
        ) {
            let mut seed_rng = FastRng::new(input_seed, 0);
            let recv = SignVec::bernoulli_uniform(len, 0.5, &mut seed_rng);
            let local = SignVec::bernoulli_uniform(len, 0.5, &mut seed_rng);
            let mut ref_rng = FastRng::new(seed, 3);
            let expected = combine_weighted_reference(&recv, a, &local, b, &mut ref_rng);
            let mut fused_rng = FastRng::new(seed, 3);
            let fused = combine_weighted(&recv, a, &local, b, &mut fused_rng);
            prop_assert_eq!(&fused, &expected, "fused output differs");
            prop_assert_eq!(
                fused_rng.draws(), ref_rng.draws(),
                "fused draw count differs"
            );
            prop_assert_eq!(&fused_rng, &ref_rng, "fused RNG state differs");
            let mut assign_rng = FastRng::new(seed, 3);
            let mut merged = local.clone();
            combine_weighted_assign(&recv, a, &mut merged, b, &mut assign_rng);
            prop_assert_eq!(&merged, &expected, "assign output differs");
            prop_assert_eq!(&assign_rng, &ref_rng, "assign RNG state differs");
        }

        /// Differential: same contract for the unweighted ablation combine.
        #[test]
        fn fused_unweighted_matches_reference_bit_for_bit(
            len in 1usize..=300,
            seed in any::<u64>(),
            input_seed in any::<u64>(),
        ) {
            let mut seed_rng = FastRng::new(input_seed, 1);
            let recv = SignVec::bernoulli_uniform(len, 0.5, &mut seed_rng);
            let local = SignVec::bernoulli_uniform(len, 0.5, &mut seed_rng);
            let mut ref_rng = FastRng::new(seed, 4);
            let expected = combine_unweighted_reference(&recv, &local, &mut ref_rng);
            let mut fused_rng = FastRng::new(seed, 4);
            let fused = combine_unweighted(&recv, &local, &mut fused_rng);
            prop_assert_eq!(&fused, &expected, "fused output differs");
            prop_assert_eq!(&fused_rng, &ref_rng, "fused RNG state differs");
            let mut assign_rng = FastRng::new(seed, 4);
            let mut merged = local.clone();
            combine_unweighted_assign(&recv, &mut merged, &mut assign_rng);
            prop_assert_eq!(&merged, &expected, "assign output differs");
            prop_assert_eq!(&assign_rng, &ref_rng, "assign RNG state differs");
        }

        /// Swapping operands (and weights) leaves the *expected* output
        /// unchanged: over many trials the one-rate of `⊙(r,a; l,b)` and
        /// `⊙(l,b; r,a)` on all-disagreeing inputs both converge to
        /// `a/(a+b)`, within a 5σ binomial confidence interval.
        #[test]
        fn operand_swap_preserves_expectation(
            a in 1usize..9,
            b in 1usize..9,
            seed in any::<u64>(),
        ) {
            let n = 4096;
            let recv = SignVec::ones(n);
            let local = SignVec::zeros(n);
            let trials = 8u64;
            let total = trials * n as u64;
            let mut fwd_ones = 0usize;
            let mut swp_ones = 0usize;
            let mut rng_f = FastRng::new(seed, 10);
            let mut rng_s = FastRng::new(seed, 11);
            for _ in 0..trials {
                fwd_ones +=
                    combine_weighted(&recv, a, &local, b, &mut rng_f).count_ones();
                // Swapped: local is now the all-ones aggregate of weight a.
                swp_ones +=
                    combine_weighted(&local, b, &recv, a, &mut rng_s).count_ones();
            }
            let expect = a as f64 / (a + b) as f64;
            let hw = marsit_tensor::stats::binomial_ci_halfwidth(expect, total);
            let fwd = fwd_ones as f64 / total as f64;
            let swp = swp_ones as f64 / total as f64;
            prop_assert!(
                (fwd - expect).abs() <= hw,
                "forward rate {} vs {} (±{})", fwd, expect, hw
            );
            prop_assert!(
                (swp - expect).abs() <= hw,
                "swapped rate {} vs {} (±{})", swp, expect, hw
            );
        }
    }
}
