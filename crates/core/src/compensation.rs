//! The global compensation mechanism (paper Section 4.1.3).
//!
//! After a one-bit synchronization the global update `g_t` differs from the
//! worker's intended update `g_t^{(m)} = η_l·g + c_t^{(m)}`; the difference
//! is carried forward as the compensation vector
//! `c_{t+1}^{(m)} = g_t^{(m)} − g_t` and folded into the next round's
//! gradient (Algorithm 1, lines 1 and 10). A full-precision synchronization
//! applies the average of the `g_t^{(m)}` exactly, so the residual resets to
//! zero (line 13).

/// One worker's compensation state.
///
/// # Examples
///
/// ```
/// use marsit_core::compensation::Compensation;
///
/// let mut c = Compensation::new(3);
/// let with_comp = c.apply(&[1.0, -2.0, 0.5]);
/// assert_eq!(with_comp, vec![1.0, -2.0, 0.5]); // c starts at zero
/// c.absorb_residual(&with_comp, &[0.5, -1.0, 0.25]);
/// assert_eq!(c.vector(), &[0.5f32, -1.0, 0.25][..]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Compensation {
    c: Vec<f32>,
}

impl Compensation {
    /// Creates a zero compensation vector of dimension `d`
    /// (Algorithm 2, line 1).
    #[must_use]
    pub fn new(d: usize) -> Self {
        Self { c: vec![0.0; d] }
    }

    /// Dimension of the compensation vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.c.len()
    }

    /// Whether the vector has zero dimension.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// The current residual.
    #[must_use]
    pub fn vector(&self) -> &[f32] {
        &self.c
    }

    /// Squared ℓ2-norm of the residual (the quantity bounded in the proof of
    /// Theorem 1, Eq. 7).
    ///
    /// Uses the striped eight-lane fold so the result is bit-identical to the
    /// fused walk that computes the same norm without materializing `c`
    /// (`Marsit::mean_compensation_norm_sq` on the deferred path).
    #[must_use]
    pub fn norm_sq(&self) -> f64 {
        marsit_tensor::stats::norm_l2_sq_striped(&self.c)
    }

    /// Algorithm 1, line 1: returns `update + c` (the compensated local
    /// update `g_t^{(m)}`).
    ///
    /// # Panics
    ///
    /// Panics if `update.len()` differs from the state dimension.
    #[must_use]
    pub fn apply(&self, update: &[f32]) -> Vec<f32> {
        assert_eq!(update.len(), self.c.len(), "dimension mismatch");
        update.iter().zip(&self.c).map(|(&u, &c)| u + c).collect()
    }

    /// [`Compensation::apply`] into a caller-owned buffer, reusing its
    /// capacity (the round-workspace path).
    ///
    /// # Panics
    ///
    /// Panics if `update.len()` differs from the state dimension.
    pub fn apply_into(&self, update: &[f32], out: &mut Vec<f32>) {
        assert_eq!(update.len(), self.c.len(), "dimension mismatch");
        out.clear();
        out.extend(update.iter().zip(&self.c).map(|(&u, &c)| u + c));
    }

    /// Algorithm 1, line 10: `c ← g^{(m)} − g_t` after a one-bit round.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn absorb_residual(&mut self, compensated_update: &[f32], global_update: &[f32]) {
        assert_eq!(compensated_update.len(), self.c.len(), "dimension mismatch");
        assert_eq!(global_update.len(), self.c.len(), "dimension mismatch");
        for ((c, &h), &g) in self.c.iter_mut().zip(compensated_update).zip(global_update) {
            *c = h - g;
        }
    }

    /// Algorithm 1, line 13: reset after a full-precision round.
    pub fn reset(&mut self) {
        self.c.fill(0.0);
    }

    /// Overwrites the residual with checkpointed values (the restore half of
    /// deterministic checkpointing; see `Marsit::restore`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn restore(&mut self, values: &[f32]) {
        assert_eq!(values.len(), self.c.len(), "dimension mismatch");
        self.c.copy_from_slice(values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_telescopes() {
        // Invariant: c_{t+1} + applied = intended, i.e. nothing is lost.
        let mut c = Compensation::new(4);
        let mut intended_total = [0.0f64; 4];
        let mut applied_total = [0.0f64; 4];
        for t in 0..50 {
            let update: Vec<f32> = (0..4).map(|i| ((t * 4 + i) as f32 * 0.7).sin()).collect();
            let h = c.apply(&update);
            // Global update: crude sign step (what one-bit sync produces).
            let g: Vec<f32> = h.iter().map(|&x| 0.05 * x.signum()).collect();
            c.absorb_residual(&h, &g);
            for i in 0..4 {
                intended_total[i] += f64::from(update[i]);
                applied_total[i] += f64::from(g[i]);
            }
        }
        for (i, (&intended, &applied)) in intended_total.iter().zip(&applied_total).enumerate() {
            let residual = intended - applied;
            assert!(
                (residual - f64::from(c.vector()[i])).abs() < 1e-4,
                "coord {i}: residual {residual} vs c {}",
                c.vector()[i]
            );
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = Compensation::new(3);
        c.absorb_residual(&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]);
        assert!(c.norm_sq() > 0.0);
        c.reset();
        assert_eq!(c.norm_sq(), 0.0);
    }

    #[test]
    fn apply_adds_residual() {
        let mut c = Compensation::new(2);
        c.absorb_residual(&[1.0, 1.0], &[0.25, 0.5]);
        assert_eq!(c.apply(&[0.0, 0.0]), vec![0.75, 0.5]);
    }

    #[test]
    fn apply_into_matches_apply_and_reuses_buffer() {
        let mut c = Compensation::new(3);
        c.absorb_residual(&[1.0, -2.0, 0.5], &[0.25, 0.5, -0.5]);
        let update = [0.1f32, 0.2, 0.3];
        let mut buf = Vec::with_capacity(8);
        buf.extend_from_slice(&[9.0, 9.0]); // stale contents must be cleared
        let ptr = buf.as_ptr();
        c.apply_into(&update, &mut buf);
        assert_eq!(buf, c.apply(&update));
        assert_eq!(buf.as_ptr(), ptr, "capacity was reused, not reallocated");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let c = Compensation::new(2);
        let _ = c.apply(&[1.0]);
    }
}
