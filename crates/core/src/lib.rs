//! **Marsit** — the paper's primary contribution: a learning-synchronization
//! framework achieving one-bit-per-coordinate transmission under multi-hop
//! all-reduce without cascading compression.
//!
//! Reproduces "Sign Bit is Enough: A Learning Synchronization Framework for
//! Multi-hop All-reduce with Ultimate Compression" (Wu et al., DAC 2022).
//! The three mechanisms:
//!
//! - [`ominus`] — the bit-wise `⊙` operator with its Bernoulli transient
//!   vector (Eq. 2), generalized to weighted combines so it composes over
//!   both ring and 2D-torus all-reduce while staying an unbiased estimator
//!   of the mean sign;
//! - [`compensation`] — the global compensation mechanism that carries the
//!   quantization residual `g_t^{(m)} − g_t` into the next round;
//! - [`schedule`] — the `K`-periodic full-precision synchronization that
//!   resets the accumulated error (Figure 3's accuracy/bits trade-off).
//!
//! [`Marsit`] assembles them into Algorithm 1; [`theory`] provides the
//! deviation bounds of Theorems 2–3 and their Monte-Carlo estimators.
//!
//! # Examples
//!
//! One synchronization round over a 4-worker ring:
//!
//! ```
//! use marsit_core::{Marsit, MarsitConfig, SyncSchedule};
//! use marsit_simnet::Topology;
//!
//! let cfg = MarsitConfig::new(SyncSchedule::every(100), 0.01, 7);
//! let mut sync = Marsit::new(cfg, 4, 1000);
//! let updates = vec![vec![0.01f32; 1000]; 4];
//! let out = sync.synchronize(&updates, Topology::ring(4));
//! assert_eq!(out.global_update.len(), 1000);
//! // Round 0 with finite K is a full-precision reset round.
//! assert!(out.full_precision);
//! ```

pub mod compensation;
pub mod marsit;
pub mod ominus;
pub mod schedule;
pub mod theory;
pub mod transport;

pub use compensation::Compensation;
pub use marsit::{CombineKind, Marsit, MarsitConfig, MarsitSnapshot, SyncOutcome, WorkspaceHandle};
pub use schedule::SyncSchedule;
pub use transport::{
    maybe_run_worker_from_env, process_worker_main, RunArtifacts, Scenario, TopoKind,
};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::ominus::combine_weighted;
    use marsit_tensor::rng::FastRng;
    use marsit_tensor::SignVec;

    proptest! {
        /// ⊙ output bits always come from one of the two operands.
        #[test]
        fn combine_output_is_one_of_inputs(
            bits in prop::collection::vec(any::<(bool, bool)>(), 1..200),
            a in 1usize..10,
            b in 1usize..10,
            seed in any::<u64>(),
        ) {
            let recv: SignVec = bits.iter().map(|&(x, _)| x).collect();
            let local: SignVec = bits.iter().map(|&(_, y)| y).collect();
            let mut rng = FastRng::new(seed, 0);
            let out = combine_weighted(&recv, a, &local, b, &mut rng);
            for (j, &(x, y)) in bits.iter().enumerate() {
                let o = out.get(j);
                prop_assert!(o == x || o == y, "bit {j} = {o} not among inputs ({x}, {y})");
                if x == y {
                    prop_assert_eq!(o, x);
                }
            }
        }

        /// Degenerate weights: a=0 would panic, but weight dominance holds —
        /// with overwhelmingly large `a` the received bits win almost surely.
        #[test]
        fn combine_respects_extreme_weights(seed in any::<u64>()) {
            let recv = SignVec::ones(64);
            let local = SignVec::zeros(64);
            let mut rng = FastRng::new(seed, 1);
            let out = combine_weighted(&recv, 1_000_000, &local, 1, &mut rng);
            // With P(keep local) = 1e-6 per bit, 64 bits flip with
            // probability < 1e-4; allow none in this single draw.
            prop_assert!(out.count_ones() >= 63);
        }
    }
}
