//! Cross-backend conformance scenarios and the multi-process round driver.
//!
//! One [`Scenario`] pins a collective run completely: topology, world size,
//! dimension, seeds, fault probability, combine kind. Running it on any
//! backend must produce **bit-identical** consensus words and RNG draw
//! counts, because every source of nondeterminism is derived from the
//! scenario, never from execution order:
//!
//! - worker inputs are per-rank RNG streams (`FastRng::new(seed, rank)`);
//! - transient combine masks are per-hop streams keyed by
//!   `(receiver, segment, step)` (the DESIGN.md §9 frozen contract);
//! - transfer fates come from a seeded [`FaultInjector`] consumed in the
//!   legacy canonical schedule order by [`compile_plan`].
//!
//! Three runners share that contract:
//!
//! - [`Scenario::run_simulator`] — the legacy sequential collectives,
//!   unchanged (the deterministic-simulator backend);
//! - [`Scenario::run_threaded`] — the compiled engine over an in-process
//!   channel fabric, one OS thread per rank;
//! - [`Scenario::run_process`] — one OS *process* per rank speaking
//!   `marsit-wire/1` over localhost TCP through a [`WireHub`], with
//!   [`process_worker_main`] as the worker entry point.
//!
//! The process driver doubles as the crash/rejoin harness: killing a worker
//! process surfaces as [`SyncError::PeerDisconnected`] on its peers (never a
//! hang), and a fresh process reconnecting under the same rank rejoins the
//! next round.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use marsit_collectives::engine::{compile_plan, run_rank, run_threaded, PlanTopology};
use marsit_collectives::ring::{
    ring_allreduce_onebit_faulty, ring_allreduce_onebit_weighted_hooked,
};
use marsit_collectives::segring::{segring_allreduce_onebit, segring_allreduce_onebit_faulty};
use marsit_collectives::torus::{torus_allreduce_onebit_faulty, torus_allreduce_onebit_hooked};
use marsit_collectives::tree::{tree_allreduce_onebit, tree_allreduce_onebit_faulty};
use marsit_collectives::{CombineCtx, SyncError, Trace};
use marsit_simnet::{
    Backend, FaultInjector, FaultPlan, FaultStats, Frame, FrameKind, HubEvent, ProcessTransport,
    WireHub, DRIVER,
};
use marsit_telemetry::health::{self, HealthEvent};
use marsit_telemetry::report::{merge_logs, parse_jsonl};
use marsit_telemetry::{Event, Telemetry};
use marsit_tensor::rng::{split_seed, FastRng};
use marsit_tensor::SignVec;

use crate::marsit::{engine_combine, engine_link};
use crate::CombineKind;

/// How long the driver waits for worker results / the worker waits for its
/// next control frame before declaring the session wedged.
const SESSION_TIMEOUT: Duration = Duration::from_secs(120);

/// The collective paradigm a conformance scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// Ring all-reduce over all ranks.
    Ring,
    /// 2D-torus all-reduce.
    Torus {
        /// Vertical ring length.
        rows: usize,
        /// Horizontal ring length.
        cols: usize,
    },
    /// Binary-tree all-reduce.
    Tree,
    /// Segmented-ring all-reduce.
    SegRing {
        /// Pipeline macro-segments.
        macro_segments: usize,
    },
}

impl TopoKind {
    /// The engine plan topology this paradigm compiles to.
    #[must_use]
    pub fn plan(self) -> PlanTopology {
        match self {
            Self::Ring => PlanTopology::Ring,
            Self::Torus { rows, cols } => PlanTopology::Torus { rows, cols },
            Self::Tree => PlanTopology::Tree,
            Self::SegRing { macro_segments } => PlanTopology::SegRing { macro_segments },
        }
    }

    /// Stable text form, also the env-var encoding (`ring`, `torus:2x4`,
    /// `tree`, `segring:3`).
    #[must_use]
    pub fn encode(self) -> String {
        match self {
            Self::Ring => "ring".into(),
            Self::Torus { rows, cols } => format!("torus:{rows}x{cols}"),
            Self::Tree => "tree".into(),
            Self::SegRing { macro_segments } => format!("segring:{macro_segments}"),
        }
    }

    /// Parses [`Self::encode`]'s output.
    #[must_use]
    pub fn decode(s: &str) -> Option<Self> {
        match s {
            "ring" => Some(Self::Ring),
            "tree" => Some(Self::Tree),
            _ => {
                if let Some(shape) = s.strip_prefix("torus:") {
                    let (r, c) = shape.split_once('x')?;
                    Some(Self::Torus {
                        rows: r.parse().ok()?,
                        cols: c.parse().ok()?,
                    })
                } else if let Some(ms) = s.strip_prefix("segring:") {
                    Some(Self::SegRing {
                        macro_segments: ms.parse().ok()?,
                    })
                } else {
                    None
                }
            }
        }
    }
}

/// One fully-pinned conformance run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Collective paradigm.
    pub topo: TopoKind,
    /// Number of ranks.
    pub world: usize,
    /// Sign-vector dimension.
    pub d: usize,
    /// Master seed: derives worker inputs, combine masks, and fault fates.
    pub seed: u64,
    /// Round index (selects the per-round mask seed and injector stream).
    pub round: u64,
    /// Per-transfer drop probability; `None` runs the clean schedule.
    pub drop_p: Option<f64>,
    /// The `⊙` flavour.
    pub combine: CombineKind,
}

/// Extra knobs for a traced multi-round process run
/// ([`Scenario::run_process_traced`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRunConfig {
    /// Rounds to drive through the hub.
    pub rounds: usize,
    /// Real per-round compute sleep at each worker, nanos (0 = none).
    pub compute_ns: u64,
    /// `(rank, multiplier)`: that rank sleeps `multiplier × compute_ns` per
    /// round — the injected ground truth the detector must recover.
    pub straggler: Option<(usize, f64)>,
    /// Whether workers trace hops and stream telemetry batches. When false
    /// the run is wire-identical to [`Scenario::run_process`] rounds.
    pub collect: bool,
}

impl Default for TraceRunConfig {
    fn default() -> Self {
        Self {
            rounds: 1,
            compute_ns: 0,
            straggler: None,
            collect: true,
        }
    }
}

/// What a traced process run produced.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The causally-ordered cross-rank trace (wall-clock fields included;
    /// strip with [`marsit_telemetry::report::strip_wall_clock`] before
    /// byte comparisons).
    pub merged: Vec<Event>,
    /// Health events the online detector raised, in round order.
    pub health: Vec<HealthEvent>,
    /// Observational health counters (stragglers / links / silent ranks).
    pub fault_stats: FaultStats,
    /// Exact bytes the tracing side channel added on the wire: telemetry
    /// frames plus per-frame trace-context segments. Zero when
    /// `collect == false`.
    pub side_channel_bytes: u64,
}

/// What a backend produced for a scenario; the conformance contract is that
/// every field except `trace` timings is byte-identical across backends
/// (and `trace` is too, since it comes from the same schedule walk).
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The consensus sign vector (identical on every rank).
    pub consensus: SignVec,
    /// Total `⊙` applications across all ranks.
    pub combines: u64,
    /// Total transient-mask RNG draws across all ranks.
    pub rng_draws: u64,
    /// The wire trace of the schedule.
    pub trace: Trace,
}

impl RunArtifacts {
    /// The packed consensus words (the cross-backend identity the
    /// conformance suite compares).
    #[must_use]
    pub fn consensus_words(&self) -> &[u64] {
        self.consensus.as_words()
    }
}

/// Runs `f` under the legacy one-bit collective selected by `topo`,
/// clean or faulty. This is both the reference backend and the
/// trace/telemetry walk the engine backends replay on zero payloads.
fn legacy_onebit<F>(
    topo: TopoKind,
    signs: &[SignVec],
    inj: Option<&mut FaultInjector>,
    combine: F,
) -> Result<(SignVec, Trace), SyncError>
where
    F: FnMut(&SignVec, &mut SignVec, CombineCtx),
{
    match (topo, inj) {
        (TopoKind::Ring, None) => Ok(ring_allreduce_onebit_weighted_hooked(
            signs,
            1,
            |_| {},
            combine,
        )),
        (TopoKind::Ring, Some(inj)) => ring_allreduce_onebit_faulty(signs, inj, combine),
        (TopoKind::Torus { rows, cols }, None) => Ok(torus_allreduce_onebit_hooked(
            signs,
            rows,
            cols,
            |_| {},
            combine,
        )),
        (TopoKind::Torus { rows, cols }, Some(inj)) => {
            torus_allreduce_onebit_faulty(signs, rows, cols, inj, combine)
        }
        (TopoKind::Tree, None) => Ok(tree_allreduce_onebit(signs, combine)),
        (TopoKind::Tree, Some(inj)) => tree_allreduce_onebit_faulty(signs, inj, combine),
        (TopoKind::SegRing { macro_segments }, None) => {
            Ok(segring_allreduce_onebit(signs, macro_segments, combine))
        }
        (TopoKind::SegRing { macro_segments }, Some(inj)) => {
            segring_allreduce_onebit_faulty(signs, macro_segments, inj, combine)
        }
    }
}

/// Tags the ambient telemetry scope (if any) with the backend identity, so
/// per-hop events record which transport produced them and which clock its
/// endpoints report.
fn tag_telemetry(backend: Backend) {
    if let Some(tel) = marsit_telemetry::active() {
        tel.set_transport_tag(backend.name(), backend.clock_kind());
    }
}

impl Scenario {
    /// Every rank's input sign vector: an independent per-rank RNG stream of
    /// the master seed, so driver and worker processes regenerate identical
    /// inputs without shipping payloads.
    #[must_use]
    pub fn inputs(&self) -> Vec<SignVec> {
        (0..self.world)
            .map(|w| {
                let mut rng = FastRng::new(self.seed, w as u64);
                SignVec::bernoulli_uniform(self.d, 0.5, &mut rng)
            })
            .collect()
    }

    /// The per-round mask seed (the same `split_seed` derivation the Marsit
    /// synchronizer uses).
    #[must_use]
    pub fn round_seed(&self) -> u64 {
        split_seed(self.seed, self.round)
    }

    /// A fresh injector for this scenario's round, or `None` when clean.
    #[must_use]
    pub fn injector(&self) -> Option<FaultInjector> {
        self.drop_p.map(|p| {
            FaultPlan::seeded(self.seed)
                .with_link_drop(p)
                .injector(self.round)
        })
    }

    /// Reference run: the legacy sequential collectives (the simulator
    /// backend), with the ctx-derived unbatched combine.
    ///
    /// # Errors
    ///
    /// Returns the legacy collective's typed error for impossible shapes.
    pub fn run_simulator(&self) -> Result<RunArtifacts, SyncError> {
        tag_telemetry(Backend::Simulator);
        let combines = AtomicU64::new(0);
        let draws = AtomicU64::new(0);
        let combine = engine_combine(self.round_seed(), self.combine, &combines, &draws);
        let mut inj = self.injector();
        let (consensus, trace) = legacy_onebit(self.topo, &self.inputs(), inj.as_mut(), combine)?;
        Ok(RunArtifacts {
            consensus,
            combines: combines.load(Ordering::Relaxed),
            rng_draws: draws.load(Ordering::Relaxed),
            trace,
        })
    }

    /// Zero-payload walk of the legacy schedule: emits the byte-identical
    /// [`Trace`] and per-hop telemetry for an engine-backed run without
    /// duplicating any emission code (both depend only on shapes and
    /// transfer fates, never payload bits).
    fn walk_trace(&self) -> Result<Trace, SyncError> {
        let dummy = vec![SignVec::zeros(self.d); self.world];
        let mut inj = self.injector();
        let (_, trace) = legacy_onebit(self.topo, &dummy, inj.as_mut(), |_, _, _| {})?;
        Ok(trace)
    }

    /// Threaded backend: the compiled engine over an in-process channel
    /// fabric, one OS thread per rank.
    ///
    /// # Errors
    ///
    /// Returns the same typed errors as [`Self::run_simulator`].
    pub fn run_threaded(&self) -> Result<RunArtifacts, SyncError> {
        tag_telemetry(Backend::Threaded);
        let trace = self.walk_trace()?;
        let mut inj = self.injector();
        let plan = compile_plan(self.topo.plan(), self.world, self.d, inj.as_mut())?;
        let combines = AtomicU64::new(0);
        let draws = AtomicU64::new(0);
        let round_seed = self.round_seed();
        let kind = self.combine;
        let mut states = run_threaded(&plan, &self.inputs(), engine_link(), |_rank| {
            engine_combine(round_seed, kind, &combines, &draws)
        })?;
        // Every rank converged on the consensus (the engine executes the
        // gather/broadcast copies); report rank 0's words.
        let consensus = states.swap_remove(0);
        Ok(RunArtifacts {
            consensus,
            combines: combines.load(Ordering::Relaxed),
            rng_draws: draws.load(Ordering::Relaxed),
            trace,
        })
    }

    /// Process backend: spawns one OS process per rank running `worker_exe`
    /// (a binary that calls [`maybe_run_worker_from_env`] first thing),
    /// drives one round through a [`WireHub`], and validates that every rank
    /// reported the same consensus words.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::PeerDisconnected`] if any worker failed or died
    /// mid-round.
    ///
    /// # Panics
    ///
    /// Panics on harness-level failures: the hub cannot bind, a worker
    /// cannot be spawned, or the session times out.
    pub fn run_process(&self, worker_exe: &str) -> Result<RunArtifacts, SyncError> {
        tag_telemetry(Backend::Process);
        let hub = WireHub::bind(self.world).expect("bind conformance hub");
        let addr = hub.addr().expect("hub addr").to_string();
        let mut children: Vec<std::process::Child> = (0..self.world)
            .map(|rank| self.spawn_worker(worker_exe, &addr, rank))
            .collect();
        for _ in 0..self.world {
            hub.accept_worker().expect("worker hello");
        }
        let result = drive_round(&hub, self);
        hub.broadcast(&Frame::control(FrameKind::Stop, DRIVER, DRIVER));
        for child in &mut children {
            let _ = child.wait();
        }
        let (consensus_words, combines, rng_draws) = result?;
        let mut consensus = SignVec::zeros(self.d);
        consensus.assign_from_words(self.d, &consensus_words);
        Ok(RunArtifacts {
            consensus,
            combines,
            rng_draws,
            trace: self.walk_trace()?,
        })
    }

    /// Traced process backend: like [`Self::run_process`], but drives
    /// `cfg.rounds` rounds with the trace collector enabled, merges every
    /// rank's streamed telemetry batches into one causally-ordered trace,
    /// and runs the online straggler detector over it.
    ///
    /// `cfg.compute_ns` makes each worker sleep that long per round before
    /// the collective ("compute"); `cfg.straggler` multiplies one rank's
    /// sleep, injecting a ground-truth straggler the detector must find.
    /// With `cfg.collect == false` workers trace nothing and the side
    /// channel stays at exactly zero bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::PeerDisconnected`] if any worker failed or died
    /// mid-round.
    ///
    /// # Panics
    ///
    /// Panics on harness-level failures: the hub cannot bind, a worker
    /// cannot be spawned, the session times out, or a worker streams a
    /// malformed telemetry batch.
    pub fn run_process_traced(
        &self,
        worker_exe: &str,
        cfg: TraceRunConfig,
    ) -> Result<TracedRun, SyncError> {
        let hub = WireHub::bind(self.world).expect("bind traced hub");
        let addr = hub.addr().expect("hub addr").to_string();
        let mut children: Vec<std::process::Child> = (0..self.world)
            .map(|rank| self.spawn_worker_traced(worker_exe, &addr, rank, cfg))
            .collect();
        for _ in 0..self.world {
            hub.accept_worker().expect("worker hello");
        }
        let mut outcome = Ok(());
        for completed in 1..=cfg.rounds {
            if let Err(e) = drive_round(&hub, self) {
                outcome = Err(e);
                break;
            }
            if cfg.collect {
                assert!(
                    hub.collector()
                        .wait_batches(self.world, completed, SESSION_TIMEOUT),
                    "trace collector timed out waiting for round {completed} batches"
                );
            }
        }
        hub.broadcast(&Frame::control(FrameKind::Stop, DRIVER, DRIVER));
        for child in &mut children {
            let _ = child.wait();
        }
        outcome?;
        let side_channel_bytes = hub.collector().side_channel_bytes();
        let logs: Vec<Vec<Event>> = hub
            .collector()
            .take_batches()
            .iter()
            .map(|batches| parse_jsonl(&batches.concat()).expect("worker telemetry parses"))
            .collect();
        let merged = merge_logs(&logs);
        let samples = health::hop_samples(&merged);
        let health = health::detect(&samples);
        let mut fault_stats = FaultStats::default();
        for ev in &health {
            match ev {
                HealthEvent::StragglerSuspected { .. } => fault_stats.stragglers_suspected += 1,
                HealthEvent::LinkDegraded { .. } => fault_stats.links_degraded += 1,
                HealthEvent::RankSilent { .. } => fault_stats.ranks_silent += 1,
            }
            // Surface detections into the caller's telemetry stream, where
            // the same typed record feeds dashboards and `marsit_top`.
            if let Some(tel) = marsit_telemetry::active() {
                tel.emit("health", ev.fields());
            }
        }
        Ok(TracedRun {
            merged,
            health,
            fault_stats,
            side_channel_bytes,
        })
    }

    /// [`Self::spawn_worker`] plus the tracing environment from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the process cannot be spawned.
    #[must_use]
    pub fn spawn_worker_traced(
        &self,
        worker_exe: &str,
        addr: &str,
        rank: usize,
        cfg: TraceRunConfig,
    ) -> std::process::Child {
        let mut cmd = self.worker_command(worker_exe, addr, rank);
        if cfg.collect {
            cmd.env("MARSIT_TW_COLLECT", "1");
        }
        if cfg.compute_ns > 0 {
            cmd.env("MARSIT_TW_COMPUTE_NS", cfg.compute_ns.to_string());
        }
        if let Some((slow_rank, mult)) = cfg.straggler {
            // f64 → hex bit pattern: exact round-trip, locale-proof.
            cmd.env(
                "MARSIT_TW_STRAGGLER",
                format!("{slow_rank}:{:016x}", mult.to_bits()),
            );
        }
        cmd.spawn().expect("spawn traced transport worker")
    }

    /// Spawns one worker process for `rank`, pointed at the hub.
    ///
    /// # Panics
    ///
    /// Panics if the process cannot be spawned.
    #[must_use]
    pub fn spawn_worker(&self, worker_exe: &str, addr: &str, rank: usize) -> std::process::Child {
        self.worker_command(worker_exe, addr, rank)
            .spawn()
            .expect("spawn transport worker")
    }

    /// The common worker environment both spawn variants share.
    fn worker_command(&self, worker_exe: &str, addr: &str, rank: usize) -> std::process::Command {
        let mut cmd = std::process::Command::new(worker_exe);
        cmd.env("MARSIT_TW_ADDR", addr)
            .env("MARSIT_TW_RANK", rank.to_string())
            .env("MARSIT_TW_WORLD", self.world.to_string())
            .env("MARSIT_TW_TOPO", self.topo.encode())
            .env("MARSIT_TW_D", self.d.to_string())
            .env("MARSIT_TW_SEED", self.seed.to_string())
            .env("MARSIT_TW_ROUND", self.round.to_string())
            .env(
                "MARSIT_TW_COMBINE",
                match self.combine {
                    CombineKind::Weighted => "weighted",
                    CombineKind::UnweightedAblation => "unweighted",
                },
            );
        // f64 → hex bit pattern: exact round-trip, locale-proof.
        if let Some(p) = self.drop_p {
            cmd.env("MARSIT_TW_DROP", format!("{:016x}", p.to_bits()));
        }
        cmd
    }

    /// Reads a scenario back out of the worker environment
    /// ([`Self::spawn_worker`]'s counterpart).
    ///
    /// # Panics
    ///
    /// Panics on missing or malformed variables — a worker launched with a
    /// broken environment cannot do anything useful.
    #[must_use]
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).unwrap_or_else(|_| panic!("missing env {k}"));
        Self {
            topo: TopoKind::decode(&get("MARSIT_TW_TOPO")).expect("bad MARSIT_TW_TOPO"),
            world: get("MARSIT_TW_WORLD").parse().expect("bad MARSIT_TW_WORLD"),
            d: get("MARSIT_TW_D").parse().expect("bad MARSIT_TW_D"),
            seed: get("MARSIT_TW_SEED").parse().expect("bad MARSIT_TW_SEED"),
            round: get("MARSIT_TW_ROUND").parse().expect("bad MARSIT_TW_ROUND"),
            drop_p: std::env::var("MARSIT_TW_DROP").ok().map(|hex| {
                f64::from_bits(u64::from_str_radix(&hex, 16).expect("bad MARSIT_TW_DROP"))
            }),
            combine: match get("MARSIT_TW_COMBINE").as_str() {
                "weighted" => CombineKind::Weighted,
                "unweighted" => CombineKind::UnweightedAblation,
                other => panic!("bad MARSIT_TW_COMBINE {other:?}"),
            },
        }
    }
}

/// Broadcasts one `round` and collects every rank's `result`/`failed`.
/// Returns rank 0's consensus words plus the summed `⊙`/RNG-draw counters.
///
/// Public so fault harnesses (the chaos soak's process mode) can drive the
/// kill → degrade → rejoin choreography round by round on a hub they manage
/// themselves; [`Scenario::run_process`] wraps it for the one-shot case.
///
/// # Errors
///
/// Returns [`SyncError::PeerDisconnected`] if any worker reported a failed
/// collective or died mid-round.
///
/// # Panics
///
/// Panics if the session times out, a result frame is malformed, or ranks
/// disagree on the consensus words (harness-level failures, not faults).
pub fn drive_round(hub: &WireHub, sc: &Scenario) -> Result<(Vec<u64>, u64, u64), SyncError> {
    hub.broadcast(&Frame::control(FrameKind::Round, DRIVER, DRIVER));
    let mut consensus: Vec<Option<Vec<u64>>> = vec![None; sc.world];
    let mut combines = 0u64;
    let mut rng_draws = 0u64;
    let mut failure: Option<SyncError> = None;
    let mut responded = vec![false; sc.world];
    while responded.iter().any(|r| !r) {
        match hub.next_event_timeout(SESSION_TIMEOUT) {
            Some(HubEvent::Frame(frame)) => {
                let rank = frame.from as usize;
                match frame.kind {
                    FrameKind::Result => {
                        let mut words = match frame.payload {
                            marsit_simnet::Payload::Words(w) => w,
                            _ => panic!("result frame without words"),
                        };
                        assert!(words.len() >= 2, "result payload too short");
                        combines += words[0];
                        rng_draws += words[1];
                        let body = words.split_off(2);
                        consensus[rank] = Some(body);
                        responded[rank] = true;
                    }
                    FrameKind::Failed => {
                        let peer = match &frame.payload {
                            marsit_simnet::Payload::Words(w) if !w.is_empty() => w[0] as usize,
                            _ => usize::MAX,
                        };
                        failure.get_or_insert(SyncError::PeerDisconnected { peer });
                        responded[rank] = true;
                    }
                    _ => {}
                }
            }
            Some(HubEvent::Disconnected(rank)) => {
                failure.get_or_insert(SyncError::PeerDisconnected { peer: rank });
                responded[rank] = true;
            }
            None => panic!("conformance session timed out waiting for results"),
        }
    }
    if let Some(err) = failure {
        return Err(err);
    }
    let first = consensus[0].clone().expect("rank 0 responded");
    for (rank, words) in consensus.iter().enumerate() {
        assert_eq!(
            words.as_ref().expect("rank responded"),
            &first,
            "rank {rank} disagrees with rank 0's consensus words"
        );
    }
    Ok((first, combines, rng_draws))
}

/// Worker entry point: connects to the hub named by the environment and
/// serves `round` frames until `stop`. Each round recompiles the scenario's
/// plan locally (deterministic, so all ranks agree on it without any
/// coordination) and runs this rank's slice over the TCP transport.
///
/// A vanished peer surfaces as a `failed` frame to the driver — the worker
/// stays up and serves the next round, where a rejoined peer (announced by
/// the hub's `hello`) is usable again.
///
/// # Panics
///
/// Panics if the hub connection cannot be established or drops, or on a
/// non-disconnect collective error (both mean the harness itself is broken).
pub fn process_worker_main() {
    let sc = Scenario::from_env();
    let rank: usize = std::env::var("MARSIT_TW_RANK")
        .expect("missing env MARSIT_TW_RANK")
        .parse()
        .expect("bad MARSIT_TW_RANK");
    let addr = std::env::var("MARSIT_TW_ADDR").expect("missing env MARSIT_TW_ADDR");
    let mut transport = ProcessTransport::connect(&addr, rank, sc.world, engine_link())
        .expect("connect to conformance hub");
    let compute_ns: u64 = std::env::var("MARSIT_TW_COMPUTE_NS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let slow_mult = straggler_multiplier(rank);
    let telemetry = std::env::var("MARSIT_TW_COLLECT")
        .is_ok_and(|v| v == "1")
        .then(|| {
            let t = Telemetry::recording();
            t.set_wall_clock(true);
            t.set_transport_tag(Backend::Process.name(), Backend::Process.clock_kind());
            t.set_time(0.0);
            // Every rank emits the identical run_meta; the merge keeps one.
            t.emit(
                "run_meta",
                vec![
                    ("schema", "marsit-telemetry/1".into()),
                    ("seed", sc.seed.into()),
                    ("strategy", "process_trace".into()),
                    ("topology", sc.topo.encode().into()),
                    ("workers", sc.world.into()),
                    ("d", sc.d.into()),
                ],
            );
            transport.set_tracing(true);
            t
        });
    let mut round_idx: u64 = 0;
    loop {
        let frame = transport.recv_control().expect("hub connection");
        match frame.kind {
            FrameKind::Stop => return,
            FrameKind::Round => {
                transport.reset_round();
                transport.set_trace_round(round_idx);
                round_idx += 1;
                if compute_ns > 0 {
                    // Real compute: the wall-clock cost the trace observes.
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let ns = (compute_ns as f64 * slow_mult) as u64;
                    std::thread::sleep(Duration::from_nanos(ns));
                }
                let inputs = sc.inputs();
                let mut inj = sc.injector();
                let plan = compile_plan(sc.topo.plan(), sc.world, sc.d, inj.as_mut())
                    .expect("scenario plan compiles");
                let combines = AtomicU64::new(0);
                let draws = AtomicU64::new(0);
                let combine = engine_combine(sc.round_seed(), sc.combine, &combines, &draws);
                let outcome = match &telemetry {
                    Some(t) => marsit_telemetry::scoped(t, || {
                        run_rank(&plan, &inputs[rank], &mut transport, combine)
                    }),
                    None => run_rank(&plan, &inputs[rank], &mut transport, combine),
                };
                match outcome {
                    Ok(state) => {
                        let mut words = vec![
                            combines.load(Ordering::Relaxed),
                            draws.load(Ordering::Relaxed),
                        ];
                        words.extend_from_slice(state.as_words());
                        transport
                            .send_frame(&Frame::words(
                                FrameKind::Result,
                                rank as u32,
                                DRIVER,
                                words,
                            ))
                            .expect("send result");
                    }
                    Err(SyncError::PeerDisconnected { peer }) => {
                        transport
                            .send_frame(&Frame::words(
                                FrameKind::Failed,
                                rank as u32,
                                DRIVER,
                                vec![peer as u64],
                            ))
                            .expect("send failure report");
                    }
                    Err(e) => panic!("conformance collective failed: {e}"),
                }
                if let Some(t) = &telemetry {
                    // One flush point per round, even when the round recorded
                    // nothing: the collector synchronizes on batch count.
                    transport
                        .send_telemetry(&t.drain_events_jsonl())
                        .expect("send telemetry batch");
                }
            }
            _ => {}
        }
    }
}

/// `MARSIT_TW_STRAGGLER` is `rank:mult-bits-hex`; returns the multiplier if
/// it names this rank, else 1.0.
fn straggler_multiplier(rank: usize) -> f64 {
    std::env::var("MARSIT_TW_STRAGGLER")
        .ok()
        .and_then(|v| {
            let (r, hex) = v.split_once(':')?;
            let r: usize = r.parse().ok()?;
            let bits = u64::from_str_radix(hex, 16).ok()?;
            Some((r, f64::from_bits(bits)))
        })
        .filter(|&(r, _)| r == rank)
        .map_or(1.0, |(_, m)| m)
}

/// Runs [`process_worker_main`] if the worker environment is present.
/// Binaries that can host a transport worker call this first thing in
/// `main` and exit when it returns `true`.
#[must_use]
pub fn maybe_run_worker_from_env() -> bool {
    if std::env::var("MARSIT_TW_ADDR").is_err() {
        return false;
    }
    process_worker_main();
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topo_kind_env_round_trips() {
        for topo in [
            TopoKind::Ring,
            TopoKind::Torus { rows: 2, cols: 4 },
            TopoKind::Tree,
            TopoKind::SegRing { macro_segments: 3 },
        ] {
            assert_eq!(TopoKind::decode(&topo.encode()), Some(topo));
        }
        assert_eq!(TopoKind::decode("hypercube"), None);
        assert_eq!(TopoKind::decode("torus:2"), None);
    }

    #[test]
    fn threaded_matches_simulator_all_topologies() {
        for (topo, world) in [
            (TopoKind::Ring, 8),
            (TopoKind::Torus { rows: 2, cols: 4 }, 8),
            (TopoKind::Tree, 6),
            (TopoKind::SegRing { macro_segments: 3 }, 4),
        ] {
            for drop_p in [None, Some(0.25)] {
                let sc = Scenario {
                    topo,
                    world,
                    d: 257,
                    seed: 0xC0FFEE,
                    round: 3,
                    drop_p,
                    combine: CombineKind::Weighted,
                };
                let reference = sc.run_simulator().unwrap();
                let threaded = sc.run_threaded().unwrap();
                assert_eq!(
                    reference.consensus_words(),
                    threaded.consensus_words(),
                    "{topo:?} drop={drop_p:?}"
                );
                assert_eq!(reference.combines, threaded.combines);
                assert_eq!(reference.rng_draws, threaded.rng_draws);
                assert_eq!(reference.trace.total_bytes(), threaded.trace.total_bytes());
                assert_eq!(reference.trace.num_steps(), threaded.trace.num_steps());
            }
        }
    }
}
