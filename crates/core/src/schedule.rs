//! The `K`-round synchronization schedule (paper Section 4.1.2 / Figure 3).
//!
//! Marsit runs one-bit synchronization every round except that every `K`-th
//! round (Algorithm 1: `mod(t, K) = 0`) performs a full-precision
//! synchronization that resets the accumulated compensation error. `K = 1`
//! degenerates to PSGD (always full precision); `K = ∞` (the paper's plain
//! "Marsit") never resets. Figure 3 sweeps `K ∈ {1, 50, 100, 200, ∞}` and
//! reports the average payload of `1 + 31/K` bits per coordinate — which
//! [`SyncSchedule::average_bits_per_coord`] reproduces exactly.

use std::num::NonZeroU32;

/// When to run full-precision synchronizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncSchedule {
    /// Full-precision period; `None` means never (`K = ∞`).
    k: Option<NonZeroU32>,
}

impl SyncSchedule {
    /// Full precision every `k` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn every(k: u32) -> Self {
        Self {
            k: Some(NonZeroU32::new(k).expect("K must be positive")),
        }
    }

    /// Never synchronize in full precision (the paper's plain "Marsit",
    /// `K = ∞`).
    #[must_use]
    pub fn never() -> Self {
        Self { k: None }
    }

    /// The period `K`, or `None` for `∞`.
    #[must_use]
    pub fn k(self) -> Option<u32> {
        self.k.map(NonZeroU32::get)
    }

    /// Whether round `t` is a full-precision round (Algorithm 1 line 3:
    /// one-bit iff `mod(t, K) ≠ 0`; with `K = ∞` only when... never —
    /// every round is one-bit).
    #[must_use]
    pub fn is_full_precision(self, t: u64) -> bool {
        match self.k {
            Some(k) => t.is_multiple_of(u64::from(k.get())),
            None => false,
        }
    }

    /// Average transmitted bits per coordinate per round over a long run:
    /// `1 + 31/K` (one-bit rounds cost 1, full-precision rounds cost 32).
    ///
    /// Reproduces the "Bits" column of Figure 3: `K=1 → 32`, `50 → 1.62`,
    /// `100 → 1.31`, `200 → 1.155`, `∞ → 1`.
    #[must_use]
    pub fn average_bits_per_coord(self) -> f64 {
        match self.k {
            Some(k) => 1.0 + 31.0 / f64::from(k.get()),
            None => 1.0,
        }
    }

    /// Convergence-rate bound of Theorem 1 (up to constants):
    /// `1/√(MT) + K(K+1)/T`.
    ///
    /// With `K = ∞` the second term is dropped — the paper's analysis
    /// assumes `K ≪ T`, and plain Marsit is analyzed with `K` effectively
    /// equal to the horizon.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `t == 0`.
    #[must_use]
    pub fn theorem1_bound(self, m: u64, t: u64) -> f64 {
        assert!(m > 0 && t > 0, "M and T must be positive");
        let first = 1.0 / ((m as f64) * (t as f64)).sqrt();
        let second = match self.k {
            Some(k) => {
                let kf = f64::from(k.get());
                kf * (kf + 1.0) / t as f64
            }
            None => 0.0,
        };
        first + second
    }
}

impl std::fmt::Display for SyncSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.k {
            Some(k) if k.get() == 1 => write!(f, "K=1 (always full precision)"),
            Some(k) => write!(f, "K={k}"),
            None => write!(f, "K=∞"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_is_always_full_precision() {
        let s = SyncSchedule::every(1);
        for t in 0..10 {
            assert!(s.is_full_precision(t));
        }
        assert_eq!(s.average_bits_per_coord(), 32.0);
    }

    #[test]
    fn k_infinity_is_never_full_precision() {
        let s = SyncSchedule::never();
        for t in 0..1000 {
            assert!(!s.is_full_precision(t));
        }
        assert_eq!(s.average_bits_per_coord(), 1.0);
    }

    #[test]
    fn figure3_bits_column() {
        assert!((SyncSchedule::every(50).average_bits_per_coord() - 1.62).abs() < 1e-9);
        assert!((SyncSchedule::every(100).average_bits_per_coord() - 1.31).abs() < 1e-9);
        assert!((SyncSchedule::every(200).average_bits_per_coord() - 1.155).abs() < 1e-9);
    }

    #[test]
    fn period_pattern() {
        let s = SyncSchedule::every(3);
        let pattern: Vec<bool> = (0..7).map(|t| s.is_full_precision(t)).collect();
        assert_eq!(pattern, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn theorem1_bound_decreases_in_m_and_t() {
        let s = SyncSchedule::every(10);
        assert!(s.theorem1_bound(8, 1000) < s.theorem1_bound(2, 1000));
        assert!(s.theorem1_bound(8, 10_000) < s.theorem1_bound(8, 1000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SyncSchedule::every(100)), "K=100");
        assert_eq!(format!("{}", SyncSchedule::never()), "K=∞");
        assert_eq!(
            format!("{}", SyncSchedule::every(1)),
            "K=1 (always full precision)"
        );
    }
}
