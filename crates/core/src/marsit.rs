//! Marsit's synchronization step (Algorithm 1).
//!
//! One [`Marsit`] instance owns the per-worker compensation vectors and the
//! round counter; each call to [`Marsit::synchronize`] performs one global
//! model synchronization over the chosen multi-hop topology:
//!
//! 1. every worker folds its compensation into the local update
//!    (line 1: `g ← g + c`);
//! 2. on a one-bit round, workers exchange sign bits through the ring or
//!    torus all-reduce using the `⊙` operator, and the global update is
//!    `g_t = η_s · σ` (lines 4–9); the residual is absorbed into the
//!    compensation (line 10);
//! 3. on a full-precision round (`mod(t, K) = 0`), the compensated updates
//!    are averaged exactly and the compensation resets (lines 11–13).
//!
//! All workers deterministically agree on `g_t` — the consensus invariant of
//! multi-hop all-reduce — which the simulator asserts after every round.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

use marsit_collectives::engine::{compile_plan, run_threaded, PlanTopology};
use marsit_collectives::ring::{
    ring_allreduce_onebit_faulty, ring_allreduce_onebit_planned,
    ring_allreduce_onebit_weighted_hooked, ring_allreduce_sum, ring_allreduce_sum_faulty,
    RingOnebitScratch, StepCombine,
};
use marsit_collectives::torus::{
    torus_allreduce_onebit_faulty, torus_allreduce_onebit_hooked, torus_allreduce_sum,
};
use marsit_collectives::{
    CombineCtx, DegradedMode, EffectiveTopology, PlannedHop, SyncError, TopologyReconfigurer, Trace,
};
use marsit_simnet::{Backend, FaultInjector, FaultPlan, FaultStats, LinkModel, Topology};
use marsit_tensor::rng::{split_seed, FastRng};
use marsit_tensor::{fill_bernoulli_masks_indexed, ScaledSignLut, SignVec};

use crate::compensation::Compensation;
use crate::ominus::{combine_unweighted_assign, combine_weighted_assign};
use crate::schedule::SyncSchedule;

/// Which one-bit combine operator to use (ablation hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineKind {
    /// The paper's Eq. (2): keep the received bit w.p. `a/(a+b)` (unbiased).
    #[default]
    Weighted,
    /// Ablation: a plain coin flip per disagreeing bit — biased toward
    /// late-chain workers; kept to quantify the value of Eq. (2).
    UnweightedAblation,
}

/// Configuration for a [`Marsit`] synchronizer.
#[derive(Debug, Clone, PartialEq)]
pub struct MarsitConfig {
    /// Full-precision schedule (the paper's `K`).
    pub schedule: SyncSchedule,
    /// Global step size `η_s` applied to the sign vector (Algorithm 1,
    /// line 9).
    pub global_lr: f32,
    /// Master seed for the transient vectors; every `(round, receiver,
    /// segment, step)` tuple derives an independent stream.
    pub seed: u64,
    /// Combine operator (ablation hook; defaults to the paper's weighted
    /// Eq. 2).
    pub combine: CombineKind,
    /// Faults to inject into the collectives ([`FaultPlan::none`] by
    /// default; a none plan takes the exact fault-free code path).
    pub fault_plan: FaultPlan,
    /// Which transport backend executes the one-bit collectives.
    /// [`Backend::Simulator`] (the default) runs the legacy in-process
    /// schedules; [`Backend::Threaded`] compiles the same schedule to an
    /// engine plan and runs one OS thread per worker over in-process
    /// channels — bit-identical consensus, traces, and telemetry via the
    /// ctx-addressed RNG contract. [`Backend::Process`] cannot run inside
    /// one `Marsit` instance (workers are separate OS processes); drive it
    /// through `marsit_core::transport` instead.
    pub backend: Backend,
    /// Worker threads for the cache-blocked segment fan-out inside one
    /// clean simulator-ring reduce step (1 = fully serial). The parallel
    /// dispatch is bit-identical to the serial one — telemetry and traces
    /// are recorded before the combines run, and every combine replays a
    /// pre-sampled mask stream addressed by `(receiver, segment, step)` —
    /// so this is a pure throughput knob.
    pub intra_threads: usize,
}

impl MarsitConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `global_lr` is not finite and positive.
    #[must_use]
    pub fn new(schedule: SyncSchedule, global_lr: f32, seed: u64) -> Self {
        assert!(
            global_lr.is_finite() && global_lr > 0.0,
            "global learning rate must be finite and positive"
        );
        Self {
            schedule,
            global_lr,
            seed,
            combine: CombineKind::Weighted,
            fault_plan: FaultPlan::none(),
            backend: Backend::Simulator,
            intra_threads: 1,
        }
    }

    /// Fans each clean simulator-ring reduce step out over up to `n` worker
    /// threads (see [`MarsitConfig::intra_threads`]). Values are clamped to
    /// the number of hops per step at run time; `0` is treated as `1`.
    #[must_use]
    pub fn with_intra_threads(mut self, n: usize) -> Self {
        self.intra_threads = n.max(1);
        self
    }

    /// Runs the one-bit collectives on the given transport backend.
    ///
    /// # Panics
    ///
    /// Panics on [`Backend::Process`]: separate worker processes cannot live
    /// inside one `Marsit` instance — use `marsit_core::transport` to drive
    /// a multi-process round.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        assert!(
            backend != Backend::Process,
            "the process backend is driven externally (marsit_core::transport)"
        );
        self.backend = backend;
        self
    }

    /// Switches to the biased coin-flip combine (ablation).
    #[must_use]
    pub fn with_unweighted_combine(mut self) -> Self {
        self.combine = CombineKind::UnweightedAblation;
        self
    }

    /// Injects the given faults into every synchronization.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }
}

/// Result of one synchronization round.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncOutcome {
    /// The consensus global update `g_t` (identical at every worker).
    pub global_update: Vec<f32>,
    /// Exact mean of the compensated updates `g_t^{(m)} = η_l·g + c` — the
    /// quantity the one-bit aggregation estimates; reference for the
    /// matching-rate metric of Fig 1b.
    pub compensated_mean: Vec<f32>,
    /// Whether this round ran in full precision.
    pub full_precision: bool,
    /// Transfers performed.
    pub trace: Trace,
    /// The round index `t` this outcome belongs to.
    pub round: u64,
    /// What the fault layer did this round (all-zero without a fault plan).
    pub faults: FaultStats,
    /// How (and whether) the round deviated from the configured topology
    /// ([`DegradedMode::None`] on every clean/full-membership round).
    pub degraded: DegradedMode,
}

impl Default for SyncOutcome {
    /// An empty outcome, the canonical argument to
    /// [`Marsit::synchronize_into`]: reusing one `SyncOutcome` across rounds
    /// recycles its buffers (`global_update`, `compensated_mean`, `trace`)
    /// and takes the clean ring one-bit path to zero steady-state
    /// allocations.
    fn default() -> Self {
        Self {
            global_update: Vec::new(),
            compensated_mean: Vec::new(),
            full_precision: false,
            trace: Trace::new(),
            round: 0,
            faults: FaultStats::default(),
            degraded: DegradedMode::None,
        }
    }
}

/// Reusable per-round scratch (DESIGN.md §9 workspace ownership rules):
/// owned by the [`Marsit`] instance and recycled across rounds, so the
/// steady-state synchronize path re-fills existing buffers instead of
/// allocating `Vec<Vec<f32>>` + `Vec<SignVec>` every call. Only buffers that
/// never escape live here; outcome vectors (`global_update`,
/// `compensated_mean`) move into [`SyncOutcome`] and are freshly allocated.
#[derive(Debug, Clone, Default)]
struct RoundWorkspace {
    /// Per-worker compensated updates `η_l·g + c` (Algorithm 1, line 1).
    compensated: Vec<Vec<f32>>,
    /// Full-precision all-reduce buffers.
    fp_buffers: Vec<Vec<f32>>,
    /// Per-worker packed sign vectors for one-bit rounds.
    signs: Vec<SignVec>,
    /// Per-worker word staging for the fused prologue's sign packing.
    word_scratch: Vec<u64>,
    /// Per-worker state and schedule scratch for the planned ring collective.
    ring: RingOnebitScratch,
    /// Transient-mask planner, persistent so its buffers amortize to zero
    /// allocations per round.
    planner: MaskPlanner,
    /// Consensus output buffer for the planned ring collective. Ping-pongs
    /// with [`PendingResidual::consensus`]: the prologue that consumes a
    /// pending residual returns its (right-sized) sign buffer here, and the
    /// round's collective fills it before it moves into the next pending.
    consensus: SignVec,
}

/// A [`Marsit`] round workspace detached from its owner for pooling.
///
/// The job server keeps per-shard pools of these keyed by
/// `(d, m, topology class)`: a job admitted to a shard adopts a warm
/// workspace released by an earlier job of the same shape instead of
/// growing a cold one, which extends the single-job zero-allocation
/// discipline across job generations.
///
/// # Why adoption can never change an output bit
///
/// [`Marsit::release_workspace`] flushes any deferred residual first, and
/// after the flush the workspace carries **no live state**: every
/// `synchronize` path resizes and fully overwrites each buffer before
/// reading it (`apply_into` clears and rewrites the compensated updates,
/// the prologue repacks every sign word, the ring scratch reassigns every
/// segment cell, the planner is reseeded per round, and the consensus
/// buffer has every bit spliced in). The only thing that survives the
/// handoff is buffer *capacity*, and capacity never participates in a
/// computation — so a job running on an adopted workspace, of any
/// provenance or shape, is bit-identical to the same job on a fresh one.
/// The `workspace_reuse` and service determinism tests pin this.
#[derive(Debug, Default)]
pub struct WorkspaceHandle {
    ws: RoundWorkspace,
}

impl WorkspaceHandle {
    /// A cold (empty) workspace handle; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// The residual a clean one-bit round leaves behind, absorbed lazily.
///
/// Eagerly materializing `c_{t+1} = g_t^{(m)} − g_t` costs a full
/// read-modify-write pass over `M·D` floats every round; but the very next
/// thing that happens to `c` is being added back to the next update. So the
/// clean hot path stores only the consensus bits plus the scale — `g_t` is
/// reconstructed per element in registers — and the next round's apply pass
/// computes `h ← u + (h − g_t)` directly, producing bit-identical floats
/// (the intermediate `h − g` rounds exactly like the stored `c` did).
///
/// While a residual is pending, `self.compensations` is stale; every
/// observer goes through [`Marsit::compensation`] (which flushes) or
/// [`Marsit::mean_compensation_norm_sq`] (which evaluates the deferred form
/// directly). The fault path flushes before running, since crashes freeze
/// per-worker compensation state that must then exist materially.
#[derive(Debug, Clone)]
struct PendingResidual {
    /// Consensus sign bits of the round that produced the residual.
    consensus: SignVec,
    /// The global learning rate that scaled them into `g_t`.
    scale: f32,
}

/// Reconstructs `g` from a consensus bit and a scale, exactly as
/// [`SignVec::write_scaled_signs`] does: bit 1 ⇒ `+scale`, bit 0 ⇒ `−scale`
/// via IEEE sign-bit injection.
#[inline]
fn scaled_sign(scale_bits: u32, word: u64, j: usize) -> f32 {
    let flip = (((word >> j) & 1) ^ 1) as u32;
    f32::from_bits(scale_bits ^ (flip << 31))
}

/// The fused round-prologue pass over one worker, deferred-residual form:
/// in a single sweep per 64-element chunk it (a) applies
/// `h ← u + (h − g_prev)` with `g_prev` rebuilt from consensus bits in
/// registers, (b) accumulates the still-hot chunk into the running
/// compensated-mean numerator, and (c) packs the chunk's sign word when the
/// round is one-bit. Fusing (b) and (c) into (a) removes two full re-reads
/// of `h` per worker from the hot path.
///
/// Bit-identity: (a) performs the exact f32 expression of the eager
/// two-pass form (`c = h − g` stored, then `u + c` next round); (b) adds
/// each worker's elements into the accumulator in the same worker-major
/// order as the former standalone mean pass; (c) packs the same values
/// [`SignVec::assign_from_signs`] would read back from memory.
fn prepare_deferred(
    update: &[f32],
    h: &mut [f32],
    consensus: &SignVec,
    lut: &ScaledSignLut,
    mean_acc: &mut [f32],
    word_scratch: &mut Vec<u64>,
    sign_out: Option<&mut SignVec>,
) {
    debug_assert_eq!(update.len(), h.len());
    debug_assert_eq!(consensus.len(), h.len());
    debug_assert_eq!(mean_acc.len(), h.len());
    // The residual's scale rides in with the LUT: row 0x01 starts with the
    // positive scale, so the ragged-tail fallback recovers the exact bits.
    let scale_bits = lut.row(0x01)[0].to_bits();
    let pack = sign_out.is_some();
    word_scratch.clear();
    // `g` is rebuilt through the caller-provided per-byte `±scale` expansion
    // table (built once per round, shared across workers): row `b` holds the
    // eight values the bits of `b` select, which keeps the apply loop free
    // of per-lane bit tests (they defeat auto-vectorization) while producing
    // the exact same floats as [`scaled_sign`] — `+scale` verbatim, `−scale`
    // by IEEE sign-bit flip.
    for (((hc, uc), mc), &w) in h
        .chunks_mut(64)
        .zip(update.chunks(64))
        .zip(mean_acc.chunks_mut(64))
        .zip(consensus.as_words())
    {
        if hc.len() == 64 {
            for k in 0..8 {
                let row = lut.row((w >> (8 * k)) as u8);
                let h8 = &mut hc[k * 8..k * 8 + 8];
                let u8 = &uc[k * 8..k * 8 + 8];
                for i in 0..8 {
                    h8[i] = u8[i] + (h8[i] - row[i]);
                }
            }
        } else {
            for (j, (hj, &uj)) in hc.iter_mut().zip(uc).enumerate() {
                *hj = uj + (*hj - scaled_sign(scale_bits, w, j));
            }
        }
        for (a, &x) in mc.iter_mut().zip(&*hc) {
            *a += x;
        }
        if pack {
            word_scratch.push(SignVec::pack_word(hc));
        }
    }
    if let Some(out) = sign_out {
        out.assign_from_words(h.len(), word_scratch);
    }
}

/// [`prepare_deferred`] for the materialized-compensation form (round 0,
/// post-full-precision, post-fault): `h` already holds `u + c`; this pass
/// accumulates it into the mean numerator and optionally packs its signs
/// while it is cache-hot.
fn accumulate_and_pack(
    h: &[f32],
    mean_acc: &mut [f32],
    word_scratch: &mut Vec<u64>,
    sign_out: Option<&mut SignVec>,
) {
    debug_assert_eq!(mean_acc.len(), h.len());
    let pack = sign_out.is_some();
    word_scratch.clear();
    for (hc, mc) in h.chunks(64).zip(mean_acc.chunks_mut(64)) {
        for (a, &x) in mc.iter_mut().zip(hc) {
            *a += x;
        }
        if pack {
            word_scratch.push(SignVec::pack_word(hc));
        }
    }
    if let Some(out) = sign_out {
        out.assign_from_words(h.len(), word_scratch);
    }
}

/// The per-hop RNG stream id, a frozen contract: every `(receiver, segment,
/// step)` tuple of a round derives an independent transient-vector stream.
#[inline]
fn stream_for(ctx: &CombineCtx) -> u64 {
    ((ctx.receiver as u64) << 40) | ((ctx.segment as u64) << 20) | ctx.step as u64
}

/// The keep-received probability the combine kernel will use for `ctx`.
#[inline]
fn keep_probability(kind: CombineKind, ctx: &CombineCtx) -> f64 {
    match kind {
        CombineKind::Weighted => {
            ctx.received_count as f64 / (ctx.received_count + ctx.local_count) as f64
        }
        CombineKind::UnweightedAblation => 0.5,
    }
}

/// Pre-sampled transient masks for the clean one-bit path.
///
/// The combines of one reduce step touch disjoint segments and consume
/// independent RNG streams, but sampling them one hop at a time leaves a
/// single serial xorshift chain on the critical path — at non-dyadic keep
/// probabilities (32 dependent draws per word) that chain alone costs more
/// than the combines' bit math. The planner receives each step's hop plan
/// via the collective's step-begin hook, draws all of the step's masks with
/// [`fill_bernoulli_mask_words`] (up to 8 chains in flight), and the combine
/// closure replays them via [`SignVec::transient_combine_assign_masked`].
///
/// Per stream the words, draw counts, and final RNG states are bit-identical
/// to the unbatched path, so consensus outputs and telemetry are unchanged.
#[derive(Debug, Clone)]
struct MaskSpan {
    start: usize,
    words: usize,
    draws: u64,
    ctx: CombineCtx,
}

/// Persistent across rounds (it lives in [`RoundWorkspace`]); [`reset`]
/// re-arms it for a new round seed while every buffer keeps its capacity, so
/// the steady-state planner performs zero heap allocations per round.
///
/// [`reset`]: MaskPlanner::reset
#[derive(Debug, Clone, Default)]
struct MaskPlanner {
    round_seed: u64,
    kind: CombineKind,
    /// Flattened mask words of the current step, windowed by `spans`.
    masks: Vec<u64>,
    spans: Vec<MaskSpan>,
    /// Per-step lane generators (reused allocation).
    rngs: Vec<FastRng>,
    /// `(offset, len)` windows into `masks`, per lane of the current group.
    windows: Vec<(usize, usize)>,
    /// Per-hop "already drawn by an earlier group" flags.
    grouped: Vec<bool>,
    cursor: usize,
}

impl MaskPlanner {
    /// Re-arms the planner for a new round, keeping every buffer's capacity.
    fn reset(&mut self, round_seed: u64, kind: CombineKind) {
        self.round_seed = round_seed;
        self.kind = kind;
        self.cursor = 0;
    }

    /// Draws every mask the upcoming step's combines will consume.
    fn plan_step(&mut self, plan: &[PlannedHop]) {
        self.spans.clear();
        self.cursor = 0;
        let mut total = 0usize;
        for hop in plan {
            let p = keep_probability(self.kind, &hop.ctx);
            let draws_per_word = SignVec::bernoulli_word_draws(p);
            // Degenerate probabilities draw nothing; their combines fall
            // back to the drawing kernel (which is a copy either way).
            let words = if draws_per_word == 0 {
                0
            } else {
                hop.elems.div_ceil(64)
            };
            self.spans.push(MaskSpan {
                start: total,
                words,
                draws: words as u64 * u64::from(draws_per_word),
                ctx: hop.ctx,
            });
            total += words;
        }
        self.masks.clear();
        self.masks.resize(total, 0);
        // Batch hops that share a keep probability (all of them, within one
        // clean reduce step) into one interleaved multi-lane fill. Windows
        // are plain `(offset, len)` pairs into the flat buffer, so grouping
        // materializes no per-hop borrows.
        self.grouped.clear();
        self.grouped.resize(plan.len(), false);
        for i in 0..plan.len() {
            if self.spans[i].words == 0 || self.grouped[i] {
                continue;
            }
            let p = keep_probability(self.kind, &plan[i].ctx);
            self.rngs.clear();
            self.windows.clear();
            for (j, hop) in plan.iter().enumerate().skip(i) {
                if self.spans[j].words > 0
                    && !self.grouped[j]
                    && keep_probability(self.kind, &hop.ctx).to_bits() == p.to_bits()
                {
                    self.grouped[j] = true;
                    self.windows
                        .push((self.spans[j].start, self.spans[j].words));
                    self.rngs
                        .push(FastRng::new(self.round_seed, stream_for(&hop.ctx)));
                }
            }
            fill_bernoulli_masks_indexed(p, &mut self.rngs, &mut self.masks, &self.windows);
        }
    }

    /// Applies the `idx`-th planned combine of the current step; returns the
    /// RNG draws it consumed. Takes `&self` so the planned collective's
    /// worker threads can replay disjoint hops of one step concurrently.
    fn apply_at(&self, idx: usize, recv: &SignVec, local: &mut SignVec, ctx: CombineCtx) -> u64 {
        let sp = &self.spans[idx];
        debug_assert_eq!(sp.ctx, ctx, "combine order diverged from the plan");
        if sp.words == 0 {
            // Degenerate keep probability: the drawing kernel consumes no
            // randomness; run it directly for exact parity.
            let mut rng = FastRng::new(self.round_seed, stream_for(&ctx));
            match self.kind {
                CombineKind::Weighted => combine_weighted_assign(
                    recv,
                    ctx.received_count,
                    local,
                    ctx.local_count,
                    &mut rng,
                ),
                CombineKind::UnweightedAblation => combine_unweighted_assign(recv, local, &mut rng),
            }
            rng.draws()
        } else {
            SignVec::transient_combine_assign_masked(
                recv,
                local,
                &self.masks[sp.start..sp.start + sp.words],
            );
            sp.draws
        }
    }

    /// Applies the next planned combine in cursor order (the hooked torus
    /// path, which replays hops strictly sequentially).
    fn apply(&mut self, recv: &SignVec, local: &mut SignVec, ctx: CombineCtx) -> u64 {
        let idx = self.cursor;
        self.cursor += 1;
        self.apply_at(idx, recv, local, ctx)
    }
}

/// Adapts the workspace's persistent [`MaskPlanner`] to the planned ring
/// collective's [`StepCombine`] hooks: `step_begin` pre-samples the step's
/// mask streams serially, and `combine` (possibly racing across worker
/// threads on disjoint hops) replays them by plan index with atomic
/// draw/combine accounting.
struct PlannerOp<'a> {
    planner: &'a mut MaskPlanner,
    combines: &'a AtomicU64,
    rng_draws: &'a AtomicU64,
}

impl StepCombine for PlannerOp<'_> {
    fn step_begin(&mut self, plan: &[PlannedHop]) {
        self.planner.plan_step(plan);
    }

    fn combine(&self, idx: usize, received: &SignVec, local: &mut SignVec, ctx: CombineCtx) {
        let draws = self.planner.apply_at(idx, received, local, ctx);
        self.combines.fetch_add(1, Ordering::Relaxed);
        self.rng_draws.fetch_add(draws, Ordering::Relaxed);
    }
}

/// The link every in-process engine backend prices its fabric with. Only the
/// simulator clock reads it, so the choice never perturbs payload bits; the
/// public-cloud α–β profile keeps simulated timings consistent with the
/// legacy collectives' pricing.
pub(crate) fn engine_link() -> LinkModel {
    marsit_simnet::RateProfile::public_cloud().link
}

/// The ctx-derived combine closure the engine backends run on every rank:
/// bit-identical to the unbatched faulty closure and — via the planner
/// equivalence invariant — to the clean path's [`MaskPlanner`]. The RNG
/// stream is a pure function of `(receiver, segment, step)`, so per-rank
/// execution order cannot perturb the masks.
pub(crate) fn engine_combine<'a>(
    round_seed: u64,
    kind: CombineKind,
    combines: &'a AtomicU64,
    rng_draws: &'a AtomicU64,
) -> impl FnMut(&SignVec, &mut SignVec, CombineCtx) + Send + 'a {
    move |recv: &SignVec, local: &mut SignVec, ctx: CombineCtx| {
        let mut rng = FastRng::new(round_seed, stream_for(&ctx));
        match kind {
            CombineKind::Weighted => {
                combine_weighted_assign(recv, ctx.received_count, local, ctx.local_count, &mut rng)
            }
            CombineKind::UnweightedAblation => combine_unweighted_assign(recv, local, &mut rng),
        }
        combines.fetch_add(1, Ordering::Relaxed);
        rng_draws.fetch_add(rng.draws(), Ordering::Relaxed);
    }
}

/// Runs a clean one-bit round on the threaded engine backend.
///
/// The [`Trace`] and per-hop telemetry come from a zero-payload walk of the
/// *legacy* schedule on the caller thread — both depend only on shapes and
/// schedules, never payload bits, so they are byte-identical to the
/// simulator backend. The sign words themselves flow rank-per-OS-thread over
/// a `ChannelFabric`, combined with the frozen per-hop RNG streams; the
/// engine also executes the gather the legacy path only traces, so every
/// rank (rank 0 included) lands on the legacy consensus.
fn engine_onebit_clean(
    signs: &[SignVec],
    topology: Topology,
    round_seed: u64,
    kind: CombineKind,
    combines: &Cell<u64>,
    rng_draws: &Cell<u64>,
) -> (SignVec, Trace) {
    let m = signs.len();
    let d = signs[0].len();
    let plan_topology = match topology {
        Topology::Ring { .. } => PlanTopology::Ring,
        Topology::Torus { rows, cols } => PlanTopology::Torus { rows, cols },
        Topology::Star { .. } => {
            panic!("Marsit is a multi-hop all-reduce framework; star/PS is unsupported")
        }
    };
    let plan = compile_plan(plan_topology, m, d, None)
        .expect("full-membership clean plans always compile");
    let dummy: Vec<SignVec> = vec![SignVec::zeros(d); m];
    let (_, trace) = match topology {
        Topology::Ring { .. } => {
            ring_allreduce_onebit_weighted_hooked(&dummy, 1, |_| {}, |_, _, _| {})
        }
        Topology::Torus { rows, cols } => {
            torus_allreduce_onebit_hooked(&dummy, rows, cols, |_| {}, |_, _, _| {})
        }
        Topology::Star { .. } => unreachable!(),
    };
    let total_combines = AtomicU64::new(0);
    let total_draws = AtomicU64::new(0);
    let mut states = run_threaded(&plan, signs, engine_link(), |_rank| {
        engine_combine(round_seed, kind, &total_combines, &total_draws)
    })
    .expect("clean engine runs cannot fail");
    combines.set(combines.get() + total_combines.load(Ordering::Relaxed));
    rng_draws.set(rng_draws.get() + total_draws.load(Ordering::Relaxed));
    (states.swap_remove(0), trace)
}

/// Runs a faulty one-bit round on the threaded engine backend.
///
/// `compile_plan` consumes `inj` in the legacy canonical order, so transfer
/// fates, retry stats, and the injector's RNG position all match the
/// sequential path exactly; a pre-compile clone replays the same fates
/// through a zero-payload walk of the legacy schedule for the byte-identical
/// [`Trace`] and hop telemetry.
fn engine_onebit_faulty(
    signs: &[SignVec],
    effective: EffectiveTopology,
    inj: &mut FaultInjector,
    round_seed: u64,
    kind: CombineKind,
    combines: &Cell<u64>,
    rng_draws: &Cell<u64>,
) -> Result<(SignVec, Trace), SyncError> {
    let m = signs.len();
    let d = signs[0].len();
    let plan_topology = match effective {
        EffectiveTopology::Torus { rows, cols } => PlanTopology::Torus { rows, cols },
        _ => PlanTopology::Ring,
    };
    let mut walk_inj = inj.clone();
    let plan = compile_plan(plan_topology, m, d, Some(inj))?;
    let dummy: Vec<SignVec> = vec![SignVec::zeros(d); m];
    let (_, trace) = match plan_topology {
        PlanTopology::Torus { rows, cols } => {
            torus_allreduce_onebit_faulty(&dummy, rows, cols, &mut walk_inj, |_, _, _| {})?
        }
        _ => ring_allreduce_onebit_faulty(&dummy, &mut walk_inj, |_, _, _| {})?,
    };
    let total_combines = AtomicU64::new(0);
    let total_draws = AtomicU64::new(0);
    let mut states = run_threaded(&plan, signs, engine_link(), |_rank| {
        engine_combine(round_seed, kind, &total_combines, &total_draws)
    })?;
    combines.set(combines.get() + total_combines.load(Ordering::Relaxed));
    rng_draws.set(rng_draws.get() + total_draws.load(Ordering::Relaxed));
    Ok((states.swap_remove(0), trace))
}

/// The Marsit synchronizer: compensation state for `M` workers plus the
/// round counter.
///
/// # Examples
///
/// ```
/// use marsit_core::{Marsit, MarsitConfig, SyncSchedule};
/// use marsit_simnet::Topology;
///
/// let cfg = MarsitConfig::new(SyncSchedule::never(), 0.01, 42);
/// let mut marsit = Marsit::new(cfg, 3, 8);
/// let updates = vec![vec![0.1f32; 8], vec![-0.1f32; 8], vec![0.2f32; 8]];
/// let out = marsit.synchronize(&updates, Topology::ring(3));
/// assert_eq!(out.global_update.len(), 8);
/// assert!(!out.full_precision);
/// ```
#[derive(Debug, Clone)]
pub struct Marsit {
    cfg: MarsitConfig,
    compensations: Vec<Compensation>,
    round: u64,
    workspace: RoundWorkspace,
    /// Residual of the last clean one-bit round, not yet folded into
    /// `compensations` (see [`PendingResidual`]). `None` after construction,
    /// a full-precision round, a faulty round, or a flush.
    pending: Option<PendingResidual>,
}

impl Marsit {
    /// Creates a synchronizer for `m` workers and `d` parameters with zero
    /// compensation (Algorithm 2, line 1).
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or `d == 0`.
    #[must_use]
    pub fn new(cfg: MarsitConfig, m: usize, d: usize) -> Self {
        assert!(m >= 2, "Marsit needs at least 2 workers");
        assert!(d > 0, "model dimension must be positive");
        Self {
            cfg,
            compensations: vec![Compensation::new(d); m],
            round: 0,
            workspace: RoundWorkspace::default(),
            pending: None,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MarsitConfig {
        &self.cfg
    }

    /// Current round index `t`.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Worker `w`'s compensation state.
    ///
    /// Takes `&mut self` because the clean one-bit path defers the residual
    /// absorb (see `PendingResidual`); reading the state materializes any
    /// pending residual first. The values observed are bit-identical to the
    /// eager bookkeeping's.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[must_use]
    pub fn compensation(&mut self, w: usize) -> &Compensation {
        self.flush_pending();
        &self.compensations[w]
    }

    /// Folds any deferred residual into `compensations`, exactly as the
    /// eager absorb would have: `c_w = h_w − g` with `g` materialized once.
    fn flush_pending(&mut self) {
        let Some(p) = self.pending.take() else {
            return;
        };
        let g = p.consensus.scaled_signs(p.scale);
        for (c, h) in self
            .compensations
            .iter_mut()
            .zip(&self.workspace.compensated)
        {
            c.absorb_residual(h, &g);
        }
    }

    /// Replaces the fault plan (see [`MarsitConfig::with_fault_plan`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.cfg.fault_plan = plan;
    }

    /// Detaches the round workspace for pooling, leaving this synchronizer
    /// with a cold one.
    ///
    /// Any deferred residual is flushed first (bit-identical to the eager
    /// bookkeeping), so the released buffers hold no live state — see
    /// [`WorkspaceHandle`] for the full determinism argument.
    #[must_use]
    pub fn release_workspace(&mut self) -> WorkspaceHandle {
        self.flush_pending();
        WorkspaceHandle {
            ws: std::mem::take(&mut self.workspace),
        }
    }

    /// Installs a pooled workspace, replacing (and dropping) the current
    /// one. Any deferred residual is flushed first, since its deferred form
    /// reads the outgoing workspace's buffers. Outputs are bit-identical
    /// whatever the handle previously served — see [`WorkspaceHandle`].
    pub fn adopt_workspace(&mut self, handle: WorkspaceHandle) {
        self.flush_pending();
        self.workspace = handle.ws;
    }

    /// Replaces the collective backend (see [`MarsitConfig::with_backend`]).
    ///
    /// # Panics
    ///
    /// Panics on [`Backend::Process`] — see [`MarsitConfig::with_backend`].
    pub fn set_backend(&mut self, backend: Backend) {
        assert!(
            backend != Backend::Process,
            "the process backend is driven externally (marsit_core::transport)"
        );
        self.cfg.backend = backend;
    }

    /// Replaces the intra-round thread count (see
    /// [`MarsitConfig::with_intra_threads`]); `n <= 1` runs combines on the
    /// caller thread. Thread count never changes an output bit.
    pub fn set_intra_threads(&mut self, n: usize) {
        self.cfg.intra_threads = n.max(1);
    }

    /// Mean squared compensation norm across workers (the error-accumulation
    /// diagnostic of Theorem 1's proof).
    #[must_use]
    pub fn mean_compensation_norm_sq(&self) -> f64 {
        let m = self.compensations.len() as f64;
        if let Some(p) = &self.pending {
            // Deferred form: evaluate ‖h_w − g‖² without materializing c,
            // in the exact (striped) accumulation order of the eager path's
            // `Compensation::norm_sq`. One LUT serves every worker.
            let lut = ScaledSignLut::new(p.scale);
            let total: f64 = self
                .workspace
                .compensated
                .iter()
                .map(|h| p.consensus.residual_norm_sq_striped(h, &lut))
                .sum();
            return total / m;
        }
        self.compensations
            .iter()
            .map(Compensation::norm_sq)
            .sum::<f64>()
            / m
    }

    /// Performs one synchronization (Algorithm 1) over `topology`.
    ///
    /// `local_updates[w]` is worker `w`'s scaled local gradient
    /// `η_l·g_t^{(w)}` (Algorithm 2, line 5 hands this in). Advances the
    /// round counter.
    ///
    /// # Panics
    ///
    /// Panics if the number of updates does not match the worker count, if
    /// dimensions mismatch, or if `topology` is a star (Marsit is defined
    /// for multi-hop all-reduce only) or disagrees with the worker count.
    pub fn synchronize(&mut self, local_updates: &[Vec<f32>], topology: Topology) -> SyncOutcome {
        let mut out = SyncOutcome::default();
        self.synchronize_into(local_updates, topology, &mut out);
        out
    }

    /// [`Marsit::synchronize`] writing into a caller-owned outcome.
    ///
    /// `out`'s buffers are recycled: `global_update` and `compensated_mean`
    /// are resized and overwritten in place, and the trace's step slots are
    /// reused ([`Trace::reset`] semantics). Reusing one outcome across
    /// rounds makes the clean ring one-bit round allocation-free in the
    /// steady state — the counting-allocator gate in `bench_round` pins
    /// this. Results are bit-identical to [`Marsit::synchronize`] regardless
    /// of what `out` previously held.
    ///
    /// # Panics
    ///
    /// As [`Marsit::synchronize`].
    pub fn synchronize_into(
        &mut self,
        local_updates: &[Vec<f32>],
        topology: Topology,
        out: &mut SyncOutcome,
    ) {
        let m = self.compensations.len();
        assert_eq!(local_updates.len(), m, "update count must match workers");
        assert_eq!(topology.workers(), m, "topology size must match workers");
        let d = self.compensations[0].len();
        assert!(
            local_updates.iter().all(|u| u.len() == d),
            "update dimensions must match the model"
        );

        // The fault path freezes per-worker compensation on a crash, so it
        // needs the residual materialized before anything else runs.
        if !self.cfg.fault_plan.is_none() {
            self.flush_pending();
        }

        // Detach the workspace so its buffers can be borrowed alongside
        // `self`; it is stored back before returning on every path.
        let mut ws = std::mem::take(&mut self.workspace);

        // Fault path: plain materialized apply (the flush above cleared any
        // pending residual), then hand off — the fault layer computes its
        // own survivor-only mean and packs signs per surviving worker.
        if !self.cfg.fault_plan.is_none() {
            debug_assert!(self.pending.is_none(), "flush_pending ran above");
            // A rejoining worker restarts from the last full-precision
            // barrier: its compensation state died with the crash, so it
            // re-enters with a zero residual before the prologue folds
            // compensation into its local update.
            let rejoined = self.cfg.fault_plan.rejoined_at(m, self.round);
            for &w in &rejoined {
                self.compensations[w].reset();
            }
            ws.compensated.resize_with(m, Vec::new);
            for ((buf, u), c) in ws
                .compensated
                .iter_mut()
                .zip(local_updates)
                .zip(&self.compensations)
            {
                c.apply_into(u, buf);
            }
            *out = self.synchronize_faulty(&mut ws, topology, rejoined.len() as u64);
            self.workspace = ws;
            self.round += 1;
            return;
        }

        let t = self.round;
        let full_precision = self.cfg.schedule.is_full_precision(t);
        let inv_m = 1.0 / m as f32;
        let RoundWorkspace {
            compensated,
            fp_buffers,
            signs,
            word_scratch,
            ring,
            planner,
            consensus: consensus_buf,
        } = &mut ws;

        // Line 1 (fused prologue): fold compensation into the local update,
        // accumulate the compensated-mean numerator, and — on one-bit rounds
        // — pack each worker's sign words, all while the chunk is cache-hot.
        // The accumulator recycles the caller's buffer (one zero-fill pass,
        // exactly what the fresh `vec![0.0; d]` performed).
        let compensated_mean = &mut out.compensated_mean;
        compensated_mean.clear();
        compensated_mean.resize(d, 0.0);
        if !full_precision {
            signs.resize_with(m, || SignVec::zeros(0));
        }
        if let Some(p) = self.pending.take() {
            // Deferred residual: `h ← u + (h − g_prev)` in the same pass,
            // with the ±scale expansion table built once for all workers.
            debug_assert_eq!(compensated.len(), m);
            let lut = ScaledSignLut::new(p.scale);
            for (w, (h, u)) in compensated.iter_mut().zip(local_updates).enumerate() {
                let sign_out = if full_precision {
                    None
                } else {
                    Some(&mut signs[w])
                };
                prepare_deferred(
                    u,
                    h,
                    &p.consensus,
                    &lut,
                    compensated_mean,
                    word_scratch,
                    sign_out,
                );
            }
            // The consumed residual's sign buffer is exactly consensus-sized;
            // recycle it as this round's collective output buffer.
            *consensus_buf = p.consensus;
        } else {
            compensated.resize_with(m, Vec::new);
            for (w, (h, u)) in compensated.iter_mut().zip(local_updates).enumerate() {
                self.compensations[w].apply_into(u, h);
                let sign_out = if full_precision {
                    None
                } else {
                    Some(&mut signs[w])
                };
                accumulate_and_pack(h, compensated_mean, word_scratch, sign_out);
            }
        }
        for a in compensated_mean.iter_mut() {
            *a *= inv_m;
        }

        let combines = Cell::new(0u64);
        let rng_draws = Cell::new(0u64);
        let mut new_pending = None;
        if full_precision {
            // Lines 11–13: exact averaging, compensation reset.
            fp_buffers.resize_with(m, Vec::new);
            for (buf, src) in fp_buffers.iter_mut().zip(&*compensated) {
                buf.clear();
                buf.extend_from_slice(src);
            }
            let trace = match topology {
                Topology::Ring { .. } => ring_allreduce_sum(fp_buffers),
                Topology::Torus { rows, cols } => torus_allreduce_sum(fp_buffers, rows, cols),
                Topology::Star { .. } => {
                    panic!("Marsit is a multi-hop all-reduce framework; star/PS is unsupported")
                }
            };
            out.global_update.clear();
            out.global_update
                .extend(fp_buffers[0].iter().map(|&x| x * inv_m));
            for c in &mut self.compensations {
                c.reset();
            }
            out.full_precision = true;
            out.trace = trace;
            out.round = t;
            out.faults = FaultStats::default();
            out.degraded = DegradedMode::None;
        } else {
            // Lines 4–9: one-bit synchronization via ⊙. Sign buffers were
            // packed by the fused prologue; the planner pre-draws each
            // step's transient masks with interleaved RNG chains and the
            // combine closure replays them bit-identically.
            let round_seed = split_seed(self.cfg.seed, t);
            planner.reset(round_seed, self.cfg.combine);
            let consensus = if self.cfg.backend == Backend::Threaded {
                let (consensus, trace) = engine_onebit_clean(
                    signs,
                    topology,
                    round_seed,
                    self.cfg.combine,
                    &combines,
                    &rng_draws,
                );
                out.trace = trace;
                consensus
            } else {
                match topology {
                    Topology::Ring { .. } => {
                        // Planned, allocation-free form: state buffers come
                        // from the workspace, the consensus lands in the
                        // recycled buffer, the trace reuses the outcome's
                        // step slots, and each step's combines may fan out
                        // over `intra_threads` (bit-identical either way;
                        // see `ring_allreduce_onebit_planned`).
                        let step_combines = AtomicU64::new(0);
                        let step_draws = AtomicU64::new(0);
                        let mut op = PlannerOp {
                            planner,
                            combines: &step_combines,
                            rng_draws: &step_draws,
                        };
                        ring_allreduce_onebit_planned(
                            signs,
                            1,
                            ring,
                            consensus_buf,
                            &mut out.trace,
                            self.cfg.intra_threads,
                            &mut op,
                        );
                        combines.set(combines.get() + step_combines.load(Ordering::Relaxed));
                        rng_draws.set(rng_draws.get() + step_draws.load(Ordering::Relaxed));
                        std::mem::take(consensus_buf)
                    }
                    Topology::Torus { rows, cols } => {
                        let planner = RefCell::new(planner);
                        let step_begin = |plan: &[PlannedHop]| planner.borrow_mut().plan_step(plan);
                        let combine = |recv: &SignVec, local: &mut SignVec, ctx: CombineCtx| {
                            let draws = planner.borrow_mut().apply(recv, local, ctx);
                            combines.set(combines.get() + 1);
                            rng_draws.set(rng_draws.get() + draws);
                        };
                        let (consensus, trace) =
                            torus_allreduce_onebit_hooked(signs, rows, cols, step_begin, combine);
                        out.trace = trace;
                        consensus
                    }
                    Topology::Star { .. } => {
                        panic!("Marsit is a multi-hop all-reduce framework; star/PS is unsupported")
                    }
                }
            };
            // Line 9: g_t = η_s · σ, rebuilt through the byte LUT (written
            // once per element, no zero-fill pass, no per-lane bit tests).
            // The output buffer is recycled: when it already has the right
            // length the LUT write overwrites every element, so no clearing
            // pass is needed either.
            if out.global_update.len() != d {
                out.global_update.clear();
                out.global_update.resize(d, 0.0);
            }
            consensus.write_scaled_signs_lut(
                &ScaledSignLut::new(self.cfg.global_lr),
                &mut out.global_update,
            );
            // Line 10: the residual absorb is deferred — the consensus bits
            // and scale fully determine `g_t`, and the next round's apply
            // folds `h − g_t` in without a dedicated M·D pass.
            new_pending = Some(PendingResidual {
                consensus,
                scale: self.cfg.global_lr,
            });
            out.full_precision = false;
            out.round = t;
            out.faults = FaultStats::default();
            out.degraded = DegradedMode::None;
        }
        self.workspace = ws;
        self.pending = new_pending;
        self.emit_sync_event(out, combines.get(), rng_draws.get());
        self.round += 1;
    }

    /// Reports one completed round to the ambient telemetry scope, if any.
    ///
    /// Compensation-norm work happens only when a scope is active, so the
    /// clean path pays nothing beyond the thread-local lookup.
    fn emit_sync_event(&self, outcome: &SyncOutcome, combines: u64, rng_draws: u64) {
        let Some(tel) = marsit_telemetry::active() else {
            return;
        };
        let comp_norm_sq = self.mean_compensation_norm_sq();
        tel.counter_add("marsit.rounds", 1);
        if outcome.full_precision {
            tel.counter_add("marsit.full_precision_rounds", 1);
        }
        tel.counter_add("marsit.combines", combines);
        tel.counter_add("marsit.rng_draws", rng_draws);
        if outcome.faults.forced_deliveries > 0 {
            tel.counter_add("marsit.forced_deliveries", outcome.faults.forced_deliveries);
        }
        if outcome.faults.rejoins > 0 {
            tel.counter_add("marsit.rejoins", outcome.faults.rejoins);
        }
        tel.observe("marsit.comp_norm_sq", comp_norm_sq);
        tel.emit(
            "marsit_sync",
            vec![
                ("round", outcome.round.into()),
                ("full_precision", outcome.full_precision.into()),
                ("combines", combines.into()),
                ("rng_draws", rng_draws.into()),
                ("bytes", outcome.trace.total_bytes().into()),
                ("steps", outcome.trace.num_steps().into()),
                ("comp_norm_sq", comp_norm_sq.into()),
                ("retransmits", outcome.faults.retransmits.into()),
                ("dropped", outcome.faults.dropped_transfers.into()),
                ("corrupted", outcome.faults.corrupted_transfers.into()),
                ("repairs", outcome.faults.repairs.into()),
                ("crashed", outcome.faults.crashed_workers.into()),
                ("forced", outcome.faults.forced_deliveries.into()),
                ("rejoins", outcome.faults.rejoins.into()),
                ("retry_extra_s", outcome.faults.retry_extra_s.into()),
            ],
        );
    }

    /// The fault-injected synchronization path (graceful degradation).
    ///
    /// Differences from the clean path:
    ///
    /// - The membership schedule decides who is live this round: crashed
    ///   workers are excluded (their compensation frozen — it died with
    ///   them), rejoined workers re-enter with reset compensation, and the
    ///   collectives re-form over the live set via [`TopologyReconfigurer`]
    ///   (a partial torus degrades to a survivor ring; a shrunken ring
    ///   re-expands when workers rejoin). `compensated_mean` — the quantity
    ///   the one-bit consensus estimates — is taken over live workers only.
    /// - One-bit transfers are best-effort with bounded retries; a transfer
    ///   that exhausts its budget is an omission, and the counted collectives
    ///   keep `⊙` unbiased over what actually arrived.
    /// - Full-precision rounds (the Marsit-K resync that also serves as the
    ///   post-crash resync point) run over a repaired ring regardless of
    ///   topology.
    /// - Terminal live sets are defined, not panics: one live worker runs a
    ///   degenerate local-only round; zero live workers is a no-op round.
    ///   A typed [`SyncError`](marsit_collectives::SyncError) from a
    ///   collective likewise falls back to a degenerate local round,
    ///   reported as [`DegradedMode::Error`].
    fn synchronize_faulty(
        &mut self,
        ws: &mut RoundWorkspace,
        topology: Topology,
        rejoins: u64,
    ) -> SyncOutcome {
        assert!(
            !matches!(topology, Topology::Star { .. }),
            "Marsit is a multi-hop all-reduce framework; star/PS is unsupported"
        );
        let RoundWorkspace {
            compensated,
            fp_buffers,
            signs,
            ..
        } = ws;
        let t = self.round;
        let m = self.compensations.len();
        let d = self.compensations[0].len();
        let plan = self.cfg.fault_plan.clone();
        let live = plan.live_set(m, t);
        let mut stats = FaultStats {
            rejoins,
            crashed_workers: (m - live.len()) as u64,
            // Each membership change (a crash or rejoin taking effect)
            // re-forms the topology exactly once.
            repairs: u64::from(plan.membership_changed_at(m, t)),
            ..FaultStats::default()
        };
        let lm = live.len();
        let mut compensated_mean = vec![0.0f32; d];
        for &w in &live {
            for (a, &x) in compensated_mean.iter_mut().zip(&compensated[w]) {
                *a += x;
            }
        }
        if lm > 0 {
            let inv_lm = 1.0 / lm as f32;
            for a in &mut compensated_mean {
                *a *= inv_lm;
            }
        }

        let full_precision = self.cfg.schedule.is_full_precision(t);
        let combines = Cell::new(0u64);
        let rng_draws = Cell::new(0u64);
        let mut inj = plan.injector(t);
        let (effective, mut degraded) = TopologyReconfigurer::new(topology, m).effective(&live);
        // Fallback for terminal/error modes: a degenerate local-only round
        // seeded from the first live worker (no wire traffic).
        let local_only = |worker: usize, compensated: &[Vec<f32>]| {
            if full_precision {
                compensated[worker].clone()
            } else {
                let sign = SignVec::from_signs(&compensated[worker]);
                let mut g = vec![0.0f32; d];
                sign.write_scaled_signs(self.cfg.global_lr, &mut g);
                g
            }
        };
        let (global_update, trace) = match effective {
            // All workers crashed: a defined no-op round.
            EffectiveTopology::Empty => (vec![0.0f32; d], Trace::new()),
            // Lone survivor: its compensated update is the global update.
            EffectiveTopology::Lone { worker } => (local_only(worker, compensated), Trace::new()),
            _ if full_precision => {
                fp_buffers.resize_with(lm, Vec::new);
                for (buf, &w) in fp_buffers.iter_mut().zip(&live) {
                    buf.clear();
                    buf.extend_from_slice(&compensated[w]);
                }
                match ring_allreduce_sum_faulty(fp_buffers, &mut inj) {
                    Ok(trace) => {
                        let inv_lm = 1.0 / lm as f32;
                        (fp_buffers[0].iter().map(|&x| x * inv_lm).collect(), trace)
                    }
                    Err(e) => {
                        degraded = DegradedMode::Error(e);
                        (local_only(live[0], compensated), Trace::new())
                    }
                }
            }
            _ => {
                signs.resize_with(lm, || SignVec::zeros(0));
                for (sv, &w) in signs.iter_mut().zip(&live) {
                    sv.assign_from_signs(&compensated[w]);
                }
                let round_seed = split_seed(self.cfg.seed, t);
                let kind = self.cfg.combine;
                let combine =
                    |recv: &SignVec, local: &mut SignVec, ctx: marsit_collectives::CombineCtx| {
                        let stream = ((ctx.receiver as u64) << 40)
                            | ((ctx.segment as u64) << 20)
                            | ctx.step as u64;
                        let mut rng = FastRng::new(round_seed, stream);
                        match kind {
                            CombineKind::Weighted => combine_weighted_assign(
                                recv,
                                ctx.received_count,
                                local,
                                ctx.local_count,
                                &mut rng,
                            ),
                            CombineKind::UnweightedAblation => {
                                combine_unweighted_assign(recv, local, &mut rng)
                            }
                        }
                        combines.set(combines.get() + 1);
                        rng_draws.set(rng_draws.get() + rng.draws());
                    };
                let result = if self.cfg.backend == Backend::Threaded {
                    engine_onebit_faulty(
                        signs, effective, &mut inj, round_seed, kind, &combines, &rng_draws,
                    )
                } else {
                    match effective {
                        // A full-membership torus keeps its hierarchical
                        // schedule; any partial live set re-forms as a ring
                        // over the live workers.
                        EffectiveTopology::Torus { rows, cols } => {
                            torus_allreduce_onebit_faulty(signs, rows, cols, &mut inj, combine)
                        }
                        _ => ring_allreduce_onebit_faulty(signs, &mut inj, combine),
                    }
                };
                match result {
                    Ok((consensus, trace)) => {
                        let mut g = vec![0.0f32; d];
                        consensus.write_scaled_signs(self.cfg.global_lr, &mut g);
                        (g, trace)
                    }
                    Err(e) => {
                        degraded = DegradedMode::Error(e);
                        (local_only(live[0], compensated), Trace::new())
                    }
                }
            }
        };

        // Compensation bookkeeping for live workers only; a crashed worker's
        // compensation is frozen (its state died with it).
        if full_precision {
            for &w in &live {
                self.compensations[w].reset();
            }
        } else {
            for &w in &live {
                self.compensations[w].absorb_residual(&compensated[w], &global_update);
            }
        }
        stats.merge(&inj.take_stats());
        let outcome = SyncOutcome {
            compensated_mean,
            global_update,
            full_precision,
            trace,
            round: t,
            faults: stats,
            degraded,
        };
        self.emit_sync_event(&outcome, combines.get(), rng_draws.get());
        outcome
    }

    /// Captures a deterministic checkpoint of the synchronizer: the round
    /// counter plus every worker's materialized compensation vector.
    ///
    /// Takes `&mut self` because any deferred residual is flushed first —
    /// bit-identical to the eager bookkeeping, so snapshotting mid-run does
    /// not perturb the trajectory (the workspace-reuse invariant).
    #[must_use]
    pub fn snapshot(&mut self) -> MarsitSnapshot {
        self.flush_pending();
        MarsitSnapshot {
            round: self.round,
            compensations: self
                .compensations
                .iter()
                .map(|c| c.vector().to_vec())
                .collect(),
        }
    }

    /// Restores the synchronizer to a [`MarsitSnapshot`]: a restored
    /// instance continues the run bit-identically to one that never stopped.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's worker count or dimensions disagree with
    /// this instance.
    pub fn restore(&mut self, snapshot: &MarsitSnapshot) {
        assert_eq!(
            snapshot.compensations.len(),
            self.compensations.len(),
            "snapshot worker count must match"
        );
        self.pending = None;
        for (c, v) in self.compensations.iter_mut().zip(&snapshot.compensations) {
            c.restore(v);
        }
        self.round = snapshot.round;
    }
}

/// A deterministic checkpoint of a [`Marsit`] synchronizer (see
/// [`Marsit::snapshot`] / [`Marsit::restore`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MarsitSnapshot {
    /// The round counter `t` at capture time.
    pub round: u64,
    /// Per-worker materialized compensation vectors.
    pub compensations: Vec<Vec<f32>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        (0..m)
            .map(|w| {
                let mut rng = FastRng::new(seed, w as u64);
                (0..d).map(|_| (rng.next_f64() as f32) - 0.5).collect()
            })
            .collect()
    }

    #[test]
    fn round0_with_finite_k_is_full_precision() {
        let cfg = MarsitConfig::new(SyncSchedule::every(4), 0.01, 1);
        let mut marsit = Marsit::new(cfg, 3, 10);
        let u = updates(3, 10, 0);
        let out = marsit.synchronize(&u, Topology::ring(3));
        assert!(out.full_precision);
        // Exact mean of the updates (compensation is zero initially).
        for j in 0..10 {
            let mean: f32 = u.iter().map(|v| v[j]).sum::<f32>() / 3.0;
            assert!((out.global_update[j] - mean).abs() < 1e-5);
        }
        // Next three rounds are one-bit, then full precision again.
        assert!(!marsit.synchronize(&u, Topology::ring(3)).full_precision);
        assert!(!marsit.synchronize(&u, Topology::ring(3)).full_precision);
        assert!(!marsit.synchronize(&u, Topology::ring(3)).full_precision);
        assert!(marsit.synchronize(&u, Topology::ring(3)).full_precision);
    }

    #[test]
    fn onebit_update_is_scaled_signs() {
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 2);
        let mut marsit = Marsit::new(cfg, 4, 16);
        let out = marsit.synchronize(&updates(4, 16, 1), Topology::ring(4));
        assert!(!out.full_precision);
        for &g in &out.global_update {
            assert!((g.abs() - 0.05).abs() < 1e-7, "entry {g} is not ±η_s");
        }
    }

    #[test]
    fn compensation_tracks_residual() {
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 3);
        let mut marsit = Marsit::new(cfg, 2, 8);
        let u = updates(2, 8, 2);
        let out = marsit.synchronize(&u, Topology::ring(2));
        for (w, u_w) in u.iter().enumerate() {
            let c = marsit.compensation(w).vector();
            for j in 0..8 {
                let expected = u_w[j] - out.global_update[j];
                assert!((c[j] - expected).abs() < 1e-6, "worker {w} coord {j}");
            }
        }
    }

    #[test]
    fn full_precision_resets_compensation() {
        let cfg = MarsitConfig::new(SyncSchedule::every(2), 0.05, 4);
        let mut marsit = Marsit::new(cfg, 2, 8);
        let u = updates(2, 8, 3);
        let _ = marsit.synchronize(&u, Topology::ring(2)); // t=0 full
        let _ = marsit.synchronize(&u, Topology::ring(2)); // t=1 one-bit
        assert!(marsit.mean_compensation_norm_sq() > 0.0);
        let _ = marsit.synchronize(&u, Topology::ring(2)); // t=2 full
        assert_eq!(marsit.mean_compensation_norm_sq(), 0.0);
    }

    #[test]
    fn synchronize_is_deterministic() {
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 7);
        let u = updates(4, 32, 4);
        let mut m1 = Marsit::new(cfg.clone(), 4, 32);
        let mut m2 = Marsit::new(cfg, 4, 32);
        for _ in 0..5 {
            let a = m1.synchronize(&u, Topology::ring(4));
            let b = m2.synchronize(&u, Topology::ring(4));
            assert_eq!(a, b);
        }
    }

    /// The intra-round fan-out is a pure throughput knob: every thread
    /// count produces the same outcomes — and the same deferred residual
    /// state — as the serial dispatch, round after round.
    #[test]
    fn intra_threads_are_bit_identical() {
        let u = updates(8, 1000, 11);
        let run = |threads: usize| {
            let cfg =
                MarsitConfig::new(SyncSchedule::every(3), 0.05, 21).with_intra_threads(threads);
            let mut marsit = Marsit::new(cfg, 8, 1000);
            let outs: Vec<SyncOutcome> = (0..6)
                .map(|_| marsit.synchronize(&u, Topology::ring(8)))
                .collect();
            let norms: Vec<u64> = (0..8)
                .map(|w| marsit.compensation(w).norm_sq().to_bits())
                .collect();
            (outs, norms)
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "{threads} threads diverged");
        }
    }

    #[test]
    fn torus_topology_works() {
        let cfg = MarsitConfig::new(SyncSchedule::every(3), 0.05, 9);
        let mut marsit = Marsit::new(cfg, 4, 20);
        let u = updates(4, 20, 5);
        let full = marsit.synchronize(&u, Topology::torus(2, 2));
        assert!(full.full_precision);
        let onebit = marsit.synchronize(&u, Topology::torus(2, 2));
        assert!(!onebit.full_precision);
        assert_eq!(onebit.global_update.len(), 20);
    }

    /// The one-bit consensus is unbiased: averaged over rounds with fresh
    /// seeds, E[g_t/η_s] per coordinate approaches the mean sign.
    #[test]
    fn onebit_consensus_is_unbiased_estimate_of_mean_sign() {
        let m = 4;
        let d = 32;
        let u = updates(m, d, 6);
        let mean_sign: Vec<f64> = (0..d)
            .map(|j| {
                u.iter()
                    .map(|v| if v[j] >= 0.0 { 1.0 } else { -1.0 })
                    .sum::<f64>()
                    / m as f64
            })
            .collect();
        let trials = 4000;
        let mut acc = vec![0.0f64; d];
        for trial in 0..trials {
            let cfg = MarsitConfig::new(SyncSchedule::never(), 1.0, trial);
            let mut marsit = Marsit::new(cfg, m, d);
            let out = marsit.synchronize(&u, Topology::ring(m));
            for (a, &g) in acc.iter_mut().zip(&out.global_update) {
                *a += f64::from(g);
            }
        }
        for (j, &a) in acc.iter().enumerate() {
            let est = a / f64::from(trials as u32);
            assert!(
                (est - mean_sign[j]).abs() < 0.1,
                "coord {j}: estimate {est} vs mean sign {}",
                mean_sign[j]
            );
        }
    }

    #[test]
    #[should_panic(expected = "star/PS is unsupported")]
    fn star_topology_panics() {
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 0);
        let mut marsit = Marsit::new(cfg, 3, 4);
        let _ = marsit.synchronize(&updates(3, 4, 0), Topology::star(3));
    }

    #[test]
    fn none_fault_plan_outcome_is_identical_to_default() {
        // A none plan must take the exact fault-free code path.
        let cfg = MarsitConfig::new(SyncSchedule::every(3), 0.05, 7);
        let faulted_cfg = cfg.clone().with_fault_plan(FaultPlan::none());
        let u = updates(4, 32, 4);
        let mut base = Marsit::new(cfg, 4, 32);
        let mut with_plan = Marsit::new(faulted_cfg, 4, 32);
        for _ in 0..6 {
            let a = base.synchronize(&u, Topology::ring(4));
            let b = with_plan.synchronize(&u, Topology::ring(4));
            assert_eq!(a, b);
            assert!(b.faults.is_clean());
        }
    }

    #[test]
    fn faulty_sync_is_deterministic() {
        let plan = FaultPlan::seeded(99)
            .with_link_drop(0.05)
            .with_straggler(1, 3.0)
            .with_crash(2, 3);
        let cfg = MarsitConfig::new(SyncSchedule::every(5), 0.05, 7).with_fault_plan(plan);
        let u = updates(4, 64, 8);
        let run = || {
            let mut sync = Marsit::new(cfg.clone(), 4, 64);
            (0..8)
                .map(|_| sync.synchronize(&u, Topology::ring(4)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_excludes_worker_and_counts_one_repair() {
        let plan = FaultPlan::seeded(5).with_crash(3, 2);
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 11).with_fault_plan(plan);
        let m = 4;
        let d = 24;
        let mut sync = Marsit::new(cfg, m, d);
        let u = updates(m, d, 9);
        let mut total_repairs = 0;
        for t in 0..5u64 {
            let out = sync.synchronize(&u, Topology::ring(m));
            total_repairs += out.faults.repairs;
            assert_eq!(out.faults.crashed_workers, u64::from(t >= 2));
            if t >= 2 {
                assert!(out.compensated_mean.iter().all(|x| x.is_finite()));
            }
        }
        assert_eq!(total_repairs, 1, "exactly one repair at the crash round");
        // The crashed worker's compensation froze at its round-1 value.
        let frozen = sync.compensation(3).vector().to_vec();
        let _ = sync.synchronize(&u, Topology::ring(m));
        assert_eq!(sync.compensation(3).vector(), &frozen[..]);
    }

    #[test]
    fn crashed_torus_repairs_to_survivor_ring() {
        let plan = FaultPlan::seeded(21).with_crash(5, 1);
        let cfg = MarsitConfig::new(SyncSchedule::every(4), 0.05, 13).with_fault_plan(plan);
        let m = 8;
        let d = 40;
        let mut sync = Marsit::new(cfg, m, d);
        let u = updates(m, d, 10);
        let t0 = sync.synchronize(&u, Topology::torus(2, 4)); // full, intact
        assert!(t0.full_precision && t0.faults.crashed_workers == 0);
        let t1 = sync.synchronize(&u, Topology::torus(2, 4)); // one-bit, crashed
        assert!(!t1.full_precision);
        assert_eq!(t1.faults.crashed_workers, 1);
        assert_eq!(t1.faults.repairs, 1);
        // A 7-worker survivor ring: 2·(7−1) wall-clock steps (no retries).
        assert_eq!(t1.trace.num_steps(), 2 * 6);
        for &g in &t1.global_update {
            assert!((g.abs() - 0.05).abs() < 1e-7, "±η_s consensus expected");
        }
    }

    #[test]
    fn two_workers_crash_to_lone_survivor() {
        let plan = FaultPlan::seeded(1).with_crash(1, 1);
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 3).with_fault_plan(plan);
        let mut sync = Marsit::new(cfg, 2, 8);
        let u = updates(2, 8, 11);
        let _ = sync.synchronize(&u, Topology::ring(2));
        let out = sync.synchronize(&u, Topology::ring(2));
        assert_eq!(out.trace.num_steps(), 0, "lone survivor sends nothing");
        for (j, &g) in out.global_update.iter().enumerate() {
            assert!((g.abs() - 0.05).abs() < 1e-7, "coord {j}");
        }
    }

    #[test]
    fn rejoin_resets_compensation_and_reexpands_ring() {
        // Worker 2 crashes at round 1 and rejoins at round 3: the ring
        // shrinks to 4 survivors, then re-expands to all 5.
        let plan = FaultPlan::seeded(7)
            .with_crash_event(2, 1)
            .with_rejoin(2, 3);
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 19).with_fault_plan(plan);
        let m = 5;
        let d = 32;
        let mut sync = Marsit::new(cfg, m, d);
        let u = updates(m, d, 14);
        let r0 = sync.synchronize(&u, Topology::ring(m));
        assert!(r0.degraded.is_none());
        assert_eq!(r0.trace.num_steps(), 2 * (m - 1));
        let r1 = sync.synchronize(&u, Topology::ring(m));
        assert_eq!(r1.faults.crashed_workers, 1);
        assert_eq!(r1.faults.repairs, 1, "crash re-forms the ring once");
        assert_eq!(r1.degraded, DegradedMode::PartialRing { live: 4 });
        assert_eq!(r1.trace.num_steps(), 2 * 3, "4-survivor ring");
        let frozen = sync.compensation(2).vector().to_vec();
        let r2 = sync.synchronize(&u, Topology::ring(m));
        assert_eq!(r2.faults.repairs, 0, "stable membership, no repair");
        assert_eq!(
            sync.compensation(2).vector(),
            &frozen[..],
            "frozen while dead"
        );
        let r3 = sync.synchronize(&u, Topology::ring(m));
        assert_eq!(r3.faults.crashed_workers, 0);
        assert_eq!(r3.faults.rejoins, 1);
        assert_eq!(r3.faults.repairs, 1, "rejoin re-forms the ring once");
        assert!(r3.degraded.is_none(), "full membership restored");
        assert_eq!(r3.trace.num_steps(), 2 * (m - 1), "ring re-expanded");
        // The rejoiner re-entered with zero compensation, then absorbed
        // this round's residual like everyone else.
        let h: Vec<f32> = u[2].clone();
        let c = sync.compensation(2).vector();
        for j in 0..d {
            let expected = h[j] - r3.global_update[j];
            assert!((c[j] - expected).abs() < 1e-6, "coord {j}");
        }
    }

    #[test]
    fn torus_degrades_to_ring_and_reforms_on_rejoin() {
        let plan = FaultPlan::seeded(3)
            .with_crash_event(6, 1)
            .with_rejoin(6, 2);
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 23).with_fault_plan(plan);
        let mut sync = Marsit::new(cfg, 8, 48);
        let u = updates(8, 48, 15);
        let r0 = sync.synchronize(&u, Topology::torus(2, 4));
        assert!(r0.degraded.is_none());
        let r1 = sync.synchronize(&u, Topology::torus(2, 4));
        assert_eq!(r1.degraded, DegradedMode::TorusToRing { live: 7 });
        assert_eq!(r1.trace.num_steps(), 2 * 6, "7-survivor ring");
        let r2 = sync.synchronize(&u, Topology::torus(2, 4));
        assert!(r2.degraded.is_none(), "torus re-forms at full membership");
        assert_eq!(r2.faults.rejoins, 1);
    }

    #[test]
    fn all_crashed_round_is_a_defined_noop() {
        let plan = FaultPlan::seeded(2)
            .with_crash_event(0, 1)
            .with_crash_event(1, 1);
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 29).with_fault_plan(plan);
        let mut sync = Marsit::new(cfg, 2, 8);
        let u = updates(2, 8, 16);
        let _ = sync.synchronize(&u, Topology::ring(2));
        let out = sync.synchronize(&u, Topology::ring(2));
        assert_eq!(out.degraded, DegradedMode::AllCrashed);
        assert_eq!(out.faults.crashed_workers, 2);
        assert_eq!(out.trace.num_steps(), 0);
        assert!(out.global_update.iter().all(|&g| g == 0.0));
        assert!(out.compensated_mean.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        for plan in [
            FaultPlan::none(),
            FaultPlan::seeded(99)
                .with_link_drop(0.05)
                .with_crash_event(2, 3)
                .with_rejoin(2, 5),
        ] {
            let cfg =
                MarsitConfig::new(SyncSchedule::every(4), 0.05, 31).with_fault_plan(plan.clone());
            let u = updates(4, 40, 17);
            // Straight run: 8 rounds.
            let mut straight = Marsit::new(cfg.clone(), 4, 40);
            let all: Vec<SyncOutcome> = (0..8)
                .map(|_| straight.synchronize(&u, Topology::ring(4)))
                .collect();
            // Interrupted run: 4 rounds, snapshot, restore into a fresh
            // instance, 4 more rounds.
            let mut first = Marsit::new(cfg.clone(), 4, 40);
            for _ in 0..4 {
                let _ = first.synchronize(&u, Topology::ring(4));
            }
            let snap = first.snapshot();
            assert_eq!(snap.round, 4);
            drop(first);
            let mut resumed = Marsit::new(cfg, 4, 40);
            resumed.restore(&snap);
            for expected in &all[4..] {
                let out = resumed.synchronize(&u, Topology::ring(4));
                assert_eq!(&out, expected, "resumed round diverged");
            }
        }
    }

    #[test]
    fn drops_generate_retransmit_stats_and_extra_steps() {
        let plan = FaultPlan::seeded(17)
            .with_link_drop(0.2)
            .with_retry_policy(3, 1e-4);
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 5).with_fault_plan(plan);
        let m = 8;
        let mut sync = Marsit::new(cfg, m, 64);
        let u = updates(m, 64, 12);
        let mut retransmits = 0;
        let mut max_steps = 0;
        for _ in 0..4 {
            let out = sync.synchronize(&u, Topology::ring(m));
            retransmits += out.faults.retransmits;
            max_steps = max_steps.max(out.trace.num_steps());
        }
        assert!(retransmits > 0);
        assert!(max_steps > 2 * (m - 1), "retries add trace steps");
    }
}
