//! Stamps the experiment binaries with `git describe` output so emitted run
//! metadata (`BENCH_round.json` `meta.git_describe`, telemetry `run_meta`)
//! identifies the exact tree it came from. Falls back to `"unknown"` outside
//! a git checkout so builds from a source tarball still work.

use std::process::Command;

fn main() {
    let describe = Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=MARSIT_GIT_DESCRIBE={describe}");
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
