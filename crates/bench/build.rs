//! Stamps the experiment binaries with `git describe` output so emitted run
//! metadata (`BENCH_round.json` `meta.git_describe`, telemetry `run_meta`)
//! identifies the exact tree it came from. Falls back to `"unknown"` outside
//! a git checkout so builds from a source tarball still work.
//!
//! The stamp is a *fallback*: a compile-time `-dirty` suffix goes stale the
//! moment the worktree is edited (or cleaned) without this crate rebuilding,
//! so `bench_round` re-probes `git describe` at run time and only uses the
//! baked value when the binary runs outside the checkout. The rerun triggers
//! below keep the fallback as fresh as cargo can know about: HEAD moves on
//! commit/branch switch, the index moves on staging, and the ref file HEAD
//! points at moves on commit.

use std::path::Path;
use std::process::Command;

fn main() {
    let describe = Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=MARSIT_GIT_DESCRIBE={describe}");
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=../../.git/index");
    if let Ok(head) = std::fs::read_to_string("../../.git/HEAD") {
        if let Some(rf) = head.trim().strip_prefix("ref: ") {
            let p = Path::new("../../.git").join(rf);
            if p.exists() {
                println!("cargo:rerun-if-changed={}", p.display());
            }
        }
    }
}
