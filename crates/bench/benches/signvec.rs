//! Micro-benchmarks of the bit-packed sign-vector substrate: packing,
//! word-parallel boolean ops, and the Bernoulli transient vector — the
//! per-hop costs behind Marsit's "compression" sliver in Fig 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use marsit_tensor::rng::FastRng;
use marsit_tensor::{SignVec, Tensor};

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("signvec_pack");
    for &d in &[1 << 12, 1 << 16, 1 << 20] {
        let mut rng = FastRng::new(1, 0);
        let grad = Tensor::gaussian(1, d, 1.0, &mut rng).into_vec();
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::from_parameter(d), &grad, |b, grad| {
            b.iter(|| SignVec::from_signs(black_box(grad)));
        });
    }
    group.finish();
}

fn bench_bitops(c: &mut Criterion) {
    let d = 1 << 20;
    let mut rng = FastRng::new(2, 0);
    let a = SignVec::bernoulli_uniform(d, 0.5, &mut rng);
    let b2 = SignVec::bernoulli_uniform(d, 0.5, &mut rng);
    let mut group = c.benchmark_group("signvec_bitops");
    group.throughput(Throughput::Elements(d as u64));
    group.bench_function("and_or_xor_chain", |b| {
        b.iter(|| {
            let x = black_box(&a).and(&b2);
            let y = black_box(&a).xor(&b2);
            x.or(&y)
        });
    });
    group.bench_function("matching_rate", |b| {
        b.iter(|| black_box(&a).matching_rate(&b2));
    });
    group.finish();
}

fn bench_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_vector");
    for &d in &[1 << 16, 1 << 20] {
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::new("word_parallel", d), &d, |b, &d| {
            let mut rng = FastRng::new(3, 0);
            b.iter(|| SignVec::bernoulli_uniform(black_box(d), 0.25, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("scalar_baseline", d), &d, |b, &d| {
            let mut rng = FastRng::new(3, 0);
            b.iter(|| SignVec::bernoulli_uniform_scalar(black_box(d), 0.25, &mut rng));
        });
        // Worst case for the word-parallel path: a non-dyadic probability
        // that needs the full 32-digit expansion.
        group.bench_with_input(
            BenchmarkId::new("word_parallel_nondyadic", d),
            &d,
            |b, &d| {
                let mut rng = FastRng::new(3, 0);
                b.iter(|| SignVec::bernoulli_uniform(black_box(d), 1.0 / 3.0, &mut rng));
            },
        );
    }
    group.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let d = 1 << 20;
    let mut rng = FastRng::new(4, 0);
    let v = SignVec::bernoulli_uniform(d, 0.5, &mut rng);
    let mut out = vec![0.0f32; d];
    let mut group = c.benchmark_group("signvec_unpack");
    group.throughput(Throughput::Elements(d as u64));
    group.bench_function("write_scaled_signs", |b| {
        b.iter(|| black_box(&v).write_scaled_signs(0.01, &mut out));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pack, bench_bitops, bench_transient, bench_unpack
}
criterion_main!(benches);
