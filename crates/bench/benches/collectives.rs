//! Collective-schedule throughput: ring vs torus, fp32 vs sign-sum vs
//! one-bit payloads — the in-process cost of the communication schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use marsit_collectives::ring::{
    ring_allreduce_majority, ring_allreduce_onebit, ring_allreduce_sum, SumWire,
};
use marsit_collectives::segring::segring_allreduce_sum;
use marsit_collectives::torus::torus_allreduce_sum;
use marsit_collectives::tree::tree_allreduce_sum;
use marsit_tensor::rng::FastRng;
use marsit_tensor::SignVec;

fn payloads(m: usize, d: usize) -> Vec<Vec<f32>> {
    let mut rng = FastRng::new(1, 0);
    (0..m)
        .map(|_| (0..d).map(|_| rng.next_f64() as f32 - 0.5).collect())
        .collect()
}

fn signs(m: usize, d: usize) -> Vec<SignVec> {
    let mut rng = FastRng::new(2, 0);
    (0..m)
        .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
        .collect()
}

fn bench_ring_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_allreduce_sum");
    for &m in &[4usize, 8, 16] {
        let d = 1 << 16;
        group.throughput(Throughput::Elements((m * d) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let base = payloads(m, d);
            b.iter(|| {
                let mut data = base.clone();
                ring_allreduce_sum(black_box(&mut data))
            });
        });
    }
    group.finish();
}

fn bench_torus_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("torus_allreduce_sum");
    let d = 1 << 16;
    group.throughput(Throughput::Elements((16 * d) as u64));
    group.bench_function("4x4", |b| {
        let base = payloads(16, d);
        b.iter(|| {
            let mut data = base.clone();
            torus_allreduce_sum(black_box(&mut data), 4, 4)
        });
    });
    group.finish();
}

fn bench_extension_paradigms(c: &mut Criterion) {
    let d = 1 << 16;
    let m = 8;
    let mut group = c.benchmark_group("extension_allreduce_sum");
    group.throughput(Throughput::Elements((m * d) as u64));
    group.bench_function("tree", |b| {
        let base = payloads(m, d);
        b.iter(|| {
            let mut data = base.clone();
            tree_allreduce_sum(black_box(&mut data))
        });
    });
    group.bench_function("segring_s4", |b| {
        let base = payloads(m, d);
        b.iter(|| {
            let mut data = base.clone();
            segring_allreduce_sum(black_box(&mut data), 4)
        });
    });
    group.finish();
}

fn bench_sign_payloads(c: &mut Criterion) {
    let m = 8;
    let d = 1 << 16;
    let sv = signs(m, d);
    let mut group = c.benchmark_group("ring_sign_payloads");
    group.throughput(Throughput::Elements((m * d) as u64));
    group.bench_function("majority_elias", |b| {
        b.iter(|| ring_allreduce_majority(black_box(&sv), SumWire::Elias));
    });
    group.bench_function("majority_fixed", |b| {
        b.iter(|| ring_allreduce_majority(black_box(&sv), SumWire::FixedWidth));
    });
    group.bench_function("onebit_keep_received", |b| {
        b.iter(|| ring_allreduce_onebit(black_box(&sv), |r, l, _| l.copy_from(r)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_ring_sum, bench_torus_sum, bench_extension_paradigms, bench_sign_payloads
}
criterion_main!(benches);
