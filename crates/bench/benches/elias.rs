//! Elias-code throughput: the payload compaction used by the MAR-extended
//! signSGD baselines, and the sign-sum wire-size computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use marsit_compress::{elias, SignSumVec};
use marsit_tensor::rng::FastRng;
use marsit_tensor::SignVec;

fn sums(m: usize, d: usize) -> SignSumVec {
    let mut rng = FastRng::new(1, 0);
    let mut s = SignSumVec::zeros(d);
    for _ in 0..m {
        s.add_signs(&SignVec::bernoulli_uniform(d, 0.5, &mut rng));
    }
    s
}

fn bench_encode_decode(c: &mut Criterion) {
    let d = 1 << 14;
    let mut group = c.benchmark_group("elias_signed");
    for &m in &[2usize, 8, 32] {
        let s = sums(m, d);
        let values: Vec<i64> = s.sums().iter().map(|&v| i64::from(v)).collect();
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::new("encode", m), &values, |b, v| {
            b.iter(|| elias::encode_signed(black_box(v)));
        });
        let bytes = elias::encode_signed(&values);
        group.bench_with_input(BenchmarkId::new("decode", m), &bytes, |b, bytes| {
            b.iter(|| elias::decode_signed(black_box(bytes), d));
        });
    }
    group.finish();
}

fn bench_wire_size(c: &mut Criterion) {
    let d = 1 << 14;
    let s = sums(8, d);
    let mut group = c.benchmark_group("signsum_wire_bits");
    group.throughput(Throughput::Elements(d as u64));
    group.bench_function("elias_bits", |b| {
        b.iter(|| black_box(&s).elias_bits());
    });
    group.bench_function("fixed_width_bits", |b| {
        b.iter(|| black_box(&s).fixed_width_bits());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encode_decode, bench_wire_size
}
criterion_main!(benches);
