//! Compressor throughput: the "compression" phase of Figures 1a and 5.
//! Cascading's per-hop recompression is benchmarked explicitly to show why
//! its codec time dominates the round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use marsit_compress::cascading::cascade_reduce;
use marsit_compress::compressor::{Compressor, EfSign, PlainSign, Ssdm};
use marsit_compress::powersgd::PowerSgd;
use marsit_compress::quantizers::{qsgd, terngrad};
use marsit_compress::sparsify::TopK;
use marsit_tensor::rng::FastRng;
use marsit_tensor::Tensor;

fn gradient(d: usize, seed: u64) -> Vec<f32> {
    let mut rng = FastRng::new(seed, 0);
    Tensor::gaussian(1, d, 0.05, &mut rng).into_vec()
}

fn bench_compressors(c: &mut Criterion) {
    let d = 1 << 16;
    let grad = gradient(d, 1);
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Elements(d as u64));
    group.bench_function("plain_sign", |b| {
        let mut comp = PlainSign::new();
        let mut rng = FastRng::new(2, 0);
        b.iter(|| comp.compress(black_box(&grad), &mut rng));
    });
    group.bench_function("ef_sign", |b| {
        let mut comp = EfSign::new();
        let mut rng = FastRng::new(3, 0);
        b.iter(|| comp.compress(black_box(&grad), &mut rng));
    });
    group.bench_function("ssdm", |b| {
        let mut comp = Ssdm::new();
        let mut rng = FastRng::new(4, 0);
        b.iter(|| comp.compress(black_box(&grad), &mut rng));
    });
    group.finish();
}

fn bench_related_work(c: &mut Criterion) {
    let d = 1 << 16;
    let grad = gradient(d, 7);
    let mut group = c.benchmark_group("related_work_compress");
    group.throughput(Throughput::Elements(d as u64));
    group.bench_function("terngrad", |b| {
        let mut rng = FastRng::new(8, 0);
        b.iter(|| terngrad(black_box(&grad), &mut rng));
    });
    group.bench_function("qsgd_s4", |b| {
        let mut rng = FastRng::new(9, 0);
        b.iter(|| qsgd(black_box(&grad), 4, &mut rng));
    });
    group.bench_function("topk_1pct", |b| {
        let mut comp = TopK::new(d / 100);
        b.iter(|| comp.compress(black_box(&grad)));
    });
    group.bench_function("powersgd_r2", |b| {
        let mut comp = PowerSgd::new(d, 2, 3);
        b.iter(|| comp.compress(black_box(&grad)));
    });
    group.finish();
}

fn bench_cascade(c: &mut Criterion) {
    let d = 1 << 14;
    let mut group = c.benchmark_group("cascade_chain");
    for &m in &[2usize, 4, 8] {
        let grads: Vec<Vec<f32>> = (0..m).map(|w| gradient(d, 10 + w as u64)).collect();
        let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
        group.throughput(Throughput::Elements((d * m) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &refs, |b, refs| {
            let mut rng = FastRng::new(5, 0);
            b.iter(|| cascade_reduce(black_box(refs), &mut rng));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compressors, bench_related_work, bench_cascade
}
criterion_main!(benches);
