//! End-to-end cost of one Marsit synchronization round (the paper's core
//! operation), including the `⊙` combine with its transient vectors, versus
//! the full-precision round and the cascading alternative.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use marsit_core::ominus::{combine_weighted, combine_weighted_assign};
use marsit_core::{Marsit, MarsitConfig, SyncSchedule};
use marsit_simnet::Topology;
use marsit_tensor::rng::FastRng;
use marsit_tensor::SignVec;

fn updates(m: usize, d: usize) -> Vec<Vec<f32>> {
    let mut rng = FastRng::new(1, 0);
    (0..m)
        .map(|_| {
            (0..d)
                .map(|_| 0.01 * (rng.next_f64() as f32 - 0.5))
                .collect()
        })
        .collect()
}

fn bench_combine(c: &mut Criterion) {
    let d = 1 << 18;
    let mut rng = FastRng::new(2, 0);
    let a = SignVec::bernoulli_uniform(d, 0.5, &mut rng);
    let b2 = SignVec::bernoulli_uniform(d, 0.5, &mut rng);
    let mut group = c.benchmark_group("ominus_combine");
    group.throughput(Throughput::Elements(d as u64));
    group.bench_function("weighted", |bch| {
        let mut rng = FastRng::new(3, 0);
        bch.iter(|| combine_weighted(black_box(&a), 3, &b2, 1, &mut rng));
    });
    group.finish();
}

/// Fused in-place `⊙` versus the allocating reference, at a dyadic weight
/// ratio (3:1 → two RNG draws per word) and the worst-case non-dyadic ratio
/// (4:3 → a full 32-draw digit recurrence per word).
fn bench_combine_fused(c: &mut Criterion) {
    let d = 1 << 18;
    let mut rng = FastRng::new(2, 0);
    let recv = SignVec::bernoulli_uniform(d, 0.5, &mut rng);
    let local = SignVec::bernoulli_uniform(d, 0.5, &mut rng);
    let mut group = c.benchmark_group("ominus_fused");
    group.throughput(Throughput::Elements(d as u64));
    for (label, a, b2) in [("dyadic_3_1", 3usize, 1usize), ("nondyadic_4_3", 4, 3)] {
        group.bench_function(BenchmarkId::new("reference", label), |bch| {
            let mut rng = FastRng::new(3, 0);
            bch.iter(|| combine_weighted(black_box(&recv), a, &local, b2, &mut rng));
        });
        group.bench_function(BenchmarkId::new("fused_assign", label), |bch| {
            let mut rng = FastRng::new(3, 0);
            let mut dst = local.clone();
            bch.iter(|| {
                combine_weighted_assign(black_box(&recv), a, &mut dst, b2, &mut rng);
                black_box(&dst);
            });
        });
    }
    group.finish();
}

fn bench_sync_round(c: &mut Criterion) {
    let d = 1 << 16;
    let mut group = c.benchmark_group("marsit_sync_round");
    for &m in &[4usize, 8, 16] {
        let u = updates(m, d);
        group.throughput(Throughput::Elements((m * d) as u64));
        group.bench_with_input(BenchmarkId::new("onebit_ring", m), &u, |b, u| {
            let cfg = MarsitConfig::new(SyncSchedule::never(), 0.01, 7);
            let mut sync = Marsit::new(cfg, m, d);
            b.iter(|| sync.synchronize(black_box(u), Topology::ring(m)));
        });
        group.bench_with_input(BenchmarkId::new("full_precision_ring", m), &u, |b, u| {
            let cfg = MarsitConfig::new(SyncSchedule::every(1), 0.01, 7);
            let mut sync = Marsit::new(cfg, m, d);
            b.iter(|| sync.synchronize(black_box(u), Topology::ring(m)));
        });
    }
    let u = updates(16, d);
    group.throughput(Throughput::Elements((16 * d) as u64));
    group.bench_with_input(BenchmarkId::new("onebit_torus", 16), &u, |b, u| {
        let cfg = MarsitConfig::new(SyncSchedule::never(), 0.01, 7);
        let mut sync = Marsit::new(cfg, 16, d);
        b.iter(|| sync.synchronize(black_box(u), Topology::torus(4, 4)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench_combine, bench_combine_fused, bench_sync_round
}
criterion_main!(benches);
