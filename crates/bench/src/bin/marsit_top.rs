//! Live cluster-health view over a merged cross-rank trace.
//!
//! `top`-style CLI for the observability stack: point it at the merged
//! telemetry log a traced transport run produces (or any per-rank shard —
//! the aggregates degrade gracefully) and it renders per-rank send-lag and
//! per-link transit quantiles, per-round skew, and the health events the
//! online detector would raise over the same samples.
//!
//! ```text
//! marsit_top <merged.jsonl> [--prom] [--watch SECS]
//! ```
//!
//! - default: render the table once and exit;
//! - `--watch SECS`: re-read the (possibly still growing) log every `SECS`
//!   seconds and redraw — the "watch a run live" mode;
//! - `--prom`: dump the Prometheus-style text exposition instead of the
//!   table (what a scrape endpoint would serve; used by CI to schema-check
//!   the metrics).

use std::path::PathBuf;
use std::process::ExitCode;

use marsit_telemetry::health::{
    aggregate, detect, hop_samples, prometheus_text, HealthEvent, LatencySummary, TraceAggregate,
};
use marsit_telemetry::report::parse_jsonl;
use marsit_telemetry::Event;

fn usage() -> ! {
    eprintln!("usage: marsit_top <merged.jsonl> [--prom] [--watch SECS]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<PathBuf> = None;
    let mut prom = false;
    let mut watch: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--prom" => prom = true,
            "--watch" => {
                let secs = it.next().unwrap_or_else(|| usage());
                watch = Some(secs.parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            _ if path.is_none() => path = Some(PathBuf::from(arg)),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };

    loop {
        let events = match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_jsonl(&text) {
                Ok(ev) => ev,
                Err(e) => {
                    eprintln!("error: {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            // In watch mode the log may not exist yet (the run is still
            // starting); keep polling instead of dying.
            Err(e) if watch.is_some() => {
                println!("waiting for {}: {e}", path.display());
                std::thread::sleep(std::time::Duration::from_secs(watch.unwrap_or(1)));
                continue;
            }
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let samples = hop_samples(&events);
        let agg = aggregate(&samples);
        let health = detect(&samples);

        if prom {
            print!("{}", prometheus_text(&agg, &health));
            return ExitCode::SUCCESS;
        }
        if watch.is_some() {
            // Clear + home, like top(1), so redraws overwrite in place.
            print!("\x1b[2J\x1b[H");
        }
        render(&events, &agg, &health);
        match watch {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
            None => return ExitCode::SUCCESS,
        }
    }
}

fn render(events: &[Event], agg: &TraceAggregate, health: &[HealthEvent]) {
    let hops = events.iter().filter(|e| e.name == "hop").count();
    if let Some(meta) = events.iter().find(|e| e.name == "run_meta") {
        let s = |k: &str| meta.str_field(k).unwrap_or("?").to_string();
        let n = |k: &str| meta.u64_field(k).map_or("?".to_string(), |v| v.to_string());
        println!(
            "marsit_top — {} on {} x{} (d={})",
            s("strategy"),
            s("topology"),
            n("workers"),
            n("d")
        );
    } else {
        println!("marsit_top — (no run_meta yet)");
    }
    println!(
        "{} events, {hops} hops, {} rounds observed, {} health events",
        events.len(),
        agg.rounds.len(),
        health.len()
    );

    println!("\n== ranks (send lag vs fastest) ==");
    println!(
        "  {:>4} {:>7} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "rank", "hops", "bytes", "retrans", "p50", "p95", "p99"
    );
    for (rank, r) in &agg.ranks {
        println!(
            "  {:>4} {:>7} {:>12} {:>8} {:>10} {:>10} {:>10}",
            rank,
            r.hops_sent,
            r.bytes_sent,
            r.retransmits,
            fmt_ns(r.lag.p50_ns),
            fmt_ns(r.lag.p95_ns),
            fmt_ns(r.lag.p99_ns)
        );
    }

    println!("\n== links (wire transit) ==");
    println!(
        "  {:>10} {:>7} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "link", "hops", "bytes", "retrans", "p50", "p95", "p99"
    );
    for (&(send, recv), l) in &agg.links {
        println!(
            "  {:>10} {:>7} {:>12} {:>8} {:>10} {:>10} {:>10}",
            format!("{send} -> {recv}"),
            l.hops,
            l.bytes,
            l.retransmits,
            fmt_transit(l.transit),
            fmt_ns(l.transit.p95_ns),
            fmt_ns(l.transit.p99_ns)
        );
    }

    if !agg.rounds.is_empty() {
        println!("\n== rounds ==");
        println!(
            "  {:>5} {:>8} {:>8} {:>8} {:>12}",
            "round", "skew", "fastest", "slowest", "slowest lag"
        );
        for r in &agg.rounds {
            let slow_lag = r.per_rank_lag_ns.get(&r.slowest).copied().unwrap_or(0.0);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let slow_lag_ns = slow_lag.max(0.0) as u64;
            println!(
                "  {:>5} {:>7.2}x {:>8} {:>8} {:>12}",
                r.round,
                r.skew_ratio,
                r.fastest,
                r.slowest,
                fmt_ns(slow_lag_ns)
            );
        }
    }

    println!("\n== health ==");
    if health.is_empty() {
        println!("  all clear");
    }
    for ev in health {
        match ev {
            HealthEvent::StragglerSuspected {
                rank,
                round,
                lag_ns,
                ratio,
            } => println!(
                "  STRAGGLER  rank {rank} round {round}: lag {} ({ratio:.2}x median)",
                fmt_ns(*lag_ns)
            ),
            HealthEvent::LinkDegraded {
                send,
                recv,
                round,
                transit_ns,
                ratio,
            } => println!(
                "  LINK-DEGR  {send} -> {recv} round {round}: transit {} ({ratio:.2}x median)",
                fmt_ns(*transit_ns)
            ),
            HealthEvent::RankSilent { rank, round } => {
                println!("  SILENT     rank {rank} round {round}: no hops observed");
            }
        }
    }
}

/// p50 transit, falling back to "-" when the link carried no timed hops
/// (e.g. a shard traced without wall clocks).
fn fmt_transit(t: LatencySummary) -> String {
    if t.count == 0 {
        "-".to_string()
    } else {
        fmt_ns(t.p50_ns)
    }
}

/// Nanoseconds as a human-scaled string (`417ns`, `23.4us`, `51.2ms`, `1.20s`).
fn fmt_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", v / 1e6)
    } else {
        format!("{:.2}s", v / 1e9)
    }
}
