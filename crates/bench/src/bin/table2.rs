//! **Table 2**: top-1 accuracy of all approaches on the five
//! model/dataset workloads.
//!
//! Paper's rows (PSGD / signSGD / EF-signSGD / SSDM / Marsit-100 / Marsit):
//! AlexNet+CIFAR-10: 82.38 / 80.74 / 82.25 / 81.89 / 82.30 / 81.58;
//! ResNet-20+CIFAR-10: 93.42 / 88.92 / 91.85 / 89.18 / 92.18 / 90.15;
//! ResNet-18+ImageNet: 69.18 / 67.17 / 68.14 / 68.10 / 68.96 / 68.40;
//! ResNet-50+ImageNet: 74.87 / 72.74 / 73.89 / 73.35 / 74.35 / 74.10;
//! DistilBERT+IMDb: 92.16 / 89.12 / 90.57 / 91.41 / 90.13 / 90.26.
//!
//! ```text
//! cargo run --release -p marsit-bench --bin table2
//! ```

use marsit_bench::{hr, pct};
use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::Topology;
use marsit_trainsim::{train, StrategyKind, TrainConfig};

/// Per-strategy stepsizes (the paper tunes a grid per method; these come
/// from the same kind of sweep on the proxies — see EXPERIMENTS.md).
fn local_lr(strategy: StrategyKind, workload: Workload) -> f32 {
    let adam = matches!(workload, Workload::DistilBertImdb);
    if adam {
        // Adam directions are ±O(1) per coordinate; every strategy shares
        // the paper's 5e-5-style constant scaled to proxy dimensions.
        return 0.002;
    }
    let imagenet = matches!(
        workload,
        Workload::ResNet18ImageNet | Workload::ResNet50ImageNet
    );
    match strategy {
        StrategyKind::Psgd => 0.1,
        // Sign steps random-walk at their stepsize; the longer ImageNet
        // budget wants a cooler rate.
        StrategyKind::SignMajority if imagenet => 0.001,
        StrategyKind::SignMajority => 0.005,
        StrategyKind::EfSign => 0.01,
        StrategyKind::Ssdm => 0.001,
        StrategyKind::Cascading => 0.005,
        StrategyKind::Marsit { .. } => 0.01,
        StrategyKind::PowerSgd { .. } => 0.05,
    }
}

fn main() {
    let workloads = [
        Workload::AlexNetCifar10,
        Workload::ResNet20Cifar10,
        Workload::ResNet18ImageNet,
        Workload::ResNet50ImageNet,
        Workload::DistilBertImdb,
    ];
    let strategies = StrategyKind::TABLE2;
    let m = 8;

    println!("== Table 2: top-1 accuracy (%), ring({m}), T = 400 (800 for ImageNet) ==\n");
    print!("{:<24} {:>8}", "Workload", "#params");
    for s in strategies {
        print!("{:>12}", s.label());
    }
    println!();
    hr(32 + 12 * strategies.len());

    for workload in workloads {
        print!(
            "{:<24} {:>7}",
            workload.label(),
            format!("{:.2}M", workload.logical_params() as f64 / 1e6)
        );
        let imagenet = matches!(
            workload,
            Workload::ResNet18ImageNet | Workload::ResNet50ImageNet
        );
        for strategy in strategies {
            let mut cfg = TrainConfig::new(workload, Topology::ring(m), strategy);
            cfg.rounds = if imagenet { 800 } else { 400 };
            cfg.train_examples = 16_384;
            cfg.test_examples = 2048;
            cfg.batch_per_worker = 64;
            cfg.local_lr = local_lr(strategy, workload);
            cfg.marsit_global_lr = 0.002;
            cfg.optimizer = if matches!(workload, Workload::DistilBertImdb) {
                OptimizerKind::Adam
            } else {
                OptimizerKind::Momentum(0.9)
            };
            cfg.eval_every = 0;
            let report = train(&cfg);
            if report.diverged {
                print!("{:>12}", "div.");
            } else {
                print!("{:>12}", pct(report.final_eval.accuracy));
            }
        }
        println!();
    }
    hr(32 + 12 * strategies.len());
    println!(
        "\nExpected shape (paper Table 2): PSGD leads every row; Marsit-100 and/or\n\
         Marsit sit within ~1 pp of PSGD and above the signSGD-family baselines;\n\
         plain signSGD loses the most."
    );
}
