//! **Figure 3**: CIFAR-10 over AlexNet with K ∈ {1, 50, 100, 200, ∞}.
//!
//! (a) Accuracy as training progresses (printed at evaluation points).
//! (b) Convergence table: time (min) / final accuracy (%) / average bits.
//!
//! Paper's (b): K=1 → 40.18 min, 93.42%, 32 bits; K=50 → 22.05, 92.28,
//! 1.62; K=100 → 21.34, 91.73, 1.31; K=200 → 22.38, 92.00, 1.16;
//! K=∞ → 18.78, 90.75, 1.
//!
//! ```text
//! cargo run --release -p marsit-bench --bin fig3
//! ```

use marsit_bench::{hr, minutes, pct};
use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::Topology;
use marsit_trainsim::{train, StrategyKind, TrainConfig};

const ROUNDS: usize = 400; // the paper's maximum communication rounds
const EVAL_EVERY: usize = 40;

fn main() {
    let ks: [Option<u32>; 5] = [Some(1), Some(50), Some(100), Some(200), None];
    println!("== Fig 3: CIFAR-10-proxy over AlexNet-proxy, ring(8), T = {ROUNDS} ==\n");

    let mut rows = Vec::new();
    for k in ks {
        let mut cfg = TrainConfig::new(
            Workload::AlexNetCifar10,
            Topology::ring(8),
            StrategyKind::Marsit { k },
        );
        cfg.rounds = ROUNDS;
        cfg.train_examples = 16_384;
        cfg.test_examples = 2048;
        cfg.batch_per_worker = 64;
        cfg.local_lr = 0.01;
        cfg.marsit_global_lr = 0.002;
        cfg.optimizer = OptimizerKind::Momentum(0.9);
        cfg.eval_every = EVAL_EVERY;
        let report = train(&cfg);
        rows.push((k, report));
    }

    // (a) accuracy vs round.
    println!("-- Fig 3a: accuracy (%) at evaluation points --\n");
    print!("{:<8}", "round");
    for (k, _) in &rows {
        print!("{:>10}", k.map_or("K=∞".to_owned(), |k| format!("K={k}")));
    }
    println!();
    hr(8 + 10 * rows.len());
    let eval_points: Vec<usize> = rows[0]
        .1
        .records
        .iter()
        .filter(|r| r.eval.is_some())
        .map(|r| r.round)
        .collect();
    for &round in &eval_points {
        print!("{round:<8}");
        for (_, report) in &rows {
            let acc = report
                .records
                .iter()
                .find(|r| r.round == round)
                .and_then(|r| r.eval)
                .map_or(f64::NAN, |e| e.accuracy);
            print!("{:>10}", pct(acc));
        }
        println!();
    }

    // (b) convergence table.
    println!("\n-- Fig 3b: convergence results --\n");
    println!(
        "{:<8} {:>10} {:>9} {:>7}",
        "K", "Time(min)", "Acc.(%)", "Bits"
    );
    hr(38);
    for (k, report) in &rows {
        println!(
            "{:<8} {:>10} {:>9} {:>7.2}",
            k.map_or("∞".to_owned(), |k| k.to_string()),
            minutes(report.total_time.total()),
            pct(report.final_eval.accuracy),
            report.avg_wire_bits_per_element,
        );
    }
    println!(
        "\nExpected shape (paper Fig 3b): bits follow 1 + 31/K exactly; K=1 takes\n\
         the most time and the best accuracy; K=∞ is fastest and cheapest but\n\
         gives up a couple of accuracy points; intermediate K interpolate."
    );
}
