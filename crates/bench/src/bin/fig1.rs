//! **Figure 1**: training MNIST over AlexNet with 3 workers.
//!
//! (a) Per-iteration time length of existing approaches, split into
//!     computation / compression / communication.
//! (b) Sign matching rate against the non-compressed aggregation value.
//!
//! ```text
//! cargo run --release -p marsit-bench --bin fig1
//! ```
//!
//! Set `MARSIT_TELEMETRY=path.jsonl` to capture the Marsit matching-rate
//! run's event log for `telemetry_report`.

use marsit_bench::{hr, mean_matching_rate, phase_bar};
use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::{RateProfile, Topology};
use marsit_telemetry::Telemetry;
use marsit_trainsim::{train, StrategyKind, TimingModel, TrainConfig};

fn main() {
    let m = 3;
    let workload = Workload::AlexNetMnist;

    // --- Fig 1a: per-iteration time breakdown -------------------------------
    println!(
        "== Fig 1a: per-iteration time, {} logical params, M = {m} ==\n",
        workload.logical_params()
    );
    let settings: Vec<(&str, StrategyKind, Topology)> = vec![
        ("PSGD / PS", StrategyKind::Psgd, Topology::star(m)),
        ("PSGD / RAR", StrategyKind::Psgd, Topology::ring(m)),
        ("SSDM / PS", StrategyKind::Ssdm, Topology::star(m)),
        ("SSDM / MAR", StrategyKind::Ssdm, Topology::ring(m)),
        (
            "Cascading / MAR",
            StrategyKind::Cascading,
            Topology::ring(m),
        ),
        (
            "Marsit / MAR",
            StrategyKind::Marsit { k: None },
            Topology::ring(m),
        ),
    ];
    let timings: Vec<_> = settings
        .iter()
        .map(|&(label, strategy, topology)| {
            let model = TimingModel {
                rates: RateProfile::public_cloud(),
                logical_d: workload.logical_params(),
                topology,
                flops_per_sample: workload.flops_per_sample(),
                batch_per_worker: 256 / m,
                overlap: true,
            };
            (label, model.round_time(strategy, false))
        })
        .collect();
    let max_total = timings.iter().map(|(_, p)| p.total()).fold(0.0, f64::max);
    println!(
        "{:<18} {:>11} {:>10} {:>9} {:>9}   bar (#=compute %=codec ==comm)",
        "setting", "compute(ms)", "codec(ms)", "comm(ms)", "total(ms)"
    );
    hr(110);
    for (label, p) in &timings {
        println!(
            "{:<18} {:>11.1} {:>10.1} {:>9.1} {:>9.1}   {}",
            label,
            p.compute_s * 1e3,
            p.compression_s * 1e3,
            p.communication_s * 1e3,
            p.total() * 1e3,
            phase_bar(*p, max_total, 48),
        );
    }

    // --- Fig 1b: matching rate ----------------------------------------------
    println!("\n== Fig 1b: sign matching rate vs the non-compressed aggregate ==\n");
    println!("{:<18} {:>14}", "method", "matching rate");
    hr(34);
    // Only the Marsit row records telemetry — one simulated clock per log.
    let tel = Telemetry::from_env();
    for (label, strategy) in [
        ("PSGD", StrategyKind::Psgd),
        ("signSGD-MV", StrategyKind::SignMajority),
        ("EF-signSGD", StrategyKind::EfSign),
        ("SSDM", StrategyKind::Ssdm),
        ("Cascading", StrategyKind::Cascading),
        ("Marsit", StrategyKind::Marsit { k: None }),
    ] {
        let mut cfg = TrainConfig::new(workload, Topology::ring(m), strategy);
        cfg.rounds = 80;
        cfg.train_examples = 4096;
        cfg.test_examples = 512;
        cfg.batch_per_worker = 64;
        cfg.optimizer = OptimizerKind::Sgd;
        cfg.local_lr = 0.01;
        cfg.eval_every = 0;
        if matches!(strategy, StrategyKind::Marsit { .. }) {
            cfg.telemetry = tel.clone();
        }
        let report = train(&cfg);
        println!("{label:<18} {:>13.1}%", mean_matching_rate(&report) * 100.0);
    }
    if let Some(path) = tel.flush_env().expect("write telemetry log") {
        println!("wrote telemetry to {}", path.display());
    }
    println!(
        "\nExpected shape (paper Fig 1): PSGD/RAR beats PSGD/PS; cascading's bar is\n\
         dominated by codec time; Marsit has the shortest bar. Cascading's matching\n\
         rate sits near ~56%, far below every other approach."
    );
}
