//! **Perf trajectory point**: machine-readable benchmark of the one-bit hot
//! path and a full Marsit synchronization round.
//!
//! Emits `BENCH_round.json` (override with `--out <path>`) with four
//! sections:
//!
//! - `transient` — word-parallel vs scalar Bernoulli transient-vector
//!   generation (the inner loop of every `⊙` combine), for a dyadic and a
//!   worst-case non-dyadic probability;
//! - `pack` — sign extraction (`SignVec::from_signs`) throughput;
//! - `large` — the same transient/pack kernels at `d = 2^24` (beyond every
//!   cache level), plus a STREAM-triad-style measurement of the host's
//!   memory-bandwidth ceiling and the fraction of it the pack kernel
//!   achieves (`memory_bandwidth_fraction`);
//! - `round` — end-to-end Marsit rounds/sec on a ring, one-bit and
//!   full-precision, their ratio, the realized wire bits per transmitted
//!   element, steady-state heap allocations per round (via a counting
//!   global allocator), and a non-dyadic-weight ring (`m = 7`) whose
//!   transient masks need worst-case RNG draws;
//! - `trainsim` — wall-clock speedup of the thread-per-worker compute phase
//!   over the sequential one, with a bit-identity check of the reports;
//! - `meta` — run provenance (seed, topology, workers, `git describe` of the
//!   tree the binary was built from);
//! - `faults` — aggregate fault-layer stats of a short fault-injected run;
//! - `telemetry` — proof that the disabled sink records zero events on the
//!   hot path (hard-asserted), plus the measured overhead ratio of a
//!   recording sink (informational — never asserted, timing is noisy).
//!
//! Set `MARSIT_TELEMETRY=path` to also capture the fault-injected run's
//! event log (and `<path>.summary.json`) for `telemetry_report`.
//!
//! ```text
//! cargo run --release -p marsit-bench --bin bench_round [-- --fast] [-- --out PATH]
//! ```
//!
//! `--fast` shrinks problem sizes and sample counts for CI smoke runs; the
//! JSON schema is identical in both modes (`"mode"` records which ran).

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use marsit_core::{Marsit, MarsitConfig, SyncOutcome, SyncSchedule};
use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::{FaultPlan, Topology};
use marsit_telemetry::{scoped, Telemetry};
use marsit_tensor::rng::FastRng;
use marsit_tensor::SignVec;
use marsit_trainsim::{elements_per_round, train, StrategyKind, TrainConfig};

/// Heap-allocation counter wrapped around the system allocator: the
/// steady-state `round` section reports allocations per synchronize call,
/// making the workspace-reuse claim measurable instead of anecdotal.
/// Counts `alloc`/`realloc` events only — frees are irrelevant to the
/// "does the hot path still hit the allocator" question.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocator calls per invocation of `f`, averaged over `n` calls.
fn allocs_per_call(n: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: let every reusable buffer reach steady-state capacity
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..n.max(1) {
        f();
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    (after - before) as f64 / n.max(1) as f64
}

struct Sizes {
    mode: &'static str,
    transient_d: usize,
    large_d: usize,
    round_d: usize,
    samples: usize,
    train_rounds: usize,
}

const FULL: Sizes = Sizes {
    mode: "full",
    transient_d: 1 << 20,
    large_d: 1 << 24,
    round_d: 1 << 16,
    samples: 15,
    train_rounds: 40,
};

const FAST: Sizes = Sizes {
    mode: "fast",
    transient_d: 1 << 16,
    large_d: 1 << 20,
    round_d: 1 << 13,
    samples: 5,
    train_rounds: 6,
};

/// Median wall time of one call to `f` over `samples` timed runs (after one
/// warm-up call), in seconds.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn ns_per_elem(secs: f64, elems: usize) -> f64 {
    secs * 1e9 / elems as f64
}

/// STREAM-triad-style host memory-bandwidth ceiling, in bytes/s.
///
/// Runs `a[i] = b[i] + s·c[i]` over three arrays far larger than any cache
/// level and counts three streamed floats per element (two reads, one
/// write; write-allocate traffic is ignored, as STREAM does). The `large`
/// section reports kernel throughput as a fraction of this ceiling so a
/// regression report can distinguish "kernel got slower" from "host has
/// slower memory".
fn stream_triad_bytes_per_sec(n: usize, samples: usize) -> f64 {
    let b: Vec<f32> = (0..n).map(|i| (i % 1021) as f32 * 0.5).collect();
    let c: Vec<f32> = (0..n).map(|i| (i % 4093) as f32 * 0.25).collect();
    let mut a = vec![0.0f32; n];
    let s = 3.0f32;
    let secs = median_secs(samples, || {
        for ((ai, bi), ci) in a.iter_mut().zip(&b).zip(&c) {
            *ai = *bi + s * *ci;
        }
        black_box(&mut a);
    });
    (n * 3 * std::mem::size_of::<f32>()) as f64 / secs
}

/// `git describe` of the tree this binary *runs* in, falling back to the
/// build-time stamp when the binary runs outside the checkout. The runtime
/// probe exists because a compile-time `-dirty` suffix goes stale the moment
/// the worktree is edited (or cleaned) without this crate rebuilding.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| env!("MARSIT_GIT_DESCRIBE").to_string())
}

/// Process CPU seconds (user + system) from `/proc/self/stat`, so the
/// trainsim section can report wall *and* CPU time — on a one-core host the
/// threaded path cannot beat wall clock, and the CPU column makes that
/// honest instead of mysterious. `None` off Linux or on a parse failure.
fn cpu_time_s() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // `comm` (field 2) may contain spaces; everything after the closing
    // paren is whitespace-delimited, starting at field 3 (`state`).
    let rest = stat.rsplit(')').next()?;
    let mut fields = rest.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?; // field 14
    let stime: f64 = fields.next()?.parse().ok()?; // field 15
                                                   // Linux fixes USER_HZ at 100 for these fields regardless of kernel HZ.
    Some((utime + stime) / 100.0)
}

/// CPU seconds consumed by `f`, or `-1.0` when `/proc` is unavailable.
fn cpu_secs_of(f: impl FnOnce()) -> f64 {
    let before = cpu_time_s();
    f();
    cpu_time_s()
        .zip(before)
        .map_or(-1.0, |(after, before)| after - before)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = if args.iter().any(|a| a == "--fast") {
        FAST
    } else {
        FULL
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_round.json", String::as_str);

    // --- Transient-vector generation: the per-hop cost of `⊙`. ---
    let d = sizes.transient_d;
    let p_dyadic = 0.25;
    let p_nondyadic = 1.0 / 3.0;
    let mut rng = FastRng::new(1, 0);
    let scalar_s = median_secs(sizes.samples, || {
        black_box(SignVec::bernoulli_uniform_scalar(d, p_dyadic, &mut rng));
    });
    let word_s = median_secs(sizes.samples, || {
        black_box(SignVec::bernoulli_uniform(d, p_dyadic, &mut rng));
    });
    let word_nd_s = median_secs(sizes.samples, || {
        black_box(SignVec::bernoulli_uniform(d, p_nondyadic, &mut rng));
    });
    let speedup_dyadic = scalar_s / word_s;
    let speedup_nondyadic = scalar_s / word_nd_s;
    println!(
        "transient d={d}: scalar {:.2} ns/elem, word-parallel {:.3} ns/elem \
         ({speedup_dyadic:.1}x at p={p_dyadic}, {speedup_nondyadic:.1}x at p=1/3)",
        ns_per_elem(scalar_s, d),
        ns_per_elem(word_s, d),
    );

    // --- Sign packing. ---
    let grad: Vec<f32> = {
        let mut g = FastRng::new(2, 0);
        (0..d).map(|_| (g.next_f64() as f32) - 0.5).collect()
    };
    let pack_s = median_secs(sizes.samples, || {
        black_box(SignVec::from_signs(black_box(&grad)));
    });
    println!(
        "pack d={d}: from_signs {:.3} ns/elem",
        ns_per_elem(pack_s, d)
    );

    // --- Beyond-cache kernels at d = 2^24 against the bandwidth ceiling. ---
    //
    // The small-d sections above measure kernels from cache; a serving host
    // packs models whose gradients never fit there. Re-measure the two
    // streaming kernels at `large_d` and report the pack kernel's achieved
    // bytes/s as a fraction of a measured STREAM-triad ceiling.
    let ld = sizes.large_d;
    let large_samples = sizes.samples.min(7);
    let large_word_s = median_secs(large_samples, || {
        black_box(SignVec::bernoulli_uniform(ld, p_dyadic, &mut rng));
    });
    let grad_large: Vec<f32> = {
        let mut g = FastRng::new(5, 0);
        (0..ld).map(|_| (g.next_f64() as f32) - 0.5).collect()
    };
    let pack_large_s = median_secs(large_samples, || {
        black_box(SignVec::from_signs(black_box(&grad_large)));
    });
    let triad_bytes_per_s = stream_triad_bytes_per_sec(ld, large_samples);
    // from_signs streams d f32 reads and d/8 packed-sign bytes of writes.
    let pack_bytes = ld * std::mem::size_of::<f32>() + ld / 8;
    let pack_achieved_bytes_per_s = pack_bytes as f64 / pack_large_s;
    let memory_bandwidth_fraction = pack_achieved_bytes_per_s / triad_bytes_per_s;
    println!(
        "large d={ld}: transient {:.3} ns/elem, pack {:.3} ns/elem \
         ({:.2} GB/s, {:.0}% of {:.2} GB/s triad ceiling)",
        ns_per_elem(large_word_s, ld),
        ns_per_elem(pack_large_s, ld),
        pack_achieved_bytes_per_s / 1e9,
        memory_bandwidth_fraction * 100.0,
        triad_bytes_per_s / 1e9,
    );
    drop(grad_large);

    // --- Full Marsit round on a ring of 8. ---
    let m = 8;
    let rd = sizes.round_d;
    let updates: Vec<Vec<f32>> = {
        let mut g = FastRng::new(3, 0);
        (0..m)
            .map(|_| {
                (0..rd)
                    .map(|_| 0.01 * (g.next_f64() as f32 - 0.5))
                    .collect()
            })
            .collect()
    };
    let mut onebit = Marsit::new(MarsitConfig::new(SyncSchedule::never(), 0.01, 7), m, rd);
    // One outcome reused across rounds: `synchronize_into` recycles its
    // buffers, which is the steady-state calling convention of the trainer
    // and of the job server's shard loop.
    let mut round_out = SyncOutcome::default();
    let wire_bits_per_element = {
        onebit.synchronize_into(&updates, Topology::ring(m), &mut round_out);
        round_out.trace.total_bytes() as f64 * 8.0
            / elements_per_round(Topology::ring(m), rd) as f64
    };
    let onebit_s = median_secs(sizes.samples, || {
        onebit.synchronize_into(black_box(&updates), Topology::ring(m), &mut round_out);
        black_box(&mut round_out);
    });
    let mut fp = Marsit::new(MarsitConfig::new(SyncSchedule::every(1), 0.01, 7), m, rd);
    let mut fp_out = SyncOutcome::default();
    let fp_s = median_secs(sizes.samples, || {
        fp.synchronize_into(black_box(&updates), Topology::ring(m), &mut fp_out);
        black_box(&mut fp_out);
    });
    let onebit_vs_full_ratio = fp_s / onebit_s;

    // Steady-state allocator traffic of the reused-workspace path. The
    // recycled-outcome convention keeps even the escaping vectors
    // (`global_update`, `compensated_mean`, the trace's step slots) out of
    // the allocator: the clean ring one-bit round must be allocation-free.
    let alloc_iters = sizes.samples.max(10);
    let onebit_allocs = allocs_per_call(alloc_iters, || {
        onebit.synchronize_into(black_box(&updates), Topology::ring(m), &mut round_out);
        black_box(&mut round_out);
    });
    let fp_allocs = allocs_per_call(alloc_iters, || {
        fp.synchronize_into(black_box(&updates), Topology::ring(m), &mut fp_out);
        black_box(&mut fp_out);
    });
    println!(
        "round m={m} d={rd}: one-bit {:.1} rounds/s (wire {:.3} bits/elem, {onebit_allocs:.0} allocs), \
         full-precision {:.1} rounds/s ({fp_allocs:.0} allocs), ratio {onebit_vs_full_ratio:.2}x",
        1.0 / onebit_s,
        wire_bits_per_element,
        1.0 / fp_s,
    );

    // Non-dyadic weights: a 7-worker ring drives the weighted ⊙ through
    // keep-probabilities like 2/3, 4/5, 5/6, 6/7 whose fixed-point q has a
    // full 32-bit tail, so every transient word costs the worst-case number
    // of RNG draws. This is the fused kernel's hardest steady-state case.
    let m_nd = 7;
    let updates_nd: Vec<Vec<f32>> = {
        let mut g = FastRng::new(4, 0);
        (0..m_nd)
            .map(|_| {
                (0..rd)
                    .map(|_| 0.01 * (g.next_f64() as f32 - 0.5))
                    .collect()
            })
            .collect()
    };
    let mut onebit_nd = Marsit::new(MarsitConfig::new(SyncSchedule::never(), 0.01, 7), m_nd, rd);
    let mut nd_out = SyncOutcome::default();
    let onebit_nd_s = median_secs(sizes.samples, || {
        onebit_nd.synchronize_into(black_box(&updates_nd), Topology::ring(m_nd), &mut nd_out);
        black_box(&mut nd_out);
    });
    println!(
        "round m={m_nd} d={rd} (non-dyadic weights): one-bit {:.1} rounds/s",
        1.0 / onebit_nd_s,
    );

    // --- Parallel vs sequential worker simulation. ---
    //
    // The wall-clock speedup scales with `available_parallelism` (recorded
    // in the JSON): on a single-core host the threaded path can only tie or
    // lose slightly to the sequential one. The invariant being benchmarked
    // is bit-identity; the speedup is the trajectory metric.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut cfg = TrainConfig::new(
        Workload::AlexNetCifar10,
        Topology::ring(4),
        StrategyKind::Marsit { k: Some(20) },
    );
    cfg.rounds = sizes.train_rounds;
    cfg.train_examples = 2048;
    cfg.test_examples = 256;
    cfg.batch_per_worker = 128;
    cfg.eval_every = 0;
    cfg.optimizer = OptimizerKind::Momentum(0.9);
    cfg.parallel_workers = false;
    let mut sequential = None;
    let t = Instant::now();
    let seq_cpu_s = cpu_secs_of(|| sequential = Some(train(&cfg)));
    let seq_s = t.elapsed().as_secs_f64();
    cfg.parallel_workers = true;
    let mut parallel = None;
    let t = Instant::now();
    let par_cpu_s = cpu_secs_of(|| parallel = Some(train(&cfg)));
    let par_s = t.elapsed().as_secs_f64();
    let bit_identical = sequential == parallel;
    println!(
        "trainsim M=4 rounds={} on {cores} core(s): sequential {seq_s:.2}s wall \
         ({seq_cpu_s:.2}s cpu), parallel {par_s:.2}s wall ({par_cpu_s:.2}s cpu) \
         ({:.2}x, bit-identical: {bit_identical})",
        sizes.train_rounds,
        seq_s / par_s,
    );
    assert!(
        bit_identical,
        "parallel worker simulation diverged from the sequential path"
    );

    // --- Telemetry overhead: the disabled sink must record nothing. ---
    //
    // The zero-event claim is deterministic, so it is hard-asserted here;
    // the overhead ratio of a recording sink is reported but never asserted
    // (wall-clock ratios are too noisy for CI).
    let disabled = Telemetry::disabled();
    let tel_off_s = median_secs(sizes.samples, || {
        scoped(&disabled, || {
            onebit.synchronize_into(black_box(&updates), Topology::ring(m), &mut round_out);
            black_box(&mut round_out);
        });
    });
    assert_eq!(
        disabled.event_count(),
        0,
        "disabled telemetry recorded events on the hot path"
    );
    let recording = Telemetry::recording();
    let tel_on_s = median_secs(sizes.samples, || {
        scoped(&recording, || {
            onebit.synchronize_into(black_box(&updates), Topology::ring(m), &mut round_out);
            black_box(&mut round_out);
        });
    });
    let events_enabled = recording.event_count();
    let overhead_ratio = tel_on_s / tel_off_s;
    println!(
        "telemetry: disabled 0 events ({:.1} rounds/s), recording {events_enabled} events \
         ({:.1} rounds/s, {overhead_ratio:.2}x)",
        1.0 / tel_off_s,
        1.0 / tel_on_s,
    );

    // --- Aggregate fault stats of a short fault-injected run. ---
    let mut fault_cfg = cfg.clone();
    fault_cfg.rounds = sizes.train_rounds;
    fault_cfg.parallel_workers = true;
    fault_cfg.fault_plan = FaultPlan::seeded(7)
        .with_link_drop(0.05)
        .with_straggler(1, 2.0);
    fault_cfg.telemetry = Telemetry::from_env();
    let faulty = train(&fault_cfg);
    if let Some(path) = fault_cfg
        .telemetry
        .flush_env()
        .expect("write telemetry log")
    {
        println!("wrote telemetry to {}", path.display());
    }
    let fstats = faulty.faults;
    println!(
        "faults (drop 5%, straggler 2x, {} rounds): {} retransmits, {} dropped, {:.4}s retry time",
        sizes.train_rounds, fstats.retransmits, fstats.dropped_transfers, fstats.retry_extra_s
    );

    let git_stamp = git_describe();
    if git_stamp.ends_with("-dirty") {
        eprintln!("=================================================================");
        eprintln!("WARNING: bench_round is running in a DIRTY tree ({git_stamp}).");
        eprintln!("The emitted JSON stamps this provenance; do NOT commit numbers");
        eprintln!("measured from uncommitted code. Commit (or stash) and re-run.");
        eprintln!("=================================================================");
    }
    let json = format!(
        r#"{{
  "bench": "round",
  "mode": "{mode}",
  "transient": {{
    "d": {d},
    "p_dyadic": {p_dyadic},
    "scalar_ns_per_elem": {scalar_ns:.4},
    "word_parallel_ns_per_elem": {word_ns:.4},
    "speedup_dyadic": {speedup_dyadic:.2},
    "p_nondyadic": {p_nondyadic:.6},
    "word_parallel_nondyadic_ns_per_elem": {word_nd_ns:.4},
    "speedup_nondyadic": {speedup_nondyadic:.2}
  }},
  "pack": {{
    "d": {d},
    "from_signs_ns_per_elem": {pack_ns:.4}
  }},
  "large": {{
    "d": {ld},
    "transient_word_ns_per_elem": {large_word_ns:.4},
    "pack_ns_per_elem": {pack_large_ns:.4},
    "pack_achieved_gb_per_s": {pack_achieved_gbs:.3},
    "stream_triad_gb_per_s": {triad_gbs:.3},
    "memory_bandwidth_fraction": {memory_bandwidth_fraction:.4}
  }},
  "round": {{
    "m": {m},
    "d": {rd},
    "topology": "ring",
    "onebit_rounds_per_sec": {onebit_rps:.2},
    "full_precision_rounds_per_sec": {fp_rps:.2},
    "onebit_vs_full_ratio": {onebit_vs_full_ratio:.3},
    "wire_bits_per_element": {wire_bits_per_element:.4},
    "allocations_per_round_onebit": {onebit_allocs:.1},
    "allocations_per_round_full_precision": {fp_allocs:.1},
    "nondyadic_m": {m_nd},
    "onebit_nondyadic_rounds_per_sec": {onebit_nd_rps:.2}
  }},
  "trainsim": {{
    "workers": 4,
    "host_cores": {cores},
    "rounds": {train_rounds},
    "sequential_s": {seq_s:.4},
    "parallel_s": {par_s:.4},
    "sequential_cpu_s": {seq_cpu_s:.4},
    "parallel_cpu_s": {par_cpu_s:.4},
    "speedup": {train_speedup:.2},
    "parallel_comparison_valid": {parallel_comparison_valid},
    "bit_identical": {bit_identical}
  }},
  "meta": {{
    "seed": {seed},
    "topology": "ring",
    "workers": 4,
    "git_describe": "{git_describe}"
  }},
  "faults": {{
    "rounds": {train_rounds},
    "retransmits": {f_retransmits},
    "dropped_transfers": {f_dropped},
    "corrupted_transfers": {f_corrupted},
    "repairs": {f_repairs},
    "crashed_workers": {f_crashed},
    "retry_extra_s": {f_retry_s:.6}
  }},
  "telemetry": {{
    "events_disabled": 0,
    "events_enabled": {events_enabled},
    "overhead_ratio": {overhead_ratio:.3}
  }}
}}
"#,
        mode = sizes.mode,
        seed = fault_cfg.seed,
        git_describe = git_stamp,
        f_retransmits = fstats.retransmits,
        f_dropped = fstats.dropped_transfers,
        f_corrupted = fstats.corrupted_transfers,
        f_repairs = fstats.repairs,
        f_crashed = fstats.crashed_workers,
        f_retry_s = fstats.retry_extra_s,
        scalar_ns = ns_per_elem(scalar_s, d),
        word_ns = ns_per_elem(word_s, d),
        word_nd_ns = ns_per_elem(word_nd_s, d),
        pack_ns = ns_per_elem(pack_s, d),
        large_word_ns = ns_per_elem(large_word_s, ld),
        pack_large_ns = ns_per_elem(pack_large_s, ld),
        pack_achieved_gbs = pack_achieved_bytes_per_s / 1e9,
        triad_gbs = triad_bytes_per_s / 1e9,
        onebit_rps = 1.0 / onebit_s,
        fp_rps = 1.0 / fp_s,
        onebit_nd_rps = 1.0 / onebit_nd_s,
        train_rounds = sizes.train_rounds,
        train_speedup = seq_s / par_s,
        // A threaded-vs-sequential wall-clock comparison is only meaningful
        // with real parallelism available; on a one-core host the speedup
        // number is noise and consumers (CI) must not gate on it.
        parallel_comparison_valid = cores > 1,
    );
    std::fs::write(out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
