//! **Theorems 1–3**: empirical verification of the paper's analysis, plus
//! the `⊙`-weighting ablation called out in `DESIGN.md`.
//!
//! 1. Theorem 2 vs Theorem 3: the deviation of SSDM under PS stays bounded
//!    (`O(DG²)`) while cascading compression explodes with the chain length
//!    (`O((2D)^M G²/M)`).
//! 2. Theorem 1: Marsit's `min ‖∇F‖²` shrinks as workers are added at a
//!    fixed round budget (linear-speedup direction), tracking the
//!    `O(1/√(MT))` reference.
//! 3. Ablation: replacing Eq. (2)'s weighted transient vector with a plain
//!    coin flip biases the aggregate toward late-chain workers and costs
//!    real accuracy.
//!
//! ```text
//! cargo run --release -p marsit-bench --bin theory
//! ```

use marsit_bench::hr;
use marsit_core::ominus::{combine_unweighted, combine_weighted};
use marsit_core::theory::{cascading_deviation_bound, estimate_deviations, ps_deviation_bound};
use marsit_core::SyncSchedule;
use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::Topology;
use marsit_tensor::rng::FastRng;
use marsit_tensor::SignVec;
use marsit_trainsim::{train, StrategyKind, TrainConfig};

fn main() {
    deviations();
    linear_speedup();
    combine_ablation();
}

/// Theorem 2 vs Theorem 3.
fn deviations() {
    let d = 64;
    let g = (d as f64).sqrt(); // E‖g‖² = d for standard normal gradients
    println!("== Theorems 2 & 3: aggregate deviation vs worker count (D = {d}) ==\n");
    println!(
        "{:<4} {:>14} {:>14} {:>16} {:>18}",
        "M", "PS measured", "PS bound", "cascade measured", "cascade bound"
    );
    hr(72);
    for m in [2usize, 3, 4, 6, 8, 10] {
        let est = estimate_deviations(d, m, 200, 11);
        println!(
            "{:<4} {:>14.1} {:>14.1} {:>16.3e} {:>18.3e}",
            m,
            est.ps,
            ps_deviation_bound(d, g),
            est.cascading,
            cascading_deviation_bound(d, m, g),
        );
    }
    println!(
        "\nShape: the PS column is flat/shrinking; the cascade column grows by\n\
         orders of magnitude with every added worker, exactly as Theorem 3 warns.\n"
    );
}

/// Theorem 1's linear-speedup direction.
fn linear_speedup() {
    let t = 250;
    println!("== Theorem 1: min ‖∇F‖² vs workers at fixed T = {t} (Marsit, K = ∞) ==\n");
    println!(
        "{:<4} {:>16} {:>18} {:>12}",
        "M", "min ‖∇F‖²", "1/√(MT) reference", "final acc(%)"
    );
    hr(56);
    for m in [2usize, 4, 8, 16] {
        let mut cfg = TrainConfig::new(
            Workload::AlexNetMnist,
            Topology::ring(m),
            StrategyKind::Marsit { k: None },
        );
        cfg.rounds = t;
        cfg.train_examples = 8192;
        cfg.test_examples = 1024;
        cfg.batch_per_worker = 32;
        cfg.local_lr = 0.01;
        cfg.marsit_global_lr = 0.002;
        cfg.optimizer = OptimizerKind::Sgd;
        cfg.eval_every = 0;
        let report = train(&cfg);
        println!(
            "{:<4} {:>16.5} {:>18.5} {:>12.2}",
            m,
            report.min_grad_norm_sq(),
            SyncSchedule::never().theorem1_bound(m as u64, t as u64),
            report.final_eval.accuracy * 100.0,
        );
    }
    println!("\nShape: both columns shrink as M grows — more workers, faster descent.\n");
}

/// The Eq. (2) weighting ablation.
fn combine_ablation() {
    println!("== Ablation: weighted ⊙ (Eq. 2) vs naive coin-flip combine ==\n");

    // (a) Bias of the chained estimate: worker 0 disagrees with everyone.
    let m = 6;
    let n = 50_000;
    let mut inputs = vec![SignVec::zeros(n); m];
    inputs[0] = SignVec::ones(n);
    let truth = 1.0 / m as f64;
    let mut rng = FastRng::new(5, 0);
    let chain = |weighted: bool, rng: &mut FastRng| -> f64 {
        let mut acc = 0.0;
        let trials = 60;
        for _ in 0..trials {
            let mut agg = inputs[0].clone();
            for (i, input) in inputs.iter().enumerate().skip(1) {
                agg = if weighted {
                    combine_weighted(&agg, i, input, 1, rng)
                } else {
                    combine_unweighted(&agg, input, rng)
                };
            }
            acc += agg.count_ones() as f64 / n as f64;
        }
        acc / 60.0
    };
    let w = chain(true, &mut rng);
    let u = chain(false, &mut rng);
    println!("E[bit] when worker 1 of {m} says '+' and the rest say '−' (truth = {truth:.4}):");
    println!("  weighted ⊙ : {w:.4}   (bias {:+.4})", w - truth);
    println!("  coin flip  : {u:.4}   (bias {:+.4})", u - truth);

    // (b) End-to-end accuracy cost on the MNIST proxy.
    println!("\nEnd-to-end accuracy with each combine (hand-rolled Marsit, K = ∞):");
    for (label, unweighted) in [("weighted ⊙", false), ("coin flip", true)] {
        let acc = train_with_combine(unweighted);
        println!("  {label:<11}: {:.2}%", acc * 100.0);
    }
    println!(
        "\nShape: the coin flip underweights early-chain workers (2^-(M-1) instead\n\
         of 1/M), so its estimate is biased and training lands lower."
    );
}

/// Minimal Marsit training loop with a selectable combine operator.
fn train_with_combine(unweighted: bool) -> f64 {
    use marsit_core::{Marsit, MarsitConfig};
    use marsit_datagen::synthetic::mnist_like;
    use marsit_models::{Mlp, Model};

    let m = 8;
    let (train_set, test_set) = mnist_like().generate_split(8192, 1024, 3);
    let shards = train_set.shard_iid(m, 4);
    let spec = Workload::AlexNetMnist.proxy_spec();
    let mut model = Mlp::new(spec, 5);
    let d = model.num_params();
    let mut cfg = MarsitConfig::new(SyncSchedule::never(), 0.002, 17);
    if unweighted {
        cfg = cfg.with_unweighted_combine();
    }
    let mut sync = Marsit::new(cfg, m, d);
    let mut rng = FastRng::new(6, 0);
    let mut grad = vec![0.0f32; d];
    for _ in 0..250 {
        let updates: Vec<Vec<f32>> = (0..m)
            .map(|w| {
                let batch = shards[w].sample_batch(32, &mut rng);
                model.loss_and_grad(&batch, &mut grad);
                grad.iter().map(|&g| 0.01 * g).collect()
            })
            .collect();
        let out = sync.synchronize(&updates, Topology::ring(m));
        model.apply_update(&out.global_update);
    }
    model.evaluate(&test_set).accuracy
}
