//! **Figure 5**: per-round training time of every approach under TAR and
//! RAR, split into computation (grey → `#`), compression (red → `%`), and
//! communication (blue → `=`).
//!
//! Priced on the AlexNet/CIFAR-10 logical profile with M = 16 workers
//! (4×4 torus for TAR), plus a cross-check that the measured transfer
//! traces of the real collectives price to the same communication times.
//!
//! ```text
//! cargo run --release -p marsit-bench --bin fig5
//! ```
//!
//! Set `MARSIT_TELEMETRY=path.jsonl` to capture the Marsit cross-check
//! run's event log for `telemetry_report`.

use marsit_bench::{hr, phase_bar};
use marsit_models::Workload;
use marsit_simnet::{PhaseBreakdown, RateProfile, Topology};
use marsit_telemetry::Telemetry;
use marsit_trainsim::{train, StrategyKind, TimingModel, TrainConfig};

const M: usize = 16;

fn strategies() -> [StrategyKind; 6] {
    [
        StrategyKind::Psgd,
        StrategyKind::SignMajority,
        StrategyKind::EfSign,
        StrategyKind::Ssdm,
        StrategyKind::Cascading,
        StrategyKind::Marsit { k: None },
    ]
}

fn main() {
    let workload = Workload::AlexNetCifar10;
    println!(
        "== Fig 5: per-round time by phase, {} ({} logical params), M = {M} ==\n",
        workload.label(),
        workload.logical_params()
    );
    let mut all: Vec<(String, PhaseBreakdown)> = Vec::new();
    for topology in [Topology::square_torus(M), Topology::ring(M)] {
        for strategy in strategies() {
            let model = TimingModel {
                rates: RateProfile::public_cloud(),
                logical_d: workload.logical_params(),
                topology,
                flops_per_sample: workload.flops_per_sample(),
                batch_per_worker: workload.paper_batch_size() / M,
                overlap: true,
            };
            all.push((
                format!("{} / {}", topology.short_name(), strategy.label()),
                model.round_time(strategy, false),
            ));
        }
    }
    let max_total = all.iter().map(|(_, p)| p.total()).fold(0.0, f64::max);
    println!(
        "{:<22} {:>11} {:>10} {:>9} {:>9}   bar (#=compute %=codec ==comm)",
        "fabric / method", "compute(ms)", "codec(ms)", "comm(ms)", "total(ms)"
    );
    hr(115);
    for (label, p) in &all {
        println!(
            "{:<22} {:>11.1} {:>10.1} {:>9.1} {:>9.1}   {}",
            label,
            p.compute_s * 1e3,
            p.compression_s * 1e3,
            p.communication_s * 1e3,
            p.total() * 1e3,
            phase_bar(*p, max_total, 44),
        );
        if label.starts_with("TAR / Marsit") {
            hr(115);
        }
    }

    // Cross-check: the *measured* traces of short real runs, scaled to the
    // logical model size, must agree with the closed-form communication
    // model to first order.
    println!("\n-- cross-check: measured trace vs closed-form model (ring) --\n");
    println!(
        "{:<12} {:>18} {:>18} {:>8}",
        "method", "trace comm (ms)", "model comm (ms)", "ratio"
    );
    hr(60);
    // Only the Marsit cross-check run records telemetry — one simulated
    // clock per log.
    let tel = Telemetry::from_env();
    for strategy in strategies() {
        let mut cfg = TrainConfig::new(workload, Topology::ring(M), strategy);
        cfg.rounds = 4;
        cfg.train_examples = 2048;
        cfg.test_examples = 256;
        cfg.batch_per_worker = 8;
        cfg.eval_every = 0;
        if matches!(strategy, StrategyKind::Marsit { .. }) {
            cfg.telemetry = tel.clone();
        }
        let report = train(&cfg);
        let d_actual = workload.proxy_spec().num_params();
        let scale = workload.logical_params() as f64 / d_actual as f64;
        // Average measured bytes/round, scaled to logical D and priced on
        // the same link (latency excluded from the scaling).
        let link = RateProfile::public_cloud().link;
        let avg_bytes = report.total_bytes as f64 / cfg.rounds as f64;
        let serialized = matches!(strategy, StrategyKind::Cascading);
        let steps = 2 * (M - 1);
        let parallel_links = if serialized { 1.0 } else { M as f64 };
        let trace_ms = (steps as f64 * link.latency_s()
            + avg_bytes * scale / parallel_links / link.bandwidth_bytes_per_s())
            * 1e3;
        let model = TimingModel {
            rates: RateProfile::public_cloud(),
            logical_d: workload.logical_params(),
            topology: Topology::ring(M),
            flops_per_sample: workload.flops_per_sample(),
            batch_per_worker: 8,
            overlap: true,
        };
        let model_ms =
            model.communication_time(strategy, matches!(strategy, StrategyKind::Psgd)) * 1e3;
        println!(
            "{:<12} {:>18.2} {:>18.2} {:>8.2}",
            strategy.label(),
            trace_ms,
            model_ms,
            trace_ms / model_ms
        );
    }
    if let Some(path) = tel.flush_env().expect("write telemetry log") {
        println!("wrote telemetry to {}", path.display());
    }
    println!(
        "\nExpected shape (paper Fig 5): communication shrinks under TAR for every\n\
         method; Marsit's compression sliver is minor and its communication bar the\n\
         smallest; cascading is dominated by serialized codec work."
    );
}
