//! **Serving trajectory point**: the sharded job server under a seeded
//! arrival storm.
//!
//! Emits `BENCH_service.json` (override with `--out <path>`) with:
//!
//! - `throughput` — jobs/sec over the storm, plus the peak and sustained
//!   (median-at-completion) number of jobs in flight;
//! - `latency` — p50/p95/p99 per-round wall latency across every shard,
//!   measured while jobs time-share shard threads;
//! - `migration` — median snapshot-serialize and restore cost of the
//!   seeded migration schedule, and the serialized snapshot size;
//! - `pool` — workspace-pool hit/miss/return/eviction counters;
//! - `exactness` — every served job is re-run solo and byte-compared
//!   (report and telemetry log); **any violation aborts the benchmark**,
//!   so a committed JSON is itself proof the scheduler never perturbed a
//!   single output bit;
//! - `meta` — run provenance.
//!
//! The storm is a seeded Poisson process: an initial burst saturates the
//! shards, then the remaining jobs arrive with exponential gaps. Every
//! schedule decision downstream of the seed is deterministic; only the
//! wall-clock numbers vary between hosts.
//!
//! ```text
//! cargo run --release -p marsit-bench --bin bench_service [-- --fast] [-- --out PATH]
//! ```
//!
//! `--fast` shrinks the job count and round budgets for CI smoke runs; the
//! JSON schema is identical in both modes (`"mode"` records which ran).

use std::time::Instant;

use marsit_models::Workload;
use marsit_serve::{quantile_ns, verify_outcome, JobServer, JobSpec, MigrationPolicy, ServeConfig};
use marsit_simnet::{FaultPlan, Topology};
use marsit_tensor::rng::FastRng;

struct Sizes {
    mode: &'static str,
    jobs: usize,
    burst: usize,
    rounds: usize,
    shards: usize,
    arrival_mean_ms: f64,
}

const FULL: Sizes = Sizes {
    mode: "full",
    jobs: 24,
    burst: 10,
    rounds: 16,
    shards: 4,
    arrival_mean_ms: 30.0,
};

const FAST: Sizes = Sizes {
    mode: "fast",
    jobs: 10,
    burst: 8,
    rounds: 8,
    shards: 3,
    arrival_mean_ms: 10.0,
};

const ARRIVAL_SEED: u64 = 0x5EED_5709;
const MIGRATION_SEED: u64 = 0xA11_0CA7E;
const MIGRATION_PER_MILLE: u32 = 250;

/// `git describe` of the tree this binary runs in (see `bench_round`).
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The deterministic job mix: three shapes (two ring widths and a torus)
/// cycled across the storm, every fourth job fault-injected, every job
/// with its own seed so no two are byte-identical to each other.
fn job_mix(i: usize, rounds: usize) -> JobSpec {
    let (workload, topology) = match i % 3 {
        0 => (Workload::AlexNetMnist, Topology::ring(4)),
        1 => (Workload::ResNet20Cifar10, Topology::torus(2, 2)),
        _ => (Workload::AlexNetMnist, Topology::ring(8)),
    };
    let mut spec = JobSpec::new(format!("job{i:03}"), workload, topology);
    spec.rounds = rounds;
    spec.seed = 100 + i as u64;
    spec.k = if i.is_multiple_of(2) { Some(5) } else { None };
    if i % 4 == 3 {
        spec.fault_plan = FaultPlan::seeded(i as u64).with_link_drop(0.05);
    }
    spec
}

fn median(sorted: &[u64]) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[sorted.len() / 2]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = if args.iter().any(|a| a == "--fast") {
        FAST
    } else {
        FULL
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_service.json", String::as_str);

    let mut cfg = ServeConfig::new(sizes.shards);
    cfg.tick_rounds = 2;
    cfg.migration = MigrationPolicy::Seeded {
        seed: MIGRATION_SEED,
        per_mille: MIGRATION_PER_MILLE,
    };
    println!(
        "bench_service ({}): {} jobs over {} shards, burst {}, mean gap {:.0}ms, \
         seeded migration {}/1000 per tick",
        sizes.mode, sizes.jobs, cfg.shards, sizes.burst, sizes.arrival_mean_ms, MIGRATION_PER_MILLE
    );

    // --- The storm: burst, then seeded Poisson arrivals. ---
    let specs: Vec<JobSpec> = (0..sizes.jobs).map(|i| job_mix(i, sizes.rounds)).collect();
    let mut arrivals = FastRng::new(ARRIVAL_SEED, 0);
    let wall = Instant::now();
    let mut handle = JobServer::start(cfg);
    for (i, spec) in specs.iter().enumerate() {
        if i >= sizes.burst {
            let u = arrivals.next_f64().clamp(1e-9, 1.0 - 1e-9);
            let gap_ms = -sizes.arrival_mean_ms * (1.0 - u).ln();
            std::thread::sleep(std::time::Duration::from_micros((gap_ms * 1e3) as u64));
        }
        handle.submit(spec.clone());
    }
    let report = handle.finish();
    let wall_s = wall.elapsed().as_secs_f64();
    assert_eq!(report.outcomes.len(), sizes.jobs);

    let jobs_per_sec = sizes.jobs as f64 / wall_s;
    let lat = report.round_latencies_sorted();
    let (p50, p95, p99) = (
        quantile_ns(&lat, 0.5),
        quantile_ns(&lat, 0.95),
        quantile_ns(&lat, 0.99),
    );
    println!(
        "served {} jobs in {wall_s:.2}s ({jobs_per_sec:.1} jobs/s) | \
         in flight peak {} sustained {} | round p50/p95/p99 {:.1}/{:.1}/{:.1} us",
        sizes.jobs,
        report.peak_in_flight,
        report.sustained_in_flight,
        p50 as f64 / 1e3,
        p95 as f64 / 1e3,
        p99 as f64 / 1e3,
    );
    assert!(
        report.sustained_in_flight >= 4,
        "the storm must sustain at least 4 concurrent jobs (got {})",
        report.sustained_in_flight
    );

    let samples = report.migration_samples();
    let mut snap_ns: Vec<u64> = samples.iter().map(|s| s.snapshot_ns).collect();
    let mut restore_ns: Vec<u64> = samples.iter().map(|s| s.restore_ns).collect();
    let mut snap_bytes: Vec<u64> = samples.iter().map(|s| s.snapshot_bytes as u64).collect();
    snap_ns.sort_unstable();
    restore_ns.sort_unstable();
    snap_bytes.sort_unstable();
    let migrations: u32 = report.outcomes.iter().map(|o| o.migrations).sum();
    println!(
        "migrations: {migrations} | snapshot p50 {:.1} us, restore p50 {:.1} us, \
         {} bytes median",
        median(&snap_ns) as f64 / 1e3,
        median(&restore_ns) as f64 / 1e3,
        median(&snap_bytes),
    );

    let pool = report.pool_stats();
    println!(
        "pool: {} hits / {} checkouts ({:.0}%), {} returns, {} evictions",
        pool.hits,
        pool.hits + pool.misses,
        pool.hit_rate() * 100.0,
        pool.returns,
        pool.evictions
    );

    // --- Bit-exactness: every served job vs a fresh solo run. ---
    //
    // This is the hard guarantee the whole server stands on. A violation
    // panics (no JSON is written), so the committed artifact doubles as a
    // certificate.
    let verify_wall = Instant::now();
    let mut violations = 0usize;
    for outcome in &report.outcomes {
        if let Err(e) = verify_outcome(outcome) {
            violations += 1;
            eprintln!("BIT-EXACTNESS VIOLATION: {e}");
        }
    }
    assert_eq!(
        violations, 0,
        "scheduler perturbed {violations} job(s); refusing to write {out_path}"
    );
    println!(
        "exactness: {}/{} jobs byte-identical to solo runs (verified in {:.2}s)",
        sizes.jobs,
        sizes.jobs,
        verify_wall.elapsed().as_secs_f64()
    );

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let git_stamp = git_describe();
    if git_stamp.ends_with("-dirty") {
        eprintln!("=================================================================");
        eprintln!("WARNING: bench_service is running in a DIRTY tree ({git_stamp}).");
        eprintln!("Do NOT commit numbers measured from uncommitted code.");
        eprintln!("=================================================================");
    }
    let json = format!(
        r#"{{
  "bench": "service",
  "mode": "{mode}",
  "config": {{
    "jobs": {jobs},
    "shards": {shards},
    "tick_rounds": {tick_rounds},
    "burst": {burst},
    "arrival_seed": {arrival_seed},
    "arrival_mean_ms": {arrival_mean_ms:.1},
    "rounds_per_job": {rounds},
    "migration_seed": {migration_seed},
    "migration_per_mille": {migration_per_mille}
  }},
  "throughput": {{
    "wall_s": {wall_s:.4},
    "jobs_per_sec": {jobs_per_sec:.2},
    "peak_in_flight": {peak},
    "sustained_in_flight": {sustained}
  }},
  "latency": {{
    "rounds_measured": {rounds_measured},
    "round_p50_ns": {p50},
    "round_p95_ns": {p95},
    "round_p99_ns": {p99}
  }},
  "migration": {{
    "count": {migrations},
    "snapshot_p50_ns": {snap_p50},
    "restore_p50_ns": {restore_p50},
    "snapshot_bytes_median": {snap_bytes_median}
  }},
  "pool": {{
    "hits": {pool_hits},
    "misses": {pool_misses},
    "returns": {pool_returns},
    "evictions": {pool_evictions},
    "hit_rate": {pool_hit_rate:.3}
  }},
  "exactness": {{
    "jobs_verified": {jobs},
    "violations": 0
  }},
  "meta": {{
    "host_cores": {cores},
    "git_describe": "{git_describe}"
  }}
}}
"#,
        mode = sizes.mode,
        jobs = sizes.jobs,
        shards = sizes.shards,
        tick_rounds = 2,
        burst = sizes.burst,
        arrival_seed = ARRIVAL_SEED,
        arrival_mean_ms = sizes.arrival_mean_ms,
        rounds = sizes.rounds,
        migration_seed = MIGRATION_SEED,
        migration_per_mille = MIGRATION_PER_MILLE,
        peak = report.peak_in_flight,
        sustained = report.sustained_in_flight,
        rounds_measured = lat.len(),
        snap_p50 = median(&snap_ns),
        restore_p50 = median(&restore_ns),
        snap_bytes_median = median(&snap_bytes),
        pool_hits = pool.hits,
        pool_misses = pool.misses,
        pool_returns = pool.returns,
        pool_evictions = pool.evictions,
        pool_hit_rate = pool.hit_rate(),
        git_describe = git_stamp,
    );
    std::fs::write(out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
